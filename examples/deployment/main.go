// Deployment reproduces the Tier-2 deployment optimization of
// Figure 12 and Table IV: batch-size and precision sweeps per platform,
// with the framework's recommendations.
package main

import (
	"fmt"
	"log"

	dabench "dabench"
)

func main() {
	cases := []struct {
		name    string
		p       dabench.Platform
		spec    dabench.TrainSpec
		batches []int
		formats []dabench.Format
	}{
		{
			"WSE-2 (GPT-2 small)", dabench.NewWSE(),
			dabench.TrainSpec{Model: dabench.GPT2Small(), Batch: 1, Seq: 1024, Precision: dabench.FP16},
			[]int{25, 50, 100, 200, 400, 800},
			[]dabench.Format{dabench.FP16, dabench.CB16},
		},
		{
			"RDU (LLaMA-2 7B, TP2)", dabench.NewRDU(),
			dabench.TrainSpec{Model: dabench.LLaMA2_7B(), Batch: 1, Seq: 4096, Precision: dabench.BF16,
				Par: dabench.Parallelism{Mode: dabench.ModeO1, TensorParallel: 2}},
			[]int{4, 8, 12, 16},
			[]dabench.Format{dabench.BF16, dabench.Mixed},
		},
		{
			"IPU (GPT-2 small, 2 layers)", dabench.NewIPU(),
			dabench.TrainSpec{Model: dabench.GPT2Small().WithLayers(2), Batch: 1, Seq: 1024, Precision: dabench.FP32},
			[]int{50, 100, 150, 200},
			[]dabench.Format{dabench.FP32, dabench.Mixed},
		},
	}
	for _, c := range cases {
		rep, err := dabench.Deployment(c.p, c.spec, c.batches, c.formats)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", c.name)
		for _, pt := range rep.BatchCurve {
			fmt.Printf("  %-8s %.4g tokens/s\n", pt.Label, pt.TokensPerSec)
		}
		for _, pt := range rep.PrecisionCurve {
			fmt.Printf("  %-8s %.4g tokens/s\n", pt.Label, pt.TokensPerSec)
		}
		for _, r := range rep.Recommendations {
			fmt.Println("  recommendation:", r)
		}
		fmt.Println()
	}
}
