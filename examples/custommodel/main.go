// Custommodel shows the framework applied to a user-defined
// architecture: a 2.1B-parameter LLaMA-style model profiled on every
// platform, demonstrating the "new hardware or new model, same
// analysis" property the paper claims for DABench-LLM.
package main

import (
	"fmt"
	"log"

	dabench "dabench"
)

func main() {
	// A custom 2.1B LLaMA-style config (hidden 2560, 32 layers).
	custom := dabench.LLaMA2_7B().WithHidden(2560)
	custom.Name = "llama-custom-2b"

	fmt.Printf("model %s: %.2fB params\n\n", custom.Name, float64(custom.Params())/1e9)

	specs := map[string]dabench.TrainSpec{
		"WSE-2": {Model: custom, Batch: 256, Seq: 1024, Precision: dabench.FP16,
			Par: dabench.Parallelism{WeightStreaming: true}},
		"RDU": {Model: custom, Batch: 8, Seq: 1024, Precision: dabench.BF16,
			Par: dabench.Parallelism{Mode: dabench.ModeO1}},
		"IPU": {Model: custom, Batch: 1024, Seq: 1024, Precision: dabench.FP16,
			Par: dabench.Parallelism{PipelineParallel: 16}},
		"GPU": {Model: custom, Batch: 64, Seq: 1024, Precision: dabench.BF16,
			Par: dabench.Parallelism{TensorParallel: 4, PipelineParallel: 2}},
	}
	for _, p := range dabench.Platforms() {
		spec := specs[p.Name()]
		prof, err := dabench.Profile(p, spec)
		if err != nil {
			if dabench.IsCompileFailure(err) {
				fmt.Printf("[%s] does not place: %v\n", p.Name(), err)
				continue
			}
			log.Fatal(err)
		}
		fmt.Println(prof.Summary())
	}
}
