// Scalability reproduces the Tier-2 multi-chip study of Table III and
// Figure 11: intra-chip data parallelism on the WSE-2, tensor
// parallelism on the RDU (intra- vs cross-machine), and pipeline
// parallelism with explicit layer assignments on the IPU.
package main

import (
	"fmt"
	"log"

	dabench "dabench"
)

func main() {
	fmt.Println("== WSE-2: intra-chip data parallelism ==")
	wsePts, err := dabench.Scalability(dabench.NewWSE(),
		dabench.TrainSpec{Model: dabench.GPTMini(), Batch: 512, Seq: 1024, Precision: dabench.FP16},
		[]dabench.Parallelism{
			{},
			{DataParallel: 2},
			{DataParallel: 4},
		},
		[]string{"DP1", "DP2", "DP4"},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range wsePts {
		fmt.Printf("%-4s %.3g tokens/s\n", p.Label, p.TokensPerSec)
	}

	fmt.Println("\n== RDU: tensor parallelism on LLaMA-2 7B ==")
	rduPts, err := dabench.Scalability(dabench.NewRDU(),
		dabench.TrainSpec{Model: dabench.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: dabench.BF16,
			Par: dabench.Parallelism{Mode: dabench.ModeO1}},
		[]dabench.Parallelism{
			{Mode: dabench.ModeO1, TensorParallel: 2},
			{Mode: dabench.ModeO1, TensorParallel: 4},
			{Mode: dabench.ModeO1, TensorParallel: 8},
		},
		[]string{"TP2 (one machine)", "TP4 (cross-machine)", "TP8 (cross-machine)"},
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range rduPts {
		fmt.Printf("%-20s %.0f tokens/s (PCU %.0f%%)\n",
			p.Label, p.TokensPerSec, 100*p.Allocation["PCU"])
	}

	fmt.Println("\n== IPU: pipeline layer assignments (Figure 11c) ==")
	assignments := [][]int{{2, 2, 2}, {4, 1, 1}, {3, 2, 1}}
	for _, a := range assignments {
		total := 0
		for _, v := range a {
			total += v
		}
		spec := dabench.TrainSpec{
			Model: dabench.GPT2Small().WithLayers(total), Batch: 2048, Seq: 1024,
			Precision: dabench.FP16,
			Par:       dabench.Parallelism{PipelineParallel: len(a) + 1, LayerAssignment: a},
		}
		prof, err := dabench.Profile(dabench.NewIPU(), spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v -> %.0f samples/s\n", a, prof.Run.SamplesPerSec)
	}
	fmt.Println("(throughput is set by the most heavily loaded IPU)")
}
