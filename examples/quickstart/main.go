// Quickstart: Tier-1 profile of GPT-2 small on the simulated Cerebras
// WSE-2 — the paper's basic intra-chip experiment in ten lines.
package main

import (
	"fmt"
	"log"

	dabench "dabench"
)

func main() {
	prof, err := dabench.Profile(dabench.NewWSE(), dabench.TrainSpec{
		Model:     dabench.GPT2Small(),
		Batch:     512,
		Seq:       1024,
		Precision: dabench.FP16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prof.Summary())
	for _, insight := range prof.Insights {
		fmt.Println(" -", insight)
	}
}
