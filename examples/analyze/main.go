// Analyze demonstrates the artifact's measurement-log workflow (the
// paper's ana.py): run experiments, stream raw measurement records to a
// JSON-lines file, read them back, and print aggregate summaries.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	dabench "dabench"

	"dabench/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "dabench-analyze")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "results.jsonl")

	// Run two experiments and log every measurement.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w := trace.NewWriter(f)
	for _, id := range []string{"table1", "table4"} {
		res, err := dabench.RunExperiment(id)
		if err != nil {
			log.Fatal(err)
		}
		for _, rec := range res.Trace {
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d measurement records to %s\n\n", w.Count(), path)

	// Read back and aggregate, exactly as a post-processing script
	// would on the testbed's analysis logs.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	recs, err := trace.Read(g)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range trace.Analyze(recs) {
		fmt.Printf("%-8s %-6s %-10s n=%d fail=%d min=%.4g mean=%.4g max=%.4g\n",
			s.Experiment, s.Platform, s.Metric, s.Count, s.Failures, s.Min, s.Mean, s.Max)
	}
}
