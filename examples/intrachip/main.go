// Intrachip runs the full Tier-1 characterization across all three
// dataflow platforms: the layer sweep of Table I / Figure 9 on the WSE,
// the compile-mode comparison of Figure 7 on the RDU, and the memory
// wall of Figure 9d on the IPU — the paper's Section V workflow.
package main

import (
	"fmt"
	"log"

	dabench "dabench"
)

func main() {
	wse := dabench.NewWSE()
	fmt.Println("== WSE-2: layer sweep (Table I / Figure 9a) ==")
	for _, l := range []int{1, 6, 12, 24, 36, 60, 72, 78} {
		spec := dabench.TrainSpec{
			Model: dabench.GPT2Small().WithLayers(l), Batch: 512, Seq: 1024,
			Precision: dabench.FP16,
		}
		prof, err := dabench.Profile(wse, spec)
		if err != nil {
			if dabench.IsCompileFailure(err) {
				fmt.Printf("L=%-3d FAIL: %v\n", l, err)
				continue
			}
			log.Fatal(err)
		}
		fmt.Printf("L=%-3d %s\n", l, prof.Summary())
	}

	rdu := dabench.NewRDU()
	fmt.Println("\n== RDU: compile modes (Figure 7) ==")
	for _, mode := range []struct {
		name string
		m    dabench.Parallelism
	}{
		{"O0", dabench.Parallelism{Mode: dabench.ModeO0}},
		{"O1", dabench.Parallelism{Mode: dabench.ModeO1}},
		{"O3", dabench.Parallelism{Mode: dabench.ModeO3}},
	} {
		spec := dabench.TrainSpec{
			Model: dabench.GPT2Small().WithLayers(24), Batch: 4, Seq: 1024,
			Precision: dabench.BF16, Par: mode.m,
		}
		prof, err := dabench.Profile(rdu, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", mode.name, prof.Summary())
	}

	ipu := dabench.NewIPU()
	fmt.Println("\n== IPU: memory wall (Figure 9d) ==")
	for _, l := range []int{1, 4, 8, 10} {
		spec := dabench.TrainSpec{
			Model: dabench.GPT2Small().WithLayers(l), Batch: 2048, Seq: 1024,
			Precision: dabench.FP16,
		}
		prof, err := dabench.Profile(ipu, spec)
		if err != nil {
			if dabench.IsCompileFailure(err) {
				fmt.Printf("L=%-3d FAIL: %v\n", l, err)
				continue
			}
			log.Fatal(err)
		}
		fmt.Printf("L=%-3d %s (mem %.1f MB)\n", l, prof.Summary(),
			prof.Compile.Memory.Used().MB())
	}
}
