// Benchmarks regenerating every table and figure in the paper's
// evaluation (DESIGN.md's per-experiment index). Each bench executes
// the full experiment — compile + run sweeps across the platform
// simulators — so `go test -bench=. -benchmem` reproduces the complete
// artifact; the printed tables come from `go run ./cmd/dabench
// experiments`.
//
// Ablation benches at the bottom measure the design choices DESIGN.md
// calls out: RDU operator fusion (O1 vs O0), WSE elastic allocation
// (deep vs shallow shrink-to-fit), and IPU layer-balance quality.
package dabench_test

import (
	"runtime"
	"testing"

	dabench "dabench"
	"dabench/internal/graph"
	"dabench/internal/model"
	"dabench/internal/precision"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := dabench.RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// BenchmarkAllExperiments regenerates the paper's full evaluation —
// all 11 tables/figures — per iteration, from a cold compile cache, on
// a 1-worker pool (serial) and a GOMAXPROCS-wide pool (parallel). The
// serial/parallel ratio is the sweep engine's end-to-end speedup; the
// BENCH_0.json baseline pins the starting point of the perf
// trajectory. Outputs are byte-identical across the two modes (see the
// determinism tests), so this measures engine overhead and scaling,
// nothing else.
func BenchmarkAllExperiments(b *testing.B) {
	runAll := func(b *testing.B, workers int) {
		b.Helper()
		b.ReportAllocs()
		dabench.SetSweepWorkers(workers)
		defer dabench.SetSweepWorkers(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dabench.ResetExperimentCaches()
			for _, id := range dabench.ExperimentIDs() {
				res, err := dabench.RunExperiment(id)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Tables) == 0 {
					b.Fatalf("%s produced no tables", id)
				}
			}
		}
		b.StopTimer()
		s := dabench.ExperimentCacheStats()
		b.ReportMetric(float64(s.Hits), "cache-hits/op")
		b.ReportMetric(100*s.HitRate(), "cache-hit-%")
		g := dabench.ExperimentGraphCacheStats()
		b.ReportMetric(float64(g.Hits), "graph-hits/op")
		b.ReportMetric(float64(g.Misses), "graph-builds/op")
		r := dabench.ExperimentRunCacheStats()
		b.ReportMetric(float64(r.Hits), "run-hits/op")
	}
	b.Run("serial", func(b *testing.B) { runAll(b, 1) })
	b.Run("parallel", func(b *testing.B) { runAll(b, runtime.GOMAXPROCS(0)) })
}

func BenchmarkTableI(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "figure6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "figure7") }
func BenchmarkTableII(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "figure8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "figure9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "figure10") }
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "figure11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "figure12") }
func BenchmarkTableIV(b *testing.B)  { benchExperiment(b, "table4") }

// BenchmarkGraphBuild measures lowering a model to its training graph
// — the inner work the graph cache memoizes. "build" is the raw
// lowering; "cached-warm" is the memoized path the mode grids and TP
// ladders actually take after the first compile.
func BenchmarkGraphBuild(b *testing.B) {
	opts := graph.BuildOptions{Batch: 512, Seq: 1024, Precision: precision.FP16, Backward: true}
	for _, cfg := range []struct {
		name  string
		model dabench.ModelConfig
	}{{"gpt2-small-12L", model.GPT2Small()}, {"gpt2-small-48L", model.GPT2Small().WithLayers(48)}, {"llama2-7b", model.LLaMA2_7B()}} {
		b.Run(cfg.name+"/build", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := graph.Build(cfg.model, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.name+"/cached-warm", func(b *testing.B) {
			b.ReportAllocs()
			graph.ResetCache()
			if _, err := graph.Cached(cfg.model, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := graph.Cached(cfg.model, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile measures one workload's compile on each platform,
// cold (fresh caches every iteration — the true lowering cost) and
// warm (the memoized steady state sweeps actually run in).
func BenchmarkCompile(b *testing.B) {
	cases := []struct {
		name string
		p    dabench.Platform
		spec dabench.TrainSpec
	}{
		{"wse", dabench.NewWSE(), dabench.TrainSpec{
			Model: dabench.GPT2Small(), Batch: 512, Seq: 1024, Precision: dabench.FP16}},
		{"rdu-o1", dabench.NewRDU(), dabench.TrainSpec{
			Model: dabench.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: dabench.BF16,
			Par: dabench.Parallelism{Mode: dabench.ModeO1, TensorParallel: 2}}},
		{"ipu", dabench.NewIPU(), dabench.TrainSpec{
			Model: dabench.GPT2Small().WithLayers(4), Batch: 2048, Seq: 1024, Precision: dabench.FP16,
			Par: dabench.Parallelism{PipelineParallel: 4}}},
	}
	for _, tc := range cases {
		b.Run(tc.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graph.ResetCache()
				if _, err := tc.p.Compile(tc.spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/warm", func(b *testing.B) {
			b.ReportAllocs()
			graph.ResetCache()
			c := dabench.Cached(tc.p)
			cr, err := c.Compile(tc.spec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Run(cr); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cr, err := c.Compile(tc.spec)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Run(cr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRDUFusion compares O1 (fused) against O0
// (per-operator sections): the fusion design choice behind the paper's
// O1-vs-O0 TFLOPs gap.
func BenchmarkAblationRDUFusion(b *testing.B) {
	spec := dabench.TrainSpec{
		Model: dabench.GPT2Small().WithLayers(24), Batch: 4, Seq: 1024,
		Precision: dabench.BF16,
	}
	for _, mode := range []struct {
		name string
		m    dabench.Parallelism
	}{{"O0", dabench.Parallelism{Mode: dabench.ModeO0}}, {"O1", dabench.Parallelism{Mode: dabench.ModeO1}}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			s := spec
			s.Par = mode.m
			p := dabench.NewRDU()
			var tf float64
			for i := 0; i < b.N; i++ {
				prof, err := dabench.Profile(p, s)
				if err != nil {
					b.Fatal(err)
				}
				tf = prof.Run.Achieved.TFLOPS()
			}
			b.ReportMetric(tf, "TFLOPs")
		})
	}
}

// BenchmarkAblationWSEElastic contrasts a shallow graph (no
// shrink-to-fit) against a deep one (elastic shrink active).
func BenchmarkAblationWSEElastic(b *testing.B) {
	for _, layers := range []int{6, 48} {
		name := "shallow-no-shrink"
		if layers > 12 {
			name = "deep-elastic-shrink"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			p := dabench.NewWSE()
			spec := dabench.TrainSpec{
				Model: dabench.GPT2Small().WithLayers(layers), Batch: 512, Seq: 1024,
				Precision: dabench.FP16,
			}
			var alloc float64
			for i := 0; i < b.N; i++ {
				prof, err := dabench.Profile(p, spec)
				if err != nil {
					b.Fatal(err)
				}
				alloc = prof.Allocation["PE"]
			}
			b.ReportMetric(100*alloc, "PE%")
		})
	}
}

// BenchmarkAblationIPUBalance contrasts balanced against skewed layer
// assignments at identical total depth.
func BenchmarkAblationIPUBalance(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		assign []int
	}{{"balanced", []int{2, 2, 2}}, {"skewed", []int{4, 1, 1}}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			p := dabench.NewIPU()
			spec := dabench.TrainSpec{
				Model: dabench.GPT2Small().WithLayers(6), Batch: 2048, Seq: 1024,
				Precision: dabench.FP16,
				Par: dabench.Parallelism{
					PipelineParallel: len(cfg.assign) + 1, LayerAssignment: cfg.assign,
				},
			}
			var sps float64
			for i := 0; i < b.N; i++ {
				prof, err := dabench.Profile(p, spec)
				if err != nil {
					b.Fatal(err)
				}
				sps = prof.Run.SamplesPerSec
			}
			b.ReportMetric(sps, "samples/s")
		})
	}
}
