// Benchmarks for the daemon's warm serve path: repeat /v1/run requests
// answered from the response-byte cache (pre-marshaled bytes straight
// to the writer), the ETag/304 conditional lane (no body at all), and
// — as the comparator — the pre-byte-cache warm path (memoized
// compile/run plus a fresh JSON marshal per request). BENCH_2.json
// pins the medians; CI enforces the warm path's allocs/op ceiling.
package dabench_test

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"dabench/internal/experiments"
	"dabench/internal/server"
)

// nullRW is a ResponseWriter that discards the body: the benchmark
// measures the serve path, not an in-memory recorder's buffering.
type nullRW struct {
	h      http.Header
	status int
}

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullRW) WriteHeader(code int)        { w.status = code }

// replayBody lets one request body be rewound and replayed across
// iterations without per-iteration allocations.
type replayBody struct{ *bytes.Reader }

func (replayBody) Close() error { return nil }

func newRunRequest(b *testing.B, body []byte) (*http.Request, *bytes.Reader) {
	b.Helper()
	rd := bytes.NewReader(body)
	req, err := http.NewRequest(http.MethodPost, "/v1/run", nil)
	if err != nil {
		b.Fatal(err)
	}
	req.Body = replayBody{rd}
	req.ContentLength = int64(len(body))
	return req, rd
}

func serveOnce(b *testing.B, h http.Handler, req *http.Request, rd *bytes.Reader, wantStatus int) *nullRW {
	b.Helper()
	w := &nullRW{h: make(http.Header)}
	if _, err := rd.Seek(0, io.SeekStart); err != nil {
		b.Fatal(err)
	}
	h.ServeHTTP(w, req)
	if w.status != wantStatus {
		b.Fatalf("status = %d, want %d", w.status, wantStatus)
	}
	return w
}

// BenchmarkWarmServe measures one warm POST /v1/run three ways:
//
//	run-warm     the response-byte fast lane (L0 hit, zero JSON work)
//	run-304      the conditional lane (If-None-Match match, no body)
//	run-slowpath the byte cache disabled — the pre-PR warm path:
//	             decode, resolve, memoized compile/run, marshal
//
// run-warm vs run-slowpath is the tentpole's speedup; the allocs/op of
// run-warm is the zero-copy claim, enforced by CI's bench smoke.
func BenchmarkWarmServe(b *testing.B) {
	body := []byte(`{"platform":"wse","model":"gpt2-small"}`)

	bench := func(b *testing.B, cfg server.Config, inm string, wantStatus int) {
		b.Helper()
		experiments.ResetCaches()
		srv, err := server.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		req, rd := newRunRequest(b, body)
		// Prime every tier (memo cells, byte cache, the ETag).
		w := serveOnce(b, srv, req, rd, http.StatusOK)
		if inm != "" {
			if etag := w.h.Get("Etag"); etag != "" {
				req.Header.Set("If-None-Match", etag)
			} else {
				b.Fatal("priming response carried no ETag")
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		w = &nullRW{h: make(http.Header)}
		for i := 0; i < b.N; i++ {
			rd.Seek(0, io.SeekStart)
			w.status = 0
			srv.ServeHTTP(w, req)
			if w.status != wantStatus {
				b.Fatalf("status = %d, want %d", w.status, wantStatus)
			}
		}
	}

	b.Run("run-warm", func(b *testing.B) {
		bench(b, server.Config{}, "", http.StatusOK)
	})
	b.Run("run-304", func(b *testing.B) {
		bench(b, server.Config{}, "etag", http.StatusNotModified)
	})
	b.Run("run-slowpath", func(b *testing.B) {
		bench(b, server.Config{RespCacheBudget: -1}, "", http.StatusOK)
	})
}
