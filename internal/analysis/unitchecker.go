package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

// unitchecker.go speaks cmd/go's vettool protocol, so CI runs the
// suite as `go vet -vettool=$(which dalint) ./...`: the go command
// plans the build, compiles dependencies, and invokes dalint once per
// package with a JSON config file naming the sources and every
// dependency's export data. This is a stdlib re-implementation of the
// x/tools unitchecker contract (the container bakes no third-party
// modules); the config struct mirrors cmd/go/internal/work's
// vetConfig field for field.

// VetConfig is the JSON payload cmd/go writes to <objdir>/vet.cfg.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunVet executes one vettool invocation against cfgPath and returns
// the process exit code: 0 clean, 2 when diagnostics were reported,
// 1 on operational failure. Diagnostics go to w in the conventional
// file:line:col form.
func RunVet(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "dalint: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "dalint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the vetx output file to exist after
	// every run — including VetxOnly dependency passes — so it can
	// cache the (empty) fact set. dalint's analyzers exchange no
	// facts, so dependencies cost one file create and nothing else.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("dalint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(w, "dalint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "dalint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	imp := newExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, info, err := Typecheck(fset, files, CanonicalPkgPath(cfg.ImportPath), imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "dalint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags := CheckPackage(fset, files, cfg.ImportPath, pkg, info, analyzers)
	for _, d := range diags {
		fmt.Fprintf(w, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// IsVetInvocation reports whether argv looks like a cmd/go vettool
// call: the last argument is a *.cfg file. go vet may prepend
// analyzer flags; dalint accepts and ignores ones it does not know.
func IsVetInvocation(args []string) (cfgPath string, ok bool) {
	if len(args) == 0 {
		return "", false
	}
	last := args[len(args)-1]
	if strings.HasSuffix(last, ".cfg") {
		return last, true
	}
	return "", false
}
