// Package analysis is dabench's project-invariant analyzer suite: the
// codebase's unwritten rules, mechanized. Nine PRs in, several
// correctness invariants lived only in test suites and reviewer
// memory — /v1/stats field order is append-only because CI greps
// depend on it, fault hooks must fire outside memo.Cache.Do so
// injected errors never poison cells, every externally supplied blob
// address must pass store.ValidAddr before touching a path. At scale
// those rules get broken by the next PR, not this one, so each is an
// analyzer here and cmd/dalint runs the whole suite at `go vet
// -vettool` time.
//
// The framework is a deliberate, stdlib-only miniature of
// golang.org/x/tools/go/analysis: the container bakes no third-party
// modules, and the six analyzers need nothing the standard library's
// go/ast + go/types cannot provide. An Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics; the
// drivers (vettool protocol in unitchecker.go, `go list` loader in
// loader.go, fixture loader in the tests) only differ in how they
// produce the Pass.
//
// Suppression: a diagnostic is silenced by an inline comment on the
// reported line or the line above it, and the justification is not
// optional — the comment is the review artifact that replaces the
// analyzer's judgment:
//
//	//dalint:ignore <analyzer>[,<analyzer>] -- <why this is sound>
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier: what diagnostics carry and
	// what a //dalint:ignore comment names.
	Name string
	// Doc is the one-paragraph contract, shown by `dalint -list`.
	Doc string
	// Run inspects one package via pass and reports violations.
	Run func(pass *Pass)
}

// All returns the full suite in stable order. The slice is freshly
// allocated; callers may filter it.
func All() []*Analyzer {
	return []*Analyzer{
		AddrGate,
		AtomicPtr,
		LockHeldIO,
		MemoFault,
		NoCtxBg,
		StatsOrder,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// PkgPath is the canonical import path: test-variant suffixes
	// ("pkg [pkg.test]") are stripped, so path-gated analyzers treat a
	// package and its internal-test variant identically.
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the conventional file:line:col form go vet users
// expect.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// CanonicalPkgPath strips the build system's test-variant decoration
// ("dabench/internal/server [dabench/internal/server.test]") so
// analyzers gate on the source-level import path.
func CanonicalPkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// CheckPackage runs every analyzer in analyzers over one type-checked
// package and returns the surviving diagnostics: suppressed ones are
// filtered, the rest sorted by position. pkg and info may come from
// any driver (export-data importer, source importer, test fixture).
func CheckPackage(fset *token.FileSet, files []*ast.File, pkgPath string, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     fset,
			Files:    files,
			PkgPath:  CanonicalPkgPath(pkgPath),
			Pkg:      pkg,
			Info:     info,
			analyzer: a,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = filterSuppressed(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "//dalint:ignore"

// suppression is one parsed //dalint:ignore comment.
type suppression struct {
	names map[string]bool // analyzer names it silences
}

// parseSuppression parses one comment's text, returning nil when it is
// not a (valid) suppression. The justification after " -- " is
// mandatory: an ignore without a reason does not suppress anything,
// which keeps the syntax honest — the comment exists to carry the
// reason into review.
func parseSuppression(text string) *suppression {
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil
	}
	rest := strings.TrimPrefix(text, ignorePrefix)
	names, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		return nil
	}
	s := &suppression{names: map[string]bool{}}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			s.names[n] = true
		}
	}
	if len(s.names) == 0 {
		return nil
	}
	return s
}

// filterSuppressed drops diagnostics covered by a //dalint:ignore
// comment on the same line or the line immediately above.
func filterSuppressed(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// file -> line -> suppressions active on that line.
	byLine := map[string]map[int][]*suppression{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s := parseSuppression(c.Text)
				if s == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				m := byLine[pos.Filename]
				if m == nil {
					m = map[int][]*suppression{}
					byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], s)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if suppressedAt(byLine, d) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func suppressedAt(byLine map[string]map[int][]*suppression, d Diagnostic) bool {
	m := byLine[d.Position.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{d.Position.Line, d.Position.Line - 1} {
		for _, s := range m[line] {
			if s.names[d.Analyzer] {
				return true
			}
		}
	}
	return false
}

// --- shared type-inspection helpers -----------------------------------

// calleeFunc resolves a call expression to the *types.Func it invokes
// (function, method, or generic instantiation), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the canonical package path a function belongs
// to ("" for builtins).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return CanonicalPkgPath(fn.Pkg().Path())
}

// isCallTo reports whether call invokes a function or method named
// name whose package path has the given suffix match via pathMatches.
func isCallTo(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && pathMatches(funcPkgPath(fn), pkgPath)
}

// pathMatches reports whether got identifies the project package want.
// Exact match is the production case; the suffix form ("a/b/c" matched
// by want "b/c" only at a path-segment boundary) lets analysistest
// fixtures under testdata/src mirror real packages without carrying
// the module prefix.
func pathMatches(got, want string) bool {
	if got == want {
		return true
	}
	return strings.HasSuffix(got, "/"+want)
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
