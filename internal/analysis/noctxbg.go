package analysis

import (
	"go/ast"
)

// noCtxBgPkgs are the request-path packages: every operation in them
// runs on behalf of an HTTP request or a lifecycle whose context the
// caller already owns, so minting a fresh root context severs
// cancellation — a shut-down daemon keeps gossiping, a timed-out
// request keeps fetching. PR 9's peer-fetch lane shipped exactly that
// bug; this analyzer makes it unshippable.
var noCtxBgPkgs = []string{
	"dabench/internal/server",
	"dabench/internal/jobs",
	"dabench/internal/cluster",
}

// NoCtxBg forbids context.Background() and context.TODO() in
// request-path packages, where a caller's context must be threaded.
// Lifecycle roots (a manager's own base context, cancelled on Close)
// are the legitimate exception and carry a //dalint:ignore with the
// reason. Test files are exempt: a test IS the root of its call tree.
var NoCtxBg = &Analyzer{
	Name: "noctxbg",
	Doc: "forbid context.Background/TODO in request-path packages " +
		"(server, jobs, cluster): thread the request or lifecycle " +
		"context instead, so shutdown and deadlines propagate",
	Run: runNoCtxBg,
}

func runNoCtxBg(pass *Pass) {
	gated := false
	for _, p := range noCtxBgPkgs {
		if pathMatches(pass.PkgPath, p) {
			gated = true
			break
		}
	}
	if !gated {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range [2]string{"Background", "TODO"} {
				if isCallTo(pass.Info, call, "context", name) {
					pass.Reportf(call.Pos(),
						"context.%s() in request-path package %s: thread the caller's context (or //dalint:ignore noctxbg a lifecycle root with justification)",
						name, pass.PkgPath)
				}
			}
			return true
		})
	}
}
