package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// addrGatePkgs are the packages that turn blob addresses into file
// paths. store.path() shards on addr[:2], so a malformed address is
// at best a panic and at worst a traversal — which is why PR 9 put
// store.ValidAddr (64 lowercase hex, nothing else) in front of every
// externally supplied address.
var addrGatePkgs = []string{
	"dabench/internal/store",
	"dabench/internal/cluster",
}

// AddrGate enforces that gate: in store and cluster, a string
// parameter whose name contains "addr" must pass through
// store.ValidAddr before it (or anything derived from it) reaches a
// filesystem sink — filepath.Join, the os file calls, or a
// same-package helper that itself funnels the value to such a sink.
//
// The flow tracking is intraprocedural taint over declared functions:
// an addr parameter taints simple assignments it appears in, and a
// sink hit counts when any argument expression contains a tainted
// identifier. Same-package calls are followed one summary deep via a
// fixpoint over "which string parameters of each function reach a
// sink unguarded", so (*Store).path — the Join helper every blob
// touch goes through — is a sink at its callers without being flagged
// itself (its internal callers pass self-derived addresses).
// Dominance is lexical: a ValidAddr call on the parameter anywhere
// earlier in the function body guards every later use.
var AddrGate = &Analyzer{
	Name: "addrgate",
	Doc: "in store and cluster, an addr-named string parameter must " +
		"be checked with store.ValidAddr before it reaches " +
		"filepath.Join or os file calls: path() shards on addr[:2], " +
		"so an unvalidated address is a panic or a traversal",
	Run: runAddrGate,
}

const storePkg = "dabench/internal/store"

func runAddrGate(pass *Pass) {
	gated := false
	for _, p := range addrGatePkgs {
		if pathMatches(pass.PkgPath, p) {
			gated = true
			break
		}
	}
	if !gated {
		return
	}

	// Collect every declared function with its string params.
	type funcNode struct {
		decl *ast.FuncDecl
		obj  *types.Func
		// unguarded[i] = string param i reaches a sink with no
		// dominating ValidAddr (the fixpoint's summary).
		unguarded map[int]bool
	}
	var fns []*funcNode
	byObj := map[*types.Func]*funcNode{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &funcNode{decl: fd, obj: obj, unguarded: map[int]bool{}}
			fns = append(fns, n)
			byObj[obj] = n
		}
	}

	// calleeSummary reports whether a call's argument position lands on
	// an unguarded-sink parameter of a same-package function.
	calleeSummary := func(call *ast.CallExpr, argIdx int) bool {
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return false
		}
		n, ok := byObj[fn]
		if !ok {
			return false
		}
		return n.unguarded[argIdx]
	}

	// Fixpoint: summaries feed callers until stable. Package call
	// graphs here are shallow (path() is depth 1), so this converges in
	// a couple of rounds; the iteration cap is a cycle backstop.
	for round := 0; round < 10; round++ {
		changed := false
		for _, n := range fns {
			params := stringParams(pass.Info, n.decl)
			for idx, p := range params {
				if n.unguarded[idx] {
					continue
				}
				if sinkPos := paramReachesSink(pass, n.decl, p, calleeSummary); sinkPos.IsValid() {
					n.unguarded[idx] = true
					_ = sinkPos
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Report: only parameters whose *name* marks them as addresses.
	// Internal plumbing (path(name string)) stays silent as long as
	// every addr-named entry point guards before reaching it.
	for _, n := range fns {
		params := stringParams(pass.Info, n.decl)
		for idx, p := range params {
			if !n.unguarded[idx] || !isAddrName(p.Name()) {
				continue
			}
			sinkPos := paramReachesSink(pass, n.decl, p, calleeSummary)
			pass.Reportf(sinkPos,
				"address parameter %q of %s reaches a filesystem path with no dominating store.ValidAddr check: validate before deriving paths (64-hex gate ahead of any path handling)",
				p.Name(), n.decl.Name.Name)
		}
	}
}

// isAddrName reports whether a parameter name marks an address value.
func isAddrName(name string) bool {
	return strings.Contains(strings.ToLower(name), "addr")
}

// stringParams returns the *types.Var for each parameter of fd whose
// type is string, keyed by its position among ALL parameters (so call
// argument indexes line up).
func stringParams(info *types.Info, fd *ast.FuncDecl) map[int]*types.Var {
	out := map[int]*types.Var{}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				if basic, ok := v.Type().Underlying().(*types.Basic); ok && basic.Kind() == types.String {
					out[idx] = v
				}
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return out
}

// paramReachesSink walks fd's body in lexical order tracking the
// taint set seeded by param, and returns the position of the first
// sink an unguarded tainted value reaches (NoPos when none, or when a
// ValidAddr guard dominates every sink).
func paramReachesSink(pass *Pass, fd *ast.FuncDecl, param *types.Var, calleeSummary func(*ast.CallExpr, int) bool) token.Pos {
	tainted := map[types.Object]bool{param: true}
	guarded := false
	var sinkAt token.Pos

	// exprTainted: does e mention a tainted object?
	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sinkAt.IsValid() {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncLit:
			return false // closures are out of scope for the lexical rule
		case *ast.AssignStmt:
			// Taint propagation: LHS vars fed by tainted RHS exprs.
			for i, lhs := range node.Lhs {
				if i >= len(node.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil && exprTainted(node.Rhs[i]) {
					tainted[obj] = true
				}
			}
		case *ast.CallExpr:
			if guarded {
				return true
			}
			// A ValidAddr call on a tainted value guards all later uses.
			if isValidAddrCall(pass, node) && len(node.Args) == 1 && exprTainted(node.Args[0]) {
				guarded = true
				return true
			}
			for i, arg := range node.Args {
				if !exprTainted(arg) {
					continue
				}
				if isDirectSink(pass.Info, node) || calleeSummary(node, i) {
					sinkAt = node.Pos()
					return false
				}
			}
		}
		return true
	})
	if guarded {
		return token.NoPos
	}
	return sinkAt
}

// isValidAddrCall recognizes store.ValidAddr (or a same-package
// ValidAddr when analyzing the store itself).
func isValidAddrCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Name() != "ValidAddr" {
		return false
	}
	path := funcPkgPath(fn)
	return pathMatches(path, storePkg) || path == pass.PkgPath
}

// isDirectSink recognizes filepath.Join and the os file calls.
func isDirectSink(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch funcPkgPath(fn) {
	case "path/filepath":
		return fn.Name() == "Join"
	case "os":
		return osIOFuncs[fn.Name()]
	}
	return false
}
