// Package ungated pins the noctxbg gate itself: the same violating
// shape outside the request-path packages reports nothing.
package ungated

import "context"

func Mint() context.Context { return context.Background() }
