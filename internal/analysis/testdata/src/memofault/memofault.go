// memofault fixtures: Fire inside a memo.Cache.Do closure is the
// cache-poisoning shape; firing before Do is the sanctioned one.
package memofault

import (
	"dabench/internal/faults"
	"dabench/internal/memo"
)

var inj *faults.Injector

func bad(c *memo.Cache[string, int]) (int, error) {
	return c.Do("k", func() (int, error) {
		if err := inj.Fire(faults.OpCompile); err != nil { // want `fault hook fires inside a memo\.Cache\.Do closure`
			return 0, err
		}
		return 1, nil
	})
}

// nested: the hook hides one closure deeper, still inside Do's
// dynamic extent.
func nested(c *memo.Cache[string, int]) (int, error) {
	return c.Do("k", func() (int, error) {
		f := func() error { return inj.Fire(faults.OpStoreRead) } // want `fault hook fires inside a memo\.Cache\.Do closure`
		return 1, f()
	})
}

// good is the production pattern: evaluate the fault rules before
// entering the cell, so an injected error is returned, not memoized.
func good(c *memo.Cache[string, int]) (int, error) {
	if err := inj.Fire(faults.OpCompile); err != nil {
		return 0, err
	}
	return c.Do("k", func() (int, error) { return 1, nil })
}

// suppressed: the justification comment is the escape hatch.
func suppressed(c *memo.Cache[string, int]) (int, error) {
	return c.Do("k", func() (int, error) {
		//dalint:ignore memofault -- fixture: this cell memoizes fault decisions on purpose
		return 0, inj.Fire(faults.OpCompile)
	})
}
