// statsorder fixtures: wire-stable structs are held to exact field
// order against statsorder_manifest.json (the fixture entries live in
// the same manifest as the real ones, under the "statsorder." prefix).
package statsorder // want `statsorder manifest lists statsorder\.GoneType but package statsorder declares no such struct`

// WireStats matches its manifest entry exactly: unexported and
// json:"-" fields are not part of the wire surface.
type WireStats struct {
	InFlight int64   `json:"in_flight"`
	Served   int64   `json:"served"`
	Uptime   float64 `json:"uptime_sec"`
	hidden   int
	Skipped  int `json:"-"`
}

var _ = WireStats{hidden: 0}

// DriftStats swaps the manifest's first two fields.
type DriftStats struct {
	InFlight int64 `json:"in_flight"` // want `statsorder\.DriftStats wire field 0 is "in_flight" but the manifest pins "served"`
	Served   int64 `json:"served"`
}

// GrownStats appended a field without the matching manifest append.
type GrownStats struct {
	A int `json:"a"`
	B int `json:"b"` // want `statsorder\.GrownStats gained wire field "b" not yet in the manifest`
}

// ShrunkStats dropped a field the manifest still pins.
type ShrunkStats struct { // want `statsorder\.ShrunkStats lost wire field "b" \(manifest pins 2 fields, struct has 1\)`
	A int `json:"a"`
}

// Suppressed shows the escape hatch for a deliberate (fixture-only)
// divergence.
type Suppressed struct {
	//dalint:ignore statsorder -- fixture: divergence is the point of this type
	B int `json:"b"`
	A int `json:"a"`
}
