// atomicptr fixtures: once a field or variable is touched by a
// sync/atomic package-level operation, direct access anywhere else in
// the package is a violation.
package atomicptr

import "sync/atomic"

type counter struct {
	n    int64
	hits int64
}

func (c *counter) inc() int64  { return atomic.AddInt64(&c.n, 1) }
func (c *counter) load() int64 { return atomic.LoadInt64(&c.n) }

func (c *counter) badRead() int64 { return c.n } // want `n is accessed with sync/atomic operations`

func (c *counter) badWrite() { c.n = 0 } // want `n is accessed with sync/atomic operations`

// hits is never accessed atomically: direct use is fine.
func (c *counter) fine() int64 { return c.hits }

// Keyed composite-literal initialization precedes publication and is
// allowed.
func newCounter() *counter { return &counter{n: 0, hits: 0} }

var global int64

func incGlobal() { atomic.AddInt64(&global, 1) }

func badGlobal() int64 { return global } // want `global is accessed with sync/atomic operations`

func suppressedGlobal() int64 {
	//dalint:ignore atomicptr -- fixture: read happens before any goroutine is spawned
	return global
}

// Typed atomics guard themselves; their method arguments are values,
// not protected locations, so none of this is flagged.
type typed struct{ v atomic.Int64 }

func (t *typed) ok() int64 {
	t.v.Store(1)
	return t.v.Load()
}
