// addrgate fixtures for the cluster package: peer-supplied addresses
// must pass store.ValidAddr (imported from the store stub) before any
// path derivation.
package cluster

import (
	"os"
	"path/filepath"

	"dabench/internal/store"
)

func fetchGuarded(dir, addr string) ([]byte, error) {
	if !store.ValidAddr(addr) {
		return nil, os.ErrInvalid
	}
	return os.ReadFile(filepath.Join(dir, addr[:2], addr))
}

func fetchBad(dir, addr string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, addr)) // want `address parameter "addr" of fetchBad reaches a filesystem path with no dominating store\.ValidAddr check`
}

// Any addr-containing name marks an address parameter.
func adoptBad(dir, peerAddr string) error {
	_, err := os.Stat(filepath.Join(dir, peerAddr)) // want `address parameter "peerAddr" of adoptBad reaches a filesystem path with no dominating store\.ValidAddr check`
	return err
}

func adoptSuppressed(dir, addr string) error {
	//dalint:ignore addrgate -- fixture: addr validated by the gossip handler before this call
	_, err := os.Stat(filepath.Join(dir, addr))
	return err
}
