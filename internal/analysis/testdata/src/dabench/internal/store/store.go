// addrgate fixtures for the store package: every addr-named string
// parameter must pass store.ValidAddr before it (or anything derived
// from it) reaches filepath.Join / os file calls — including through
// the path() helper, which the analyzer summarizes as a sink at its
// callers without flagging the helper itself.
package store

import (
	"os"
	"path/filepath"
)

// ValidAddr is the gate itself (64 lowercase hex in the real store;
// the body is irrelevant to the analyzer, only the identity matters).
func ValidAddr(addr string) bool {
	return len(addr) == 64
}

type Store struct{ dir string }

// path is internal plumbing: its parameter reaches filepath.Join
// unguarded, but "name" is not addr-named, so the helper itself stays
// silent — callers passing unvalidated addresses are flagged instead.
func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name[:2], name+".json")
}

// ReadFrame is the sanctioned shape: validate, then derive.
func (s *Store) ReadFrame(addr string) ([]byte, error) {
	if !ValidAddr(addr) {
		return nil, os.ErrInvalid
	}
	return os.ReadFile(s.path(addr))
}

// Export hits a direct sink with no guard.
func (s *Store) Export(addr string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.dir, addr)) // want `address parameter "addr" of Export reaches a filesystem path with no dominating store\.ValidAddr check`
}

// Peek reaches the sink only through the path() summary.
func (s *Store) Peek(addr string) string {
	return s.path(addr) // want `address parameter "addr" of Peek reaches a filesystem path with no dominating store\.ValidAddr check`
}

// Derived taint: the guard on the derived name covers the original
// parameter's flow.
func (s *Store) Guarded(addr string) error {
	name := addr
	if !ValidAddr(name) {
		return os.ErrInvalid
	}
	_, err := os.Stat(s.path(name))
	return err
}

// Adopt documents a caller-side guarantee with the suppression form.
func (s *Store) Adopt(addr string) string {
	//dalint:ignore addrgate -- fixture: addr was validated by the caller's handler gate
	return s.path(addr)
}
