// noctxbg fixtures: request-path packages must thread the caller's
// context; fresh roots are reserved for lifecycle owners and carry a
// justified suppression.
package jobs

import "context"

func mintBad() context.Context { return context.Background() } // want `context\.Background\(\) in request-path package dabench/internal/jobs`

func mintTodo() context.Context { return context.TODO() } // want `context\.TODO\(\) in request-path package dabench/internal/jobs`

// threaded is the sanctioned shape: derive from the caller's context.
func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// lifecycleRoot is the legitimate exception, documented in place.
func lifecycleRoot() (context.Context, context.CancelFunc) {
	//dalint:ignore noctxbg -- fixture lifecycle root: cancelled by the manager's Shutdown
	return context.WithCancel(context.Background())
}

// A bare ignore with no `-- justification` does not suppress.
func unjustified() context.Context {
	//dalint:ignore noctxbg
	return context.Background() // want `context\.Background\(\) in request-path package dabench/internal/jobs`
}
