// Test files are exempt from noctxbg: a test IS the root of its call
// tree, so minting a fresh context here must not be reported.
package jobs

import "context"

func testRoot() context.Context { return context.Background() }
