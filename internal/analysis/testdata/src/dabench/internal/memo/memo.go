// Package memo is the analysistest stand-in for the real
// dabench/internal/memo: just enough surface (a generic Cache with
// singleflight-shaped Do) for the memofault fixtures to type-check.
package memo

type Cache[K comparable, V any] struct{ m map[K]V }

func New[K comparable, V any]() *Cache[K, V] { return &Cache[K, V]{m: map[K]V{}} }

func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	if v, ok := c.m[key]; ok {
		return v, nil
	}
	v, err := fn()
	if err == nil {
		c.m[key] = v
	}
	return v, err
}
