// lockheldio fixtures: no HTTP round-trips or blob file I/O while a
// sync.Mutex/RWMutex is held. The sanctioned shape is
// collect-under-lock, act-after-unlock.
package telemetry

import (
	"net/http"
	"os"
	"sync"
)

type Registry struct {
	mu   sync.Mutex
	vals map[string]int64
}

// DumpBad holds the lock across a file write (the deferred Unlock
// releases at function end, so the write is inside the section).
func (r *Registry) DumpBad(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return os.WriteFile(path, nil, 0o644) // want `file I/O \(os\.WriteFile\) while holding r\.mu`
}

// DumpOK snapshots under the lock and writes after releasing it.
func (r *Registry) DumpOK(path string) error {
	r.mu.Lock()
	n := len(r.vals)
	r.mu.Unlock()
	_ = n
	return os.WriteFile(path, nil, 0o644)
}

type Gauge struct{ mu sync.RWMutex }

// ProbeBad makes an HTTP round-trip under an RLock.
func (g *Gauge) ProbeBad(c *http.Client, url string) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	resp, err := c.Get(url) // want `HTTP round-trip \(http\.Client\.Get\) while holding g\.mu`
	if err == nil {
		resp.Body.Close()
	}
}

// ProbePkgBad uses the package-level helper, same violation.
func (g *Gauge) ProbePkgBad(url string) {
	g.mu.RLock()
	resp, err := http.Get(url) // want `HTTP round-trip \(http\.Get\) while holding g\.mu`
	g.mu.RUnlock()
	if err == nil {
		resp.Body.Close()
	}
}

// BranchOK releases on the early-return path before the write: the
// walker tracks held locks per branch.
func (r *Registry) BranchOK(path string, cond bool) error {
	r.mu.Lock()
	if cond {
		r.mu.Unlock()
		return os.WriteFile(path, nil, 0o644)
	}
	r.mu.Unlock()
	return nil
}

// AsyncOK: goroutines and function literals escape the critical
// section's dynamic extent by the time they run, so they are not
// entered.
func (r *Registry) AsyncOK() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() { _ = os.Remove("x") }()
	f := func() error { return os.Remove("x") }
	_ = f
}

// SuppressedDump documents a cold path with the suppression form.
func (r *Registry) SuppressedDump(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	//dalint:ignore lockheldio -- fixture: shutdown-only dump, no concurrent scrapes exist
	return os.WriteFile(path, nil, 0o644)
}
