// Package faults is the analysistest stand-in for the real
// dabench/internal/faults: an Injector whose Fire is the hook the
// memofault analyzer tracks.
package faults

type Op string

const (
	OpCompile   Op = "compile"
	OpStoreRead Op = "store.read"
)

type Injector struct{}

func (in *Injector) Fire(op Op) error { return nil }
