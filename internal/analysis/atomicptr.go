package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicPtr guards atomically-published state: once any code accesses
// a variable or struct field through a sync/atomic pointer-style
// operation (atomic.LoadInt64(&x.f), atomic.StorePointer(&p, ...)),
// every other access must go through sync/atomic too. A direct read
// "just for a test assertion" is exactly how the server's
// fabric/fabricRaw seam would have regressed: the race detector only
// catches the schedules it sees, while this rule catches the
// mixed-access pattern itself.
//
// Typed atomics (atomic.Int64, atomic.Pointer[T]) make misuse
// unrepresentable and are the preferred style — this analyzer covers
// the legacy call-based style so it can never creep back in mixed
// form. Two direct-access forms stay legal: the address-of argument
// inside a sync/atomic call itself, and a keyed composite-literal
// initialization (construction happens before publication).
var AtomicPtr = &Analyzer{
	Name: "atomicptr",
	Doc: "variables accessed via sync/atomic operations must never " +
		"also be read or written directly: mixed access races with " +
		"the atomic protocol (use the atomic API everywhere, or a " +
		"typed atomic.Int64/atomic.Pointer field)",
	Run: runAtomicPtr,
}

func runAtomicPtr(pass *Pass) {
	// Pass 1: every object whose address feeds a sync/atomic call, and
	// the identifier positions of those sanctioned uses.
	atomicObjs := map[types.Object]bool{}
	sanctioned := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			// Package-level functions only (atomic.AddInt64 & co):
			// the typed atomics' methods take values, not protected
			// locations, and guard themselves by construction.
			if fn == nil || funcPkgPath(fn) != "sync/atomic" || fn.Signature().Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj, id := addressedObj(pass.Info, un.X); obj != nil {
					atomicObjs[obj] = true
					sanctioned[id.Pos()] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: any other use of those objects is a violation, except
	// keyed composite-literal initialization.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id.Pos()] {
				return true
			}
			// Uses only: a declaration (Defs) is not an access.
			obj := pass.Info.Uses[id]
			if obj == nil || !atomicObjs[obj] {
				return true
			}
			if isCompositeLitKey(stack, id) {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s is accessed with sync/atomic operations elsewhere in this package; direct access races with the atomic protocol (use sync/atomic here too)",
				id.Name)
			return true
		})
	}
}

// addressedObj resolves the operand of a unary & to the variable it
// names: a field selector (&s.f) or a plain identifier (&v). It
// returns the object and the identifier carrying it.
func addressedObj(info *types.Info, expr ast.Expr) (types.Object, *ast.Ident) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok {
			return obj, x.Sel
		}
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok {
			return obj, x
		}
	}
	return nil, nil
}

// isCompositeLitKey reports whether id (last element of stack) is the
// key of a KeyValueExpr directly inside a composite literal — the
// construction-time init that precedes publication.
func isCompositeLitKey(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 3 {
		return false
	}
	kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, ok = stack[len(stack)-3].(*ast.CompositeLit)
	return ok
}
