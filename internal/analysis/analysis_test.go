package analysis

// analysis_test.go covers the framework around the analyzers: the
// suppression grammar, the vettool protocol (RunVet against a
// handcrafted vet.cfg), and the guard that keeps the committed
// statsorder manifest in lockstep with the real tree.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		text  string
		names []string // nil => not a valid suppression
	}{
		{"//dalint:ignore noctxbg -- lifecycle root", []string{"noctxbg"}},
		{"//dalint:ignore noctxbg, addrgate -- caller validated", []string{"noctxbg", "addrgate"}},
		{"//dalint:ignore noctxbg", nil},           // no justification
		{"//dalint:ignore noctxbg --", nil},        // empty justification
		{"//dalint:ignore noctxbg --   ", nil},     // whitespace justification
		{"//dalint:ignore -- reason only", nil},    // no analyzer names
		{"// dalint:ignore noctxbg -- reason", nil}, // space breaks the marker
		{"// plain comment", nil},
	}
	for _, c := range cases {
		s := parseSuppression(c.text)
		if c.names == nil {
			if s != nil {
				t.Errorf("parseSuppression(%q) = %v, want nil", c.text, s.names)
			}
			continue
		}
		if s == nil {
			t.Errorf("parseSuppression(%q) = nil, want %v", c.text, c.names)
			continue
		}
		for _, n := range c.names {
			if !s.names[n] {
				t.Errorf("parseSuppression(%q) missing analyzer %q", c.text, n)
			}
		}
		if len(s.names) != len(c.names) {
			t.Errorf("parseSuppression(%q) = %v, want exactly %v", c.text, s.names, c.names)
		}
	}
}

func TestIsVetInvocation(t *testing.T) {
	if _, ok := IsVetInvocation([]string{"-list"}); ok {
		t.Error("-list misread as a vet invocation")
	}
	cfg, ok := IsVetInvocation([]string{"-someflag", "/tmp/b001/vet.cfg"})
	if !ok || cfg != "/tmp/b001/vet.cfg" {
		t.Errorf("vet.cfg invocation not recognized: %q %v", cfg, ok)
	}
}

// writeVetCfg marshals a VetConfig the way cmd/go does and returns
// its path.
func writeVetCfg(t *testing.T, cfg VetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunVetReportsViolation drives the full vettool path — config
// parse, export-data import, typecheck, analysis, diagnostic
// rendering, exit code — over a synthetic request-path package with a
// noctxbg violation.
func TestRunVetReportsViolation(t *testing.T) {
	std := stdExportData(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "jobs.go")
	const body = `package jobs

import "context"

func Mint() context.Context { return context.Background() }
`
	if err := os.WriteFile(src, []byte(body), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "vet.out")
	cfg := writeVetCfg(t, VetConfig{
		ImportPath:  "dabench/internal/jobs",
		GoFiles:     []string{src},
		ImportMap:   map[string]string{"context": "context"},
		PackageFile: std,
		VetxOutput:  vetx,
	})
	var out bytes.Buffer
	if code := RunVet(cfg, All(), &out); code != 2 {
		t.Fatalf("RunVet = %d, want 2; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "context.Background() in request-path package dabench/internal/jobs") ||
		!strings.Contains(out.String(), "[noctxbg]") {
		t.Errorf("diagnostic missing or malformed:\n%s", out.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

// TestRunVetVetxOnly pins the dependency-pass contract: exit 0, vetx
// file written, sources never parsed (GoFiles may even be absent).
func TestRunVetVetxOnly(t *testing.T) {
	vetx := filepath.Join(t.TempDir(), "vet.out")
	cfg := writeVetCfg(t, VetConfig{
		ImportPath: "dabench/internal/whatever",
		GoFiles:    []string{"/nonexistent/nope.go"},
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	var out bytes.Buffer
	if code := RunVet(cfg, All(), &out); code != 0 {
		t.Fatalf("RunVet(VetxOnly) = %d, want 0; output:\n%s", code, out.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

// TestManifestMatchesTree regenerates every real (slash-qualified)
// manifest entry from the tree and holds the committed file to it —
// the committed manifest cannot drift from the code it pins. Fixture
// entries ("statsorder.*") live under testdata and are exercised by
// the statsorder fixture test instead.
func TestManifestMatchesTree(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating the manifest shells out to go list over the module")
	}
	manifest, err := loadManifest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DumpOrder([]string{"dabench/..."}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range manifest.Types {
		if !strings.Contains(key, "/") {
			continue
		}
		if fields, ok := got[key]; !ok {
			t.Errorf("manifest entry %s: type not found in tree", key)
		} else if !reflect.DeepEqual(fields, want) {
			t.Errorf("manifest entry %s is stale:\n  tree:     %v\n  manifest: %v\nregenerate with `dalint -dumporder ./...`", key, fields, want)
		}
	}
}
