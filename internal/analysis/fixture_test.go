package analysis

// fixture_test.go is the suite's analysistest: each analyzer has a
// golden package under testdata/src/<path> whose files carry
// `// want "regexp"` annotations on the lines that must be reported
// (and //dalint:ignore suppressions on the lines that must not).
// Fixtures for path-gated analyzers mirror the real import paths
// (testdata/src/dabench/internal/store, ...) so the gating logic is
// exercised exactly as in production; stub packages under the same
// tree stand in for the real dependencies.
//
// Loading works like the production drivers: fixture packages are
// type-checked from source, with standard-library imports satisfied
// by gc export data from one cached `go list -export` call — no
// third-party loader involved.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// stdImports are the standard-library packages fixture files may
// import; their export data (plus transitive deps) is resolved once.
var stdImports = []string{
	"context", "sync", "sync/atomic", "os", "path/filepath",
	"net/http", "strings", "errors", "fmt", "time", "io",
}

var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

func stdExportData(t *testing.T) map[string]string {
	t.Helper()
	stdOnce.Do(func() {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Standard"}, stdImports...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			stdErr = fmt.Errorf("go list: %v\n%s", err, stderr.String())
			return
		}
		stdExports = map[string]string{}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdErr = err
				return
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	if stdErr != nil {
		t.Fatalf("loading std export data: %v", stdErr)
	}
	return stdExports
}

// fixtureLoader type-checks testdata packages from source,
// recursively, delegating std imports to export data.
type fixtureLoader struct {
	t    *testing.T
	fset *token.FileSet
	root string // testdata/src
	std  types.Importer
	pkgs map[string]*fixturePkg
}

type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newFixtureLoader(t *testing.T) *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		t:    t,
		fset: fset,
		root: filepath.Join("testdata", "src"),
		std:  newExportImporter(fset, nil, stdExportData(t)),
		pkgs: map[string]*fixturePkg{},
	}
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); isDir(dir) {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return l.std.Import(path)
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}
	pkg, info, err := Typecheck(l.fset, files, path, l)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %s: %v", path, err)
	}
	fp := &fixturePkg{path: path, files: files, pkg: pkg, info: info}
	l.pkgs[path] = fp
	return fp, nil
}

// wantRe extracts `// want "regexp"` annotations (double- or
// back-quoted).
var wantRe = regexp.MustCompile("// want (?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// runFixture checks analyzer a over the fixture package at path and
// asserts its diagnostics match the package's want annotations
// exactly: every annotated line must be reported with a matching
// message, and no unannotated line may be reported.
func runFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	l := newFixtureLoader(t)
	fp, err := l.load(path)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckPackage(l.fset, fp.files, fp.path, fp.pkg, fp.info, []*Analyzer{a})

	// Collect wants: file -> line -> regexp (unmatched until claimed).
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string]map[int][]*want{}
	for _, f := range fp.files {
		filename := l.fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				expr := m[1]
				if expr == "" {
					expr = m[2]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", filename, expr, err)
				}
				line := l.fset.Position(c.Pos()).Line
				if wants[filename] == nil {
					wants[filename] = map[int][]*want{}
				}
				wants[filename][line] = append(wants[filename][line], &want{re: re})
			}
		}
	}

	for _, d := range diags {
		claimed := false
		for _, w := range wants[d.Position.Filename][d.Position.Line] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Position.Filename, d.Position.Line, d.Message)
		}
	}
	for filename, byLine := range wants {
		for line, ws := range byLine {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected a diagnostic matching %q, got none", filename, line, w.re)
				}
			}
		}
	}
}

func TestAddrGateFixture(t *testing.T)   { runFixture(t, AddrGate, "dabench/internal/store") }
func TestAddrGateClusterFixture(t *testing.T) {
	runFixture(t, AddrGate, "dabench/internal/cluster")
}
func TestAtomicPtrFixture(t *testing.T)  { runFixture(t, AtomicPtr, "atomicptr") }
func TestLockHeldIOFixture(t *testing.T) { runFixture(t, LockHeldIO, "dabench/internal/telemetry") }
func TestMemoFaultFixture(t *testing.T)  { runFixture(t, MemoFault, "memofault") }
func TestNoCtxBgFixture(t *testing.T)    { runFixture(t, NoCtxBg, "dabench/internal/jobs") }
func TestStatsOrderFixture(t *testing.T) { runFixture(t, StatsOrder, "statsorder") }

// TestNoCtxBgUngatedPackage pins the gate itself: the same violating
// shape outside a request-path package reports nothing.
func TestNoCtxBgUngatedPackage(t *testing.T) { runFixture(t, NoCtxBg, "ungated") }
