package analysis

import (
	"go/ast"
	"go/types"
)

// lockHeldIOPkgs are the packages whose mutexes guard hot shared
// state: the store's index, the fabric's peer views, the telemetry
// registry. Every scrape, every request and every gossip round takes
// these locks, so an HTTP round-trip or a blob-file syscall under one
// turns a slow disk or a dead peer into a fleet-wide stall. The
// store's own discipline (evict under the lock, unlink after
// releasing it; snapshot under the lock, fsync outside) is the
// pattern this analyzer enforces.
var lockHeldIOPkgs = []string{
	"dabench/internal/store",
	"dabench/internal/cluster",
	"dabench/internal/telemetry",
}

// LockHeldIO forbids HTTP round-trips and blob-file I/O while a
// sync.Mutex or sync.RWMutex is held in the store, cluster, and
// telemetry packages.
//
// The tracking is lexical and intraprocedural: a statement-ordered
// walk marks a lock held from its Lock()/RLock() call until a textual
// Unlock on the same receiver expression, with `defer Unlock` holding
// it to function end. Branch-local unlocks that fall through are
// treated conservatively (still held) — restructure or justify with a
// //dalint:ignore. Function literals are not entered: a closure built
// under a lock usually runs after it is released, and flagging its
// body would make every goroutine launch a false positive.
var LockHeldIO = &Analyzer{
	Name: "lockheldio",
	Doc: "no HTTP round-trips or blob file I/O while holding a " +
		"sync.Mutex/RWMutex in store, cluster, or telemetry: these " +
		"locks sit on every request path, so I/O under them turns a " +
		"slow disk or dead peer into a global stall",
	Run: runLockHeldIO,
}

// osIOFuncs are the package-level os functions that hit the disk the
// way the store's blob paths do.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "MkdirAll": true, "Mkdir": true, "ReadDir": true,
	"Stat": true, "Lstat": true,
}

// httpFuncs are net/http's package-level round-trip helpers.
var httpFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

// httpClientMethods are the round-trip methods of *http.Client.
var httpClientMethods = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

func runLockHeldIO(pass *Pass) {
	gated := false
	for _, p := range lockHeldIOPkgs {
		if pathMatches(pass.PkgPath, p) {
			gated = true
			break
		}
	}
	if !gated {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.walkStmts(fd.Body.List, map[string]bool{})
		}
	}
}

type lockWalker struct {
	pass *Pass
}

// walkStmts processes one statement list in order, mutating held (a
// set of lock receiver expressions, rendered as source text) as
// Lock/Unlock calls appear. Nested blocks see a copy: a branch's
// lock-state changes are local to it, which is exact for the
// dominant patterns (lock; defer unlock) and (lock; if err { unlock;
// return }) and conservative for everything else.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if recv, op := w.lockOp(st.X); recv != "" {
			if op == "Lock" || op == "RLock" {
				held[recv] = true
			} else {
				delete(held, recv)
			}
			return
		}
		w.checkExpr(st.X, held)
	case *ast.DeferStmt:
		if recv, op := w.lockOp(st.Call); recv != "" && (op == "Unlock" || op == "RUnlock") {
			// Deferred unlock: held until return; nothing to do — the
			// lock stays in held for the rest of the walk.
			return
		}
		w.checkExpr(st.Call, held)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.checkExpr(rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.checkExpr(r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.checkExpr(st.Cond, held)
		w.walkStmts(st.Body.List, copyHeld(held))
		if st.Else != nil {
			w.walkStmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond, held)
		}
		w.walkStmts(st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.checkExpr(st.X, held)
		w.walkStmts(st.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		w.walkStmts(st.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			w.checkExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.GoStmt:
		// The goroutine runs concurrently, not under this lock.
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	case *ast.SendStmt:
		w.checkExpr(st.Value, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// lockOp recognizes <expr>.Lock/RLock/Unlock/RUnlock() on a
// sync.Mutex or sync.RWMutex receiver, returning the receiver
// expression's source text and the operation name.
func (w *lockWalker) lockOp(e ast.Expr) (recv, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || funcPkgPath(fn) != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name()
	}
	return "", ""
}

// checkExpr flags forbidden I/O calls inside e while any lock is
// held. Function literals are not entered (see the analyzer doc).
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(w.pass.Info, call)
		if fn == nil {
			return true
		}
		if kind := forbiddenIO(fn); kind != "" {
			lock := ""
			for k := range held {
				lock = k
				break
			}
			w.pass.Reportf(call.Pos(),
				"%s while holding %s: move the %s outside the critical section (collect under the lock, act after unlocking)",
				kind, lock, kindNoun(kind))
		}
		return true
	})
}

// forbiddenIO classifies fn as "file I/O", "HTTP round-trip", or ""
// when allowed.
func forbiddenIO(fn *types.Func) string {
	pkg := funcPkgPath(fn)
	switch {
	case pkg == "os" && osIOFuncs[fn.Name()]:
		return "file I/O (os." + fn.Name() + ")"
	case pkg == "net/http" && fn.Signature().Recv() == nil && httpFuncs[fn.Name()]:
		return "HTTP round-trip (http." + fn.Name() + ")"
	case pkg == "net/http" && fn.Signature().Recv() != nil && httpClientMethods[fn.Name()]:
		if named, ok := derefNamed(fn.Signature().Recv().Type()); ok && named.Obj().Name() == "Client" {
			return "HTTP round-trip (http.Client." + fn.Name() + ")"
		}
	}
	return ""
}

func kindNoun(kind string) string {
	if kind[0] == 'f' {
		return "syscall"
	}
	return "request"
}

// derefNamed unwraps pointers to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}
