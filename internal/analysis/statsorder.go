package analysis

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"go/ast"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// statsManifestJSON is the committed field-order manifest: for every
// struct rendered onto a stable wire surface (/v1/stats, /healthz,
// gossip), the exact JSON field sequence the fleet's CI greps and
// dashboards were built against. The analyzer holds code and manifest
// to exact equality, so any reorder, rename, insertion, or removal
// fails vet — and the only way to add a field is to append it to both
// the struct and this file, which makes the manifest's git diff the
// append-only audit trail reviewers check.
//
//go:embed statsorder_manifest.json
var statsManifestJSON []byte

// StatsOrder pins the JSON field order of wire-stable structs to the
// committed manifest (statsorder_manifest.json, embedded at build
// time). PR 6 grew /v1/stats carefully "preserving existing CI
// greps"; this analyzer is that sentence as a machine check.
var StatsOrder = &Analyzer{
	Name: "statsorder",
	Doc: "structs rendered into /v1/stats, /healthz and gossip may " +
		"only gain fields at the end: their JSON field order must " +
		"exactly match the committed statsorder_manifest.json, whose " +
		"append-only diff is the review surface",
	Run: runStatsOrder,
}

// statsManifest is the decoded manifest: "pkgpath.TypeName" -> ordered
// wire field names.
type statsManifest struct {
	Comment string              `json:"comment,omitempty"`
	Types   map[string][]string `json:"types"`
}

var (
	manifestOnce   sync.Once
	manifestParsed statsManifest
	manifestErr    error
)

func loadManifest() (statsManifest, error) {
	manifestOnce.Do(func() {
		manifestErr = json.Unmarshal(statsManifestJSON, &manifestParsed)
	})
	return manifestParsed, manifestErr
}

func runStatsOrder(pass *Pass) {
	manifest, err := loadManifest()
	if err != nil {
		pass.Reportf(pass.Files[0].Pos(), "statsorder manifest is unreadable: %v", err)
		return
	}
	// Keys relevant to this package, for the stale-entry check.
	var pkgKeys []string
	for key := range manifest.Types {
		pkgPath, _, ok := splitManifestKey(key)
		if ok && pathMatches(pass.PkgPath, pkgPath) {
			pkgKeys = append(pkgKeys, key)
		}
	}
	if len(pkgKeys) == 0 {
		return
	}
	sort.Strings(pkgKeys)
	seen := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, key := range pkgKeys {
					if _, typeName, _ := splitManifestKey(key); typeName == ts.Name.Name {
						seen[key] = true
						checkStructOrder(pass, ts, st, key, manifest.Types[key])
					}
				}
			}
		}
	}
	for _, key := range pkgKeys {
		if !seen[key] {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"statsorder manifest lists %s but package %s declares no such struct: remove the stale entry or restore the type",
				key, pass.PkgPath)
		}
	}
}

// splitManifestKey splits "pkg/path.TypeName" at the final dot.
func splitManifestKey(key string) (pkgPath, typeName string, ok bool) {
	i := strings.LastIndex(key, ".")
	if i <= 0 || i == len(key)-1 {
		return "", "", false
	}
	return key[:i], key[i+1:], true
}

// wireField is one JSON-serialized field with its declaration
// position index for reporting.
type wireField struct {
	name string
	pos  ast.Node
}

// wireFields computes the JSON field sequence a struct marshals to,
// in declaration order: exported fields only, honoring json tags,
// skipping "-". An embedded field contributes its type name prefixed
// with "*" — its own fields are pinned by its own manifest entry.
func wireFields(st *ast.StructType) []wireField {
	var out []wireField
	for _, f := range st.Fields.List {
		tagName := ""
		if f.Tag != nil {
			tag := reflect.StructTag(strings.Trim(f.Tag.Value, "`"))
			tagName, _, _ = strings.Cut(tag.Get("json"), ",")
		}
		if len(f.Names) == 0 { // embedded
			name := embeddedName(f.Type)
			if tagName != "" {
				name = tagName
			}
			if name != "-" {
				out = append(out, wireField{name: "*" + name, pos: f.Type})
			}
			continue
		}
		for _, n := range f.Names {
			if !n.IsExported() {
				continue
			}
			name := tagName
			if name == "" {
				name = n.Name
			}
			if name == "-" {
				continue
			}
			out = append(out, wireField{name: name, pos: n})
		}
	}
	return out
}

func embeddedName(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.IndexExpr:
		return embeddedName(t.X)
	}
	return fmt.Sprintf("%T", e)
}

func checkStructOrder(pass *Pass, ts *ast.TypeSpec, st *ast.StructType, key string, want []string) {
	got := wireFields(st)
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i].name != want[i] {
			pass.Reportf(got[i].pos.Pos(),
				"%s wire field %d is %q but the manifest pins %q: field order is append-only (CI greps and dashboards parse it) — new fields go at the end, with a matching append to statsorder_manifest.json",
				key, i, got[i].name, want[i])
			return
		}
	}
	switch {
	case len(got) < len(want):
		pass.Reportf(ts.Name.Pos(),
			"%s lost wire field %q (manifest pins %d fields, struct has %d): removing or hiding a stats field breaks consumers that parse by position",
			key, want[len(got)], len(want), len(got))
	case len(got) > len(want):
		pass.Reportf(got[len(want)].pos.Pos(),
			"%s gained wire field %q not yet in the manifest: append it to statsorder_manifest.json in this change so the manifest diff records the append",
			key, got[len(want)].name)
	}
}
