package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// loader.go is the standalone driver: `dalint ./...` without go vet.
// It shells out to `go list -export -deps -test -json` once, so every
// dependency's export data comes from the build cache, then
// type-checks each target package from source and runs the suite.
// CI's lint job goes through `go vet -vettool` (unitchecker.go)
// instead — this path is for developers and for the -dumporder
// manifest helper.

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
}

// A CheckedPackage is one parsed, type-checked target package ready
// for analysis.
type CheckedPackage struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string // as listed, variant decoration included
	Pkg     *types.Package
	Info    *types.Info
}

// LoadPackages parses and type-checks the packages matching patterns
// (go list syntax), including test variants, using dependency export
// data from the build cache.
func LoadPackages(patterns []string) ([]*CheckedPackage, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	var out []*CheckedPackage
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || p.Name == "main" && p.ForTest != "" {
			// Test-binary main stubs ("pkg.test") carry no project code.
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("dalint: %s uses cgo, which the source loader cannot check", p.ImportPath)
		}
		cp, err := loadListedPackage(p, exports)
		if err != nil {
			return nil, err
		}
		if cp != nil {
			out = append(out, cp)
		}
	}
	return out, nil
}

// RunPatterns lints the packages matching patterns with the given
// analyzers, returning all surviving diagnostics. Diagnostics are
// deduplicated across the plain and test-variant builds of the same
// package.
func RunPatterns(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loaded, err := LoadPackages(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	seen := map[string]bool{}
	for _, cp := range loaded {
		for _, d := range CheckPackage(cp.Fset, cp.Files, cp.PkgPath, cp.Pkg, cp.Info, analyzers) {
			key := d.String()
			if !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		}
	}
	return diags, nil
}

func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("dalint: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("dalint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// loadListedPackage parses and type-checks one target package using
// dependency export data.
func loadListedPackage(p *listPackage, exports map[string]string) (*CheckedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("dalint: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	imp := newExportImporter(fset, p.ImportMap, exports)
	pkg, info, err := Typecheck(fset, files, CanonicalPkgPath(p.ImportPath), imp)
	if err != nil {
		return nil, fmt.Errorf("dalint: typechecking %s: %v", p.ImportPath, err)
	}
	return &CheckedPackage{Fset: fset, Files: files, PkgPath: p.ImportPath, Pkg: pkg, Info: info}, nil
}

// DumpOrder computes the current wire field order of every manifest
// key (or, with keys given, exactly those "pkgpath.Type" keys) across
// the packages matching patterns — the helper that regenerates
// statsorder_manifest.json entries when a field is legitimately
// appended.
func DumpOrder(patterns, keys []string) (map[string][]string, error) {
	want := map[string]bool{}
	if len(keys) == 0 {
		manifest, err := loadManifest()
		if err != nil {
			return nil, err
		}
		for k := range manifest.Types {
			want[k] = true
		}
	} else {
		for _, k := range keys {
			want[k] = true
		}
	}
	loaded, err := LoadPackages(patterns)
	if err != nil {
		return nil, err
	}
	out := map[string][]string{}
	for _, cp := range loaded {
		canon := CanonicalPkgPath(cp.PkgPath)
		for _, f := range cp.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					key := canon + "." + ts.Name.Name
					if !want[key] {
						continue
					}
					var names []string
					for _, wf := range wireFields(st) {
						names = append(names, wf.name)
					}
					out[key] = names
				}
			}
		}
	}
	return out, nil
}

// Typecheck runs go/types over parsed files with the given importer,
// returning the package and a fully populated Info. Shared by the
// loader, the vettool driver, and the test fixture loader.
func Typecheck(fset *token.FileSet, files []*ast.File, path string, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newExportImporter builds an importer that resolves source import
// paths through importMap (test variants, vendoring) and reads gc
// export data files from exports.
func newExportImporter(fset *token.FileSet, importMap map[string]string, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.(types.ImporterFrom).ImportFrom(path, "", 0)
	})
}
