package analysis

import (
	"go/ast"
)

// MemoFault enforces PR 6's cache-poisoning rule: a fault injector's
// Fire hook must never run inside a function literal passed to
// memo.Cache.Do. The memo cell caches errors as final outcomes, so an
// injected, *transient* error fired inside the memoized function
// poisons the cell — every later caller of that key inherits a fault
// that was supposed to heal. The production seam fires the hook
// before Do (platform.fireCompileFault precedes c.compile.Do); this
// analyzer keeps it there.
//
// The check is lexical by design: it flags Fire calls written
// directly inside a Do closure (however deeply nested in sub-literals
// executed synchronously by it). A Fire hidden behind a same-package
// helper called from the closure is not traced — reviewers own that
// residue, and the helper pattern is rare enough to read.
var MemoFault = &Analyzer{
	Name: "memofault",
	Doc: "fault hooks (faults.Injector.Fire) must not fire inside a " +
		"function literal passed to memo.Cache.Do: the cell caches " +
		"errors, so an injected transient fault would poison the key " +
		"for every later caller (fire before Do instead)",
	Run: runMemoFault,
}

const (
	memoPkg   = "dabench/internal/memo"
	faultsPkg = "dabench/internal/faults"
)

func runMemoFault(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isCallTo(pass.Info, call, memoPkg, "Do") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					reportFiresIn(pass, lit)
				}
			}
			return true
		})
	}
}

// reportFiresIn flags every faults.*.Fire call lexically inside lit.
func reportFiresIn(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCallTo(pass.Info, call, faultsPkg, "Fire") {
			pass.Reportf(call.Pos(),
				"fault hook fires inside a memo.Cache.Do closure: an injected error would be cached and poison the cell; fire the hook before Do")
		}
		return true
	})
}
