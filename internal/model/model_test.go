package model

import (
	"math"
	"testing"
	"testing/quick"

	"dabench/internal/precision"
)

func TestGPT2SmallParamCount(t *testing.T) {
	// GPT-2 small is the canonical 124M-parameter model.
	p := GPT2Small().Params()
	if p < 120e6 || p > 130e6 {
		t.Errorf("GPT-2 small params = %d, want ≈124M", p)
	}
}

func TestGPT2XLParamCount(t *testing.T) {
	p := GPT2XL().Params()
	if p < 1.4e9 || p > 1.7e9 {
		t.Errorf("GPT-2 XL params = %d, want ≈1.5B", p)
	}
}

func TestLLaMA7BParamCount(t *testing.T) {
	p := LLaMA2_7B().Params()
	if p < 6.5e9 || p > 7.0e9 {
		t.Errorf("LLaMA-2 7B params = %d, want ≈6.7B", p)
	}
}

func TestLLaMA70BParamCount(t *testing.T) {
	p := LLaMA2_70B().Params()
	if p < 65e9 || p > 72e9 {
		t.Errorf("LLaMA-2 70B params = %d, want ≈69B", p)
	}
}

func TestSwiGLUWidth(t *testing.T) {
	if got := swigluWidth(4096); got != 11008 {
		t.Errorf("swigluWidth(4096) = %d, want 11008", got)
	}
}

func TestValidate(t *testing.T) {
	good := GPT2Small()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		func() Config { c := good; c.HiddenSize = 0; return c }(),
		func() Config { c := good; c.NumLayers = -1; return c }(),
		func() Config { c := good; c.NumHeads = 5; return c }(), // 768 % 5 != 0
		func() Config { c := good; c.KVHeads = 7; return c }(),  // 12 % 7 != 0
		func() Config { c := good; c.FFNHidden = 0; return c }(),
		func() Config { c := good; c.VocabSize = 0; return c }(),
		func() Config { c := good; c.MaxSeqLen = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	for _, c := range Presets() {
		if err := c.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", c.Name, err)
		}
	}
}

func TestWithLayers(t *testing.T) {
	c := GPT2Small().WithLayers(36)
	if c.NumLayers != 36 {
		t.Fatalf("layers = %d", c.NumLayers)
	}
	if c.Name != "gpt2-small-L36" {
		t.Errorf("name = %q", c.Name)
	}
	// Repeated application must not stack suffixes.
	c2 := c.WithLayers(48)
	if c2.Name != "gpt2-small-L48" {
		t.Errorf("stacked name = %q", c2.Name)
	}
	// Params scale approximately linearly in layers for fixed width.
	p12 := float64(GPT2Small().Params())
	p24 := float64(GPT2Small().WithLayers(24).Params())
	layer := float64(GPT2Small().LayerParams())
	if math.Abs((p24-p12)-12*layer) > 1 {
		t.Errorf("params not linear in layers: delta=%v want %v", p24-p12, 12*layer)
	}
}

func TestWithHidden(t *testing.T) {
	c := GPT2Small().WithHidden(1024)
	if c.HiddenSize != 1024 {
		t.Fatalf("hidden = %d", c.HiddenSize)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("WithHidden produced invalid config: %v", err)
	}
	if c.FFNHidden != 4096 {
		t.Errorf("FFN = %d, want 4096", c.FFNHidden)
	}
	l := LLaMA2_7B().WithHidden(8192)
	if err := l.Validate(); err != nil {
		t.Fatalf("LLaMA WithHidden invalid: %v", err)
	}
	if l.FFNHidden != swigluWidth(8192) {
		t.Errorf("LLaMA FFN = %d, want %d", l.FFNHidden, swigluWidth(8192))
	}
}

func TestWithHiddenAwkwardWidths(t *testing.T) {
	// The paper sweeps HS 480..1600 on the RDU; all must validate.
	for _, h := range []int{480, 768, 1024, 1280, 1600, 3072, 4096, 5120, 6656, 8192} {
		c := GPT2Small().WithHidden(h)
		if err := c.Validate(); err != nil {
			t.Errorf("WithHidden(%d): %v", h, err)
		}
	}
}

func TestGQAShrinksKV(t *testing.T) {
	mha := LLaMA2Config("x", 8192, 1, 64, 64)
	gqa := LLaMA2Config("x", 8192, 1, 64, 8)
	if gqa.AttentionParams() >= mha.AttentionParams() {
		t.Errorf("GQA params %d should be < MHA params %d",
			gqa.AttentionParams(), mha.AttentionParams())
	}
}

func TestTiedHeadHasNoExtraParams(t *testing.T) {
	tied := GPT2Small()
	untied := tied
	untied.TiedEmbeddings = false
	diff := untied.Params() - tied.Params()
	want := int64(tied.VocabSize) * int64(tied.HiddenSize)
	if diff != want {
		t.Errorf("untied-tied = %d, want %d", diff, want)
	}
}

func TestTrainFLOPsMatches6P(t *testing.T) {
	// For wide-short models the 6·P·token approximation should be close
	// to the operator-level count (attention quadratic term is small).
	c := LLaMA2_7B()
	seq := 512
	perTok := float64(c.TrainFLOPsPerToken(seq))
	approx := 6 * float64(c.Params())
	ratio := perTok / approx
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("train FLOPs/token = %.3g, 6P = %.3g, ratio %.2f out of band", perTok, approx, ratio)
	}
}

func TestTrainFLOPsScalesWithBatch(t *testing.T) {
	c := GPT2Small()
	f1 := float64(c.TrainFLOPs(1, 1024))
	f8 := float64(c.TrainFLOPs(8, 1024))
	if math.Abs(f8-8*f1) > 1e-6*f8 {
		t.Errorf("FLOPs not linear in batch: %v vs %v", f8, 8*f1)
	}
}

func TestTrainingMemoryBreakdown(t *testing.T) {
	c := GPT2Small()
	m := c.TrainingMemory(8, 1024, precision.Mixed)
	if m.Weights <= 0 || m.Gradients <= 0 || m.Optimizer <= 0 || m.Activations <= 0 {
		t.Fatalf("non-positive component: %+v", m)
	}
	// Mixed keeps a 4-byte master copy: optimizer = 12 bytes/param.
	wantOpt := 12 * float64(c.Params())
	if math.Abs(float64(m.Optimizer)-wantOpt) > 1 {
		t.Errorf("optimizer bytes = %v, want %v", m.Optimizer, wantOpt)
	}
	if m.Total() != m.Weights+m.Gradients+m.Optimizer+m.Activations {
		t.Error("Total() does not sum components")
	}
	// FP32 training needs more weight+grad memory than mixed.
	full := c.TrainingMemory(8, 1024, precision.FP32)
	if full.Weights <= m.Weights {
		t.Error("FP32 weights should exceed 16-bit weights")
	}
}

func TestArithmeticIntensityGrowsWithBatch(t *testing.T) {
	// Eq.5: larger batch amortizes the weight traffic term.
	c := GPT2Small()
	a1 := c.ArithmeticIntensity(1, 1024, precision.FP16)
	a8 := c.ArithmeticIntensity(8, 1024, precision.FP16)
	if a8 <= a1 {
		t.Errorf("AI should grow with batch: B1=%v B8=%v", a1, a8)
	}
}

func TestArithmeticIntensityBand(t *testing.T) {
	// Eq.5 with stored-activation traffic yields AI in the hundreds for
	// GPT-2 sweeps; the per-platform rooflines rescale this with their
	// calibrated traffic factors (see the simulators' calib.go files).
	c := GPT2Small().WithLayers(24)
	ai := c.ArithmeticIntensity(4, 1024, precision.FP16)
	if ai < 100 || ai > 2000 {
		t.Errorf("AI = %v, want O(100-1000)", ai)
	}
}

func TestByName(t *testing.T) {
	c, ok := ByName("llama2-7b")
	if !ok || c.HiddenSize != 4096 {
		t.Errorf("ByName(llama2-7b) = %+v, %v", c, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

func TestDecoderBlock(t *testing.T) {
	for _, h := range []int{256, 480, 768, 1600, 4096} {
		b := DecoderBlock(GPT2, h)
		if err := b.Validate(); err != nil {
			t.Errorf("GPT2 block h=%d: %v", h, err)
		}
		if b.NumLayers != 1 {
			t.Errorf("block layers = %d", b.NumLayers)
		}
		lb := DecoderBlock(LLaMA2, h)
		if err := lb.Validate(); err != nil {
			t.Errorf("LLaMA block h=%d: %v", h, err)
		}
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"gpt2-small":         "gpt2-small",
		"gpt2-small-L36":     "gpt2-small",
		"gpt2-small-H1024":   "gpt2-small",
		"weird-L":            "weird-L",
		"trailing-Lx":        "trailing-Lx",
		"gpt2-small-L36-H64": "gpt2-small-L36",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: parameter count is strictly monotone in layer count.
func TestParamsMonotoneInLayers(t *testing.T) {
	f := func(n uint8) bool {
		l := int(n%64) + 1
		a := GPT2Small().WithLayers(l).Params()
		b := GPT2Small().WithLayers(l + 1).Params()
		return b > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: training memory total is monotone in batch size.
func TestMemoryMonotoneInBatch(t *testing.T) {
	f := func(n uint8) bool {
		b := int(n%128) + 1
		m1 := GPT2Small().TrainingMemory(b, 1024, precision.FP16).Total()
		m2 := GPT2Small().TrainingMemory(b+1, 1024, precision.FP16).Total()
		return m2 > m1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
