// Package model describes decoder-only transformer language models at
// the level of detail the DABench-LLM framework needs: exact parameter
// counts, per-operator FLOP counts, and training memory footprints.
//
// The paper bases all experiments on two canonical families — GPT-2
// (learned absolute positions, GELU, LayerNorm, tied embeddings) and
// LLaMA-2 (RoPE, SwiGLU, RMSNorm, untied head, optional grouped-query
// attention) — varied along the hidden-size and layer-count axes to probe
// the compute/memory spectrum.
package model

import (
	"fmt"

	"dabench/internal/precision"
	"dabench/internal/units"
)

// Family distinguishes the two architecture templates used in the paper.
type Family int

// Supported architecture families.
const (
	GPT2 Family = iota
	LLaMA2
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case GPT2:
		return "GPT-2"
	case LLaMA2:
		return "LLaMA-2"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Norm identifies the normalization operator.
type Norm int

// Normalization kinds.
const (
	LayerNorm Norm = iota
	RMSNorm
)

// Activation identifies the feed-forward nonlinearity.
type Activation int

// Activation kinds.
const (
	GELU Activation = iota
	SwiGLU
)

// Config is a complete architectural description of a decoder-only
// transformer. All sizes are in elements, not bytes.
type Config struct {
	Name       string
	Family     Family
	HiddenSize int // model width H
	NumLayers  int // decoder block count L
	NumHeads   int // attention heads
	KVHeads    int // key/value heads (< NumHeads means GQA)
	FFNHidden  int // feed-forward inner width
	VocabSize  int
	MaxSeqLen  int

	TiedEmbeddings bool // LM head shares the input embedding matrix
	LearnedPos     bool // learned absolute positions (GPT-2) vs RoPE
	Norm           Norm
	Activation     Activation
}

// Validate reports a descriptive error for an inconsistent config.
func (c Config) Validate() error {
	switch {
	case c.HiddenSize <= 0:
		return fmt.Errorf("model %q: hidden size %d must be positive", c.Name, c.HiddenSize)
	case c.NumLayers <= 0:
		return fmt.Errorf("model %q: layer count %d must be positive", c.Name, c.NumLayers)
	case c.NumHeads <= 0:
		return fmt.Errorf("model %q: head count %d must be positive", c.Name, c.NumHeads)
	case c.HiddenSize%c.NumHeads != 0:
		return fmt.Errorf("model %q: hidden size %d not divisible by %d heads", c.Name, c.HiddenSize, c.NumHeads)
	case c.KVHeads <= 0 || c.NumHeads%c.KVHeads != 0:
		return fmt.Errorf("model %q: KV heads %d must divide %d heads", c.Name, c.KVHeads, c.NumHeads)
	case c.FFNHidden <= 0:
		return fmt.Errorf("model %q: FFN width %d must be positive", c.Name, c.FFNHidden)
	case c.VocabSize <= 0:
		return fmt.Errorf("model %q: vocab size %d must be positive", c.Name, c.VocabSize)
	case c.MaxSeqLen <= 0:
		return fmt.Errorf("model %q: max sequence length %d must be positive", c.Name, c.MaxSeqLen)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (c Config) HeadDim() int { return c.HiddenSize / c.NumHeads }

// WithLayers returns a copy of c with the layer count replaced — the
// primary sweep axis of the paper's Tier-1 experiments.
func (c Config) WithLayers(n int) Config {
	c.NumLayers = n
	c.Name = fmt.Sprintf("%s-L%d", baseName(c.Name), n)
	return c
}

// WithHidden returns a copy of c rescaled to hidden size h, preserving
// the family's head-dim and FFN conventions — the paper's second sweep
// axis.
func (c Config) WithHidden(h int) Config {
	headDim := c.HeadDim()
	if headDim <= 0 || h%headDim != 0 {
		headDim = 64
		for h%headDim != 0 && headDim > 1 {
			headDim /= 2
		}
	}
	c.HiddenSize = h
	c.NumHeads = h / headDim
	if c.KVHeads > c.NumHeads {
		c.KVHeads = c.NumHeads
	}
	if c.KVHeads == 0 || c.NumHeads%c.KVHeads != 0 {
		c.KVHeads = c.NumHeads
	}
	switch c.Family {
	case LLaMA2:
		c.FFNHidden = swigluWidth(h)
	default:
		c.FFNHidden = 4 * h
	}
	c.Name = fmt.Sprintf("%s-H%d", baseName(c.Name), h)
	return c
}

// baseName strips prior -L%d / -H%d suffixes so repeated With* calls do
// not pile up.
func baseName(s string) string {
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == '-' && i+1 < len(s) && (s[i+1] == 'L' || s[i+1] == 'H') {
			digits := s[i+2:]
			if len(digits) == 0 {
				return s
			}
			for _, r := range digits {
				if r < '0' || r > '9' {
					return s
				}
			}
			return s[:i]
		}
	}
	return s
}

// swigluWidth reproduces LLaMA's FFN sizing: 2/3 · 4H rounded up to a
// multiple of 256 (11008 at H=4096).
func swigluWidth(h int) int {
	w := 8 * h / 3
	const mult = 256
	return (w + mult - 1) / mult * mult
}

// --- Parameter accounting -------------------------------------------------

// EmbeddingParams counts input embedding (+ learned positions) weights.
func (c Config) EmbeddingParams() int64 {
	p := int64(c.VocabSize) * int64(c.HiddenSize)
	if c.LearnedPos {
		p += int64(c.MaxSeqLen) * int64(c.HiddenSize)
	}
	return p
}

// HeadParams counts the LM head projection (0 when tied).
func (c Config) HeadParams() int64 {
	if c.TiedEmbeddings {
		return 0
	}
	return int64(c.VocabSize) * int64(c.HiddenSize)
}

// AttentionParams counts one layer's attention weights (Q,K,V,O).
// With GQA the K and V projections shrink by NumHeads/KVHeads.
func (c Config) AttentionParams() int64 {
	h := int64(c.HiddenSize)
	kv := h * int64(c.KVHeads) / int64(c.NumHeads)
	params := h*h + 2*h*kv + h*h // Q + K,V + O
	if c.Family == GPT2 {
		params += 3*kv + h + h // biases on QKV and O (kv==h for MHA)
	}
	return params
}

// FFNParams counts one layer's feed-forward weights.
func (c Config) FFNParams() int64 {
	h, f := int64(c.HiddenSize), int64(c.FFNHidden)
	switch c.Activation {
	case SwiGLU:
		return 3 * h * f // gate, up, down
	default:
		p := 2 * h * f // fc1, fc2
		if c.Family == GPT2 {
			p += f + h // biases
		}
		return p
	}
}

// NormParams counts one norm operator's weights.
func (c Config) NormParams() int64 {
	if c.Norm == RMSNorm {
		return int64(c.HiddenSize)
	}
	return 2 * int64(c.HiddenSize) // scale + bias
}

// LayerParams counts one full decoder block.
func (c Config) LayerParams() int64 {
	return c.AttentionParams() + c.FFNParams() + 2*c.NormParams()
}

// Params counts all trainable parameters.
func (c Config) Params() int64 {
	return c.EmbeddingParams() + int64(c.NumLayers)*c.LayerParams() +
		c.NormParams() + c.HeadParams() // final norm + head
}

// --- FLOP accounting --------------------------------------------------------

// ForwardFLOPsPerToken estimates forward-pass FLOPs for one token at
// sequence length seq: 2 FLOPs per matmul parameter plus the
// sequence-quadratic attention term (2·S·H for scores and 2·S·H for the
// context product, per layer).
func (c Config) ForwardFLOPsPerToken(seq int) units.FLOPs {
	matmulParams := int64(c.NumLayers)*(c.AttentionParams()+c.FFNParams()) +
		c.EmbeddingHeadMatmulParams()
	attn := 4 * int64(c.NumLayers) * int64(seq) * int64(c.HiddenSize)
	return units.FLOPs(2*matmulParams + attn)
}

// EmbeddingHeadMatmulParams returns the matmul parameter count of the LM
// head (the input embedding is a lookup, not a matmul; tied or not, the
// output projection is a V×H matmul).
func (c Config) EmbeddingHeadMatmulParams() int64 {
	return int64(c.VocabSize) * int64(c.HiddenSize)
}

// TrainFLOPsPerToken applies the paper's 6×P convention (2× forward,
// 4× backward) via a 3× multiplier on the forward pass.
func (c Config) TrainFLOPsPerToken(seq int) units.FLOPs {
	return 3 * c.ForwardFLOPsPerToken(seq)
}

// TrainFLOPs returns total FLOPs for one optimizer step over batch
// shape (batch, seq).
func (c Config) TrainFLOPs(batch, seq int) units.FLOPs {
	return units.FLOPs(float64(batch*seq)) * c.TrainFLOPsPerToken(seq)
}

// --- Memory accounting ------------------------------------------------------

// MemoryBreakdown partitions a training step's footprint.
type MemoryBreakdown struct {
	Weights     units.Bytes
	Gradients   units.Bytes
	Optimizer   units.Bytes // Adam moments (+ FP32 master copy in mixed)
	Activations units.Bytes
}

// Total sums the breakdown.
func (m MemoryBreakdown) Total() units.Bytes {
	return m.Weights + m.Gradients + m.Optimizer + m.Activations
}

// WeightBytes is the storage for one copy of the parameters.
func (c Config) WeightBytes(f precision.Format) units.Bytes {
	return units.Bytes(float64(c.Params()) * f.BytesPerElement())
}

// ActivationBytesPerToken estimates the activations retained for the
// backward pass, per token, following the Megatron-LM estimate
// (Korthikanti et al.): roughly 17·H elements of pointwise state plus
// 2.5·heads·S elements of attention state per layer, plus the logits.
func (c Config) ActivationBytesPerToken(seq int, f precision.Format) units.Bytes {
	perLayer := 17*float64(c.HiddenSize) + 2.5*float64(c.NumHeads)*float64(seq)
	logits := float64(c.VocabSize)
	elems := float64(c.NumLayers)*perLayer + logits
	return units.Bytes(elems * f.BytesPerElement())
}

// TrainingMemory estimates the full footprint of one training step.
func (c Config) TrainingMemory(batch, seq int, f precision.Format) MemoryBreakdown {
	p := float64(c.Params())
	return MemoryBreakdown{
		Weights:   c.WeightBytes(f),
		Gradients: units.Bytes(p * f.BytesPerElement()),
		// Adam: two FP32 moments; mixed adds the FP32 master copy.
		Optimizer:   units.Bytes(p * (8 + f.MasterWeightBytes())),
		Activations: units.Bytes(float64(batch*seq)) * c.ActivationBytesPerToken(seq, f),
	}
}

// ArithmeticIntensity implements the paper's Eq. 5:
//
//	AI = 6·P·B·S / (4·P + ActivationMemory)
//
// in FLOPs per byte, using 6·P FLOPs per token and 4-byte weight traffic.
func (c Config) ArithmeticIntensity(batch, seq int, f precision.Format) float64 {
	p := float64(c.Params())
	flops := 6 * p * float64(batch) * float64(seq)
	actBytes := float64(units.Bytes(float64(batch*seq)) * c.ActivationBytesPerToken(seq, f))
	denom := 4*p + actBytes
	return units.ArithmeticIntensity(units.FLOPs(flops), units.Bytes(denom))
}
