package model

// Preset configurations matching the models used in the paper's
// experiments. GPT "mini/tiny/small" follow the paper's hidden sizes
// (256/512/768); the larger GPT-2 variants follow the published GPT-2
// family; LLaMA-2 sizes follow the Meta release.

// GPT2Config builds a GPT-2-style config with the given width, depth
// and head count.
func GPT2Config(name string, hidden, layers, heads int) Config {
	return Config{
		Name:           name,
		Family:         GPT2,
		HiddenSize:     hidden,
		NumLayers:      layers,
		NumHeads:       heads,
		KVHeads:        heads,
		FFNHidden:      4 * hidden,
		VocabSize:      50257,
		MaxSeqLen:      1024,
		TiedEmbeddings: true,
		LearnedPos:     true,
		Norm:           LayerNorm,
		Activation:     GELU,
	}
}

// LLaMA2Config builds a LLaMA-2-style config.
func LLaMA2Config(name string, hidden, layers, heads, kvHeads int) Config {
	return Config{
		Name:           name,
		Family:         LLaMA2,
		HiddenSize:     hidden,
		NumLayers:      layers,
		NumHeads:       heads,
		KVHeads:        kvHeads,
		FFNHidden:      swigluWidth(hidden),
		VocabSize:      32000,
		MaxSeqLen:      4096,
		TiedEmbeddings: false,
		LearnedPos:     false,
		Norm:           RMSNorm,
		Activation:     SwiGLU,
	}
}

// GPTMini is the paper's "mini" model (hidden size 256).
func GPTMini() Config { return GPT2Config("gpt-mini", 256, 4, 4) }

// GPTTiny is the paper's "tiny" model (hidden size 512).
func GPTTiny() Config { return GPT2Config("gpt-tiny", 512, 6, 8) }

// GPT2Small is GPT-2 124M (hidden size 768, 12 layers) — the paper's
// basic intra-chip unit.
func GPT2Small() Config { return GPT2Config("gpt2-small", 768, 12, 12) }

// GPT2Medium is GPT-2 355M.
func GPT2Medium() Config { return GPT2Config("gpt2-medium", 1024, 24, 16) }

// GPT2Large is GPT-2 774M.
func GPT2Large() Config { return GPT2Config("gpt2-large", 1280, 36, 20) }

// GPT2XL is GPT-2 1.5B — the paper's GPU-reference "xlarge" workload.
func GPT2XL() Config { return GPT2Config("gpt2-xl", 1600, 48, 25) }

// LLaMA2_7B is the 7-billion-parameter LLaMA-2 used for the paper's
// RDU O1 and tensor-parallel experiments.
func LLaMA2_7B() Config { return LLaMA2Config("llama2-7b", 4096, 32, 32, 32) }

// LLaMA2_13B is LLaMA-2 13B.
func LLaMA2_13B() Config { return LLaMA2Config("llama2-13b", 5120, 40, 40, 40) }

// LLaMA2_70B is LLaMA-2 70B (grouped-query attention, 8 KV heads).
// The release uses an FFN multiplier of 1.3, giving a 28672-wide MLP
// rather than the default swiglu sizing.
func LLaMA2_70B() Config {
	c := LLaMA2Config("llama2-70b", 8192, 80, 64, 8)
	c.FFNHidden = 28672
	return c
}

// DecoderBlock returns a single-decoder-block model with the family's
// conventions at hidden size h — the paper's fundamental evaluation
// unit ("full-scale LLMs are impractical for single-chip analysis").
func DecoderBlock(f Family, h int) Config {
	heads := headsFor(h)
	switch f {
	case LLaMA2:
		return LLaMA2Config("llama2-block", h, 1, heads, heads)
	default:
		return GPT2Config("gpt2-block", h, 1, heads)
	}
}

// headsFor picks a head count giving the largest power-of-two head
// dimension ≤ 64 that divides h, so arbitrary sweep widths validate.
func headsFor(h int) int {
	dim := 64
	for dim > 1 && h%dim != 0 {
		dim /= 2
	}
	return h / dim
}

// Presets returns every named preset, for CLI listing and tests.
func Presets() []Config {
	return []Config{
		GPTMini(), GPTTiny(), GPT2Small(), GPT2Medium(), GPT2Large(), GPT2XL(),
		LLaMA2_7B(), LLaMA2_13B(), LLaMA2_70B(),
	}
}

// ByName finds a preset by name.
func ByName(name string) (Config, bool) {
	for _, c := range Presets() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}
