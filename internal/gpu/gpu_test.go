package gpu

import (
	"testing"

	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
)

func xl(tp, pp, dp int) platform.TrainSpec {
	return platform.TrainSpec{
		Model: model.GPT2XL(), Batch: 64, Seq: 1024, Precision: precision.BF16,
		Par: platform.Parallelism{TensorParallel: tp, PipelineParallel: pp, DataParallel: dp},
	}
}

func run(t *testing.T, s platform.TrainSpec) *platform.RunReport {
	t.Helper()
	sim := New()
	cr, err := sim.Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rr, err := sim.Run(cr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rr
}

// Table III GPU reference ordering: within a node, TP-heavy beats
// PP-heavy (155.3 > 145.2 > 135.8 > 120.4 samples/s for GPT-2 XL), and
// large-scale DP runs land slightly ahead per node.
func TestTableIIIOrdering(t *testing.T) {
	t8p1 := run(t, xl(8, 1, 1)).SamplesPerSec
	t4p2 := run(t, xl(4, 2, 1)).SamplesPerSec
	t2p4 := run(t, xl(2, 4, 1)).SamplesPerSec
	t1p8 := run(t, xl(1, 8, 1)).SamplesPerSec
	if !(t8p1 > t4p2 && t4p2 > t2p4 && t2p4 > t1p8) {
		t.Errorf("ordering violated: %v %v %v %v", t8p1, t4p2, t2p4, t1p8)
	}
	// Magnitudes in the paper's 120–165 samples/s band.
	if t8p1 < 130 || t8p1 > 185 {
		t.Errorf("T8P1D1 = %v samples/s, want ≈155", t8p1)
	}
	if t1p8 < 100 || t1p8 > 140 {
		t.Errorf("T1P8D1 = %v samples/s, want ≈120", t1p8)
	}
	// PP-heavy loses ≈20–25% to the pipeline bubble.
	if r := t1p8 / t8p1; r < 0.70 || r > 0.90 {
		t.Errorf("T1P8/T8P1 = %v, want ≈0.78", r)
	}
	// Scale-out runs slightly ahead per node (163.2 vs 155.3).
	big := run(t, xl(8, 8, 16)).SamplesPerSec
	if big <= t1p8 {
		t.Errorf("T8P8D16 = %v should beat PP-only single node %v", big, t1p8)
	}
}

func TestHBMCapacityGate(t *testing.T) {
	s := platform.TrainSpec{
		Model: model.LLaMA2_70B(), Batch: 8, Seq: 4096, Precision: precision.Mixed,
		Par: platform.Parallelism{TensorParallel: 1, PipelineParallel: 1},
	}
	if _, err := New().Compile(s); !platform.IsCompileFailure(err) {
		t.Errorf("70B on one GPU should fail: %v", err)
	}
	s.Par = platform.Parallelism{TensorParallel: 8, PipelineParallel: 4}
	if _, err := New().Compile(s); err != nil {
		t.Errorf("70B on 32 GPUs should fit: %v", err)
	}
}

func TestPrecisionAndForeignReport(t *testing.T) {
	fp32 := run(t, func() platform.TrainSpec { s := xl(8, 1, 1); s.Precision = precision.FP32; return s }())
	bf16 := run(t, xl(8, 1, 1))
	if fp32.SamplesPerSec >= bf16.SamplesPerSec {
		t.Error("FP32 should be slower than BF16")
	}
	if _, err := New().Run(&platform.CompileReport{Platform: "IPU"}); err == nil {
		t.Error("foreign report accepted")
	}
}
