// Package gpu provides the von-Neumann / BSP reference baseline used in
// the paper's Table III: an A100-class 8-GPU node running Megatron-style
// tensor, pipeline and data parallelism. It exists only as a comparison
// row — the paper explicitly avoids cross-platform ranking — so the
// model is a standard analytic Megatron cost model rather than a
// microarchitectural simulator.
package gpu

import (
	"fmt"
	"math"

	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/units"
)

// Hardware constants (A100-80GB SXM node).
const (
	// GPUsPerNode is the node width.
	GPUsPerNode = 8
	// Peak16 is the per-GPU BF16 tensor-core peak.
	Peak16 = 312e12
	// HBMBytes and HBMBW describe the per-GPU memory.
	HBMBytes = 80e9
	HBMBW    = 2.0e12
	// NVLinkBW is the intra-node all-reduce bandwidth per GPU.
	NVLinkBW = 600e9
	// IBBW is the cross-node InfiniBand bandwidth per GPU.
	IBBW = 25e9
)

// Calibration constants. Anchor: Table III's GPU reference rows for the
// GPT-2 XL workload (155.3 samples/s at T8P1D1 down to 120.4 at T1P8D1,
// with large-scale runs slightly ahead per node).
const (
	baseEff        = 0.62  // kernel efficiency of the BSP execution model
	tpPenaltySlope = 0.008 // per-rank all-reduce exposure within a node
	microbatches   = 16.0  // in-flight microbatches per pipeline
	dpBatchBoost   = 0.02  // large-batch kernel-efficiency gain per log2(DP)
	dpCommPenalty  = 0.004 // gradient all-reduce exposure per log2(DP)
)

func precFactor(f precision.Format) float64 {
	switch f {
	case precision.FP32:
		return 0.5
	case precision.Mixed:
		return 0.95
	default:
		return 1.0
	}
}

// Sim is the GPU-node reference model. The zero value is ready to use.
type Sim struct{}

// New returns a GPU baseline simulator.
func New() *Sim { return &Sim{} }

// Name implements platform.Platform.
func (*Sim) Name() string { return "GPU" }

// HardwareSpec implements platform.Platform.
func (*Sim) HardwareSpec() platform.Spec {
	return platform.Spec{
		Name:         "NVIDIA A100 node (reference)",
		Resources:    map[platform.Resource]float64{platform.ResSM: 108 * GPUsPerNode},
		Peak16:       Peak16,
		OnChipMemory: 40e6 * GPUsPerNode, // SM shared memory + L2, per node
		OnChipBW:     19e12,
		GlobalMemory: HBMBytes * GPUsPerNode,
		GlobalBW:     HBMBW,
	}
}

// Compile implements platform.Platform. The GPU baseline has no
// dataflow compiler; Compile validates the deployment and records the
// parallel decomposition.
func (s *Sim) Compile(spec platform.TrainSpec) (*platform.CompileReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tp, pp, dp := degrees(spec.Par)
	if tp*pp > GPUsPerNode && tp > 1 && tp*pp%GPUsPerNode != 0 {
		return nil, fmt.Errorf("gpu: TP×PP=%d must tile %d-GPU nodes", tp*pp, GPUsPerNode)
	}
	// Per-GPU memory: the model shard plus optimizer state must fit.
	p := float64(spec.Model.Params())
	perGPU := p * 18 / float64(tp*pp) // mixed-precision Megatron bytes/param
	if perGPU > HBMBytes {
		return nil, &platform.CompileError{
			Platform: s.Name(),
			Reason: fmt.Sprintf("model shard %s exceeds HBM %s at TP%d·PP%d",
				units.Bytes(perGPU), units.Bytes(float64(HBMBytes)), tp, pp),
		}
	}
	gpus := float64(tp * pp * dp)
	return &platform.CompileReport{
		Platform: s.Name(),
		Spec:     spec,
		Tasks: []platform.Task{{
			Name: fmt.Sprintf("T%dP%dD%d", tp, pp, dp), Kind: "decomposition",
			Units: map[platform.Resource]float64{platform.ResSM: 108 * gpus},
		}},
		Allocated: map[platform.Resource]float64{platform.ResSM: 108 * gpus},
		Capacity:  map[platform.Resource]float64{platform.ResSM: 108 * gpus},
		Memory: platform.MemoryUse{
			Capacity: units.Bytes(HBMBytes),
			Weights:  units.Bytes(perGPU),
		},
		Notes: []string{fmt.Sprintf("tp=%d pp=%d dp=%d gpus=%.0f", tp, pp, dp, gpus)},
	}, nil
}

func degrees(p platform.Parallelism) (tp, pp, dp int) {
	tp, pp, dp = p.TensorParallel, p.PipelineParallel, p.DataParallel
	if tp < 1 {
		tp = 1
	}
	if pp < 1 {
		pp = 1
	}
	if dp < 1 {
		dp = 1
	}
	return
}

// Run implements platform.Platform: the Megatron efficiency model.
// Reported throughput is per 8-GPU node, matching Table III's
// normalization.
func (s *Sim) Run(cr *platform.CompileReport) (*platform.RunReport, error) {
	if cr == nil || cr.Platform != s.Name() {
		return nil, fmt.Errorf("gpu: run requires a GPU compile report")
	}
	spec := cr.Spec
	tp, pp, dp := degrees(spec.Par)

	// Tensor parallelism exposes all-reduce latency per rank.
	tpEff := 1 / (1 + tpPenaltySlope*float64(tp-1))
	// Pipeline bubble: (pp-1)/(m+pp-1); data parallelism enlarges the
	// global batch, deepening the microbatch stream.
	m := microbatches * math.Max(1, float64(dp))
	ppEff := 1.0
	if pp > 1 {
		ppEff = 1 - float64(pp-1)/(m+float64(pp-1))
	}
	// Data parallelism: gradient all-reduce exposure, offset by the
	// kernel-efficiency gain of larger per-step batches.
	dpEff := (1 + dpBatchBoost*math.Log2(math.Max(1, float64(dp)))) /
		(1 + dpCommPenalty*math.Log2(math.Max(1, float64(dp))))

	eff := baseEff * tpEff * ppEff * dpEff * precFactor(spec.Precision)
	perGPU := Peak16 * eff
	nodeRate := perGPU * GPUsPerNode // Table III normalizes per node

	flopsPerSample := float64(spec.Model.TrainFLOPsPerToken(spec.Seq)) * float64(spec.Seq)
	samplesPerSec := nodeRate / flopsPerSample
	ai := flopsPerSample / (float64(spec.Model.Params()) * 6 / float64(spec.Batch) * 4)

	return &platform.RunReport{
		Compile:       cr,
		StepTime:      units.Seconds(float64(spec.Batch) / samplesPerSec),
		TokensPerSec:  samplesPerSec * float64(spec.Seq),
		SamplesPerSec: samplesPerSec,
		Achieved:      units.FLOPSRate(nodeRate),
		Efficiency:    eff,
		AI:            ai,
	}, nil
}
