package core

import (
	"reflect"
	"testing"

	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/rdu"
	"dabench/internal/sweep"
	"dabench/internal/wse"
)

// knobFake is a deterministic platform that fails to place chosen
// batches/precisions and otherwise reports throughput = batch (or a
// per-format table), so curve arithmetic is exactly checkable.
type knobFake struct {
	failBatch map[int]bool
	failPrec  map[precision.Format]bool
	precTPS   map[precision.Format]float64
}

func (f *knobFake) Name() string                { return "knob-fake" }
func (f *knobFake) HardwareSpec() platform.Spec { return platform.Spec{Name: "knob-fake"} }

func (f *knobFake) Compile(spec platform.TrainSpec) (*platform.CompileReport, error) {
	if f.failBatch[spec.Batch] || f.failPrec[spec.Precision] {
		return nil, &platform.CompileError{Platform: f.Name(), Reason: "does not fit"}
	}
	return &platform.CompileReport{Platform: f.Name(), Spec: spec}, nil
}

func (f *knobFake) Run(cr *platform.CompileReport) (*platform.RunReport, error) {
	tps := float64(cr.Spec.Batch)
	if v, ok := f.precTPS[cr.Spec.Precision]; ok {
		tps = v
	}
	return &platform.RunReport{Compile: cr, TokensPerSec: tps}, nil
}

// TestDeploymentKneeSurvivesFailedBatch reproduces the seed bug: when a
// batch point fails to compile, the knee must be read off the surviving
// curve points, not off a misaligned prefix of the batch list.
func TestDeploymentKneeSurvivesFailedBatch(t *testing.T) {
	fake := &knobFake{failBatch: map[int]bool{50: true}}
	rep, err := Deployment(t.Context(), fake,
		platform.TrainSpec{Model: model.GPT2Small(), Batch: 1, Seq: 1024, Precision: precision.FP16},
		[]int{50, 400, 800}, []precision.Format{precision.FP16})
	if err != nil {
		t.Fatal(err)
	}
	// Throughput == batch, so with B=50 failed the curve is {400, 800},
	// best = 800, and the knee (≥ 0.9·800) is 800. The misaligned seed
	// code walked batches[:2] = {50, 400} and reported 0.
	if len(rep.BatchCurve) != 2 {
		t.Fatalf("batch curve: %+v", rep.BatchCurve)
	}
	for _, pt := range rep.BatchCurve {
		if pt.Batch == 0 || pt.Batch == 50 {
			t.Errorf("curve point carries wrong batch: %+v", pt)
		}
	}
	if rep.KneeBatch != 800 {
		t.Errorf("knee batch = %d, want 800", rep.KneeBatch)
	}
	if rep.BestBatch != 800 {
		t.Errorf("best batch = %d, want 800", rep.BestBatch)
	}
}

// TestDeploymentPrecisionGainFirstFormatFails reproduces the second
// seed bug: worstPrec stayed 0 when formats[0] failed to compile,
// silently reporting PrecisionGain = 0.
func TestDeploymentPrecisionGainFirstFormatFails(t *testing.T) {
	fake := &knobFake{
		failPrec: map[precision.Format]bool{precision.FP32: true},
		precTPS:  map[precision.Format]float64{precision.FP16: 100, precision.BF16: 125},
	}
	rep, err := Deployment(t.Context(), fake,
		platform.TrainSpec{Model: model.GPT2Small(), Batch: 8, Seq: 1024, Precision: precision.FP16},
		[]int{8}, []precision.Format{precision.FP32, precision.FP16, precision.BF16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PrecisionCurve) != 2 {
		t.Fatalf("precision curve: %+v", rep.PrecisionCurve)
	}
	if rep.BestPrecision != precision.BF16 {
		t.Errorf("best precision = %v", rep.BestPrecision)
	}
	if rep.PrecisionGain < 0.24 || rep.PrecisionGain > 0.26 {
		t.Errorf("precision gain = %v, want 0.25 (125/100 - 1)", rep.PrecisionGain)
	}
}

// TestTier2ParallelMatchesSerial asserts that the sweep engine's
// parallel path is observation-identical to workers=1 for both Tier-2
// analyses on real simulators (run under -race in CI).
func TestTier2ParallelMatchesSerial(t *testing.T) {
	defer sweep.SetDefaultWorkers(0)

	base := platform.TrainSpec{
		Model: model.LLaMA2_70B(), Batch: 1, Seq: 4096, Precision: precision.BF16,
	}
	configs := []platform.Parallelism{
		{Mode: platform.ModeO1, TensorParallel: 1}, // placement failure point
		{Mode: platform.ModeO1, TensorParallel: 8},
	}
	labels := []string{"TP1", "TP8"}

	sweep.SetDefaultWorkers(1)
	serialScale, err := Scalability(t.Context(), rdu.New(), base, configs, labels)
	if err != nil {
		t.Fatal(err)
	}
	serialDeploy, err := Deployment(t.Context(), wse.New(), wseSpec(),
		[]int{50, 200, 800}, []precision.Format{precision.FP16, precision.CB16})
	if err != nil {
		t.Fatal(err)
	}

	sweep.SetDefaultWorkers(8)
	parScale, err := Scalability(t.Context(), rdu.New(), base, configs, labels)
	if err != nil {
		t.Fatal(err)
	}
	parDeploy, err := Deployment(t.Context(), wse.New(), wseSpec(),
		[]int{50, 200, 800}, []precision.Format{precision.FP16, precision.CB16})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serialScale, parScale) {
		t.Errorf("scalability diverged:\nserial:   %+v\nparallel: %+v", serialScale, parScale)
	}
	if !reflect.DeepEqual(serialDeploy, parDeploy) {
		t.Errorf("deployment diverged:\nserial:   %+v\nparallel: %+v", serialDeploy, parDeploy)
	}
	if !parScale[0].Failed {
		t.Error("TP1 placement failure not recorded")
	}
}

// TestScalabilityThroughCachedPlatform checks the memoizing wrapper is
// transparent to Tier-2: same points, and repeated sweeps hit the
// cache.
func TestScalabilityThroughCachedPlatform(t *testing.T) {
	base := platform.TrainSpec{
		Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
	}
	configs := []platform.Parallelism{
		{Mode: platform.ModeO1, TensorParallel: 2},
		{Mode: platform.ModeO1, TensorParallel: 4},
	}
	labels := []string{"TP2", "TP4"}

	plain, err := Scalability(t.Context(), rdu.New(), base, configs, labels)
	if err != nil {
		t.Fatal(err)
	}
	cached := platform.Cached(rdu.New())
	first, err := Scalability(t.Context(), cached, base, configs, labels)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Scalability(t.Context(), cached, base, configs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, first) || !reflect.DeepEqual(first, second) {
		t.Error("cached platform changed scalability results")
	}
	s := cached.CacheStats()
	if s.Misses != 2 || s.Hits != 2 {
		t.Errorf("cache stats = %+v, want 2 misses / 2 hits", s)
	}
}
