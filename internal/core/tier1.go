// Package core implements the DABench-LLM framework itself — the
// paper's primary contribution. Tier 1 profiles a single chip running
// an LLM workload (resource allocation ratio, load balance, resource
// utilization efficiency, roofline placement); Tier 2 studies
// inter-chip scalability (DP/TP/PP) and deployment optimization (batch
// size, precision). Both tiers operate through the vendor-neutral
// platform.Platform interface, so any backend — the four simulators
// here or a future real-hardware binding — gets the same analysis with
// no framework changes.
package core

import (
	"fmt"
	"sort"
	"strings"

	"dabench/internal/metrics"
	"dabench/internal/platform"
	"dabench/internal/roofline"
	"dabench/internal/units"
)

// imbalancer is implemented by platforms with a native operator-level
// LI computation (the RDU's section/operator hierarchy).
type imbalancer interface {
	LoadImbalance(*platform.CompileReport) (float64, error)
}

// Tier1Result is the intra-chip profile of one workload.
type Tier1Result struct {
	Platform string
	Spec     platform.TrainSpec
	Compile  *platform.CompileReport
	Run      *platform.RunReport

	// Allocation is the Eq.1/Eq.2 ratio per resource class.
	Allocation map[platform.Resource]float64
	// LI is the Eq.3/Eq.4 load-imbalance metric at the platform's
	// native task granularity (kernel for WSE, operator for RDU,
	// stage for IPU).
	LI float64
	// Regime is the roofline classification at the global tier.
	Regime roofline.Regime
	// RooflineBound is the attainable rate at the workload's AI.
	RooflineBound units.FLOPSRate
	// Insights are the framework's human-readable findings.
	Insights []string
}

// Profile runs the full Tier-1 analysis for one workload.
func Profile(p platform.Platform, spec platform.TrainSpec) (*Tier1Result, error) {
	cr, err := p.Compile(spec)
	if err != nil {
		return nil, err
	}
	rr, err := p.Run(cr)
	if err != nil {
		return nil, err
	}

	res := &Tier1Result{
		Platform:   p.Name(),
		Spec:       spec,
		Compile:    cr,
		Run:        rr,
		Allocation: map[platform.Resource]float64{},
	}
	for r := range cr.Capacity {
		res.Allocation[r] = cr.AllocationRatio(r)
	}

	res.LI, err = loadImbalance(p, cr)
	if err != nil {
		return nil, fmt.Errorf("core: load imbalance: %w", err)
	}

	hw := p.HardwareSpec()
	if hw.GlobalBW > 0 {
		m := roofline.Model{Name: p.Name(), Peak: hw.Peak16, BW: hw.GlobalBW}
		res.Regime = m.Classify(rr.AI)
		res.RooflineBound = m.Attainable(rr.AI)
	}

	res.Insights = insights(res, hw)
	return res, nil
}

// loadImbalance computes LI at the platform's native granularity.
func loadImbalance(p platform.Platform, cr *platform.CompileReport) (float64, error) {
	if im, ok := p.(imbalancer); ok {
		return im.LoadImbalance(cr)
	}
	var tasks []metrics.TaskSample
	for _, t := range cr.Tasks {
		if t.Kind != "kernel" && t.Kind != "stage" {
			continue
		}
		if t.Throughput <= 0 {
			continue
		}
		var units float64
		for _, v := range t.Units {
			units += v
		}
		tasks = append(tasks, metrics.TaskSample{
			Name: t.Name, Resources: units, Throughput: t.Throughput,
		})
	}
	if len(tasks) == 0 {
		return 1, nil
	}
	return metrics.LoadImbalance(tasks)
}

// insights distills the paper-style findings from a profile.
func insights(r *Tier1Result, hw platform.Spec) []string {
	var out []string
	for _, res := range sortedResources(r.Allocation) {
		ratio := r.Allocation[res]
		switch {
		case ratio < 0.4:
			out = append(out, fmt.Sprintf("%s allocation at %.0f%% leaves most of the chip idle — the allocation ratio, not execution, bounds efficiency", res, 100*ratio))
		case ratio > 0.85:
			out = append(out, fmt.Sprintf("%s allocation saturated at %.0f%% — further gains must come from kernel-level efficiency", res, 100*ratio))
		}
	}
	if r.LI < 0.7 {
		out = append(out, fmt.Sprintf("load imbalance LI=%.2f: the slowest task throttles the pipeline; rebalance the partitioning", r.LI))
	}
	if r.Regime == roofline.MemoryBound {
		out = append(out, fmt.Sprintf("memory-bound at AI=%.0f FLOPs/B (%s global tier) — bandwidth, not compute, is the wall", r.Run.AI, hw.GlobalBW))
	} else {
		out = append(out, fmt.Sprintf("compute-bound at AI=%.1f FLOPs/B — the %s memory system keeps the datapath fed", r.Run.AI, hw.GlobalBW))
	}
	if mem := r.Compile.Memory; mem.Capacity > 0 {
		frac := float64(mem.Used()) / float64(mem.Capacity)
		if frac > 0.85 {
			out = append(out, fmt.Sprintf("on-chip memory %.0f%% full (config %s) — near the capacity wall", 100*frac, mem.Config))
		}
	}
	out = append(out, fmt.Sprintf("achieved %.1f TFLOPs = %.1f%% of peak", r.Run.Achieved.TFLOPS(), 100*r.Run.Efficiency))
	return out
}

func sortedResources(m map[platform.Resource]float64) []platform.Resource {
	out := make([]platform.Resource, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Summary renders a one-paragraph profile description.
func (r *Tier1Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s B=%d S=%d %s: ", r.Platform, r.Spec.Model.Name,
		r.Spec.Batch, r.Spec.Seq, r.Spec.Precision)
	for _, res := range sortedResources(r.Allocation) {
		fmt.Fprintf(&b, "%s=%.0f%% ", res, 100*r.Allocation[res])
	}
	fmt.Fprintf(&b, "LI=%.2f %.1fTF (%.0f%% peak, %s) %.1f tok/s",
		r.LI, r.Run.Achieved.TFLOPS(), 100*r.Run.Efficiency, r.Regime, r.Run.TokensPerSec)
	return b.String()
}
