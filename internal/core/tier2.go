package core

import (
	"context"
	"fmt"

	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/sweep"
)

// ScalePoint is one multi-chip configuration's outcome.
type ScalePoint struct {
	Label         string
	Par           platform.Parallelism
	TokensPerSec  float64
	SamplesPerSec float64
	Allocation    map[platform.Resource]float64
	Failed        bool
	FailReason    string
}

// Scalability evaluates a set of parallelism configurations for one
// workload (Tier 2, Table III / Figure 11). The points are swept
// concurrently on the sweep engine's worker pool; the output order
// matches configs regardless of pool size. Placement failures are
// recorded, not fatal — they are findings. Cancelling ctx stops the
// sweep and returns ctx's error.
func Scalability(ctx context.Context, p platform.Platform, base platform.TrainSpec, configs []platform.Parallelism, labels []string) ([]ScalePoint, error) {
	if len(configs) != len(labels) {
		return nil, fmt.Errorf("core: %d configs but %d labels", len(configs), len(labels))
	}
	outs, err := sweep.Map(ctx, configs,
		func(_ context.Context, i int, par platform.Parallelism) (ScalePoint, error) {
			spec := base
			spec.Par = par
			pt := ScalePoint{Label: labels[i], Par: par}
			cr, err := p.Compile(spec)
			if err != nil {
				if !platform.IsCompileFailure(err) {
					return pt, err
				}
				pt.Failed = true
				pt.FailReason = err.Error()
				return pt, nil
			}
			rr, err := p.Run(cr)
			if err != nil {
				return pt, err
			}
			pt.TokensPerSec = rr.TokensPerSec
			pt.SamplesPerSec = rr.SamplesPerSec
			pt.Allocation = map[platform.Resource]float64{}
			for r := range cr.Capacity {
				pt.Allocation[r] = cr.AllocationRatio(r)
			}
			return pt, nil
		})
	if err != nil {
		return nil, err
	}
	return sweep.Values(outs), nil
}

// DeployPoint is one deployment knob setting's outcome.
type DeployPoint struct {
	Label        string
	TokensPerSec float64
	// Batch is the batch size this point ran at (0 on precision-curve
	// points). Batch-curve consumers must use it rather than indexing
	// back into the swept batch list: points that fail to compile leave
	// no curve entry, so positions and batches diverge.
	Batch int
}

// DeploymentReport is the Tier-2 deployment-optimization result.
type DeploymentReport struct {
	BatchCurve      []DeployPoint
	PrecisionCurve  []DeployPoint
	BestBatch       int
	BestPrecision   precision.Format
	KneeBatch       int // smallest batch within 90% of the asymptote
	PrecisionGain   float64
	Recommendations []string
}

// Deployment sweeps batch size and precision for one platform+model
// (Tier 2, Figure 12 / Table IV) and extracts the paper-style
// recommendations. Both sweeps fan out on the sweep engine; compile
// failures drop the point from the curve (a finding), any other error
// aborts. Cancelling ctx stops the sweeps and returns ctx's error.
func Deployment(ctx context.Context, p platform.Platform, base platform.TrainSpec, batches []int, formats []precision.Format) (*DeploymentReport, error) {
	if len(batches) == 0 || len(formats) == 0 {
		return nil, fmt.Errorf("core: deployment sweep needs batches and formats")
	}
	rep := &DeploymentReport{}

	run := func(spec platform.TrainSpec) (float64, error) {
		cr, err := p.Compile(spec)
		if err != nil {
			return 0, err
		}
		rr, err := p.Run(cr)
		if err != nil {
			return 0, err
		}
		return rr.TokensPerSec, nil
	}

	batchOuts, err := sweep.Map(ctx, batches,
		func(_ context.Context, _ int, b int) (float64, error) {
			spec := base
			spec.Batch = b
			return run(spec)
		})
	if err != nil {
		return nil, err
	}
	best := 0.0
	for i, o := range batchOuts {
		if o.Failed() {
			continue
		}
		b := batches[i]
		rep.BatchCurve = append(rep.BatchCurve, DeployPoint{
			Label: fmt.Sprintf("B=%d", b), TokensPerSec: o.Value, Batch: b,
		})
		if o.Value > best {
			best = o.Value
			rep.BestBatch = b
		}
	}
	if len(rep.BatchCurve) == 0 {
		return nil, fmt.Errorf("core: no batch point compiled on %s", p.Name())
	}
	// The knee is found on the surviving curve: each point carries its
	// own batch, so failed points cannot misalign curve and batch list.
	for _, pt := range rep.BatchCurve {
		if pt.TokensPerSec >= 0.9*best {
			rep.KneeBatch = pt.Batch
			break
		}
	}

	precOuts, err := sweep.Map(ctx, formats,
		func(_ context.Context, _ int, f precision.Format) (float64, error) {
			spec := base
			spec.Precision = f
			return run(spec)
		})
	if err != nil {
		return nil, err
	}
	bestPrec, worstPrec := 0.0, 0.0
	haveWorst := false
	for i, o := range precOuts {
		if o.Failed() {
			continue
		}
		tps := o.Value
		rep.PrecisionCurve = append(rep.PrecisionCurve, DeployPoint{
			Label: formats[i].String(), TokensPerSec: tps,
		})
		if tps > bestPrec {
			bestPrec = tps
			rep.BestPrecision = formats[i]
		}
		// Seed the slowest-format tracker from the first *successful*
		// point: seeding from index 0 reports a silent 0 gain whenever
		// the first format fails to compile.
		if !haveWorst || tps < worstPrec {
			worstPrec = tps
			haveWorst = true
		}
	}
	if haveWorst && worstPrec > 0 {
		rep.PrecisionGain = bestPrec/worstPrec - 1
	}

	rep.Recommendations = append(rep.Recommendations,
		fmt.Sprintf("use batch ≥ %d (within 90%% of peak throughput)", rep.KneeBatch),
		fmt.Sprintf("prefer %s precision (%.1f%% over the slowest format)", rep.BestPrecision, 100*rep.PrecisionGain),
	)
	return rep, nil
}
