package core

import (
	"fmt"

	"dabench/internal/platform"
	"dabench/internal/precision"
)

// ScalePoint is one multi-chip configuration's outcome.
type ScalePoint struct {
	Label         string
	Par           platform.Parallelism
	TokensPerSec  float64
	SamplesPerSec float64
	Allocation    map[platform.Resource]float64
	Failed        bool
	FailReason    string
}

// Scalability evaluates a set of parallelism configurations for one
// workload (Tier 2, Table III / Figure 11). Placement failures are
// recorded, not fatal — they are findings.
func Scalability(p platform.Platform, base platform.TrainSpec, configs []platform.Parallelism, labels []string) ([]ScalePoint, error) {
	if len(configs) != len(labels) {
		return nil, fmt.Errorf("core: %d configs but %d labels", len(configs), len(labels))
	}
	out := make([]ScalePoint, 0, len(configs))
	for i, par := range configs {
		spec := base
		spec.Par = par
		pt := ScalePoint{Label: labels[i], Par: par}
		cr, err := p.Compile(spec)
		if err != nil {
			if !platform.IsCompileFailure(err) {
				return nil, err
			}
			pt.Failed = true
			pt.FailReason = err.Error()
			out = append(out, pt)
			continue
		}
		rr, err := p.Run(cr)
		if err != nil {
			return nil, err
		}
		pt.TokensPerSec = rr.TokensPerSec
		pt.SamplesPerSec = rr.SamplesPerSec
		pt.Allocation = map[platform.Resource]float64{}
		for r := range cr.Capacity {
			pt.Allocation[r] = cr.AllocationRatio(r)
		}
		out = append(out, pt)
	}
	return out, nil
}

// DeployPoint is one deployment knob setting's outcome.
type DeployPoint struct {
	Label        string
	TokensPerSec float64
}

// DeploymentReport is the Tier-2 deployment-optimization result.
type DeploymentReport struct {
	BatchCurve      []DeployPoint
	PrecisionCurve  []DeployPoint
	BestBatch       int
	BestPrecision   precision.Format
	KneeBatch       int // smallest batch within 90% of the asymptote
	PrecisionGain   float64
	Recommendations []string
}

// Deployment sweeps batch size and precision for one platform+model
// (Tier 2, Figure 12 / Table IV) and extracts the paper-style
// recommendations.
func Deployment(p platform.Platform, base platform.TrainSpec, batches []int, formats []precision.Format) (*DeploymentReport, error) {
	if len(batches) == 0 || len(formats) == 0 {
		return nil, fmt.Errorf("core: deployment sweep needs batches and formats")
	}
	rep := &DeploymentReport{}

	run := func(spec platform.TrainSpec) (float64, error) {
		cr, err := p.Compile(spec)
		if err != nil {
			return 0, err
		}
		rr, err := p.Run(cr)
		if err != nil {
			return 0, err
		}
		return rr.TokensPerSec, nil
	}

	best := 0.0
	for _, b := range batches {
		spec := base
		spec.Batch = b
		tps, err := run(spec)
		if err != nil {
			if platform.IsCompileFailure(err) {
				continue
			}
			return nil, err
		}
		rep.BatchCurve = append(rep.BatchCurve, DeployPoint{Label: fmt.Sprintf("B=%d", b), TokensPerSec: tps})
		if tps > best {
			best = tps
			rep.BestBatch = b
		}
	}
	if len(rep.BatchCurve) == 0 {
		return nil, fmt.Errorf("core: no batch point compiled on %s", p.Name())
	}
	for i, b := range batches[:len(rep.BatchCurve)] {
		if rep.BatchCurve[i].TokensPerSec >= 0.9*best {
			rep.KneeBatch = b
			break
		}
	}

	bestPrec := 0.0
	worstPrec := 0.0
	for i, f := range formats {
		spec := base
		spec.Precision = f
		tps, err := run(spec)
		if err != nil {
			if platform.IsCompileFailure(err) {
				continue
			}
			return nil, err
		}
		rep.PrecisionCurve = append(rep.PrecisionCurve, DeployPoint{Label: f.String(), TokensPerSec: tps})
		if tps > bestPrec {
			bestPrec = tps
			rep.BestPrecision = f
		}
		if i == 0 || tps < worstPrec {
			worstPrec = tps
		}
	}
	if worstPrec > 0 {
		rep.PrecisionGain = bestPrec/worstPrec - 1
	}

	rep.Recommendations = append(rep.Recommendations,
		fmt.Sprintf("use batch ≥ %d (within 90%% of peak throughput)", rep.KneeBatch),
		fmt.Sprintf("prefer %s precision (%.1f%% over the slowest format)", rep.BestPrecision, 100*rep.PrecisionGain),
	)
	return rep, nil
}
