package core

import (
	"strings"
	"testing"

	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/rdu"
	"dabench/internal/roofline"
	"dabench/internal/wse"
)

func wseSpec() platform.TrainSpec {
	return platform.TrainSpec{
		Model: model.GPT2Small(), Batch: 512, Seq: 1024, Precision: precision.FP16,
	}
}

func TestProfileWSE(t *testing.T) {
	prof, err := Profile(wse.New(), wseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if prof.Allocation[platform.ResPE] < 0.8 || prof.Allocation[platform.ResPE] > 0.93 {
		t.Errorf("PE allocation = %v", prof.Allocation[platform.ResPE])
	}
	if prof.LI <= 0.7 || prof.LI > 1 {
		t.Errorf("LI = %v", prof.LI)
	}
	if prof.Regime != roofline.ComputeBound {
		t.Errorf("WSE should be compute-bound, got %v", prof.Regime)
	}
	if len(prof.Insights) == 0 {
		t.Error("no insights")
	}
	s := prof.Summary()
	for _, want := range []string{"WSE-2", "gpt2-small", "LI=", "compute-bound"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestProfileUsesNativeLI(t *testing.T) {
	// The RDU implements the imbalancer interface; Profile must use it
	// (operator-level LI) rather than the generic kernel fallback.
	spec := platform.TrainSpec{
		Model: model.GPT2Small().WithLayers(24), Batch: 4, Seq: 1024,
		Precision: precision.BF16, Par: platform.Parallelism{Mode: platform.ModeO3},
	}
	sim := rdu.New()
	prof, err := Profile(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := sim.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.LoadImbalance(cr)
	if err != nil {
		t.Fatal(err)
	}
	if prof.LI != want {
		t.Errorf("Profile LI = %v, native LI = %v", prof.LI, want)
	}
}

func TestProfilePropagatesCompileFailure(t *testing.T) {
	spec := wseSpec()
	spec.Model = spec.Model.WithLayers(78)
	if _, err := Profile(wse.New(), spec); !platform.IsCompileFailure(err) {
		t.Errorf("expected compile failure, got %v", err)
	}
}

func TestScalabilityRecordsFailures(t *testing.T) {
	base := platform.TrainSpec{
		Model: model.LLaMA2_70B(), Batch: 1, Seq: 4096, Precision: precision.BF16,
	}
	pts, err := Scalability(t.Context(), rdu.New(), base,
		[]platform.Parallelism{
			{Mode: platform.ModeO1, TensorParallel: 1},
			{Mode: platform.ModeO1, TensorParallel: 8},
		},
		[]string{"TP1", "TP8"})
	if err != nil {
		t.Fatal(err)
	}
	if !pts[0].Failed || pts[0].FailReason == "" {
		t.Error("TP1 should record a placement failure")
	}
	if pts[1].Failed || pts[1].TokensPerSec <= 0 {
		t.Errorf("TP8 should succeed: %+v", pts[1])
	}
}

func TestScalabilityLabelMismatch(t *testing.T) {
	if _, err := Scalability(t.Context(), wse.New(), wseSpec(), []platform.Parallelism{{}}, nil); err == nil {
		t.Error("label mismatch accepted")
	}
}

func TestDeployment(t *testing.T) {
	rep, err := Deployment(t.Context(), wse.New(), wseSpec(),
		[]int{50, 200, 800}, []precision.Format{precision.FP16, precision.CB16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BatchCurve) != 3 || len(rep.PrecisionCurve) != 2 {
		t.Fatalf("curves: %+v", rep)
	}
	if rep.BestPrecision != precision.CB16 {
		t.Errorf("best precision = %v", rep.BestPrecision)
	}
	if rep.PrecisionGain < 0.08 || rep.PrecisionGain > 0.13 {
		t.Errorf("precision gain = %v, want ≈0.107", rep.PrecisionGain)
	}
	if rep.KneeBatch == 0 || len(rep.Recommendations) != 2 {
		t.Errorf("recommendations: %+v", rep)
	}
	if _, err := Deployment(t.Context(), wse.New(), wseSpec(), nil, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}
