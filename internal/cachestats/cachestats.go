// Package cachestats provides the hit/miss counter snapshot shared by
// every memoization tier (graph build cache, compile cache, run-report
// cache). It sits below both internal/graph and internal/platform so
// neither layer has to import the other to report uniform stats.
package cachestats

// Stats is a snapshot of a cache's hit/miss counters. Snapshot is the
// wire form; Stats itself never crosses the API boundary.
type Stats struct {
	Hits   int64
	Misses int64
}

// Sub returns the counter deltas since an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{Hits: s.Hits - earlier.Hits, Misses: s.Misses - earlier.Misses}
}

// Add merges two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses}
}

// HitRate returns hits over total lookups (0 when no lookups).
func (s Stats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Snapshot is the wire form of one tier's counters: the raw counters
// plus the derived rate, so API consumers never recompute it.
type Snapshot struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// Snapshot derives the serializable view of the counters.
func (s Stats) Snapshot() Snapshot {
	return Snapshot{Hits: s.Hits, Misses: s.Misses, HitRate: s.HitRate()}
}

// ByteStats is the counter set of a byte-budgeted cache tier (the
// server's response-byte LRU): the usual hit/miss pair plus the size
// gauges its eviction budget works against.
type ByteStats struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	Entries     int64
	Bytes       int64
	BudgetBytes int64
}

// HitRate returns hits over total lookups (0 when no lookups).
func (s ByteStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// ByteSnapshot is the wire form of ByteStats.
type ByteSnapshot struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	Entries     int64   `json:"entries"`
	Bytes       int64   `json:"bytes"`
	BudgetBytes int64   `json:"budget_bytes,omitempty"`
	Evictions   int64   `json:"evictions"`
}

// Snapshot derives the serializable view of the counters.
func (s ByteStats) Snapshot() ByteSnapshot {
	return ByteSnapshot{
		Hits: s.Hits, Misses: s.Misses, HitRate: s.HitRate(),
		Entries: s.Entries, Bytes: s.Bytes, BudgetBytes: s.BudgetBytes,
		Evictions: s.Evictions,
	}
}
