package faults

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no rules", Spec{}},
		{"bad op", Spec{Rules: []Rule{{Op: "disk.write", Kind: KindEIO}}}},
		{"bad kind", Spec{Rules: []Rule{{Op: OpStoreRead, Kind: "EPERM"}}}},
		{"probability > 1", Spec{Rules: []Rule{{Op: OpStoreRead, Kind: KindEIO, Probability: 1.5}}}},
		{"negative probability", Spec{Rules: []Rule{{Op: OpStoreRead, Kind: KindEIO, Probability: -0.1}}}},
		{"negative delay", Spec{Rules: []Rule{{Op: OpStoreRead, Kind: KindSlow, DelayMs: -1}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.spec); err == nil {
			t.Errorf("%s: New accepted an invalid spec", tc.name)
		}
	}
}

func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"rules":[{"op":"store.read","kind":"EIO"}],"bogus":1}`)); err == nil {
		t.Error("Parse accepted an unknown field")
	}
	if _, err := Parse([]byte(`{"rules":[{"op":"store.read","kind":"EIO"}]} extra`)); err == nil {
		t.Error("Parse accepted trailing data")
	}
	in, err := Parse([]byte(`{"seed":7,"rules":[{"op":"store.read","kind":"EIO","probability":0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if in.Stats().Seed != 7 {
		t.Errorf("seed = %d, want 7", in.Stats().Seed)
	}
}

func TestFireDeterministicAndBudgeted(t *testing.T) {
	spec := Spec{Seed: 42, Rules: []Rule{{Op: OpStoreWrite, Kind: KindEIO, Probability: 0.3}}}
	outcomes := func() []bool {
		in, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		var seq []bool
		for i := 0; i < 200; i++ {
			seq = append(seq, in.Fire(OpStoreWrite) != nil)
		}
		return seq
	}
	a, b := outcomes(), outcomes()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at evaluation %d", i)
		}
		if a[i] {
			fired++
		}
	}
	// 200 evaluations at p=0.3: the exact count is seed-determined, but
	// it must be in the right ballpark, not 0 or 200.
	if fired < 30 || fired > 110 {
		t.Errorf("p=0.3 fired %d/200 times", fired)
	}

	in, err := New(Spec{Rules: []Rule{{Op: OpChunkRun, Kind: KindEIO, Count: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	for i := 0; i < 10; i++ {
		if in.Fire(OpChunkRun) != nil {
			hits++
		}
	}
	if hits != 3 {
		t.Errorf("budget 3 fired %d times", hits)
	}
	st := in.Stats()
	if st.Fired != 3 || st.Rules[0].Remaining != 0 {
		t.Errorf("stats = %+v, want fired 3 remaining 0", st)
	}
}

func TestFireMatchesOpOnly(t *testing.T) {
	in, err := New(Spec{Rules: []Rule{{Op: OpJournalSync, Kind: KindEIO}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Fire(OpJournalAppend); err != nil {
		t.Errorf("append fired a sync-only rule: %v", err)
	}
	if err := in.Fire(OpJournalSync); err == nil {
		t.Error("sync rule did not fire")
	}
}

func TestErrorKindsWrapSentinels(t *testing.T) {
	cases := []struct {
		kind Kind
		want error
	}{
		{KindEIO, syscall.EIO},
		{KindENOSPC, syscall.ENOSPC},
		{KindTimeout, os.ErrDeadlineExceeded},
	}
	for _, tc := range cases {
		in, err := New(Spec{Rules: []Rule{{Op: OpStoreWrite, Kind: tc.kind}}})
		if err != nil {
			t.Fatal(err)
		}
		got := in.Fire(OpStoreWrite)
		if !errors.Is(got, tc.want) {
			t.Errorf("kind %s: errors.Is(%v, %v) = false", tc.kind, got, tc.want)
		}
		if !IsInjected(got) {
			t.Errorf("kind %s: IsInjected = false", tc.kind)
		}
	}
}

func TestCorruptAndSlowKinds(t *testing.T) {
	in, err := New(Spec{Rules: []Rule{{Op: OpStoreRead, Kind: KindCorrupt}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Fire(OpStoreRead); !IsCorrupt(got) {
		t.Errorf("IsCorrupt(%v) = false", got)
	}

	in, err = New(Spec{Rules: []Rule{{Op: OpCompile, Kind: KindSlow, DelayMs: 30}}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if got := in.Fire(OpCompile); got != nil {
		t.Errorf("slow rule returned an error: %v", got)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("slow rule stalled only %v", d)
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if err := in.Fire(OpStoreRead); err != nil {
		t.Errorf("nil injector fired: %v", err)
	}
	if st := in.Stats(); st != nil {
		t.Errorf("nil injector stats = %+v", st)
	}
}

func TestLoadFileAndInline(t *testing.T) {
	if _, err := Load(`{"rules":[{"op":"compile","kind":"timeout"}]}`); err != nil {
		t.Errorf("inline load: %v", err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"rules":[{"op":"compile","kind":"timeout"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Errorf("file load: %v", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file load succeeded")
	}
}
