// Package faults is the deterministic fault-injection layer behind the
// framework's resilience machinery. Nothing in the pipeline can be
// *tested* for graceful degradation unless something can make its I/O
// fail on demand — so the store, the job journal, the compile path and
// the job executor each carry one nil-checked *Injector hook, and this
// package supplies the injector: a seedable, rule-based fault source
// that components consult at their syscall boundaries.
//
// A rule matches one operation class (store read/write/remove, journal
// append/fsync, compile, chunk run) and fires with a configured
// probability, bounded by an optional fire-count budget, producing one
// of five fault kinds:
//
//   - EIO, ENOSPC: an injected error wrapping the matching syscall
//     errno, indistinguishable (via errors.Is) from the real thing.
//   - timeout: an injected error wrapping os.ErrDeadlineExceeded.
//   - corrupt: the operation "succeeds" but its payload is garbage —
//     components translate it into corrupted read data.
//   - slow: the operation stalls for delay_ms, then proceeds normally.
//
// Determinism: the injector's RNG is seeded from the spec, and rules
// consume budget per evaluation under one lock, so a single-threaded
// caller sequence replays identically. Under concurrency the *set* of
// fired faults is still budget-bounded, which is what the tests pin.
//
// The production fast path pays exactly one pointer compare: every hook
// site is `if inj != nil { inj.Fire(op) }` (Fire is additionally safe
// on a nil receiver, so forgetting the guard degrades to a nil check
// inside the call, never a panic).
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op is an injectable operation class — the boundary a hook site sits
// on. Rules match ops exactly.
type Op string

// The injectable operation classes.
const (
	OpStoreRead     Op = "store.read"     // result-store blob read (os.ReadFile)
	OpStoreWrite    Op = "store.write"    // result-store write-behind persist
	OpStoreRemove   Op = "store.remove"   // result-store eviction/drop unlink
	OpJournalAppend Op = "journal.append" // job-journal line write
	OpJournalSync   Op = "journal.sync"   // job-journal fsync
	OpCompile       Op = "compile"        // one platform compile
	OpChunkRun      Op = "chunk.run"      // one async-job chunk execution
	OpPeerFetch     Op = "peer.fetch"     // one cluster peer blob/chunk HTTP call
)

var validOps = map[Op]bool{
	OpStoreRead: true, OpStoreWrite: true, OpStoreRemove: true,
	OpJournalAppend: true, OpJournalSync: true,
	OpCompile: true, OpChunkRun: true, OpPeerFetch: true,
}

// Kind is the failure mode a fired rule produces.
type Kind string

// The fault kinds.
const (
	KindEIO     Kind = "EIO"
	KindENOSPC  Kind = "ENOSPC"
	KindTimeout Kind = "timeout"
	KindCorrupt Kind = "corrupt"
	KindSlow    Kind = "slow"
)

var validKinds = map[Kind]bool{
	KindEIO: true, KindENOSPC: true, KindTimeout: true,
	KindCorrupt: true, KindSlow: true,
}

// canonicalKind folds case so hand-written specs can say "eio" or
// "EIO" interchangeably; unknown kinds pass through for the error path.
func canonicalKind(k Kind) Kind {
	switch strings.ToLower(string(k)) {
	case "eio":
		return KindEIO
	case "enospc":
		return KindENOSPC
	case "timeout":
		return KindTimeout
	case "corrupt":
		return KindCorrupt
	case "slow":
		return KindSlow
	}
	return k
}

// Rule is one declarative fault source. The zero Probability means 1
// (always fire when evaluated); Count <= 0 means unlimited.
type Rule struct {
	// Op is the operation class the rule matches (required).
	Op Op `json:"op"`
	// Kind is the failure mode to inject (required).
	Kind Kind `json:"kind"`
	// Probability in (0, 1] is the per-evaluation fire chance; 0 is
	// shorthand for 1 (deterministic).
	Probability float64 `json:"probability,omitempty"`
	// Count bounds total fires; 0 = unlimited. Exhausted rules stop
	// matching, which is how a spec expresses "fail the first N
	// operations, then heal" — the shape breaker-recovery tests need.
	Count int64 `json:"count,omitempty"`
	// DelayMs is the stall for kind "slow" (default 10ms).
	DelayMs int `json:"delay_ms,omitempty"`
}

// Spec is the wire form of an injector configuration — what
// `dabenchd -fault-spec` loads.
type Spec struct {
	// Seed seeds the injector's RNG; 0 means 1 (specs must not get
	// accidental nondeterminism from a time-seeded default).
	Seed  int64  `json:"seed,omitempty"`
	Rules []Rule `json:"rules"`
}

// InjectedError is the error produced by a fired error-kind rule. It
// wraps the matching real-world sentinel (syscall.EIO, syscall.ENOSPC,
// os.ErrDeadlineExceeded) so component code that classifies transient
// errors with errors.Is treats injected faults exactly like real ones.
type InjectedError struct {
	Op   Op
	Kind Kind
}

// Error implements the error interface.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s on %s", e.Kind, e.Op)
}

// Unwrap maps the injected kind to its real-world sentinel.
func (e *InjectedError) Unwrap() error {
	switch e.Kind {
	case KindEIO:
		return syscall.EIO
	case KindENOSPC:
		return syscall.ENOSPC
	case KindTimeout:
		return os.ErrDeadlineExceeded
	default:
		return nil
	}
}

// IsInjected reports whether err originated from an Injector.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// IsCorrupt reports whether err is an injected corruption fault — the
// one kind a read hook translates into garbage payload bytes rather
// than an I/O error.
func IsCorrupt(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie) && ie.Kind == KindCorrupt
}

// rule is a Rule compiled with its live counters.
type rule struct {
	Rule
	fired     int64
	remaining int64 // <0 = unlimited
}

// Injector is a live fault source. Create with New/Parse/Load; safe
// for concurrent use. A nil *Injector is a valid "no faults" injector.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	seed  int64
	rules []*rule
	fired int64
}

// New compiles a spec into an Injector, validating every rule.
func New(spec Spec) (*Injector, error) {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	if len(spec.Rules) == 0 {
		return nil, errors.New("faults: spec has no rules")
	}
	in := &Injector{rng: rand.New(rand.NewSource(seed)), seed: seed}
	for i, r := range spec.Rules {
		if !validOps[r.Op] {
			return nil, fmt.Errorf("faults: rule %d: unknown op %q (valid: store.read, store.write, store.remove, journal.append, journal.sync, compile, chunk.run, peer.fetch)", i, r.Op)
		}
		r.Kind = canonicalKind(r.Kind)
		if !validKinds[r.Kind] {
			return nil, fmt.Errorf("faults: rule %d: unknown kind %q (valid: EIO, ENOSPC, timeout, corrupt, slow)", i, r.Kind)
		}
		if r.Probability < 0 || r.Probability > 1 {
			return nil, fmt.Errorf("faults: rule %d: probability %v out of (0, 1]", i, r.Probability)
		}
		if r.Probability == 0 {
			r.Probability = 1
		}
		if r.DelayMs < 0 {
			return nil, fmt.Errorf("faults: rule %d: delay_ms %d must be >= 0", i, r.DelayMs)
		}
		if r.Kind == KindSlow && r.DelayMs == 0 {
			r.DelayMs = 10
		}
		remaining := int64(-1)
		if r.Count > 0 {
			remaining = r.Count
		}
		in.rules = append(in.rules, &rule{Rule: r, remaining: remaining})
	}
	return in, nil
}

// Parse decodes a JSON spec strictly and compiles it.
func Parse(data []byte) (*Injector, error) {
	var spec Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("faults: decode spec: %w", err)
	}
	if dec.More() {
		return nil, errors.New("faults: decode spec: trailing data after JSON value")
	}
	return New(spec)
}

// Load resolves arg as an inline JSON spec (leading '{') or a file
// path — the shared loader behind both CLIs' -fault-spec flag.
func Load(arg string) (*Injector, error) {
	trimmed := strings.TrimSpace(arg)
	if strings.HasPrefix(trimmed, "{") {
		return Parse([]byte(trimmed))
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("faults: read spec %s: %w", arg, err)
	}
	return Parse(data)
}

// Fire evaluates op against the rule set: the first matching error-kind
// rule that fires returns its InjectedError; slow rules stall inline
// and keep scanning. A nil receiver never fires. Budget is consumed per
// fire, so exhausted rules fall silent.
func (in *Injector) Fire(op Op) error {
	if in == nil {
		return nil
	}
	var stall time.Duration
	var ferr error
	in.mu.Lock()
	for _, r := range in.rules {
		if r.Op != op || r.remaining == 0 {
			continue
		}
		if r.Probability < 1 && in.rng.Float64() >= r.Probability {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		r.fired++
		in.fired++
		if r.Kind == KindSlow {
			stall += time.Duration(r.DelayMs) * time.Millisecond
			continue
		}
		ferr = &InjectedError{Op: op, Kind: r.Kind}
		break
	}
	in.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	return ferr
}

// RuleStats is one rule's live counters in Stats.
type RuleStats struct {
	Op          Op      `json:"op"`
	Kind        Kind    `json:"kind"`
	Probability float64 `json:"probability"`
	Fired       int64   `json:"fired"`
	// Remaining is the unfired budget; -1 = unlimited.
	Remaining int64 `json:"remaining"`
}

// Stats is the injector's /v1/stats wire form.
type Stats struct {
	Seed  int64       `json:"seed"`
	Fired int64       `json:"fired"`
	Rules []RuleStats `json:"rules"`
}

// Stats snapshots the per-rule fire counters; nil on a nil receiver.
func (in *Injector) Stats() *Stats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := &Stats{Seed: in.seed, Fired: in.fired, Rules: make([]RuleStats, len(in.rules))}
	for i, r := range in.rules {
		st.Rules[i] = RuleStats{
			Op: r.Op, Kind: r.Kind, Probability: r.Probability,
			Fired: r.fired, Remaining: r.remaining,
		}
	}
	return st
}
