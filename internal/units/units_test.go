package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFLOPsConversions(t *testing.T) {
	f := FLOPs(1.5e12)
	if got := f.TFLOPs(); got != 1.5 {
		t.Errorf("TFLOPs = %v, want 1.5", got)
	}
	if got := f.GFLOPs(); got != 1500 {
		t.Errorf("GFLOPs = %v, want 1500", got)
	}
}

func TestBytesConversions(t *testing.T) {
	b := Bytes(40e9)
	if got := b.GB(); got != 40 {
		t.Errorf("GB = %v, want 40", got)
	}
	if got := Bytes(MiB).MiB(); got != 1 {
		t.Errorf("MiB = %v, want 1", got)
	}
	if got := Bytes(2 * GiB).GiB(); got != 2 {
		t.Errorf("GiB = %v, want 2", got)
	}
}

func TestSIFormat(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{20e15, "B/s", "20.00 PB/s"},
		{1.7e15, "FLOP/s", "1.70 PFLOP/s"},
		{312e12, "FLOP/s", "312.00 TFLOP/s"},
		{5e9, "B", "5.00 GB"},
		{2.5e6, "B", "2.50 MB"},
		{1234, "B", "1.23 kB"},
		{42, "FLOPs", "42.00 FLOPs"},
	}
	for _, c := range cases {
		if got := siFormat(c.v, c.unit); got != c.want {
			t.Errorf("siFormat(%v, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		v    Seconds
		want string
	}{
		{0, "0 s"},
		{1.5e-9, "1.50 ns"},
		{2e-6, "2.00 µs"},
		{3e-3, "3.00 ms"},
		{1.25, "1.25 s"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.v), got, c.want)
		}
	}
}

func TestTimeToCompute(t *testing.T) {
	if got := TimeToCompute(1e12, 1e12); got != 1 {
		t.Errorf("TimeToCompute = %v, want 1", got)
	}
	if got := TimeToCompute(1e12, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("TimeToCompute with zero rate = %v, want +Inf", got)
	}
	if got := TimeToCompute(1e12, -5); !math.IsInf(float64(got), 1) {
		t.Errorf("TimeToCompute with negative rate = %v, want +Inf", got)
	}
}

func TestTimeToMove(t *testing.T) {
	if got := TimeToMove(2e9, 1e9); got != 2 {
		t.Errorf("TimeToMove = %v, want 2", got)
	}
	if got := TimeToMove(1, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("TimeToMove with zero bandwidth = %v, want +Inf", got)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	if got := ArithmeticIntensity(100, 10); got != 10 {
		t.Errorf("ArithmeticIntensity = %v, want 10", got)
	}
	if got := ArithmeticIntensity(100, 0); got != 0 {
		t.Errorf("ArithmeticIntensity with zero bytes = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 10); got != 5 {
		t.Errorf("Clamp(5,0,10) = %v", got)
	}
	if got := Clamp(-1, 0, 10); got != 0 {
		t.Errorf("Clamp(-1,0,10) = %v", got)
	}
	if got := Clamp(11, 0, 10); got != 10 {
		t.Errorf("Clamp(11,0,10) = %v", got)
	}
}

// Property: Clamp always lands inside [lo, hi] for any ordered pair.
func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TimeToCompute scales linearly in the FLOP count.
func TestTimeToComputeLinearity(t *testing.T) {
	f := func(work float64) bool {
		w := math.Abs(work)
		if math.IsNaN(w) || math.IsInf(w, 0) || w > 1e30 {
			return true
		}
		t1 := TimeToCompute(FLOPs(w), 1e12)
		t2 := TimeToCompute(FLOPs(2*w), 1e12)
		return math.Abs(float64(t2)-2*float64(t1)) <= 1e-9*math.Max(1, float64(t2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SI formatting always embeds the unit string.
func TestSIFormatContainsUnit(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return strings.HasSuffix(siFormat(v, "B"), "B")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
