// Package units provides the scalar quantities used throughout the
// simulators and the benchmarking framework: floating-point operation
// counts, byte counts, bandwidths and rates, together with SI/IEC
// formatting helpers.
//
// All quantities are plain float64 wrappers so that arithmetic stays
// ordinary Go arithmetic; the types exist to keep APIs self-describing
// and to attach formatting behaviour.
package units

import (
	"fmt"
	"math"
)

// FLOPs is a count of floating-point operations.
type FLOPs float64

// Bytes is a count of bytes.
type Bytes float64

// FLOPSRate is a compute rate in FLOPs per second.
type FLOPSRate float64

// Bandwidth is a memory or link bandwidth in bytes per second.
type Bandwidth float64

// Seconds is a duration in seconds. The simulators use float seconds
// rather than time.Duration because modeled times span nanoseconds to
// hours and are the result of continuous math.
type Seconds float64

// Common scale factors.
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
	Tera = 1e12
	Peta = 1e15

	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40
)

// TFLOPs reports f in teraFLOPs.
func (f FLOPs) TFLOPs() float64 { return float64(f) / Tera }

// GFLOPs reports f in gigaFLOPs.
func (f FLOPs) GFLOPs() float64 { return float64(f) / Giga }

// String formats the count with an SI suffix, e.g. "1.50 TFLOPs".
func (f FLOPs) String() string { return siFormat(float64(f), "FLOPs") }

// MB reports b in decimal megabytes.
func (b Bytes) MB() float64 { return float64(b) / Mega }

// GB reports b in decimal gigabytes.
func (b Bytes) GB() float64 { return float64(b) / Giga }

// MiB reports b in binary mebibytes.
func (b Bytes) MiB() float64 { return float64(b) / MiB }

// GiB reports b in binary gibibytes.
func (b Bytes) GiB() float64 { return float64(b) / GiB }

// String formats the count with an SI suffix, e.g. "40.00 GB".
func (b Bytes) String() string { return siFormat(float64(b), "B") }

// TFLOPS reports r in teraFLOPs per second.
func (r FLOPSRate) TFLOPS() float64 { return float64(r) / Tera }

// String formats the rate with an SI suffix, e.g. "312.00 TFLOP/s".
func (r FLOPSRate) String() string { return siFormat(float64(r), "FLOP/s") }

// TBps reports w in terabytes per second.
func (w Bandwidth) TBps() float64 { return float64(w) / Tera }

// GBps reports w in gigabytes per second.
func (w Bandwidth) GBps() float64 { return float64(w) / Giga }

// String formats the bandwidth with an SI suffix, e.g. "20.00 PB/s".
func (w Bandwidth) String() string { return siFormat(float64(w), "B/s") }

// String formats the duration, e.g. "1.20 ms".
func (s Seconds) String() string {
	v := float64(s)
	switch {
	case v == 0:
		return "0 s"
	case math.Abs(v) < 1e-6:
		return fmt.Sprintf("%.2f ns", v*1e9)
	case math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.2f µs", v*1e6)
	case math.Abs(v) < 1:
		return fmt.Sprintf("%.2f ms", v*1e3)
	default:
		return fmt.Sprintf("%.2f s", v)
	}
}

// siFormat renders v with the largest SI prefix that keeps the mantissa
// at or above 1, for non-negative magnitudes up to peta.
func siFormat(v float64, unit string) string {
	abs := math.Abs(v)
	switch {
	case abs >= Peta:
		return fmt.Sprintf("%.2f P%s", v/Peta, unit)
	case abs >= Tera:
		return fmt.Sprintf("%.2f T%s", v/Tera, unit)
	case abs >= Giga:
		return fmt.Sprintf("%.2f G%s", v/Giga, unit)
	case abs >= Mega:
		return fmt.Sprintf("%.2f M%s", v/Mega, unit)
	case abs >= Kilo:
		return fmt.Sprintf("%.2f k%s", v/Kilo, unit)
	default:
		return fmt.Sprintf("%.2f %s", v, unit)
	}
}

// TimeToCompute returns the time to execute f FLOPs at rate r. A zero or
// negative rate yields +Inf so that an unpowered resource never wins a
// bottleneck comparison silently.
func TimeToCompute(f FLOPs, r FLOPSRate) Seconds {
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(f) / float64(r))
}

// TimeToMove returns the time to move b bytes over bandwidth w, with the
// same +Inf convention as TimeToCompute.
func TimeToMove(b Bytes, w Bandwidth) Seconds {
	if w <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b) / float64(w))
}

// ArithmeticIntensity returns f/b in FLOPs per byte, or 0 when b is 0.
func ArithmeticIntensity(f FLOPs, b Bytes) float64 {
	if b <= 0 {
		return 0
	}
	return float64(f) / float64(b)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
