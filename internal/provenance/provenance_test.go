package provenance

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openLog(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestAppendAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.log")
	l := openLog(t, path)
	l.Append("addr-a", "wse", "spec-a", 1)
	l.Append("addr-b", "rdu", "spec-b", 1)
	l.Append("addr-a", "wse", "spec-a", 1) // dedup: same address
	st := l.Stats()
	if st.Records != 2 {
		t.Fatalf("Records = %d, want 2 (duplicate address must not append)", st.Records)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A reopened log resumes the same chain: tip carries over, the
	// index answers lookups, and a fresh append links to the old tip.
	l2 := openLog(t, path)
	if got := l2.Stats(); got != st {
		t.Fatalf("reopened stats = %+v, want %+v", got, st)
	}
	r, ok := l2.Lookup("addr-b")
	if !ok || r.Platform != "rdu" || r.SpecKey != "spec-b" || r.Seq != 2 {
		t.Fatalf("Lookup(addr-b) = %+v %v", r, ok)
	}
	l2.Append("addr-c", "ipu", "spec-c", 1)
	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 3 || res.TipHash != l2.Stats().TipHash {
		t.Fatalf("VerifyFile = %+v, log tip %s", res, l2.Stats().TipHash)
	}
}

func TestVerifyDetectsTamperedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.log")
	l := openLog(t, path)
	for i, a := range []string{"a", "b", "c"} {
		l.Append("addr-"+a, "wse", "spec-"+a, 1+i%1) // pipeline version 1
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tamper with the middle record's spec key, keeping the line valid
	// JSON: the record's own hash no longer matches its content.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	var r Record
	if err := json.Unmarshal([]byte(lines[1]), &r); err != nil {
		t.Fatal(err)
	}
	r.SpecKey = "spec-FORGED"
	forged, _ := json.Marshal(r)
	lines[1] = string(forged)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := VerifyFile(path); err == nil || !strings.Contains(err.Error(), "tampered") {
		t.Fatalf("VerifyFile on tampered record: err = %v, want tamper failure", err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open on tampered log must refuse, got nil error")
	}

	// Re-hashing the forged record does not help either: its successor
	// no longer links (prev_hash mismatch), so the chain stays broken.
	r.Hash = hashRecord(r)
	forged, _ = json.Marshal(r)
	lines[1] = string(forged)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyFile(path); err == nil || !strings.Contains(err.Error(), "chain broken") {
		t.Fatalf("VerifyFile on re-hashed forgery: err = %v, want link failure", err)
	}
}

func TestTornTailIsTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.log")
	l := openLog(t, path)
	l.Append("addr-a", "wse", "spec-a", 1)
	l.Append("addr-b", "rdu", "spec-b", 1)
	tip := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a JSON line at the end.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"prev_hash":"dead`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Open truncates the torn record and resumes from the intact tip;
	// the next append extends the verified chain.
	l2 := openLog(t, path)
	if got := l2.Stats(); got != tip {
		t.Fatalf("stats after torn-tail open = %+v, want %+v", got, tip)
	}
	l2.Append("addr-c", "ipu", "spec-c", 1)
	if res, err := VerifyFile(path); err != nil || res.Records != 3 {
		t.Fatalf("VerifyFile after recovery = %+v, %v", res, err)
	}

	// Offline verification, by contrast, refuses a torn tail outright.
	f, err = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"torn":`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := VerifyFile(path); err == nil {
		t.Fatal("VerifyFile must fail on a torn tail")
	}
}

func TestInteriorGarbageRefusesOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.log")
	l := openLog(t, path)
	l.Append("addr-a", "wse", "spec-a", 1)
	l.Close()
	data, _ := os.ReadFile(path)
	// Garbage line followed by the valid record: interior damage, not a
	// torn tail — Open must refuse rather than truncate history.
	if err := os.WriteFile(path, append([]byte("not json\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open must refuse interior garbage")
	}
}

func TestVerifyFileMissingIsEmptyChain(t *testing.T) {
	res, err := VerifyFile(filepath.Join(t.TempDir(), "absent.log"))
	if err != nil || res.Records != 0 || res.TipHash != GenesisHash() {
		t.Fatalf("VerifyFile(absent) = %+v, %v", res, err)
	}
}

func TestConcurrentAppendsKeepChainIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.log")
	l := openLog(t, path)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Append("addr-"+string(rune('a'+w))+"-"+string(rune('0'+i%10)), "wse", "spec", 1)
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 80 { // 8 writers × 10 distinct addresses each
		t.Fatalf("Records = %d, want 80", res.Records)
	}
}
