// Package provenance chains every result-store blob write into a
// hash-linked, append-only log, so any served artifact can be traced
// back to the pipeline version, platform and spec that produced it —
// and so silent mutation of past results is detectable. It is the
// cheap half of a transparency log: no Merkle tree, no signatures,
// just a SHA-256 chain where record N commits to record N-1, which
// means tampering with (or deleting) any interior record breaks every
// hash after it.
//
// The log is a JSONL file, one Record per line. Each record's Hash
// covers a canonical serialization of its own fields plus the previous
// record's hash; the first record links to a fixed genesis hash.
// Appends are deduplicated by address — a blob rewritten with its run
// report attached, or upgraded to the v2 frame, does not append a
// second record, because the address (and therefore the identity it
// binds) is unchanged.
//
// Durability posture matches the store it shadows: appends flush to
// the OS on every record but do not fsync — the log is tamper
// evidence and lineage, not a ledger of record; a torn tail record
// (crash mid-append) is truncated on the next Open. A record that
// fails hash verification, by contrast, is never repaired silently:
// Open and Verify fail loudly, because a broken chain is exactly the
// signal this package exists to raise.
//
// Sharing: one process owns the log at a time. Two writers would each
// extend their own in-memory tip and fork the chain — share a data
// directory sequentially (daemon, then CLI), never concurrently.
package provenance

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Record is one chain entry: the identity of a blob the store
// persisted, linked to its predecessor by hash.
type Record struct {
	// Seq is the 1-based chain position.
	Seq int64 `json:"seq"`
	// PrevHash is the Hash of record Seq-1 (the genesis hash for Seq 1).
	PrevHash string `json:"prev_hash"`
	// Addr is the blob's content address (the store's SHA-256 name).
	Addr string `json:"addr"`
	// PipelineVersion, Platform and SpecKey are the blob's identity —
	// the same triple the address was derived from, recorded plainly so
	// lineage queries need no store read.
	PipelineVersion int    `json:"pipeline_version"`
	Platform        string `json:"platform"`
	SpecKey         string `json:"spec_key"`
	// Hash is the SHA-256 over this record's canonical serialization
	// (every field above, in order, NUL-separated) — the value the next
	// record's PrevHash commits to.
	Hash string `json:"hash"`
}

// genesisHash anchors the chain: the PrevHash of the first record.
var genesisHash = func() string {
	h := sha256.Sum256([]byte("dabench/provenance/genesis/v1"))
	return hex.EncodeToString(h[:])
}()

// GenesisHash returns the fixed anchor hash of every chain.
func GenesisHash() string { return genesisHash }

// hashRecord computes a record's Hash from its other fields.
func hashRecord(r Record) string {
	h := sha256.New()
	h.Write([]byte("dabench/provenance/record"))
	for _, part := range []string{
		strconv.FormatInt(r.Seq, 10), r.PrevHash, r.Addr,
		strconv.Itoa(r.PipelineVersion), r.Platform, r.SpecKey,
	} {
		h.Write([]byte{0})
		h.Write([]byte(part))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// verifyLink checks one record against the expected chain position and
// predecessor hash.
func verifyLink(r Record, wantSeq int64, wantPrev string) error {
	if r.Seq != wantSeq {
		return fmt.Errorf("provenance: record %d: seq %d out of order (want %d)", wantSeq, r.Seq, wantSeq)
	}
	if r.PrevHash != wantPrev {
		return fmt.Errorf("provenance: record %d: prev_hash %.12s does not link to %.12s — chain broken", r.Seq, r.PrevHash, wantPrev)
	}
	if got := hashRecord(r); got != r.Hash {
		return fmt.Errorf("provenance: record %d: hash %.12s does not match content (want %.12s) — record tampered or corrupt", r.Seq, r.Hash, got)
	}
	return nil
}

// Stats is the log's observable state.
type Stats struct {
	// Records is the chain length (== the tip's Seq).
	Records int64 `json:"records"`
	// TipHash is the newest record's Hash (the genesis hash when empty).
	TipHash string `json:"tip_hash"`
}

// Log is an open provenance chain. Create with Open; safe for
// concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	seq    int64
	tip    string
	byAddr map[string]Record
	errs   int64 // append I/O failures (the chain in memory stays consistent)
}

// Open loads (or creates) the log at path, replaying and verifying the
// existing chain. A torn final line — a crash mid-append — is
// truncated; any other verification failure is returned as an error,
// because a broken chain must be investigated, not silently extended.
func Open(path string) (*Log, error) {
	// The chain opens before the store it audits, so the data dir may
	// not exist yet on a fresh deployment.
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("provenance: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	l := &Log{f: f, tip: genesisHash, byAddr: map[string]Record{}}
	keep, err := l.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, fmt.Errorf("provenance: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("provenance: %w", err)
	}
	l.w = bufio.NewWriter(f)
	return l, nil
}

// replay walks the file, verifying each record and building the index.
// It returns the byte offset of the verified prefix; anything after it
// is a torn tail to truncate. A record that parses but fails chain
// verification is an error — only an incomplete *final* line is
// recoverable.
func (l *Log) replay() (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("provenance: %w", err)
	}
	var keep int64
	sc := bufio.NewScanner(l.f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			// A malformed line is recoverable only if nothing follows it
			// (a torn tail). Peek: if another line exists, the damage is
			// interior and the chain is broken.
			if sc.Scan() {
				return 0, fmt.Errorf("provenance: record %d is not valid JSON and is not the final record — chain broken", l.seq+1)
			}
			return keep, nil
		}
		if err := verifyLink(r, l.seq+1, l.tip); err != nil {
			return 0, err
		}
		l.seq = r.Seq
		l.tip = r.Hash
		if _, ok := l.byAddr[r.Addr]; !ok {
			l.byAddr[r.Addr] = r
		}
		keep += int64(len(line)) + 1 // the scanner strips the newline
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("provenance: read: %w", err)
	}
	return keep, nil
}

// Append extends the chain with one blob write. Appends are
// deduplicated by address: re-storing an outcome (run report attached,
// frame upgrade) is a no-op because the identity is unchanged. I/O
// failures are counted but do not fail the caller — the store's write
// hook must never make a blob write fail — and the in-memory chain
// stays consistent with what was durably framed.
func (l *Log) Append(addr, platformName, specKey string, pipelineVersion int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.byAddr[addr]; ok {
		return
	}
	r := Record{
		Seq: l.seq + 1, PrevHash: l.tip, Addr: addr,
		PipelineVersion: pipelineVersion, Platform: platformName, SpecKey: specKey,
	}
	r.Hash = hashRecord(r)
	line, err := json.Marshal(r)
	if err != nil {
		l.errs++
		return
	}
	if _, err := l.w.Write(append(line, '\n')); err != nil {
		l.errs++
		return
	}
	if err := l.w.Flush(); err != nil {
		l.errs++
		return
	}
	l.seq = r.Seq
	l.tip = r.Hash
	l.byAddr[addr] = r
}

// Lookup returns the chain record for a blob address.
func (l *Log) Lookup(addr string) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.byAddr[addr]
	return r, ok
}

// Stats returns the chain length and tip hash.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Records: l.seq, TipHash: l.tip}
}

// Close flushes and closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			l.f.Close()
			return err
		}
	}
	return l.f.Close()
}

// VerifyResult is what VerifyFile reports for an intact chain.
type VerifyResult struct {
	Records int64
	TipHash string
	// ByAddr indexes the chain for the against-store half of a full
	// verification (first record per address wins, matching Log).
	ByAddr map[string]Record
	// Hashes holds every record hash in the chain (plus the genesis
	// anchor): the membership set a peer-remembered tip is checked
	// against — a tip a peer observed must be this chain's current tip
	// or one of its ancestors, or the chain was rewritten.
	Hashes map[string]bool
}

// VerifyFile walks the chain at path without opening it for writing:
// every record must parse, link to its predecessor, and hash to its
// own Hash field. Unlike Open, a torn tail is also an error — offline
// verification has no business repairing anything. A missing file
// verifies as an empty chain.
func VerifyFile(path string) (*VerifyResult, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &VerifyResult{TipHash: genesisHash, ByAddr: map[string]Record{},
			Hashes: map[string]bool{genesisHash: true}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	res := &VerifyResult{TipHash: genesisHash, ByAddr: map[string]Record{},
		Hashes: map[string]bool{genesisHash: true}}
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("provenance: record %d is not valid JSON: %w", res.Records+1, err)
		}
		if err := verifyLink(r, res.Records+1, res.TipHash); err != nil {
			return nil, err
		}
		res.Records = r.Seq
		res.TipHash = r.Hash
		res.Hashes[r.Hash] = true
		if _, ok := res.ByAddr[r.Addr]; !ok {
			res.ByAddr[r.Addr] = r
		}
	}
	return res, nil
}
