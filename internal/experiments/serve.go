package experiments

import (
	"io"
	"strings"

	"dabench/internal/platform"
)

// SharedPlatform resolves a platform name to the process-wide cached
// simulator the experiment runners share. Serving layers must go
// through this accessor rather than wrap their own platform.Cached:
// one shared set is what makes identical specs coalesce in the
// singleflight compile/run cells whether they arrive from an
// experiment runner, a direct /v1/run request, or a sweep. Vendor
// aliases match the CLI's.
func SharedPlatform(name string) (platform.CachedPlatform, bool) {
	switch strings.ToLower(name) {
	case "wse", "wse-2", "cerebras":
		return wsePlat(), true
	case "rdu", "sn30", "sambanova":
		return rduPlat(), true
	case "ipu", "bow", "graphcore":
		return ipuPlat(), true
	case "gpu", "a100":
		return gpuPlat(), true
	default:
		return nil, false
	}
}

// PlatformNames lists the canonical shared-platform names.
func PlatformNames() []string { return []string{"wse", "rdu", "ipu", "gpu"} }

// Render writes the result's tables to w in the CLI's wire format:
// aligned text, or CSV when csv is set. Every table-producing surface
// renders through this one function — cmd/dabench (experiments and
// scenario runs alike), the HTTP server's /v1/experiments and
// /v1/scenarios endpoints, and async scenario job results — and that
// shared path is what keeps a served body byte-identical to the CLI's
// stdout for the same artifact.
func (r *Result) Render(w io.Writer, csv bool) error {
	for _, t := range r.Tables {
		var err error
		if csv {
			err = t.WriteCSV(w)
		} else {
			err = t.WriteText(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
