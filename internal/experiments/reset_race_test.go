package experiments

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"dabench/internal/memo"
)

// TestResetCachesRacesInFlight hammers ResetCaches while runners and
// direct compiles are in flight. The contract under test: a reset
// concurrent with traffic is always safe — in-flight work completes
// against the cells it started on, later requests see fresh cells, no
// request ever observes a poisoned (memo.ErrPanicked) or partial memo
// entry, and results stay byte-identical to an undisturbed run. CI
// runs this under -race.
func TestResetCachesRacesInFlight(t *testing.T) {
	// Undisturbed reference render of table1.
	ResetCaches()
	ref, err := All()["table1"](t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ref.Render(&want, false); err != nil {
		t.Fatal(err)
	}

	const (
		resets     = 50
		runners    = 4
		compilers  = 4
		iterations = 6
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < resets; i++ {
			select {
			case <-stop:
				return
			default:
				ResetCaches()
			}
		}
	}()

	errCh := make(chan error, runners*iterations+compilers*iterations)
	for g := 0; g < runners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				res, err := All()["table1"](t.Context())
				if err != nil {
					errCh <- err
					return
				}
				var got bytes.Buffer
				if err := res.Render(&got, false); err != nil {
					errCh <- err
					return
				}
				if got.String() != want.String() {
					t.Error("render diverged while racing ResetCaches")
					return
				}
			}
		}()
	}
	for g := 0; g < compilers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				// Re-resolve each iteration so post-reset wrappers get
				// traffic too, not just the set captured at test start.
				sim, _ := SharedPlatform("wse")
				cr, err := sim.Compile(gptSpec(12))
				if err != nil {
					errCh <- err
					return
				}
				if _, err := sim.Run(cr); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	close(errCh)
	for err := range errCh {
		if errors.Is(err, memo.ErrPanicked) {
			t.Fatalf("later request observed a poisoned memo cell: %v", err)
		}
		t.Errorf("request failed while racing ResetCaches: %v", err)
	}

	// The world after the dust settles must be a working cold cache.
	ResetCaches()
	res, err := All()["table1"](t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.Render(&got, false); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Error("post-race render diverged from reference")
	}
	if res.Cache.Misses == 0 {
		t.Errorf("post-reset run should miss cold caches: %+v", res.Cache)
	}
}
