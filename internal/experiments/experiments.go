// Package experiments contains one runner per table and figure in the
// paper's evaluation (Sections V and VI). Each runner sweeps the same
// workloads the paper used, drives the platform simulators through the
// DABench core, and returns the rows as a report.Table whose shape can
// be compared directly against the published artifact. EXPERIMENTS.md
// records paper-vs-measured values for every runner.
package experiments

import (
	"fmt"

	"dabench/internal/core"
	"dabench/internal/gpu"
	"dabench/internal/ipu"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/rdu"
	"dabench/internal/report"
	"dabench/internal/trace"
	"dabench/internal/workload"
	"dabench/internal/wse"
)

// Result bundles an experiment's table with its raw trace records.
type Result struct {
	ID     string
	Tables []*report.Table
	Trace  []trace.Record
}

// Runner executes one experiment.
type Runner func() (*Result, error)

// All maps experiment IDs (paper artifact numbers) to runners.
func All() map[string]Runner {
	return map[string]Runner{
		"table1":   TableI,
		"figure6":  Figure6,
		"figure7":  Figure7,
		"table2":   TableII,
		"figure8":  Figure8,
		"figure9":  Figure9,
		"figure10": Figure10,
		"table3":   TableIII,
		"figure11": Figure11,
		"figure12": Figure12,
		"table4":   TableIV,
	}
}

// IDs returns the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"table1", "figure6", "figure7", "table2", "figure8", "figure9",
		"figure10", "table3", "figure11", "figure12", "table4",
	}
}

const (
	defaultBatch = 512
	defaultSeq   = 1024
)

func gptSpec(l int) platform.TrainSpec {
	return platform.TrainSpec{
		Model: model.GPT2Small().WithLayers(l), Batch: defaultBatch, Seq: defaultSeq,
		Precision: precision.FP16,
	}
}

// TableI reproduces "PE allocation ratio across different layer
// configurations" on the WSE-2.
func TableI() (*Result, error) {
	sim := wse.New()
	tbl := report.New("Table I — WSE-2 PE allocation ratio vs. layer count (GPT-2 HS768)",
		"Layers", "PE alloc %", "Status")
	res := &Result{ID: "table1"}
	for _, l := range workload.PaperLayerPoints() {
		cr, err := sim.Compile(gptSpec(l))
		if err != nil {
			if !platform.IsCompileFailure(err) {
				return nil, err
			}
			tbl.Add(fmt.Sprint(l), "-", "Fail")
			res.Trace = append(res.Trace, trace.Record{
				Experiment: "table1", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l),
				Metric: "alloc%", Failed: true, Note: err.Error(),
			})
			continue
		}
		ratio := 100 * cr.AllocationRatio(platform.ResPE)
		tbl.Add(fmt.Sprint(l), report.F(ratio), "ok")
		res.Trace = append(res.Trace, trace.Record{
			Experiment: "table1", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l),
			Metric: "alloc%", Value: ratio,
		})
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}

// Figure6 reproduces the WSE-2 PE usage breakdown: computation PEs,
// transmission PEs, and per-attention-kernel PEs vs. layer count.
func Figure6() (*Result, error) {
	sim := wse.New()
	tbl := report.New("Figure 6 — WSE-2 PE usage breakdown (GPT-2 HS768)",
		"Layers", "Computation PEs", "Transmission PEs", "PEs per attention kernel")
	res := &Result{ID: "figure6"}
	for _, l := range []int{1, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60, 66, 72} {
		cr, err := sim.Compile(gptSpec(l))
		if err != nil {
			return nil, err
		}
		var compute, tx, attn float64
		for _, t := range cr.Tasks {
			switch {
			case t.Kind == "transmission":
				tx = t.Units[platform.ResPE]
			case t.Kind == "kernel":
				compute += t.Units[platform.ResPE]
				if t.Name == "L0/attention" {
					attn = t.Units[platform.ResPE]
				}
			}
		}
		tbl.Add(fmt.Sprint(l), report.F(compute), report.F(tx), report.F(attn))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure6", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "computePEs", Value: compute},
			trace.Record{Experiment: "figure6", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "txPEs", Value: tx},
			trace.Record{Experiment: "figure6", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "attnPEs", Value: attn},
		)
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}

// rduModes is the mode ladder of Figures 7–9.
var rduModes = []platform.CompileMode{platform.ModeO0, platform.ModeO1, platform.ModeO3}

// Figure7 reproduces the RDU resource-allocation ratios across layers
// (a) and hidden sizes (b) under O0/O1/O3.
func Figure7() (*Result, error) {
	sim := rdu.New()
	res := &Result{ID: "figure7"}

	a := report.New("Figure 7a — RDU allocation vs. layers (GPT-2 HS768)",
		"Mode", "Layers", "PCU %", "PMU %")
	for _, mode := range rduModes {
		for _, l := range []int{4, 8, 16, 24, 32, 48} {
			spec := gptSpec(l)
			spec.Batch = 4
			spec.Precision = precision.BF16
			spec.Par.Mode = mode
			cr, err := sim.Compile(spec)
			if err != nil {
				return nil, err
			}
			pcu := 100 * cr.AllocationRatio(platform.ResPCU)
			pmu := 100 * cr.AllocationRatio(platform.ResPMU)
			a.Add(mode.String(), fmt.Sprint(l), report.F(pcu), report.F(pmu))
			res.Trace = append(res.Trace,
				trace.Record{Experiment: "figure7", Platform: "RDU", Config: fmt.Sprintf("%s/L=%d", mode, l), Metric: "pcu%", Value: pcu},
				trace.Record{Experiment: "figure7", Platform: "RDU", Config: fmt.Sprintf("%s/L=%d", mode, l), Metric: "pmu%", Value: pmu},
			)
		}
	}

	b := report.New("Figure 7b — RDU allocation vs. hidden size",
		"Mode", "Hidden", "PCU %", "PMU %")
	for _, mode := range rduModes {
		hs := workload.PaperHiddenPointsSmall()
		fam := model.GPT2
		if mode == platform.ModeO1 {
			hs = workload.PaperHiddenPointsLarge()
			fam = model.LLaMA2
		}
		for _, h := range hs {
			spec := platform.TrainSpec{
				Model: model.DecoderBlock(fam, h).WithLayers(8), Batch: 4, Seq: defaultSeq,
				Precision: precision.BF16, Par: platform.Parallelism{Mode: mode},
			}
			cr, err := sim.Compile(spec)
			if err != nil {
				return nil, err
			}
			pcu := 100 * cr.AllocationRatio(platform.ResPCU)
			pmu := 100 * cr.AllocationRatio(platform.ResPMU)
			b.Add(mode.String(), fmt.Sprint(h), report.F(pcu), report.F(pmu))
			res.Trace = append(res.Trace,
				trace.Record{Experiment: "figure7", Platform: "RDU", Config: fmt.Sprintf("%s/H=%d", mode, h), Metric: "pcu%", Value: pcu},
			)
		}
	}
	res.Tables = []*report.Table{a, b}
	return res, nil
}

// TableII reproduces the O3 layer-partitioning utilizations (a) and
// the O1 LM-head shard info (b).
func TableII() (*Result, error) {
	sim := rdu.New()
	res := &Result{ID: "table2"}

	a := report.New("Table IIa — O3 forward/backward utilization and partition ratio",
		"Hidden", "Fwd util %", "Fwd sections/decoder", "Bwd util %", "Bwd sections/decoder")
	for _, h := range workload.PaperHiddenPointsSmall() {
		spec := platform.TrainSpec{
			Model: model.DecoderBlock(model.GPT2, h).WithLayers(12), Batch: 4, Seq: defaultSeq,
			Precision: precision.BF16, Par: platform.Parallelism{Mode: platform.ModeO3},
		}
		cr, err := sim.Compile(spec)
		if err != nil {
			return nil, err
		}
		var fwdPCU, bwdPCU, nFwd, nBwd float64
		for _, t := range cr.Tasks {
			if t.Kind != "section" {
				continue
			}
			switch {
			case hasPrefix(t.Name, "decoder.fwd"):
				fwdPCU += t.Units[platform.ResPCU]
				nFwd++
			case hasPrefix(t.Name, "decoder.bwd"):
				bwdPCU += t.Units[platform.ResPCU]
				nBwd++
			}
		}
		fu := 100 * fwdPCU / nFwd / rdu.PCUs
		bu := 100 * bwdPCU / nBwd / rdu.PCUs
		a.Add(fmt.Sprint(h), report.F(fu), report.F(nFwd/12), report.F(bu), report.F(nBwd/12))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "table2", Platform: "RDU", Config: fmt.Sprintf("O3/H=%d", h), Metric: "fwdUtil%", Value: fu},
			trace.Record{Experiment: "table2", Platform: "RDU", Config: fmt.Sprintf("O3/H=%d", h), Metric: "bwdUtil%", Value: bu},
		)
	}

	b := report.New("Table IIb — O1 LM-head shard sections (LLaMA-2 block)",
		"Hidden", "Shard sections", "PCU/section", "PMU/section")
	for _, h := range workload.PaperHiddenPointsLarge() {
		spec := platform.TrainSpec{
			Model: model.DecoderBlock(model.LLaMA2, h).WithLayers(8), Batch: 1, Seq: defaultSeq,
			Precision: precision.BF16, Par: platform.Parallelism{Mode: platform.ModeO1},
		}
		cr, err := sim.Compile(spec)
		if err != nil {
			return nil, err
		}
		var n, pcu, pmu float64
		for _, t := range cr.Tasks {
			if t.Kind == "section" && hasPrefix(t.Name, "lm-head.shard") {
				n++
				pcu = t.Units[platform.ResPCU]
				pmu = t.Units[platform.ResPMU]
			}
		}
		b.Add(fmt.Sprint(h), report.F(n), report.F(pcu), report.F(pmu))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "table2", Platform: "RDU", Config: fmt.Sprintf("O1/H=%d", h), Metric: "shardSections", Value: n},
			trace.Record{Experiment: "table2", Platform: "RDU", Config: fmt.Sprintf("O1/H=%d", h), Metric: "pcu/section", Value: pcu},
		)
	}
	res.Tables = []*report.Table{a, b}
	return res, nil
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// Figure8 reproduces load imbalance vs. layers (a) and hidden size (b)
// for the WSE (kernel level) and the RDU O1/O3 (operator level).
func Figure8() (*Result, error) {
	res := &Result{ID: "figure8"}
	w := wse.New()
	r := rdu.New()

	a := report.New("Figure 8a — LI vs. layer count", "Platform", "Layers", "LI")
	for _, l := range []int{4, 12, 24, 36, 48, 60} {
		wp, err := core.Profile(w, gptSpec(l))
		if err != nil {
			return nil, err
		}
		a.Add("WSE", fmt.Sprint(l), report.F(wp.LI))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure8", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "LI", Value: wp.LI})
		for _, mode := range []platform.CompileMode{platform.ModeO1, platform.ModeO3} {
			spec := gptSpec(l)
			spec.Batch = 4
			spec.Precision = precision.BF16
			spec.Par.Mode = mode
			cr, err := r.Compile(spec)
			if err != nil {
				return nil, err
			}
			li, err := r.LoadImbalance(cr)
			if err != nil {
				return nil, err
			}
			a.Add(mode.String(), fmt.Sprint(l), report.F(li))
			res.Trace = append(res.Trace, trace.Record{Experiment: "figure8", Platform: "RDU", Config: fmt.Sprintf("%s/L=%d", mode, l), Metric: "LI", Value: li})
		}
	}

	b := report.New("Figure 8b — RDU LI vs. hidden size", "Mode", "Hidden", "LI")
	for _, mode := range []platform.CompileMode{platform.ModeO1, platform.ModeO3} {
		hs := workload.PaperHiddenPointsSmall()
		fam := model.GPT2
		if mode == platform.ModeO1 {
			hs = workload.PaperHiddenPointsLarge()
			fam = model.LLaMA2
		}
		for _, h := range hs {
			spec := platform.TrainSpec{
				Model: model.DecoderBlock(fam, h).WithLayers(8), Batch: 4, Seq: defaultSeq,
				Precision: precision.BF16, Par: platform.Parallelism{Mode: mode},
			}
			cr, err := r.Compile(spec)
			if err != nil {
				return nil, err
			}
			li, err := r.LoadImbalance(cr)
			if err != nil {
				return nil, err
			}
			b.Add(mode.String(), fmt.Sprint(h), report.F(li))
			res.Trace = append(res.Trace, trace.Record{Experiment: "figure8", Platform: "RDU", Config: fmt.Sprintf("%s/H=%d", mode, h), Metric: "LI", Value: li})
		}
	}
	res.Tables = []*report.Table{a, b}
	return res, nil
}

// Figure9 reproduces the memory/compute interaction per chip: the
// WSE-2 percentage breakdown and TFLOPs (a), RDU TFLOPs vs. layers (b)
// and hidden size (c), IPU memory and TFLOPs vs. layers (d).
func Figure9() (*Result, error) {
	res := &Result{ID: "figure9"}
	w, r, i := wse.New(), rdu.New(), ipu.New()

	a := report.New("Figure 9a — WSE-2 memory breakdown and TFLOPs (GPT-2 HS768)",
		"Layers", "Config mem %", "Training mem %", "Total mem %", "TFLOPs")
	for _, l := range []int{6, 12, 18, 24, 30, 36, 42, 48, 54, 60} {
		cr, err := w.Compile(gptSpec(l))
		if err != nil {
			return nil, err
		}
		rr, err := w.Run(cr)
		if err != nil {
			return nil, err
		}
		cap := float64(cr.Memory.Capacity)
		cfg := 100 * float64(cr.Memory.Config) / cap
		train := 100 * float64(cr.Memory.Weights+cr.Memory.Activations) / cap
		a.Add(fmt.Sprint(l), report.F(cfg), report.F(train), report.F(cfg+train), report.F(rr.Achieved.TFLOPS()))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure9", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "configMem%", Value: cfg},
			trace.Record{Experiment: "figure9", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "TFLOPs", Value: rr.Achieved.TFLOPS()},
		)
	}

	b := report.New("Figure 9b — RDU TFLOPs vs. layers (GPT-2 HS768)", "Mode", "Layers", "TFLOPs")
	for _, mode := range rduModes {
		for _, l := range []int{4, 8, 16, 24, 32, 40} {
			spec := gptSpec(l)
			spec.Batch = 4
			spec.Precision = precision.BF16
			spec.Par.Mode = mode
			cr, err := r.Compile(spec)
			if err != nil {
				return nil, err
			}
			rr, err := r.Run(cr)
			if err != nil {
				return nil, err
			}
			b.Add(mode.String(), fmt.Sprint(l), report.F(rr.Achieved.TFLOPS()))
			res.Trace = append(res.Trace, trace.Record{Experiment: "figure9", Platform: "RDU", Config: fmt.Sprintf("%s/L=%d", mode, l), Metric: "TFLOPs", Value: rr.Achieved.TFLOPS()})
		}
	}

	c := report.New("Figure 9c — RDU TFLOPs vs. hidden size", "Mode", "Hidden", "TFLOPs")
	for _, mode := range rduModes {
		hs := workload.PaperHiddenPointsSmall()
		fam := model.GPT2
		if mode == platform.ModeO1 {
			hs = workload.PaperHiddenPointsLarge()
			fam = model.LLaMA2
		}
		for _, h := range hs {
			spec := platform.TrainSpec{
				Model: model.DecoderBlock(fam, h).WithLayers(8), Batch: 4, Seq: defaultSeq,
				Precision: precision.BF16, Par: platform.Parallelism{Mode: mode},
			}
			cr, err := r.Compile(spec)
			if err != nil {
				return nil, err
			}
			rr, err := r.Run(cr)
			if err != nil {
				return nil, err
			}
			c.Add(mode.String(), fmt.Sprint(h), report.F(rr.Achieved.TFLOPS()))
			res.Trace = append(res.Trace, trace.Record{Experiment: "figure9", Platform: "RDU", Config: fmt.Sprintf("%s/H=%d", mode, h), Metric: "TFLOPs", Value: rr.Achieved.TFLOPS()})
		}
	}

	d := report.New("Figure 9d — IPU memory and TFLOPs vs. layers (GPT-2 HS768)",
		"Layers", "Memory MB", "TFLOPs", "Status")
	for _, l := range []int{1, 2, 4, 6, 8, 10} {
		spec := platform.TrainSpec{
			Model: model.GPT2Small().WithLayers(l), Batch: 2048, Seq: defaultSeq,
			Precision: precision.FP16,
		}
		cr, err := i.Compile(spec)
		if err != nil {
			if !platform.IsCompileFailure(err) {
				return nil, err
			}
			d.Add(fmt.Sprint(l), "-", "-", "Fail")
			res.Trace = append(res.Trace, trace.Record{Experiment: "figure9", Platform: "IPU", Config: fmt.Sprintf("L=%d", l), Metric: "TFLOPs", Failed: true})
			continue
		}
		rr, err := i.Run(cr)
		if err != nil {
			return nil, err
		}
		d.Add(fmt.Sprint(l), report.F(cr.Memory.Used().MB()), report.F(rr.Achieved.TFLOPS()), "ok")
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure9", Platform: "IPU", Config: fmt.Sprintf("L=%d", l), Metric: "memMB", Value: cr.Memory.Used().MB()},
			trace.Record{Experiment: "figure9", Platform: "IPU", Config: fmt.Sprintf("L=%d", l), Metric: "TFLOPs", Value: rr.Achieved.TFLOPS()},
		)
	}
	res.Tables = []*report.Table{a, b, c, d}
	return res, nil
}

// Figure10 reproduces the per-chip rooflines at the global memory
// tier.
func Figure10() (*Result, error) {
	res := &Result{ID: "figure10"}
	tbl := report.New("Figure 10 — global-memory rooflines",
		"Platform", "Workload", "AI FLOPs/B", "Achieved TFLOPs", "Bound TFLOPs", "Regime")

	add := func(p platform.Platform, label string, spec platform.TrainSpec) error {
		prof, err := core.Profile(p, spec)
		if err != nil {
			return err
		}
		tbl.Add(p.Name(), label, report.F(prof.Run.AI), report.F(prof.Run.Achieved.TFLOPS()),
			report.F(prof.RooflineBound.TFLOPS()), prof.Regime.String())
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure10", Platform: p.Name(), Config: label, Metric: "AI", Value: prof.Run.AI},
			trace.Record{Experiment: "figure10", Platform: p.Name(), Config: label, Metric: "regime", Value: float64(prof.Regime), Note: prof.Regime.String()},
		)
		return nil
	}

	w := wse.New()
	for _, l := range []int{1, 6, 12, 18, 24, 30, 36, 42} {
		if err := add(w, fmt.Sprintf("%dL", l), gptSpec(l)); err != nil {
			return nil, err
		}
	}
	r := rdu.New()
	for _, h := range workload.PaperHiddenPointsLarge() {
		spec := platform.TrainSpec{
			Model: model.DecoderBlock(model.LLaMA2, h).WithLayers(8), Batch: 4, Seq: defaultSeq,
			Precision: precision.BF16, Par: platform.Parallelism{Mode: platform.ModeO1},
		}
		if err := add(r, fmt.Sprintf("H%d", h), spec); err != nil {
			return nil, err
		}
	}
	i := ipu.New()
	for _, pt := range []struct {
		label string
		l     int
	}{{"Low", 1}, {"Mid", 4}, {"High", 8}} {
		spec := platform.TrainSpec{
			Model: model.GPT2Small().WithLayers(pt.l), Batch: 2048, Seq: defaultSeq,
			Precision: precision.FP16,
		}
		if err := add(i, pt.label, spec); err != nil {
			return nil, err
		}
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}

// TableIII reproduces the multi-hardware scalability comparison.
func TableIII() (*Result, error) {
	res := &Result{ID: "table3"}
	tbl := report.New("Table III — multi-hardware scalability",
		"Device", "Configuration", "Model", "Throughput", "Unit")

	addRow := func(dev, cfg, mdl string, v float64, unit string) {
		tbl.Add(dev, cfg, mdl, report.F(v), unit)
		res.Trace = append(res.Trace, trace.Record{
			Experiment: "table3", Platform: dev, Model: mdl, Config: cfg,
			Metric: unit, Value: v,
		})
	}

	// WSE-2: intra-chip DP plus weight streaming.
	w := wse.New()
	wsePts := []struct {
		cfg string
		m   model.Config
		par platform.Parallelism
	}{
		{"DP0", model.GPT2Small(), platform.Parallelism{}},
		{"DP2", model.GPT2Small(), platform.Parallelism{DataParallel: 2}},
		{"DP4", model.GPTMini(), platform.Parallelism{DataParallel: 4}},
		{"DP8", model.GPTTiny(), platform.Parallelism{DataParallel: 8}},
		{"Streaming", model.GPT2Small(), platform.Parallelism{WeightStreaming: true}},
	}
	for _, p := range wsePts {
		spec := platform.TrainSpec{Model: p.m, Batch: defaultBatch, Seq: defaultSeq, Precision: precision.FP16, Par: p.par}
		cr, err := w.Compile(spec)
		if err != nil {
			return nil, err
		}
		rr, err := w.Run(cr)
		if err != nil {
			return nil, err
		}
		addRow("WSE-2", p.cfg, p.m.Name, rr.TokensPerSec, "tokens/s")
	}

	// IPU: pipeline parallelism over layer ladders.
	i := ipu.New()
	ipuPts := []struct {
		pp, layers int
	}{{4, 6}, {4, 12}, {8, 18}, {8, 24}, {16, 30}, {16, 36}, {16, 42}, {16, 48}}
	for _, p := range ipuPts {
		spec := platform.TrainSpec{
			Model: model.GPT2Small().WithLayers(p.layers), Batch: 2048, Seq: defaultSeq,
			Precision: precision.FP16, Par: platform.Parallelism{PipelineParallel: p.pp},
		}
		cr, err := i.Compile(spec)
		if err != nil {
			return nil, err
		}
		rr, err := i.Run(cr)
		if err != nil {
			return nil, err
		}
		addRow("IPU", fmt.Sprintf("PP%d", p.pp), fmt.Sprintf("%dL", p.layers), rr.SamplesPerSec, "samples/s")
	}

	// RDU: tensor parallelism on LLaMA-2 7B.
	r := rdu.New()
	for _, tp := range []int{2, 4, 8} {
		spec := platform.TrainSpec{
			Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: tp},
		}
		cr, err := r.Compile(spec)
		if err != nil {
			return nil, err
		}
		rr, err := r.Run(cr)
		if err != nil {
			return nil, err
		}
		addRow("RDU", fmt.Sprintf("TP%d", tp), "llama2-7b", rr.TokensPerSec, "tokens/s")
	}

	// GPU reference: Megatron decompositions of GPT-2 XL.
	g := gpu.New()
	gpuPts := []struct{ tp, pp, dp int }{
		{8, 1, 1}, {4, 2, 1}, {2, 4, 1}, {1, 8, 1}, {8, 8, 16}, {4, 4, 64},
	}
	for _, p := range gpuPts {
		spec := platform.TrainSpec{
			Model: model.GPT2XL(), Batch: 64, Seq: defaultSeq, Precision: precision.BF16,
			Par: platform.Parallelism{TensorParallel: p.tp, PipelineParallel: p.pp, DataParallel: p.dp},
		}
		cr, err := g.Compile(spec)
		if err != nil {
			return nil, err
		}
		rr, err := g.Run(cr)
		if err != nil {
			return nil, err
		}
		addRow("GPU", fmt.Sprintf("T%dP%dD%d", p.tp, p.pp, p.dp), "gpt2-xl", rr.SamplesPerSec, "samples/s")
	}

	res.Tables = []*report.Table{tbl}
	return res, nil
}

// Figure11 reproduces the scalability details: WSE replica throughput
// (a), RDU allocation vs TP (b), IPU throughput vs layer allocation (c).
func Figure11() (*Result, error) {
	res := &Result{ID: "figure11"}

	a := report.New("Figure 11a — WSE throughput vs. replicas (2/small, 4/mini, 8/tiny)",
		"Replicas", "Throughput tokens/s", "Computation-only tokens/s")
	w := wse.New()
	pairs := []struct {
		repl int
		m    model.Config
	}{{2, model.GPT2Small()}, {4, model.GPTMini()}, {8, model.GPTTiny()}}
	for _, pr := range pairs {
		repl := pr.repl
		spec := platform.TrainSpec{
			Model: pr.m, Batch: defaultBatch, Seq: defaultSeq, Precision: precision.FP16,
			Par: platform.Parallelism{DataParallel: repl},
		}
		cr, err := w.Compile(spec)
		if err != nil {
			return nil, err
		}
		rr, err := w.Run(cr)
		if err != nil {
			return nil, err
		}
		// Computation-only = the throughput with the replica
		// communication penalty removed (the gap of Figure 11a).
		penalty := 1.0
		if repl > 2 {
			penalty = 1 / (1 + 0.05*float64(repl-2))
		}
		a.Add(fmt.Sprint(repl), report.F(rr.TokensPerSec), report.F(rr.TokensPerSec/penalty))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure11", Platform: "WSE-2", Config: fmt.Sprintf("DP%d", repl), Metric: "tokens/s", Value: rr.TokensPerSec})
	}

	b := report.New("Figure 11b — RDU utilization vs. TP count (LLaMA-2 7B)",
		"TP", "PCU %", "PMU %")
	r := rdu.New()
	for _, tp := range []int{2, 4, 8} {
		spec := platform.TrainSpec{
			Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: tp},
		}
		cr, err := r.Compile(spec)
		if err != nil {
			return nil, err
		}
		pcu := 100 * cr.AllocationRatio(platform.ResPCU)
		pmu := 100 * cr.AllocationRatio(platform.ResPMU)
		b.Add(fmt.Sprint(tp), report.F(pcu), report.F(pmu))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure11", Platform: "RDU", Config: fmt.Sprintf("TP%d", tp), Metric: "pcu%", Value: pcu},
			trace.Record{Experiment: "figure11", Platform: "RDU", Config: fmt.Sprintf("TP%d", tp), Metric: "pmu%", Value: pmu},
		)
	}

	c := report.New("Figure 11c — IPU throughput vs. layer allocation",
		"Assignment", "Max layers/IPU", "Samples/s")
	i := ipu.New()
	assignments := [][]int{
		{2}, {4}, {6}, {8},
		{2, 2, 1, 1, 1, 1}, {1, 1, 1, 1, 2, 2},
		{4, 4, 4, 2, 2, 2}, {6, 5, 5, 3, 3, 3}, {6, 3, 3, 2, 2, 2},
	}
	for _, assign := range assignments {
		total, maxL := 0, 0
		for _, v := range assign {
			total += v
			if v > maxL {
				maxL = v
			}
		}
		spec := platform.TrainSpec{
			Model: model.GPT2Small().WithLayers(total), Batch: 2048, Seq: defaultSeq,
			Precision: precision.FP16,
			Par: platform.Parallelism{
				PipelineParallel: len(assign) + 1, LayerAssignment: assign,
			},
		}
		if len(assign) == 1 {
			spec.Par = platform.Parallelism{} // single-IPU points
		}
		cr, err := i.Compile(spec)
		if err != nil {
			return nil, err
		}
		rr, err := i.Run(cr)
		if err != nil {
			return nil, err
		}
		c.Add(fmt.Sprint(assign), fmt.Sprint(maxL), report.F(rr.SamplesPerSec))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure11", Platform: "IPU", Config: fmt.Sprint(assign), Metric: "samples/s", Value: rr.SamplesPerSec})
	}

	res.Tables = []*report.Table{a, b, c}
	return res, nil
}

// Figure12 reproduces the batch-size scaling per platform via the
// Tier-2 deployment optimizer.
func Figure12() (*Result, error) {
	res := &Result{ID: "figure12"}
	tbl := report.New("Figure 12 — throughput vs. batch size", "Platform", "Batch", "Tokens/s")

	cases := []struct {
		p       platform.Platform
		spec    platform.TrainSpec
		batches []int
	}{
		{wse.New(), platform.TrainSpec{Model: model.GPT2Small(), Seq: defaultSeq, Batch: 1, Precision: precision.FP16},
			[]int{25, 50, 100, 200, 400, 800, 1000}},
		{rdu.New(), platform.TrainSpec{Model: model.LLaMA2_7B(), Seq: 4096, Batch: 1, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: 2}},
			[]int{4, 6, 8, 10, 12, 14, 16}},
		{ipu.New(), platform.TrainSpec{Model: model.GPT2Small().WithLayers(4), Seq: defaultSeq, Batch: 1, Precision: precision.Mixed},
			[]int{50, 75, 100, 125, 150, 175, 200, 225}},
	}
	for _, c := range cases {
		rep, err := core.Deployment(c.p, c.spec, c.batches, []precision.Format{c.spec.Precision})
		if err != nil {
			return nil, err
		}
		for _, pt := range rep.BatchCurve {
			tbl.Add(c.p.Name(), pt.Label, report.F(pt.TokensPerSec))
			res.Trace = append(res.Trace, trace.Record{Experiment: "figure12", Platform: c.p.Name(), Config: pt.Label, Metric: "tokens/s", Value: pt.TokensPerSec})
		}
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}

// TableIV reproduces the mixed-precision throughput comparison.
func TableIV() (*Result, error) {
	res := &Result{ID: "table4"}
	tbl := report.New("Table IV — precision impact", "Platform", "Format", "Tokens/s", "Gain vs baseline")

	cases := []struct {
		p       platform.Platform
		spec    platform.TrainSpec
		formats []precision.Format
	}{
		{ipu.New(), platform.TrainSpec{Model: model.GPT2Small().WithLayers(2), Batch: 2048, Seq: defaultSeq, Precision: precision.FP32},
			[]precision.Format{precision.FP32, precision.Mixed}},
		{wse.New(), platform.TrainSpec{Model: model.GPT2Small(), Batch: defaultBatch, Seq: defaultSeq, Precision: precision.FP16},
			[]precision.Format{precision.FP16, precision.CB16}},
		{rdu.New(), platform.TrainSpec{Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: 2}},
			[]precision.Format{precision.BF16, precision.Mixed}},
	}
	for _, c := range cases {
		base := 0.0
		for idx, f := range c.formats {
			spec := c.spec
			spec.Precision = f
			cr, err := c.p.Compile(spec)
			if err != nil {
				return nil, err
			}
			rr, err := c.p.Run(cr)
			if err != nil {
				return nil, err
			}
			gain := "-"
			if idx == 0 {
				base = rr.TokensPerSec
			} else if base > 0 {
				gain = fmt.Sprintf("+%.1f%%", 100*(rr.TokensPerSec/base-1))
			}
			tbl.Add(c.p.Name(), f.String(), report.F(rr.TokensPerSec), gain)
			res.Trace = append(res.Trace, trace.Record{Experiment: "table4", Platform: c.p.Name(), Config: f.String(), Metric: "tokens/s", Value: rr.TokensPerSec})
		}
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}
