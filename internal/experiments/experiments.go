// Package experiments contains one runner per table and figure in the
// paper's evaluation (Sections V and VI). Each runner sweeps the same
// workloads the paper used, drives the platform simulators through the
// DABench core, and returns the rows as a report.Table whose shape can
// be compared directly against the published artifact. EXPERIMENTS.md
// records paper-vs-measured values for every runner.
//
// All runners share one memoized simulator per platform
// (platform.Cached) and fan their sweep points out on the sweep
// engine's worker pool, so identical compiles across experiments (e.g.
// the GPT-2 layer ladder that Table I, Figure 6, Figure 9a and Figure
// 10 all walk) run once per process. Results are assembled strictly in
// sweep-input order, so the emitted tables and trace records are
// byte-identical to a serial run — the parallel_test.go determinism
// suite enforces this.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dabench/internal/core"
	"dabench/internal/faults"
	"dabench/internal/gpu"
	"dabench/internal/graph"
	"dabench/internal/ipu"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/rdu"
	"dabench/internal/report"
	"dabench/internal/sweep"
	"dabench/internal/trace"
	"dabench/internal/workload"
	"dabench/internal/wse"
)

// Result bundles an experiment's table with its raw trace records.
type Result struct {
	ID     string
	Tables []*report.Table
	Trace  []trace.Record
	// Cache is the shared compile-cache activity attributable to this
	// run (hit/miss deltas across all platforms).
	Cache platform.CacheStats
	// RunCache is the run-report cache activity attributable to this
	// run (hit/miss deltas across all platforms).
	RunCache platform.CacheStats
	// GraphCache is the graph build-cache activity attributable to this
	// run (the tier below the compile cache).
	GraphCache platform.CacheStats
	// Elapsed is the runner's wall-clock time.
	Elapsed time.Duration
}

// Runner executes one experiment. The context bounds every sweep the
// runner fans out: cancelling it (a serving deadline, a dropped HTTP
// client, SIGTERM drain) stops the worker pool and surfaces ctx's
// error instead of a partial result.
type Runner func(ctx context.Context) (*Result, error)

// --- Shared memoized platforms ---------------------------------------------

var (
	platMu      sync.RWMutex
	resultStore platform.ResultStore // persistent L2 under every tier; nil = RAM only
	cachedWSE   = platform.Cached(wse.New())
	cachedRDU   = platform.Cached(rdu.New())
	cachedIPU   = platform.Cached(ipu.New())
	cachedGPU   = platform.Cached(gpu.New())
)

func wsePlat() platform.CachedPlatform { platMu.RLock(); defer platMu.RUnlock(); return cachedWSE }
func rduPlat() platform.CachedPlatform { platMu.RLock(); defer platMu.RUnlock(); return cachedRDU }
func ipuPlat() platform.CachedPlatform { platMu.RLock(); defer platMu.RUnlock(); return cachedIPU }
func gpuPlat() platform.CachedPlatform { platMu.RLock(); defer platMu.RUnlock(); return cachedGPU }

// ResetCaches discards every in-memory memoization tier the runners
// share — the platform compile/run caches and the graph build cache
// below them — and zeroes all counters, then fires every OnReset hook.
// Benchmarks use it for cold-cache iterations. The persistent result
// store, if one is installed, survives: it is the durable tier, dropped
// only by SetResultStore(nil) or deleting the data directory.
func ResetCaches() {
	platMu.Lock()
	rebuildLocked()
	graph.ResetCache()
	platMu.Unlock()

	resetHookMu.Lock()
	hooks := make([]func(), 0, len(resetHooks))
	for _, fn := range resetHooks {
		hooks = append(hooks, fn)
	}
	resetHookMu.Unlock()
	// Hooks run outside every lock: a hook may itself consult
	// experiments state without deadlocking.
	for _, fn := range hooks {
		fn()
	}
}

var (
	resetHookMu   sync.Mutex
	resetHooks    = map[int]func(){}
	nextResetHook int
)

// OnReset registers fn to run after every ResetCaches, so caches built
// above this package (the server's response-byte tier) invalidate in
// lockstep with the tiers below them. The returned cancel unregisters
// fn — callers that close must cancel, or the hook pins them alive.
func OnReset(fn func()) (cancel func()) {
	resetHookMu.Lock()
	id := nextResetHook
	nextResetHook++
	resetHooks[id] = fn
	resetHookMu.Unlock()
	return func() {
		resetHookMu.Lock()
		delete(resetHooks, id)
		resetHookMu.Unlock()
	}
}

// SetResultStore installs rs as the persistent read-through /
// write-behind L2 under every shared platform's compile and run tiers
// (nil uninstalls it). The in-memory cells are rebuilt empty: entries
// already computed are either in rs (warm again after one lookup) or
// recomputable. Both dabenchd and the CLI's -data-dir route through
// this one seam, which is what lets a CLI run after a daemon sweep hit
// the daemon's persisted results.
func SetResultStore(rs platform.ResultStore) {
	platMu.Lock()
	defer platMu.Unlock()
	resultStore = rs
	rebuildLocked()
}

// SetFaultInjector mounts (or, with nil, unmounts) a fault injector on
// the shared pipeline: the compile hook inside every cached platform.
// It rides beside SetResultStore as the one seam both CLIs use, so a
// -fault-spec flag reaches every tier the store's own Options.Injector
// does not cover.
func SetFaultInjector(in *faults.Injector) {
	platform.SetFaultInjector(in)
}

// SetStageHook mounts (or, with nil, unmounts) the pipeline stage
// observer on the shared platforms — fired around every real Compile
// and Run (never on cache hits), with the platform name, stage and
// wall-clock duration. The server's /metrics stage histograms are the
// intended consumer; like the fault seam above, it survives the
// rebuilds SetResultStore triggers.
func SetStageHook(fn platform.StageHook) {
	platform.SetStageHook(fn)
}

func rebuildLocked() {
	cachedWSE = platform.CachedWithStore(wse.New(), resultStore)
	cachedRDU = platform.CachedWithStore(rdu.New(), resultStore)
	cachedIPU = platform.CachedWithStore(ipu.New(), resultStore)
	cachedGPU = platform.CachedWithStore(gpu.New(), resultStore)
}

// CacheStats aggregates the compile-cache counters across the four
// shared platforms.
func CacheStats() platform.CacheStats {
	platMu.RLock()
	defer platMu.RUnlock()
	var s platform.CacheStats
	for _, c := range []platform.CachedPlatform{cachedWSE, cachedRDU, cachedIPU, cachedGPU} {
		s = s.Add(c.CacheStats())
	}
	return s
}

// RunCacheStats aggregates the run-report cache counters across the
// four shared platforms.
func RunCacheStats() platform.CacheStats {
	platMu.RLock()
	defer platMu.RUnlock()
	var s platform.CacheStats
	for _, c := range []platform.CachedPlatform{cachedWSE, cachedRDU, cachedIPU, cachedGPU} {
		s = s.Add(c.RunCacheStats())
	}
	return s
}

// GraphCacheStats reports the graph build cache's counters (the shared
// tier below every platform's compile cache).
func GraphCacheStats() platform.CacheStats { return graph.Stats() }

// instrument decorates a runner with cache-delta and wall-clock
// accounting across all three memoization tiers.
func instrument(f Runner) Runner {
	return func(ctx context.Context) (*Result, error) {
		start := time.Now()
		before := CacheStats()
		beforeRun := RunCacheStats()
		beforeGraph := GraphCacheStats()
		res, err := f(ctx)
		if err != nil {
			return nil, err
		}
		res.Cache = CacheStats().Sub(before)
		res.RunCache = RunCacheStats().Sub(beforeRun)
		res.GraphCache = GraphCacheStats().Sub(beforeGraph)
		res.Elapsed = time.Since(start)
		return res, nil
	}
}

// All maps experiment IDs (paper artifact numbers) to instrumented
// runners.
func All() map[string]Runner {
	return map[string]Runner{
		"table1":   instrument(TableI),
		"figure6":  instrument(Figure6),
		"figure7":  instrument(Figure7),
		"table2":   instrument(TableII),
		"figure8":  instrument(Figure8),
		"figure9":  instrument(Figure9),
		"figure10": instrument(Figure10),
		"table3":   instrument(TableIII),
		"figure11": instrument(Figure11),
		"figure12": instrument(Figure12),
		"table4":   instrument(TableIV),
	}
}

// IDs returns the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"table1", "figure6", "figure7", "table2", "figure8", "figure9",
		"figure10", "table3", "figure11", "figure12", "table4",
	}
}

const (
	defaultBatch = 512
	defaultSeq   = 1024
)

func gptSpec(l int) platform.TrainSpec {
	return platform.TrainSpec{
		Model: model.GPT2Small().WithLayers(l), Batch: defaultBatch, Seq: defaultSeq,
		Precision: precision.FP16,
	}
}

// TableI reproduces "PE allocation ratio across different layer
// configurations" on the WSE-2.
func TableI(ctx context.Context) (*Result, error) {
	sim := wsePlat()
	tbl := report.New("Table I — WSE-2 PE allocation ratio vs. layer count (GPT-2 HS768)",
		"Layers", "PE alloc %", "Status")
	res := &Result{ID: "table1"}
	layers := workload.PaperLayerPoints()
	outs, err := sweep.Map(ctx, layers,
		func(_ context.Context, _ int, l int) (float64, error) {
			cr, err := sim.Compile(gptSpec(l))
			if err != nil {
				return 0, err
			}
			return 100 * cr.AllocationRatio(platform.ResPE), nil
		})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		l := layers[i]
		if o.Failed() {
			tbl.Add(fmt.Sprint(l), "-", "Fail")
			res.Trace = append(res.Trace, trace.Record{
				Experiment: "table1", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l),
				Metric: "alloc%", Failed: true, Note: o.Err.Error(),
			})
			continue
		}
		tbl.Add(fmt.Sprint(l), report.F(o.Value), "ok")
		res.Trace = append(res.Trace, trace.Record{
			Experiment: "table1", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l),
			Metric: "alloc%", Value: o.Value,
		})
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}

// Figure6 reproduces the WSE-2 PE usage breakdown: computation PEs,
// transmission PEs, and per-attention-kernel PEs vs. layer count.
func Figure6(ctx context.Context) (*Result, error) {
	sim := wsePlat()
	tbl := report.New("Figure 6 — WSE-2 PE usage breakdown (GPT-2 HS768)",
		"Layers", "Computation PEs", "Transmission PEs", "PEs per attention kernel")
	res := &Result{ID: "figure6"}
	layers := []int{1, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60, 66, 72}
	type row struct{ compute, tx, attn float64 }
	outs, err := sweep.Map(ctx, layers,
		func(_ context.Context, _ int, l int) (row, error) {
			cr, err := sim.Compile(gptSpec(l))
			if err != nil {
				return row{}, err
			}
			var r row
			for _, t := range cr.Tasks {
				switch {
				case t.Kind == "transmission":
					r.tx = t.Units[platform.ResPE]
				case t.Kind == "kernel":
					r.compute += t.Units[platform.ResPE]
					if t.Name == "L0/attention" {
						r.attn = t.Units[platform.ResPE]
					}
				}
			}
			return r, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		l, r := layers[i], o.Value
		tbl.Add(fmt.Sprint(l), report.F(r.compute), report.F(r.tx), report.F(r.attn))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure6", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "computePEs", Value: r.compute},
			trace.Record{Experiment: "figure6", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "txPEs", Value: r.tx},
			trace.Record{Experiment: "figure6", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "attnPEs", Value: r.attn},
		)
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}

// rduModes is the mode ladder of Figures 7–9.
var rduModes = []platform.CompileMode{platform.ModeO0, platform.ModeO1, platform.ModeO3}

// modeHiddenPoints flattens the (mode × hidden-size) sweep of Figures
// 7b/8b/9c: O0/O3 walk the small GPT-2 ladder, O1 the large LLaMA-2
// one.
type modeHidden struct {
	mode platform.CompileMode
	h    int
	fam  model.Family
}

func modeHiddenPoints(modes []platform.CompileMode) []modeHidden {
	var pts []modeHidden
	for _, mode := range modes {
		hs := workload.PaperHiddenPointsSmall()
		fam := model.GPT2
		if mode == platform.ModeO1 {
			hs = workload.PaperHiddenPointsLarge()
			fam = model.LLaMA2
		}
		for _, h := range hs {
			pts = append(pts, modeHidden{mode: mode, h: h, fam: fam})
		}
	}
	return pts
}

func (p modeHidden) spec(layers, batch int) platform.TrainSpec {
	return platform.TrainSpec{
		Model: model.DecoderBlock(p.fam, p.h).WithLayers(layers), Batch: batch, Seq: defaultSeq,
		Precision: precision.BF16, Par: platform.Parallelism{Mode: p.mode},
	}
}

// modeLayer flattens the (mode × layer-count) RDU sweeps.
type modeLayer struct {
	mode platform.CompileMode
	l    int
}

func modeLayerPoints(modes []platform.CompileMode, layers []int) []modeLayer {
	pts := make([]modeLayer, 0, len(modes)*len(layers))
	for _, mode := range modes {
		for _, l := range layers {
			pts = append(pts, modeLayer{mode: mode, l: l})
		}
	}
	return pts
}

func (p modeLayer) spec() platform.TrainSpec {
	spec := gptSpec(p.l)
	spec.Batch = 4
	spec.Precision = precision.BF16
	spec.Par.Mode = p.mode
	return spec
}

// Figure7 reproduces the RDU resource-allocation ratios across layers
// (a) and hidden sizes (b) under O0/O1/O3.
func Figure7(ctx context.Context) (*Result, error) {
	sim := rduPlat()
	res := &Result{ID: "figure7"}
	type alloc struct{ pcu, pmu float64 }

	a := report.New("Figure 7a — RDU allocation vs. layers (GPT-2 HS768)",
		"Mode", "Layers", "PCU %", "PMU %")
	aPts := modeLayerPoints(rduModes, []int{4, 8, 16, 24, 32, 48})
	aOuts, err := sweep.Map(ctx, aPts,
		func(_ context.Context, _ int, pt modeLayer) (alloc, error) {
			cr, err := sim.Compile(pt.spec())
			if err != nil {
				return alloc{}, err
			}
			return alloc{
				pcu: 100 * cr.AllocationRatio(platform.ResPCU),
				pmu: 100 * cr.AllocationRatio(platform.ResPMU),
			}, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for i, o := range aOuts {
		pt, v := aPts[i], o.Value
		a.Add(pt.mode.String(), fmt.Sprint(pt.l), report.F(v.pcu), report.F(v.pmu))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure7", Platform: "RDU", Config: fmt.Sprintf("%s/L=%d", pt.mode, pt.l), Metric: "pcu%", Value: v.pcu},
			trace.Record{Experiment: "figure7", Platform: "RDU", Config: fmt.Sprintf("%s/L=%d", pt.mode, pt.l), Metric: "pmu%", Value: v.pmu},
		)
	}

	b := report.New("Figure 7b — RDU allocation vs. hidden size",
		"Mode", "Hidden", "PCU %", "PMU %")
	bPts := modeHiddenPoints(rduModes)
	bOuts, err := sweep.Map(ctx, bPts,
		func(_ context.Context, _ int, pt modeHidden) (alloc, error) {
			cr, err := sim.Compile(pt.spec(8, 4))
			if err != nil {
				return alloc{}, err
			}
			return alloc{
				pcu: 100 * cr.AllocationRatio(platform.ResPCU),
				pmu: 100 * cr.AllocationRatio(platform.ResPMU),
			}, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for i, o := range bOuts {
		pt, v := bPts[i], o.Value
		b.Add(pt.mode.String(), fmt.Sprint(pt.h), report.F(v.pcu), report.F(v.pmu))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure7", Platform: "RDU", Config: fmt.Sprintf("%s/H=%d", pt.mode, pt.h), Metric: "pcu%", Value: v.pcu},
		)
	}
	res.Tables = []*report.Table{a, b}
	return res, nil
}

// TableII reproduces the O3 layer-partitioning utilizations (a) and
// the O1 LM-head shard info (b).
func TableII(ctx context.Context) (*Result, error) {
	sim := rduPlat()
	res := &Result{ID: "table2"}

	a := report.New("Table IIa — O3 forward/backward utilization and partition ratio",
		"Hidden", "Fwd util %", "Fwd sections/decoder", "Bwd util %", "Bwd sections/decoder")
	type o3row struct{ fu, bu, nFwd, nBwd float64 }
	small := workload.PaperHiddenPointsSmall()
	aOuts, err := sweep.Map(ctx, small,
		func(_ context.Context, _ int, h int) (o3row, error) {
			spec := platform.TrainSpec{
				Model: model.DecoderBlock(model.GPT2, h).WithLayers(12), Batch: 4, Seq: defaultSeq,
				Precision: precision.BF16, Par: platform.Parallelism{Mode: platform.ModeO3},
			}
			cr, err := sim.Compile(spec)
			if err != nil {
				return o3row{}, err
			}
			var r o3row
			var fwdPCU, bwdPCU float64
			for _, t := range cr.Tasks {
				if t.Kind != "section" {
					continue
				}
				switch {
				case hasPrefix(t.Name, "decoder.fwd"):
					fwdPCU += t.Units[platform.ResPCU]
					r.nFwd++
				case hasPrefix(t.Name, "decoder.bwd"):
					bwdPCU += t.Units[platform.ResPCU]
					r.nBwd++
				}
			}
			r.fu = 100 * fwdPCU / r.nFwd / rdu.PCUs
			r.bu = 100 * bwdPCU / r.nBwd / rdu.PCUs
			return r, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for i, o := range aOuts {
		h, r := small[i], o.Value
		a.Add(fmt.Sprint(h), report.F(r.fu), report.F(r.nFwd/12), report.F(r.bu), report.F(r.nBwd/12))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "table2", Platform: "RDU", Config: fmt.Sprintf("O3/H=%d", h), Metric: "fwdUtil%", Value: r.fu},
			trace.Record{Experiment: "table2", Platform: "RDU", Config: fmt.Sprintf("O3/H=%d", h), Metric: "bwdUtil%", Value: r.bu},
		)
	}

	b := report.New("Table IIb — O1 LM-head shard sections (LLaMA-2 block)",
		"Hidden", "Shard sections", "PCU/section", "PMU/section")
	type o1row struct{ n, pcu, pmu float64 }
	large := workload.PaperHiddenPointsLarge()
	bOuts, err := sweep.Map(ctx, large,
		func(_ context.Context, _ int, h int) (o1row, error) {
			spec := platform.TrainSpec{
				Model: model.DecoderBlock(model.LLaMA2, h).WithLayers(8), Batch: 1, Seq: defaultSeq,
				Precision: precision.BF16, Par: platform.Parallelism{Mode: platform.ModeO1},
			}
			cr, err := sim.Compile(spec)
			if err != nil {
				return o1row{}, err
			}
			var r o1row
			for _, t := range cr.Tasks {
				if t.Kind == "section" && hasPrefix(t.Name, "lm-head.shard") {
					r.n++
					r.pcu = t.Units[platform.ResPCU]
					r.pmu = t.Units[platform.ResPMU]
				}
			}
			return r, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for i, o := range bOuts {
		h, r := large[i], o.Value
		b.Add(fmt.Sprint(h), report.F(r.n), report.F(r.pcu), report.F(r.pmu))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "table2", Platform: "RDU", Config: fmt.Sprintf("O1/H=%d", h), Metric: "shardSections", Value: r.n},
			trace.Record{Experiment: "table2", Platform: "RDU", Config: fmt.Sprintf("O1/H=%d", h), Metric: "pcu/section", Value: r.pcu},
		)
	}
	res.Tables = []*report.Table{a, b}
	return res, nil
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// rduLI returns the RDU's native operator-level LI through the cached
// wrapper (which forwards platform.Imbalancer).
func rduLI(sim platform.Platform, cr *platform.CompileReport) (float64, error) {
	im, ok := sim.(platform.Imbalancer)
	if !ok {
		return 0, fmt.Errorf("experiments: %s lacks native load imbalance", sim.Name())
	}
	return im.LoadImbalance(cr)
}

// Figure8 reproduces load imbalance vs. layers (a) and hidden size (b)
// for the WSE (kernel level) and the RDU O1/O3 (operator level).
func Figure8(ctx context.Context) (*Result, error) {
	res := &Result{ID: "figure8"}
	w := wsePlat()
	r := rduPlat()

	a := report.New("Figure 8a — LI vs. layer count", "Platform", "Layers", "LI")
	layers := []int{4, 12, 24, 36, 48, 60}
	type liRow struct{ wse, o1, o3 float64 }
	aOuts, err := sweep.Map(ctx, layers,
		func(_ context.Context, _ int, l int) (liRow, error) {
			var row liRow
			wp, err := core.Profile(w, gptSpec(l))
			if err != nil {
				return row, err
			}
			row.wse = wp.LI
			for _, mode := range []platform.CompileMode{platform.ModeO1, platform.ModeO3} {
				spec := gptSpec(l)
				spec.Batch = 4
				spec.Precision = precision.BF16
				spec.Par.Mode = mode
				cr, err := r.Compile(spec)
				if err != nil {
					return row, err
				}
				li, err := rduLI(r, cr)
				if err != nil {
					return row, err
				}
				if mode == platform.ModeO1 {
					row.o1 = li
				} else {
					row.o3 = li
				}
			}
			return row, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for i, o := range aOuts {
		l, row := layers[i], o.Value
		a.Add("WSE", fmt.Sprint(l), report.F(row.wse))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure8", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "LI", Value: row.wse})
		a.Add("O1", fmt.Sprint(l), report.F(row.o1))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure8", Platform: "RDU", Config: fmt.Sprintf("O1/L=%d", l), Metric: "LI", Value: row.o1})
		a.Add("O3", fmt.Sprint(l), report.F(row.o3))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure8", Platform: "RDU", Config: fmt.Sprintf("O3/L=%d", l), Metric: "LI", Value: row.o3})
	}

	b := report.New("Figure 8b — RDU LI vs. hidden size", "Mode", "Hidden", "LI")
	bPts := modeHiddenPoints([]platform.CompileMode{platform.ModeO1, platform.ModeO3})
	bOuts, err := sweep.Map(ctx, bPts,
		func(_ context.Context, _ int, pt modeHidden) (float64, error) {
			cr, err := r.Compile(pt.spec(8, 4))
			if err != nil {
				return 0, err
			}
			return rduLI(r, cr)
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for i, o := range bOuts {
		pt := bPts[i]
		b.Add(pt.mode.String(), fmt.Sprint(pt.h), report.F(o.Value))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure8", Platform: "RDU", Config: fmt.Sprintf("%s/H=%d", pt.mode, pt.h), Metric: "LI", Value: o.Value})
	}
	res.Tables = []*report.Table{a, b}
	return res, nil
}

// Figure9 reproduces the memory/compute interaction per chip: the
// WSE-2 percentage breakdown and TFLOPs (a), RDU TFLOPs vs. layers (b)
// and hidden size (c), IPU memory and TFLOPs vs. layers (d).
func Figure9(ctx context.Context) (*Result, error) {
	res := &Result{ID: "figure9"}
	w, r, i := wsePlat(), rduPlat(), ipuPlat()

	a := report.New("Figure 9a — WSE-2 memory breakdown and TFLOPs (GPT-2 HS768)",
		"Layers", "Config mem %", "Training mem %", "Total mem %", "TFLOPs")
	aLayers := []int{6, 12, 18, 24, 30, 36, 42, 48, 54, 60}
	type memRow struct{ cfg, train, tflops float64 }
	aOuts, err := sweep.Map(ctx, aLayers,
		func(_ context.Context, _ int, l int) (memRow, error) {
			cr, err := w.Compile(gptSpec(l))
			if err != nil {
				return memRow{}, err
			}
			rr, err := w.Run(cr)
			if err != nil {
				return memRow{}, err
			}
			cap := float64(cr.Memory.Capacity)
			return memRow{
				cfg:    100 * float64(cr.Memory.Config) / cap,
				train:  100 * float64(cr.Memory.Weights+cr.Memory.Activations) / cap,
				tflops: rr.Achieved.TFLOPS(),
			}, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for idx, o := range aOuts {
		l, v := aLayers[idx], o.Value
		a.Add(fmt.Sprint(l), report.F(v.cfg), report.F(v.train), report.F(v.cfg+v.train), report.F(v.tflops))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure9", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "configMem%", Value: v.cfg},
			trace.Record{Experiment: "figure9", Platform: "WSE-2", Config: fmt.Sprintf("L=%d", l), Metric: "TFLOPs", Value: v.tflops},
		)
	}

	b := report.New("Figure 9b — RDU TFLOPs vs. layers (GPT-2 HS768)", "Mode", "Layers", "TFLOPs")
	bPts := modeLayerPoints(rduModes, []int{4, 8, 16, 24, 32, 40})
	bOuts, err := sweep.Map(ctx, bPts,
		func(_ context.Context, _ int, pt modeLayer) (float64, error) {
			cr, err := r.Compile(pt.spec())
			if err != nil {
				return 0, err
			}
			rr, err := r.Run(cr)
			if err != nil {
				return 0, err
			}
			return rr.Achieved.TFLOPS(), nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for idx, o := range bOuts {
		pt := bPts[idx]
		b.Add(pt.mode.String(), fmt.Sprint(pt.l), report.F(o.Value))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure9", Platform: "RDU", Config: fmt.Sprintf("%s/L=%d", pt.mode, pt.l), Metric: "TFLOPs", Value: o.Value})
	}

	c := report.New("Figure 9c — RDU TFLOPs vs. hidden size", "Mode", "Hidden", "TFLOPs")
	cPts := modeHiddenPoints(rduModes)
	cOuts, err := sweep.Map(ctx, cPts,
		func(_ context.Context, _ int, pt modeHidden) (float64, error) {
			cr, err := r.Compile(pt.spec(8, 4))
			if err != nil {
				return 0, err
			}
			rr, err := r.Run(cr)
			if err != nil {
				return 0, err
			}
			return rr.Achieved.TFLOPS(), nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for idx, o := range cOuts {
		pt := cPts[idx]
		c.Add(pt.mode.String(), fmt.Sprint(pt.h), report.F(o.Value))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure9", Platform: "RDU", Config: fmt.Sprintf("%s/H=%d", pt.mode, pt.h), Metric: "TFLOPs", Value: o.Value})
	}

	d := report.New("Figure 9d — IPU memory and TFLOPs vs. layers (GPT-2 HS768)",
		"Layers", "Memory MB", "TFLOPs", "Status")
	dLayers := []int{1, 2, 4, 6, 8, 10}
	type ipuRow struct{ memMB, tflops float64 }
	dOuts, err := sweep.Map(ctx, dLayers,
		func(_ context.Context, _ int, l int) (ipuRow, error) {
			spec := platform.TrainSpec{
				Model: model.GPT2Small().WithLayers(l), Batch: 2048, Seq: defaultSeq,
				Precision: precision.FP16,
			}
			cr, err := i.Compile(spec)
			if err != nil {
				return ipuRow{}, err
			}
			rr, err := i.Run(cr)
			if err != nil {
				return ipuRow{}, err
			}
			return ipuRow{memMB: cr.Memory.Used().MB(), tflops: rr.Achieved.TFLOPS()}, nil
		})
	if err != nil {
		return nil, err
	}
	for idx, o := range dOuts {
		l := dLayers[idx]
		if o.Failed() {
			d.Add(fmt.Sprint(l), "-", "-", "Fail")
			res.Trace = append(res.Trace, trace.Record{Experiment: "figure9", Platform: "IPU", Config: fmt.Sprintf("L=%d", l), Metric: "TFLOPs", Failed: true})
			continue
		}
		v := o.Value
		d.Add(fmt.Sprint(l), report.F(v.memMB), report.F(v.tflops), "ok")
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure9", Platform: "IPU", Config: fmt.Sprintf("L=%d", l), Metric: "memMB", Value: v.memMB},
			trace.Record{Experiment: "figure9", Platform: "IPU", Config: fmt.Sprintf("L=%d", l), Metric: "TFLOPs", Value: v.tflops},
		)
	}
	res.Tables = []*report.Table{a, b, c, d}
	return res, nil
}

// Figure10 reproduces the per-chip rooflines at the global memory
// tier.
func Figure10(ctx context.Context) (*Result, error) {
	res := &Result{ID: "figure10"}
	tbl := report.New("Figure 10 — global-memory rooflines",
		"Platform", "Workload", "AI FLOPs/B", "Achieved TFLOPs", "Bound TFLOPs", "Regime")

	type rfPt struct {
		p     platform.Platform
		label string
		spec  platform.TrainSpec
	}
	var pts []rfPt
	w := wsePlat()
	for _, l := range []int{1, 6, 12, 18, 24, 30, 36, 42} {
		pts = append(pts, rfPt{w, fmt.Sprintf("%dL", l), gptSpec(l)})
	}
	r := rduPlat()
	for _, h := range workload.PaperHiddenPointsLarge() {
		pts = append(pts, rfPt{r, fmt.Sprintf("H%d", h), platform.TrainSpec{
			Model: model.DecoderBlock(model.LLaMA2, h).WithLayers(8), Batch: 4, Seq: defaultSeq,
			Precision: precision.BF16, Par: platform.Parallelism{Mode: platform.ModeO1},
		}})
	}
	i := ipuPlat()
	for _, pt := range []struct {
		label string
		l     int
	}{{"Low", 1}, {"Mid", 4}, {"High", 8}} {
		pts = append(pts, rfPt{i, pt.label, platform.TrainSpec{
			Model: model.GPT2Small().WithLayers(pt.l), Batch: 2048, Seq: defaultSeq,
			Precision: precision.FP16,
		}})
	}

	outs, err := sweep.Map(ctx, pts,
		func(_ context.Context, _ int, pt rfPt) (*core.Tier1Result, error) {
			return core.Profile(pt.p, pt.spec)
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for idx, o := range outs {
		pt, prof := pts[idx], o.Value
		tbl.Add(pt.p.Name(), pt.label, report.F(prof.Run.AI), report.F(prof.Run.Achieved.TFLOPS()),
			report.F(prof.RooflineBound.TFLOPS()), prof.Regime.String())
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure10", Platform: pt.p.Name(), Config: pt.label, Metric: "AI", Value: prof.Run.AI},
			trace.Record{Experiment: "figure10", Platform: pt.p.Name(), Config: pt.label, Metric: "regime", Value: float64(prof.Regime), Note: prof.Regime.String()},
		)
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}

// TableIII reproduces the multi-hardware scalability comparison.
func TableIII(ctx context.Context) (*Result, error) {
	res := &Result{ID: "table3"}
	tbl := report.New("Table III — multi-hardware scalability",
		"Device", "Configuration", "Model", "Throughput", "Unit")

	type t3Pt struct {
		p          platform.Platform
		dev        string
		cfg        string
		mdl        string
		unit       string
		useSamples bool
		spec       platform.TrainSpec
	}
	var pts []t3Pt

	// WSE-2: intra-chip DP plus weight streaming.
	w := wsePlat()
	wsePts := []struct {
		cfg string
		m   model.Config
		par platform.Parallelism
	}{
		{"DP0", model.GPT2Small(), platform.Parallelism{}},
		{"DP2", model.GPT2Small(), platform.Parallelism{DataParallel: 2}},
		{"DP4", model.GPTMini(), platform.Parallelism{DataParallel: 4}},
		{"DP8", model.GPTTiny(), platform.Parallelism{DataParallel: 8}},
		{"Streaming", model.GPT2Small(), platform.Parallelism{WeightStreaming: true}},
	}
	for _, p := range wsePts {
		pts = append(pts, t3Pt{
			p: w, dev: "WSE-2", cfg: p.cfg, mdl: p.m.Name, unit: "tokens/s",
			spec: platform.TrainSpec{Model: p.m, Batch: defaultBatch, Seq: defaultSeq, Precision: precision.FP16, Par: p.par},
		})
	}

	// IPU: pipeline parallelism over layer ladders.
	i := ipuPlat()
	ipuPts := []struct {
		pp, layers int
	}{{4, 6}, {4, 12}, {8, 18}, {8, 24}, {16, 30}, {16, 36}, {16, 42}, {16, 48}}
	for _, p := range ipuPts {
		pts = append(pts, t3Pt{
			p: i, dev: "IPU", cfg: fmt.Sprintf("PP%d", p.pp), mdl: fmt.Sprintf("%dL", p.layers),
			unit: "samples/s", useSamples: true,
			spec: platform.TrainSpec{
				Model: model.GPT2Small().WithLayers(p.layers), Batch: 2048, Seq: defaultSeq,
				Precision: precision.FP16, Par: platform.Parallelism{PipelineParallel: p.pp},
			},
		})
	}

	// RDU: tensor parallelism on LLaMA-2 7B.
	r := rduPlat()
	for _, tp := range []int{2, 4, 8} {
		pts = append(pts, t3Pt{
			p: r, dev: "RDU", cfg: fmt.Sprintf("TP%d", tp), mdl: "llama2-7b", unit: "tokens/s",
			spec: platform.TrainSpec{
				Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
				Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: tp},
			},
		})
	}

	// GPU reference: Megatron decompositions of GPT-2 XL.
	g := gpuPlat()
	gpuPts := []struct{ tp, pp, dp int }{
		{8, 1, 1}, {4, 2, 1}, {2, 4, 1}, {1, 8, 1}, {8, 8, 16}, {4, 4, 64},
	}
	for _, p := range gpuPts {
		pts = append(pts, t3Pt{
			p: g, dev: "GPU", cfg: fmt.Sprintf("T%dP%dD%d", p.tp, p.pp, p.dp), mdl: "gpt2-xl",
			unit: "samples/s", useSamples: true,
			spec: platform.TrainSpec{
				Model: model.GPT2XL(), Batch: 64, Seq: defaultSeq, Precision: precision.BF16,
				Par: platform.Parallelism{TensorParallel: p.tp, PipelineParallel: p.pp, DataParallel: p.dp},
			},
		})
	}

	outs, err := sweep.Map(ctx, pts,
		func(_ context.Context, _ int, pt t3Pt) (float64, error) {
			cr, err := pt.p.Compile(pt.spec)
			if err != nil {
				return 0, err
			}
			rr, err := pt.p.Run(cr)
			if err != nil {
				return 0, err
			}
			if pt.useSamples {
				return rr.SamplesPerSec, nil
			}
			return rr.TokensPerSec, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for idx, o := range outs {
		pt := pts[idx]
		tbl.Add(pt.dev, pt.cfg, pt.mdl, report.F(o.Value), pt.unit)
		res.Trace = append(res.Trace, trace.Record{
			Experiment: "table3", Platform: pt.dev, Model: pt.mdl, Config: pt.cfg,
			Metric: pt.unit, Value: o.Value,
		})
	}

	res.Tables = []*report.Table{tbl}
	return res, nil
}

// Figure11 reproduces the scalability details: WSE replica throughput
// (a), RDU allocation vs TP (b), IPU throughput vs layer allocation (c).
func Figure11(ctx context.Context) (*Result, error) {
	res := &Result{ID: "figure11"}

	a := report.New("Figure 11a — WSE throughput vs. replicas (2/small, 4/mini, 8/tiny)",
		"Replicas", "Throughput tokens/s", "Computation-only tokens/s")
	w := wsePlat()
	pairs := []struct {
		repl int
		m    model.Config
	}{{2, model.GPT2Small()}, {4, model.GPTMini()}, {8, model.GPTTiny()}}
	aOuts, err := sweep.Map(ctx, pairs,
		func(_ context.Context, _ int, pr struct {
			repl int
			m    model.Config
		}) (float64, error) {
			spec := platform.TrainSpec{
				Model: pr.m, Batch: defaultBatch, Seq: defaultSeq, Precision: precision.FP16,
				Par: platform.Parallelism{DataParallel: pr.repl},
			}
			cr, err := w.Compile(spec)
			if err != nil {
				return 0, err
			}
			rr, err := w.Run(cr)
			if err != nil {
				return 0, err
			}
			return rr.TokensPerSec, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for idx, o := range aOuts {
		repl, tps := pairs[idx].repl, o.Value
		// Computation-only = the throughput with the replica
		// communication penalty removed (the gap of Figure 11a).
		penalty := 1.0
		if repl > 2 {
			penalty = 1 / (1 + 0.05*float64(repl-2))
		}
		a.Add(fmt.Sprint(repl), report.F(tps), report.F(tps/penalty))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure11", Platform: "WSE-2", Config: fmt.Sprintf("DP%d", repl), Metric: "tokens/s", Value: tps})
	}

	b := report.New("Figure 11b — RDU utilization vs. TP count (LLaMA-2 7B)",
		"TP", "PCU %", "PMU %")
	r := rduPlat()
	tps := []int{2, 4, 8}
	type alloc struct{ pcu, pmu float64 }
	bOuts, err := sweep.Map(ctx, tps,
		func(_ context.Context, _ int, tp int) (alloc, error) {
			spec := platform.TrainSpec{
				Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
				Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: tp},
			}
			cr, err := r.Compile(spec)
			if err != nil {
				return alloc{}, err
			}
			return alloc{
				pcu: 100 * cr.AllocationRatio(platform.ResPCU),
				pmu: 100 * cr.AllocationRatio(platform.ResPMU),
			}, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for idx, o := range bOuts {
		tp, v := tps[idx], o.Value
		b.Add(fmt.Sprint(tp), report.F(v.pcu), report.F(v.pmu))
		res.Trace = append(res.Trace,
			trace.Record{Experiment: "figure11", Platform: "RDU", Config: fmt.Sprintf("TP%d", tp), Metric: "pcu%", Value: v.pcu},
			trace.Record{Experiment: "figure11", Platform: "RDU", Config: fmt.Sprintf("TP%d", tp), Metric: "pmu%", Value: v.pmu},
		)
	}

	c := report.New("Figure 11c — IPU throughput vs. layer allocation",
		"Assignment", "Max layers/IPU", "Samples/s")
	i := ipuPlat()
	assignments := [][]int{
		{2}, {4}, {6}, {8},
		{2, 2, 1, 1, 1, 1}, {1, 1, 1, 1, 2, 2},
		{4, 4, 4, 2, 2, 2}, {6, 5, 5, 3, 3, 3}, {6, 3, 3, 2, 2, 2},
	}
	cOuts, err := sweep.Map(ctx, assignments,
		func(_ context.Context, _ int, assign []int) (float64, error) {
			total := 0
			for _, v := range assign {
				total += v
			}
			spec := platform.TrainSpec{
				Model: model.GPT2Small().WithLayers(total), Batch: 2048, Seq: defaultSeq,
				Precision: precision.FP16,
				Par: platform.Parallelism{
					PipelineParallel: len(assign) + 1, LayerAssignment: assign,
				},
			}
			if len(assign) == 1 {
				spec.Par = platform.Parallelism{} // single-IPU points
			}
			cr, err := i.Compile(spec)
			if err != nil {
				return 0, err
			}
			rr, err := i.Run(cr)
			if err != nil {
				return 0, err
			}
			return rr.SamplesPerSec, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	for idx, o := range cOuts {
		assign := assignments[idx]
		maxL := 0
		for _, v := range assign {
			if v > maxL {
				maxL = v
			}
		}
		c.Add(fmt.Sprint(assign), fmt.Sprint(maxL), report.F(o.Value))
		res.Trace = append(res.Trace, trace.Record{Experiment: "figure11", Platform: "IPU", Config: fmt.Sprint(assign), Metric: "samples/s", Value: o.Value})
	}

	res.Tables = []*report.Table{a, b, c}
	return res, nil
}

// Figure12 reproduces the batch-size scaling per platform via the
// Tier-2 deployment optimizer. The platform cases run serially on
// purpose: each Deployment already fans its batch/precision points out
// on the full worker pool, and nesting pools would multiply
// concurrency past the configured -parallel bound.
func Figure12(ctx context.Context) (*Result, error) {
	res := &Result{ID: "figure12"}
	tbl := report.New("Figure 12 — throughput vs. batch size", "Platform", "Batch", "Tokens/s")

	type f12Case struct {
		p       platform.Platform
		spec    platform.TrainSpec
		batches []int
	}
	cases := []f12Case{
		{wsePlat(), platform.TrainSpec{Model: model.GPT2Small(), Seq: defaultSeq, Batch: 1, Precision: precision.FP16},
			[]int{25, 50, 100, 200, 400, 800, 1000}},
		{rduPlat(), platform.TrainSpec{Model: model.LLaMA2_7B(), Seq: 4096, Batch: 1, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: 2}},
			[]int{4, 6, 8, 10, 12, 14, 16}},
		{ipuPlat(), platform.TrainSpec{Model: model.GPT2Small().WithLayers(4), Seq: defaultSeq, Batch: 1, Precision: precision.Mixed},
			[]int{50, 75, 100, 125, 150, 175, 200, 225}},
	}
	for _, c := range cases {
		rep, err := core.Deployment(ctx, c.p, c.spec, c.batches, []precision.Format{c.spec.Precision})
		if err != nil {
			return nil, err
		}
		for _, pt := range rep.BatchCurve {
			tbl.Add(c.p.Name(), pt.Label, report.F(pt.TokensPerSec))
			res.Trace = append(res.Trace, trace.Record{Experiment: "figure12", Platform: c.p.Name(), Config: pt.Label, Metric: "tokens/s", Value: pt.TokensPerSec})
		}
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}

// TableIV reproduces the mixed-precision throughput comparison.
func TableIV(ctx context.Context) (*Result, error) {
	res := &Result{ID: "table4"}
	tbl := report.New("Table IV — precision impact", "Platform", "Format", "Tokens/s", "Gain vs baseline")

	type t4Case struct {
		p       platform.Platform
		spec    platform.TrainSpec
		formats []precision.Format
	}
	cases := []t4Case{
		{ipuPlat(), platform.TrainSpec{Model: model.GPT2Small().WithLayers(2), Batch: 2048, Seq: defaultSeq, Precision: precision.FP32},
			[]precision.Format{precision.FP32, precision.Mixed}},
		{wsePlat(), platform.TrainSpec{Model: model.GPT2Small(), Batch: defaultBatch, Seq: defaultSeq, Precision: precision.FP16},
			[]precision.Format{precision.FP16, precision.CB16}},
		{rduPlat(), platform.TrainSpec{Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: 2}},
			[]precision.Format{precision.BF16, precision.Mixed}},
	}

	type t4Pt struct {
		caseIdx int
		p       platform.Platform
		f       precision.Format
		spec    platform.TrainSpec
	}
	var pts []t4Pt
	for ci, c := range cases {
		for _, f := range c.formats {
			spec := c.spec
			spec.Precision = f
			pts = append(pts, t4Pt{caseIdx: ci, p: c.p, f: f, spec: spec})
		}
	}
	outs, err := sweep.Map(ctx, pts,
		func(_ context.Context, _ int, pt t4Pt) (float64, error) {
			cr, err := pt.p.Compile(pt.spec)
			if err != nil {
				return 0, err
			}
			rr, err := pt.p.Run(cr)
			if err != nil {
				return 0, err
			}
			return rr.TokensPerSec, nil
		}, sweep.Tolerating(nil))
	if err != nil {
		return nil, err
	}
	base, lastCase := 0.0, -1
	for idx, o := range outs {
		pt := pts[idx]
		gain := "-"
		if pt.caseIdx != lastCase {
			base = o.Value
			lastCase = pt.caseIdx
		} else if base > 0 {
			gain = fmt.Sprintf("+%.1f%%", 100*(o.Value/base-1))
		}
		tbl.Add(pt.p.Name(), pt.f.String(), report.F(o.Value), gain)
		res.Trace = append(res.Trace, trace.Record{Experiment: "table4", Platform: pt.p.Name(), Config: pt.f.String(), Metric: "tokens/s", Value: o.Value})
	}
	res.Tables = []*report.Table{tbl}
	return res, nil
}
