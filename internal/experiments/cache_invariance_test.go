package experiments

import (
	"reflect"
	"testing"

	"dabench/internal/gpu"
	"dabench/internal/ipu"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/rdu"
	"dabench/internal/sweep"
	"dabench/internal/wse"
)

// TestColdWarmCacheInvariance is the determinism contract of all three
// memoization tiers (graph → compile → run): a cold-cache render and a
// warm re-render of every experiment must be byte-identical, serially
// and on a wide pool. Run under -race in CI, this also exercises
// concurrent cache hits against in-flight misses.
func TestColdWarmCacheInvariance(t *testing.T) {
	defer sweep.SetDefaultWorkers(0)
	for _, workers := range []int{1, 8} {
		sweep.SetDefaultWorkers(workers)
		for _, id := range IDs() {
			runner := All()[id]

			ResetCaches()
			cold, err := runner(t.Context())
			if err != nil {
				t.Fatalf("workers=%d %s (cold): %v", workers, id, err)
			}
			warm, err := runner(t.Context())
			if err != nil {
				t.Fatalf("workers=%d %s (warm): %v", workers, id, err)
			}

			if got, want := render(t, warm), render(t, cold); got != want {
				t.Errorf("workers=%d %s: warm render diverges from cold:\n--- cold ---\n%s\n--- warm ---\n%s",
					workers, id, want, got)
			}
			if !reflect.DeepEqual(cold.Trace, warm.Trace) {
				t.Errorf("workers=%d %s: warm trace diverges from cold", workers, id)
			}
		}
	}
}

// TestCachedMatchesUncached pins the cached wrappers to the raw
// simulators: for representative specs on every platform, Compile and
// Run through platform.Cached must produce reports deeply equal to a
// fresh, cache-free simulator's.
func TestCachedMatchesUncached(t *testing.T) {
	cases := []struct {
		name string
		p    platform.Platform
		spec platform.TrainSpec
	}{
		{"wse", wse.New(), platform.TrainSpec{
			Model: model.GPT2Small(), Batch: 512, Seq: 1024, Precision: precision.FP16}},
		{"rdu-o1", rdu.New(), platform.TrainSpec{
			Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: 2}}},
		{"rdu-o0", rdu.New(), platform.TrainSpec{
			Model: model.GPT2Small().WithLayers(8), Batch: 4, Seq: 1024, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO0}}},
		{"rdu-o3", rdu.New(), platform.TrainSpec{
			Model: model.GPT2Small().WithLayers(8), Batch: 4, Seq: 1024, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO3}}},
		{"ipu", ipu.New(), platform.TrainSpec{
			Model: model.GPT2Small().WithLayers(4), Batch: 2048, Seq: 1024, Precision: precision.FP16,
			Par: platform.Parallelism{PipelineParallel: 4}}},
		{"gpu", gpu.New(), platform.TrainSpec{
			Model: model.GPT2XL(), Batch: 64, Seq: 1024, Precision: precision.BF16,
			Par: platform.Parallelism{TensorParallel: 8, PipelineParallel: 1, DataParallel: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			crRaw, err := tc.p.Compile(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			rrRaw, err := tc.p.Run(crRaw)
			if err != nil {
				t.Fatal(err)
			}

			c := platform.Cached(tc.p)
			// Twice, so the second pass is all cache hits.
			for pass := 0; pass < 2; pass++ {
				cr, err := c.Compile(tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cr, crRaw) {
					t.Fatalf("pass %d: cached compile report diverges from uncached", pass)
				}
				rr, err := c.Run(cr)
				if err != nil {
					t.Fatal(err)
				}
				// The run reports embed different *CompileReport
				// pointers (cached vs raw); compare values.
				gotRun, wantRun := *rr, *rrRaw
				gotRun.Compile, wantRun.Compile = nil, nil
				if !reflect.DeepEqual(gotRun, wantRun) {
					t.Fatalf("pass %d: cached run report diverges from uncached", pass)
				}
			}
			if s := c.CacheStats(); s.Hits != 1 || s.Misses != 1 {
				t.Errorf("compile stats = %+v, want 1 hit / 1 miss", s)
			}
			if s := c.RunCacheStats(); s.Hits != 1 || s.Misses != 1 {
				t.Errorf("run stats = %+v, want 1 hit / 1 miss", s)
			}
		})
	}
}

// TestResultCarriesTierStats asserts the instrument wrapper accounts
// all three tiers, and that warm re-runs are pure hits on every tier
// that saw traffic.
func TestResultCarriesTierStats(t *testing.T) {
	ResetCaches()
	// figure7 drives the RDU mode grid: compile misses plus graph-cache
	// sharing between O0 and O1.
	cold, err := All()["figure7"](t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.Misses == 0 {
		t.Errorf("cold run reported no compile misses: %+v", cold.Cache)
	}
	if cold.GraphCache.Misses == 0 {
		t.Errorf("cold run reported no graph builds: %+v", cold.GraphCache)
	}
	if cold.GraphCache.Hits == 0 {
		t.Errorf("O0/O1 grids share byte-identical graphs, want graph hits: %+v", cold.GraphCache)
	}

	warm, err := All()["figure7"](t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Misses != 0 || warm.Cache.Hits == 0 {
		t.Errorf("warm compile stats = %+v, want pure hits", warm.Cache)
	}
	if warm.GraphCache.Misses != 0 {
		t.Errorf("warm run rebuilt graphs: %+v", warm.GraphCache)
	}

	// figure12's Deployment sweeps revisit compiled points: the run
	// cache must see traffic and a warm re-run must be pure hits there
	// too.
	ResetCaches()
	if _, err := All()["figure12"](t.Context()); err != nil {
		t.Fatal(err)
	}
	warm12, err := All()["figure12"](t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if warm12.RunCache.Misses != 0 || warm12.RunCache.Hits == 0 {
		t.Errorf("warm run-cache stats = %+v, want pure hits", warm12.RunCache)
	}
}
