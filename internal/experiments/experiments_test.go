package experiments

import (
	"bytes"
	"testing"

	"dabench/internal/trace"
)

// TestAllExperimentsRun executes every paper artifact end to end and
// validates the structural invariants: tables with rows, trace records,
// and the expected failure entries (Table I at 78 layers, Figure 9d at
// 10 layers).
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := All()[id](t.Context())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.ID != id {
				t.Errorf("result ID = %q", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("table %q has no rows", tbl.Title)
				}
				var buf bytes.Buffer
				if err := tbl.WriteText(&buf); err != nil {
					t.Errorf("render: %v", err)
				}
			}
			if len(res.Trace) == 0 {
				t.Error("no trace records")
			}
		})
	}
}

func TestTableIRecordsFailureAt78(t *testing.T) {
	res, err := TableI(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	for _, r := range res.Trace {
		if r.Config == "L=78" && r.Failed {
			failed = true
		}
		if r.Config == "L=72" && r.Failed {
			t.Error("72 layers should compile")
		}
	}
	if !failed {
		t.Error("78 layers should be recorded as Fail (paper Table I)")
	}
}

func TestFigure9IPUFailureAt10(t *testing.T) {
	res, err := Figure9(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	for _, r := range res.Trace {
		if r.Platform == "IPU" && r.Config == "L=10" && r.Failed {
			failed = true
		}
	}
	if !failed {
		t.Error("IPU at 10 layers should be recorded as Fail (paper Figure 9d)")
	}
}

func TestTraceAggregation(t *testing.T) {
	res, err := TableIV(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	sums := trace.Analyze(res.Trace)
	if len(sums) == 0 {
		t.Fatal("no summaries")
	}
	for _, s := range sums {
		if s.Count == 0 && s.Failures == 0 {
			t.Errorf("empty summary %+v", s)
		}
	}
}

func TestTableIIIOrderings(t *testing.T) {
	res, err := TableIII(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	get := func(platform, cfg string) float64 {
		for _, r := range res.Trace {
			if r.Platform == platform && r.Config == cfg {
				return r.Value
			}
		}
		t.Fatalf("missing %s/%s", platform, cfg)
		return 0
	}
	// RDU: cross-machine TP collapse (paper: 1540 -> 945).
	if !(get("RDU", "TP2") > get("RDU", "TP4")) {
		t.Error("TP2 should beat TP4")
	}
	// IPU: throughput inversely related to max layers per IPU.
	if !(get("IPU", "PP4") > 0) {
		t.Error("missing IPU rows")
	}
	// GPU: TP-heavy beats PP-heavy.
	if !(get("GPU", "T8P1D1") > get("GPU", "T1P8D1")) {
		t.Error("T8P1D1 should beat T1P8D1")
	}
	// WSE: weight streaming ≈ 0.8× of in-memory execution.
	ratio := get("WSE-2", "Streaming") / get("WSE-2", "DP0")
	if ratio < 0.75 || ratio > 0.85 {
		t.Errorf("streaming ratio = %v, want ≈0.8", ratio)
	}
}
