package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"dabench/internal/sweep"
)

// render flattens every table of a result into one byte string.
func render(t *testing.T, res *Result) string {
	t.Helper()
	var buf bytes.Buffer
	for _, tbl := range res.Tables {
		if err := tbl.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if err := tbl.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestParallelMatchesSerial runs a representative set of experiment
// runners — layer sweeps with recorded failures (table1), RDU
// mode×size grids (figure7), four-table composites (figure9), the
// cross-platform throughput table (table3), and the Deployment-backed
// batch curves (figure12) — once with a single worker and once on a
// wide pool, and requires byte-identical tables plus deeply equal trace
// records. Run with -race in CI, this is also the engine's
// race-exercise over the real simulators.
func TestParallelMatchesSerial(t *testing.T) {
	defer sweep.SetDefaultWorkers(0)
	for _, id := range []string{"table1", "figure7", "figure9", "table3", "figure12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			runner := All()[id]

			sweep.SetDefaultWorkers(1)
			ResetCaches()
			serial, err := runner(t.Context())
			if err != nil {
				t.Fatal(err)
			}

			sweep.SetDefaultWorkers(8)
			ResetCaches()
			parallel, err := runner(t.Context())
			if err != nil {
				t.Fatal(err)
			}

			if got, want := render(t, parallel), render(t, serial); got != want {
				t.Errorf("parallel tables diverge from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
			}
			if !reflect.DeepEqual(serial.Trace, parallel.Trace) {
				t.Error("parallel trace records diverge from serial")
			}
		})
	}
}

// TestSharedCacheAcrossRunners asserts the cross-experiment payoff the
// memoization exists for: Table I, Figure 6, Figure 9a and Figure 10
// all walk the same GPT-2 layer ladder on the WSE, so running them
// back-to-back must hit the shared cache.
func TestSharedCacheAcrossRunners(t *testing.T) {
	ResetCaches()
	all := All()
	for _, id := range []string{"table1", "figure6", "figure9", "figure10"} {
		if _, err := all[id](t.Context()); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	s := CacheStats()
	if s.Hits == 0 {
		t.Errorf("no cross-experiment cache hits: %+v", s)
	}
	if s.Misses == 0 {
		t.Errorf("suspicious zero misses: %+v", s)
	}
}

// TestInstrumentedResultsCarryStats checks the per-run accounting the
// CLI prints: cache deltas and wall-clock.
func TestInstrumentedResultsCarryStats(t *testing.T) {
	ResetCaches()
	res, err := All()["table1"](t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("instrumented runner reported no wall-clock")
	}
	if res.Cache.Misses == 0 {
		t.Errorf("cold-cache run reported no misses: %+v", res.Cache)
	}
	// Re-running the same experiment on the warm cache must be all hits.
	res2, err := All()["table1"](t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cache.Misses != 0 || res2.Cache.Hits == 0 {
		t.Errorf("warm re-run stats = %+v, want pure hits", res2.Cache)
	}
	if res2.Cache.HitRate() != 1 {
		t.Errorf("warm hit rate = %v", res2.Cache.HitRate())
	}
}
