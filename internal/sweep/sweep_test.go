package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dabench/internal/platform"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	outs, err := Map(context.Background(), items, func(_ context.Context, i, v int) (int, error) {
		return v * v, nil
	}, Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(items) {
		t.Fatalf("got %d outcomes for %d items", len(outs), len(items))
	}
	for i, o := range outs {
		if o.Err != nil || o.Value != i*i {
			t.Fatalf("outs[%d] = %+v, want %d", i, o, i*i)
		}
	}
}

func TestMapPassesIndex(t *testing.T) {
	labels := []string{"a", "b", "c"}
	outs, err := Map(context.Background(), []int{10, 20, 30}, func(_ context.Context, i, v int) (string, error) {
		return fmt.Sprintf("%s=%d", labels[i], v), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a=10", "b=20", "c=30"}
	for i, o := range outs {
		if o.Value != want[i] {
			t.Errorf("outs[%d] = %q, want %q", i, o.Value, want[i])
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(context.Background(), items, func(_ context.Context, _, _ int) (int, error) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
		return 0, nil
	}, Workers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent workers, bound is %d", p, workers)
	}
}

func TestMapToleratesCompileFailures(t *testing.T) {
	items := []int{1, 2, 3, 4}
	outs, err := Map(context.Background(), items, func(_ context.Context, _, v int) (int, error) {
		if v%2 == 0 {
			return 0, &platform.CompileError{Platform: "test", Reason: "no fit"}
		}
		return v * 10, nil
	}, Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		wantFail := items[i]%2 == 0
		if o.Failed() != wantFail {
			t.Errorf("outs[%d].Failed() = %v, want %v", i, o.Failed(), wantFail)
		}
		if !wantFail && o.Value != items[i]*10 {
			t.Errorf("outs[%d].Value = %d", i, o.Value)
		}
	}
}

func TestMapHardErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	items := make([]int, 1000)
	outs, err := Map(context.Background(), items, func(ctx context.Context, i, _ int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
		}
		return 0, nil
	}, Workers(2))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if outs != nil {
		t.Error("failed sweep should return nil outcomes")
	}
	if n := started.Load(); n == int64(len(items)) {
		t.Error("hard error did not stop the dispatcher")
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	var release sync.WaitGroup
	release.Add(1)
	_, err := Map(context.Background(), []int{0, 1}, func(_ context.Context, i, _ int) (int, error) {
		if i == 0 {
			release.Wait() // ensure index 1 fails first
			return 0, errLow
		}
		defer release.Done()
		return 0, errHigh
	}, Workers(2), Tolerating(nil))
	if !errors.Is(err, errLow) {
		t.Errorf("err = %v, want the lowest-index error", err)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := make([]int, 50)
	_, err := Map(ctx, items, func(_ context.Context, _, _ int) (int, error) {
		return 0, nil
	}, Workers(4))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestMapEmptyAndSerial(t *testing.T) {
	outs, err := Map(context.Background(), nil, func(_ context.Context, _ int, _ struct{}) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(outs) != 0 {
		t.Fatalf("empty sweep: outs=%v err=%v", outs, err)
	}

	// Workers(1) must visit items strictly in order.
	var seen []int
	_, err = Map(context.Background(), []int{5, 6, 7}, func(_ context.Context, i, _ int) (int, error) {
		seen = append(seen, i)
		return 0, nil
	}, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if s != i {
			t.Fatalf("serial visit order %v", seen)
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("automatic default = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("explicit default = %d, want 3", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("reset default = %d, want GOMAXPROCS", got)
	}
}

func TestValues(t *testing.T) {
	outs := []Outcome[int]{{Value: 1}, {Value: 2}}
	vals := Values(outs)
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Errorf("Values = %v", vals)
	}
}

// TestMapNMatchesMap pins the contract the job executor builds on:
// mapping over the index range [0, n) is observably identical to
// mapping over a materialized slice of the same points.
func TestMapNMatchesMap(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * i
	}
	fromSlice, err := Map(context.Background(), items,
		func(_ context.Context, _ int, v int) (int, error) { return v + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	fromRange, err := MapN(context.Background(), len(items),
		func(_ context.Context, i int) (int, error) { return items[i] + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSlice, fromRange) {
		t.Errorf("MapN diverged from Map:\n%v\n%v", fromRange, fromSlice)
	}
}

func TestMapNHardErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapN(context.Background(), 64, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		default:
			return i, nil
		}
	}, Tolerating(nil))
	if err != boom {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestMapNEmpty(t *testing.T) {
	outs, err := MapN(context.Background(), 0, func(context.Context, int) (int, error) {
		t.Fatal("fn ran for empty range")
		return 0, nil
	})
	if err != nil || len(outs) != 0 {
		t.Errorf("empty MapN = %v, %v", outs, err)
	}
}
