// Package sweep is the concurrent sweep engine behind every Tier-2
// analysis and experiment runner: a bounded worker pool that fans a
// slice of sweep points out over the available cores while keeping the
// results exactly as ordered — and therefore exactly as rendered — as
// the serial loops it replaces.
//
// The engine distinguishes two failure classes, mirroring the
// framework's own semantics:
//
//   - Tolerated errors (by default placement failures, the paper's
//     "Fail" table entries) are findings: they are recorded in the
//     point's Outcome and the sweep continues.
//   - Hard errors (invalid input, simulator bugs) cancel the pool; the
//     first one observed at the lowest index is returned.
//
// The pool size defaults to runtime.GOMAXPROCS(0) and can be overridden
// per call with Workers or process-wide with SetDefaultWorkers (the
// CLI's -parallel flag). Setting it to 1 reproduces the serial path
// bit-for-bit, which the determinism tests assert.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"dabench/internal/platform"
)

// defaultWorkers holds the process-wide override; <= 0 means
// "automatic" (GOMAXPROCS at call time).
var defaultWorkers atomic.Int64

// MaxWorkers is the upper clamp on the process-wide pool size. The
// pool is CPU-bound (simulator math, no blocking I/O), so anything
// past this is goroutine bloat, not throughput; flag validation in the
// CLIs rejects larger values and SetDefaultWorkers clamps them.
const MaxWorkers = 4096

// SetDefaultWorkers sets the process-wide default pool size used when a
// Map call passes no Workers option. n <= 0 restores the automatic
// default of runtime.GOMAXPROCS(0); n > MaxWorkers clamps to
// MaxWorkers.
func SetDefaultWorkers(n int) {
	switch {
	case n < 0:
		n = 0
	case n > MaxWorkers:
		n = MaxWorkers
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the effective default pool size.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Outcome couples one sweep point's value with its tolerated error.
// Err is non-nil only when fn returned an error the sweep's tolerance
// predicate accepted (a recorded finding, not a fault).
type Outcome[R any] struct {
	Value R
	Err   error
}

// Failed reports whether the point was a tolerated failure.
func (o Outcome[R]) Failed() bool { return o.Err != nil }

// Option configures one Map call.
type Option func(*options)

type options struct {
	workers  int
	tolerate func(error) bool
}

// Workers bounds the pool at n concurrent workers for this call.
func Workers(n int) Option {
	return func(o *options) { o.workers = n }
}

// Tolerating replaces the tolerated-error predicate (default:
// platform.IsCompileFailure). Tolerating(nil) makes every error hard.
func Tolerating(f func(error) bool) Option {
	return func(o *options) {
		if f == nil {
			f = func(error) bool { return false }
		}
		o.tolerate = f
	}
}

// Map applies fn to every item on a bounded worker pool and returns the
// outcomes in input order. fn receives the item's index alongside the
// item so callers can pair results with parallel label slices.
//
// A tolerated error (see Tolerating) is stored in that index's Outcome
// together with whatever partial value fn returned. A hard error
// cancels the pool's context, stops feeding new items, and is returned
// once the workers drain; when several workers hit hard errors the one
// at the lowest index wins, and cancellation fallout (context.Canceled
// / DeadlineExceeded surfaced by ctx-respecting fns after another
// worker failed) never outranks a real error — so the reported error
// does not depend on scheduling. Cancellation of the caller's ctx is
// returned as ctx.Err() unless a hard error was also observed.
func Map[T, R any](ctx context.Context, items []T, fn func(ctx context.Context, i int, item T) (R, error), opts ...Option) ([]Outcome[R], error) {
	return MapN(ctx, len(items), func(ctx context.Context, i int) (R, error) {
		return fn(ctx, i, items[i])
	}, opts...)
}

// MapN is Map over the index range [0, n) instead of a materialized
// slice: fn derives the i-th sweep point itself. It exists for sweeps
// whose cross products are generated rather than stored — the async
// job executor walks arbitrarily large products chunk by chunk without
// ever holding the full spec slice in memory.
func MapN[R any](ctx context.Context, n int, fn func(ctx context.Context, i int) (R, error), opts ...Option) ([]Outcome[R], error) {
	o := options{workers: DefaultWorkers(), tolerate: platform.IsCompileFailure}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 1 {
		o.workers = 1
	}
	if o.workers > n {
		o.workers = n
	}

	out := make([]Outcome[R], n)
	if n == 0 {
		return out, ctx.Err()
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu        sync.Mutex
		firstIdx  = -1
		firstErr  error
		cancelErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		// Cancellation fallout from a ctx-respecting fn must not mask
		// the root-cause error another worker reported: real errors
		// always outrank context errors, whatever their indices.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = err
			}
		} else if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				v, err := fn(ctx, i)
				if err != nil && !o.tolerate(err) {
					fail(i, err)
					return
				}
				out[i] = Outcome[R]{Value: v, Err: err}
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		select {
		case feed <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return out, nil
}

// Values unwraps a fully successful sweep into its plain values,
// dropping the Outcome envelopes. It is a convenience for callers whose
// fn never returns tolerated errors (failures already folded into R).
func Values[R any](outs []Outcome[R]) []R {
	vals := make([]R, len(outs))
	for i, o := range outs {
		vals[i] = o.Value
	}
	return vals
}
