package ipu

import (
	"math"
	"testing"
	"testing/quick"

	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
)

func spec(layers int) platform.TrainSpec {
	return platform.TrainSpec{
		Model: model.GPT2Small().WithLayers(layers), Batch: 2048, Seq: 1024,
		Precision: precision.FP16,
	}
}

func mustRun(t *testing.T, s platform.TrainSpec) *platform.RunReport {
	t.Helper()
	sim := New()
	cr, err := sim.Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rr, err := sim.Run(cr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rr
}

// Figure 9d: memory grows linearly with layers and execution fails
// near 10 layers (HS 768); TFLOPs plateau by ≈4 layers.
func TestFigure9dMemoryWall(t *testing.T) {
	sim := New()
	var prev float64
	for _, l := range []int{1, 2, 4, 6, 8} {
		cr, err := sim.Compile(spec(l))
		if err != nil {
			t.Fatalf("L=%d: %v", l, err)
		}
		used := float64(cr.Memory.Used())
		if used <= prev {
			t.Errorf("memory should grow with layers: %v at L=%d", used, l)
		}
		prev = used
	}
	// ≈65 MB at 8 layers.
	cr8, _ := sim.Compile(spec(8))
	if mb := cr8.Memory.Used().MB(); mb < 55 || mb > 75 {
		t.Errorf("memory at 8 layers = %v MB, want ≈65", mb)
	}
	// Failure at 10 layers.
	if _, err := sim.Compile(spec(10)); !platform.IsCompileFailure(err) {
		t.Errorf("10 layers should fail to place: %v", err)
	}
}

func TestFigure9dComputePlateau(t *testing.T) {
	t1 := mustRun(t, spec(1)).Achieved.TFLOPS()
	t4 := mustRun(t, spec(4)).Achieved.TFLOPS()
	t8 := mustRun(t, spec(8)).Achieved.TFLOPS()
	if !(t1 < t4 && t4 <= t8) {
		t.Fatalf("TFLOPs should rise then plateau: %v %v %v", t1, t4, t8)
	}
	if (t8-t4)/t4 > 0.1 {
		t.Errorf("plateau missing: %v -> %v", t4, t8)
	}
	// Paper band: 91–143 TFLOPs at 41% peak efficiency.
	if t8 < 91 || t8 > 150 {
		t.Errorf("TFLOPs at 8 layers = %v, want 91–143", t8)
	}
	eff := mustRun(t, spec(8)).Efficiency
	if eff < 0.30 || eff > 0.45 {
		t.Errorf("efficiency = %v, want ≈0.41", eff)
	}
}

// Figure 11c / Table III: pipeline throughput is set by the most
// heavily loaded IPU.
func TestFigure11cMaxLayersDominates(t *testing.T) {
	run := func(assign []int) float64 {
		total := 0
		for _, v := range assign {
			total += v
		}
		s := platform.TrainSpec{
			Model: model.GPT2Small().WithLayers(total), Batch: 2048, Seq: 1024,
			Precision: precision.FP16,
			Par: platform.Parallelism{
				PipelineParallel: len(assign) + 1,
				LayerAssignment:  assign,
			},
		}
		return mustRun(t, s).SamplesPerSec
	}
	// Same total layers, different balance: the balanced assignment
	// wins, and equal max-layers configurations tie approximately.
	balanced := run([]int{2, 2, 2})
	skewed := run([]int{4, 1, 1})
	if balanced <= skewed {
		t.Errorf("balanced %v should beat skewed %v", balanced, skewed)
	}
	a := run([]int{4, 4, 4})
	b := run([]int{4, 4, 2, 2})
	if math.Abs(a-b)/a > 0.05 {
		t.Errorf("equal max layers should tie: %v vs %v", a, b)
	}
	// Throughput roughly inversely proportional to max layers once
	// TFLOPs saturate.
	r2 := run([]int{2, 2, 2})
	r4 := run([]int{4, 4, 4})
	ratio := r2 / r4
	if ratio < 1.3 || ratio > 2.2 {
		t.Errorf("2-vs-4 layer stage ratio = %v, want ≈2 (sub-linear from overhead)", ratio)
	}
}

func TestBalancedDefaultAssignment(t *testing.T) {
	s := platform.TrainSpec{
		Model: model.GPT2Small().WithLayers(12), Batch: 256, Seq: 128,
		Precision: precision.FP16,
		Par:       platform.Parallelism{PipelineParallel: 4},
	}
	cr, err := New().Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	// 12 layers over 3 decoder IPUs: 4 each; stages = embed + 3.
	if len(cr.Tasks) != 4 {
		t.Fatalf("stages = %d, want 4", len(cr.Tasks))
	}
}

// Pipeline parallelism unlocks depths a single IPU cannot hold.
func TestPPRescuesDeepModels(t *testing.T) {
	sim := New()
	deep := spec(24)
	if _, err := sim.Compile(deep); !platform.IsCompileFailure(err) {
		t.Fatalf("24 layers on one IPU should fail: %v", err)
	}
	deep.Par.PipelineParallel = 8
	if _, err := sim.Compile(deep); err != nil {
		t.Errorf("24 layers over 8 IPUs should place: %v", err)
	}
}

// Figure 12c: batch scaling is near-linear across the paper's range.
func TestFigure12cBatch(t *testing.T) {
	at := func(b int) float64 {
		s := spec(4)
		s.Batch = b
		return mustRun(t, s).SamplesPerSec
	}
	t50, t100, t200 := at(50), at(100), at(200)
	if !(t50 < t100 && t100 < t200) {
		t.Fatalf("batch scaling broken: %v %v %v", t50, t100, t200)
	}
	// Near-linear: doubling batch gains at least 1.6×.
	if t100/t50 < 1.6 || t200/t100 < 1.5 {
		t.Errorf("batch curve should be near-linear: %v %v %v", t50, t100, t200)
	}
}

// Table IV: mixed precision gains ≈22% over full precision.
func TestTableIVPrecision(t *testing.T) {
	s := spec(2) // FP32 activations are twice as large; 2 layers fit
	s.Precision = precision.FP32
	full := mustRun(t, s).SamplesPerSec
	s.Precision = precision.Mixed
	mixed := mustRun(t, s).SamplesPerSec
	gain := mixed/full - 1
	if math.Abs(gain-0.22) > 0.02 {
		t.Errorf("mixed gain = %v, want ≈0.22", gain)
	}
}

// Figure 10c: AI sits in the 20–42 band, below the ≈44 FLOPs/byte
// ridge (memory-bound, near the boundary).
func TestFigure10cAI(t *testing.T) {
	ridge := Peak16 / ExchangeBW
	a1 := mustRun(t, spec(1)).AI
	a8 := mustRun(t, spec(8)).AI
	if a1 < 15 || a1 > 30 {
		t.Errorf("AI(1) = %v, want ≈22", a1)
	}
	if a8 <= a1 || a8 > ridge {
		t.Errorf("AI(8) = %v, want rising but below ridge %v", a8, ridge)
	}
}

func TestAssignmentValidation(t *testing.T) {
	s := spec(4)
	s.Par.PipelineParallel = 3
	s.Par.LayerAssignment = []int{2, 1} // covers 3 of 4 layers
	if _, err := New().Compile(s); err == nil {
		t.Error("short assignment accepted")
	}
	s.Par.LayerAssignment = []int{2, 2, 1}
	if _, err := New().Compile(s); err == nil {
		t.Error("assignment/PP mismatch accepted")
	}
	s.Par.LayerAssignment = []int{5, -1}
	if _, err := New().Compile(s); err == nil {
		t.Error("negative assignment accepted")
	}
}

func TestRejectsUnsupportedParallelism(t *testing.T) {
	s := spec(4)
	s.Par.TensorParallel = 2
	if _, err := New().Compile(s); err == nil {
		t.Error("TP accepted")
	}
	s = spec(4)
	s.Par.DataParallel = 2
	if _, err := New().Compile(s); err == nil {
		t.Error("DP accepted")
	}
}

func TestRunRejectsForeignReport(t *testing.T) {
	if _, err := New().Run(nil); err == nil {
		t.Error("nil report accepted")
	}
	if _, err := New().Run(&platform.CompileReport{Platform: "RDU"}); err == nil {
		t.Error("foreign report accepted")
	}
}

// Property: for any assignment of a fixed total, throughput never
// exceeds the perfectly balanced assignment's.
func TestBalancedIsOptimalProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		x, y, z := int(a%5)+1, int(b%5)+1, int(c%5)+1
		total := x + y + z
		run := func(assign []int) float64 {
			s := platform.TrainSpec{
				Model: model.GPT2Small().WithLayers(total), Batch: 512, Seq: 1024,
				Precision: precision.FP16,
				Par: platform.Parallelism{
					PipelineParallel: 4, LayerAssignment: assign,
				},
			}
			sim := New()
			cr, err := sim.Compile(s)
			if err != nil {
				return -1
			}
			rr, err := sim.Run(cr)
			if err != nil {
				return -1
			}
			return rr.SamplesPerSec
		}
		arbitrary := run([]int{x, y, z})
		bal := total / 3
		rem := total % 3
		assign := []int{bal, bal, bal}
		for i := 0; i < rem; i++ {
			assign[i]++
		}
		balanced := run(assign)
		if arbitrary < 0 || balanced < 0 {
			return true // placement failure path is covered elsewhere
		}
		return arbitrary <= balanced*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
