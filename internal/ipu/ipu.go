// Package ipu simulates the Graphcore Bow-2000 IPU system: pipeline
// parallelism assigns the embedding to one IPU and groups decoder
// layers across the rest; each IPU's 1472 tiles hold the resident
// working set in on-tile SRAM, and the absence of flexible memory
// management makes on-chip capacity the hard wall (paper Figure 9d:
// linear memory growth, execution failure near 10 layers at HS 768).
//
// Throughput under pipeline parallelism is set by the most heavily
// loaded IPU (paper Figure 11c): t_stage = overhead + perLayer·layers.
package ipu

import (
	"fmt"
	"math"
	"strconv"

	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/sched"
	"dabench/internal/units"
)

// Hardware constants (paper Section II-B3).
const (
	// IPUsPerSystem is the Bow-2000 IPU count.
	IPUsPerSystem = 4
	// TilesPerIPU is the tile count of one Bow IPU.
	TilesPerIPU = 1472
	// TileMemBytes is the per-tile SRAM (paper: 64 KB shared on-tile).
	TileMemBytes = 64 * 1024
	// MemPerIPU is the nominal on-chip capacity.
	MemPerIPU = TilesPerIPU * TileMemBytes
	// DDRBytes is the external memory shared by the four IPUs.
	DDRBytes = 256e9
	// ExchangeBW is the all-to-all IPU-Exchange bandwidth.
	ExchangeBW = 8e12
	// Peak16 is the per-IPU peak 16-bit rate; the paper's 41% peak
	// efficiency at 143 TFLOPs implies ≈350 TFLOPs.
	Peak16 = 350e12
)

// Calibration constants with paper anchors.
const (
	// usableMemFrac reserves tile memory for code and exchange
	// buffers. Anchor: Figure 9d — ≈65 MB used at 8 layers, failure at
	// 10 layers (HS 768).
	usableMemFrac = 0.75 // ≈71 MB of 94 MB
	// baseMemBytes is the resident runtime (code, vertex state,
	// host buffers) on a single-IPU placement.
	baseMemBytes = 37e6
	// stageBaseMemBytes is the same for one pipeline stage.
	stageBaseMemBytes = 20e6
	// residentTokens is the number of tokens whose layer activations
	// stay on tile between pipeline steps. Anchor: Figure 9d's
	// ≈3.6 MB/layer slope at HS 768, S 1024.
	residentTokens = 41.0

	// peakEff is the asymptotic tile-level compute efficiency before
	// the precision factor; shallow models pay a tile-utilization ramp
	// L/(L+effRampLayers). With the FP16 factor (0.65) this yields the
	// paper's 41% peak efficiency, plateauing by ≈4 layers
	// (Figure 9d).
	peakEff       = 0.63
	effRampLayers = 0.6

	// pipeEff is the per-stage compute efficiency under pipeline
	// parallelism, and stageOverheadSec the per-stage latency
	// (exchange + recompute + host sync). Anchor: Table III's IPU rows
	// — throughput roughly inversely proportional to the maximum
	// layers on any IPU.
	pipeEff          = 0.54
	stageOverheadSec = 0.5e-3

	// batchHalfSat keeps the batch curve near-linear across the
	// paper's 50–225 range (Figure 12c).
	batchHalfSat = 300.0

	// AI curve for the Figure 10c roofline: AI = aiBase + aiPerLayer·L
	// (weights are re-streamed per microbatch; deeper models amortize
	// better), capped just below the 43.75 FLOPs/byte ridge. Anchor:
	// the paper's 20–42 FLOPs/byte band straddling the memory/compute
	// boundary.
	aiBase     = 19.0
	aiPerLayer = 2.9
	aiCap      = 42.5
)

// precFactor returns the datapath fraction of Peak16 each format
// sustains. Mixed/full anchor: Table IV — mixed precision gains 22.0%
// over full ("Full" 154k → "Mixed" 188k samples/s).
func precFactor(f precision.Format) float64 {
	switch f {
	case precision.Mixed:
		return 0.61
	case precision.FP16, precision.BF16, precision.CB16:
		return 0.65
	default:
		return 0.50
	}
}

// Sim is the Bow-2000 simulator. The zero value is ready to use.
type Sim struct{}

// New returns an IPU simulator.
func New() *Sim { return &Sim{} }

// Name implements platform.Platform.
func (*Sim) Name() string { return "IPU" }

// HardwareSpec implements platform.Platform.
func (*Sim) HardwareSpec() platform.Spec {
	return platform.Spec{
		Name:         "Graphcore Bow-2000 IPU",
		Resources:    map[platform.Resource]float64{platform.ResTile: TilesPerIPU},
		Peak16:       Peak16,
		OnChipMemory: MemPerIPU,
		OnChipBW:     ExchangeBW,
		GlobalMemory: DDRBytes,
		GlobalBW:     ExchangeBW, // the paper's Fig. 10c models the DDR tier behind the exchange
	}
}

// assignment returns decoder layers per decoder IPU.
func assignment(spec platform.TrainSpec) ([]int, error) {
	L := spec.Model.NumLayers
	pp := spec.Par.PipelineParallel
	if la := spec.Par.LayerAssignment; len(la) > 0 {
		sum := 0
		for _, v := range la {
			if v < 0 {
				return nil, fmt.Errorf("ipu: negative layer count in assignment %v", la)
			}
			sum += v
		}
		if sum != L {
			return nil, fmt.Errorf("ipu: assignment %v covers %d layers, model has %d", la, sum, L)
		}
		if pp > 1 && len(la) != pp-1 {
			return nil, fmt.Errorf("ipu: assignment %v needs %d decoder IPUs, PP=%d provides %d",
				la, len(la), pp, pp-1)
		}
		return la, nil
	}
	if pp <= 1 {
		// Single-IPU placement (Tier-1 analysis).
		return []int{L}, nil
	}
	// Balanced default: spread layers over pp-1 decoder IPUs (one IPU
	// is dedicated to the embedding, paper Section III-C), minimizing
	// the most heavily loaded IPU.
	return sched.BalanceLayers(L, pp-1)
}

// layerMemBytes is the resident on-tile memory one decoder layer
// needs.
func layerMemBytes(spec platform.TrainSpec) float64 {
	perTokenLayer := float64(spec.Model.ActivationBytesPerToken(spec.Seq, spec.Precision)) /
		float64(spec.Model.NumLayers)
	return perTokenLayer * residentTokens
}

// Compile implements platform.Platform.
func (s *Sim) Compile(spec platform.TrainSpec) (*platform.CompileReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Par.TensorParallel > 1 {
		return nil, fmt.Errorf("ipu: tensor parallelism is not supported; IPUs scale via PP")
	}
	if spec.Par.DataParallel > 1 {
		return nil, fmt.Errorf("ipu: replicated data parallelism is not modeled; the paper scales via PP")
	}
	layers, err := assignment(spec)
	if err != nil {
		return nil, err
	}
	pp := spec.Par.PipelineParallel
	single := pp <= 1

	// Per-IPU memory wall (Figure 9d).
	usable := usableMemFrac * MemPerIPU
	perLayer := layerMemBytes(spec)
	base := baseMemBytes
	if !single {
		base = stageBaseMemBytes
	}
	maxLayers := 0
	for _, l := range layers {
		if l > maxLayers {
			maxLayers = l
		}
	}
	worst := base + float64(maxLayers)*perLayer
	if worst > usable {
		return nil, &platform.CompileError{
			Platform: s.Name(),
			Reason: fmt.Sprintf("per-IPU memory exhausted: stage with %d layers needs %s of %s usable — no tensor swapping available",
				maxLayers, units.Bytes(worst), units.Bytes(usable)),
		}
	}

	// Stage tasks: embedding IPU plus decoder IPUs.
	pf := precFactor(spec.Precision)
	cfg := spec.Model
	// One decoder layer's training FLOPs per sample (3× forward).
	attnFFNParams := cfg.AttentionParams() + cfg.FFNParams()
	perLayerPerToken := 3 * (2*float64(attnFFNParams) +
		4*float64(spec.Seq)*float64(cfg.HiddenSize) +
		5*float64(spec.Seq)*float64(cfg.NumHeads) + 12*float64(cfg.HiddenSize))
	layerFlopsPerSample := perLayerPerToken * float64(spec.Seq)
	totalFlopsPerSample := float64(cfg.TrainFLOPsPerToken(spec.Seq)) * float64(spec.Seq)
	sharedFlopsPerSample := math.Max(0, totalFlopsPerSample-layerFlopsPerSample*float64(cfg.NumLayers))
	eff := pipeEff
	if single {
		l := float64(spec.Model.NumLayers)
		eff = peakEff * l / (l + effRampLayers)
	}
	perLayerSec := layerFlopsPerSample / (Peak16 * eff * pf)

	tasks := make([]platform.Task, 0, len(layers)+1)
	tiles := float64(TilesPerIPU)
	if !single {
		tasks = append(tasks, platform.Task{
			Name: "ipu0/embedding", Kind: "stage",
			Units:      map[platform.Resource]float64{platform.ResTile: tiles * 0.6},
			Runtime:    units.Seconds(stageOverheadSec),
			Throughput: 1 / stageOverheadSec, Invocations: 1,
		})
	}
	for i, l := range layers {
		rt := float64(l)*perLayerSec + stageOverheadSec
		if single {
			// A single IPU also executes the embedding, head and loss.
			rt = float64(l)*perLayerSec + sharedFlopsPerSample/(Peak16*eff*pf)
		}
		tasks = append(tasks, platform.Task{
			Name: "ipu" + strconv.Itoa(i+1) + "/decoder[" + strconv.Itoa(l) + " layers]", Kind: "stage",
			Units:       map[platform.Resource]float64{platform.ResTile: tiles * 0.92},
			Runtime:     units.Seconds(rt),
			Throughput:  1 / rt,
			Invocations: 1,
			FLOPs:       units.FLOPs(float64(l) * layerFlopsPerSample),
		})
	}

	mem := platform.MemoryUse{
		Capacity:    units.Bytes(usable),
		Other:       units.Bytes(base),
		Activations: units.Bytes(float64(maxLayers) * perLayer),
	}
	ipus := pp
	if single {
		ipus = 1
	}
	return &platform.CompileReport{
		Platform: s.Name(),
		Spec:     spec,
		Tasks:    tasks,
		Allocated: map[platform.Resource]float64{
			platform.ResTile: tiles * 0.92,
		},
		Capacity: map[platform.Resource]float64{platform.ResTile: tiles},
		Memory:   mem,
		Notes: []string{
			fmt.Sprintf("ipus=%d assignment=%v maxLayers=%d", ipus, layers, maxLayers),
		},
	}, nil
}

// Run implements platform.Platform.
func (s *Sim) Run(cr *platform.CompileReport) (*platform.RunReport, error) {
	if cr == nil || cr.Platform != s.Name() {
		return nil, fmt.Errorf("ipu: run requires an IPU compile report")
	}
	spec := cr.Spec

	// Pipeline throughput is set by the slowest stage (Figure 11c).
	slowest := 0.0
	for _, t := range cr.Tasks {
		if rt := float64(t.Runtime); rt > slowest {
			slowest = rt
		}
	}
	if slowest <= 0 {
		return nil, fmt.Errorf("ipu: degenerate stage schedule")
	}
	// Batch fills the pipeline near-linearly across the paper's range
	// (Figure 12c).
	b := float64(spec.Batch)
	batchUtil := b / (b + batchHalfSat)
	samplesPerSec := batchUtil / slowest
	tokensPerSec := samplesPerSec * float64(spec.Seq)

	flopsPerSample := float64(spec.Model.TrainFLOPsPerToken(spec.Seq)) * float64(spec.Seq)
	achieved := units.FLOPSRate(flopsPerSample * samplesPerSec)
	// Efficiency normalizes by the aggregate peak of all IPUs in the
	// pipeline (one per stage task).
	ipus := float64(len(cr.Tasks))
	if ipus < 1 {
		ipus = 1
	}

	l := float64(spec.Model.NumLayers)
	ai := math.Min(aiCap, (aiBase+aiPerLayer*l)*math.Pow(float64(spec.Model.HiddenSize)/768, 0.2))

	return &platform.RunReport{
		Compile:       cr,
		StepTime:      units.Seconds(b / samplesPerSec),
		TokensPerSec:  tokensPerSec,
		SamplesPerSec: tokensPerSec / float64(spec.Seq),
		Achieved:      achieved,
		Efficiency:    float64(achieved) / (Peak16 * ipus),
		AI:            ai,
	}, nil
}
