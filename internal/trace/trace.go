// Package trace records and analyzes benchmark runs as JSON-lines
// streams — the equivalent of the paper artifact's analysis logs and
// ana.py post-processing. Every experiment run emits one Record per
// measured configuration; the Analyzer aggregates them into the
// summary statistics the reports print.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Record is one measured configuration.
type Record struct {
	Experiment string  `json:"experiment"`
	Platform   string  `json:"platform"`
	Model      string  `json:"model"`
	Config     string  `json:"config"` // free-form knob description, e.g. "L=12" or "TP4"
	Metric     string  `json:"metric"` // e.g. "tokens/s", "alloc%", "LI"
	Value      float64 `json:"value"`
	Failed     bool    `json:"failed,omitempty"`
	Note       string  `json:"note,omitempty"`
}

// Writer streams records as JSON lines.
type Writer struct {
	w   io.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, enc: json.NewEncoder(w)}
}

// Write appends one record.
func (t *Writer) Write(r Record) error {
	if r.Experiment == "" || r.Metric == "" {
		return fmt.Errorf("trace: record needs experiment and metric (got %+v)", r)
	}
	if err := t.enc.Encode(r); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	t.n++
	return nil
}

// Count reports records written.
func (t *Writer) Count() int { return t.n }

// Read parses a JSON-lines stream back into records, skipping blank
// lines and rejecting malformed ones.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}

// Summary aggregates one (experiment, platform, metric) group.
type Summary struct {
	Experiment string
	Platform   string
	Metric     string
	Count      int
	Failures   int
	Min, Max   float64
	Mean       float64
}

// Analyze groups records and computes summary statistics, sorted by
// (experiment, platform, metric) for stable output.
func Analyze(recs []Record) []Summary {
	type key struct{ e, p, m string }
	agg := map[key]*Summary{}
	for _, r := range recs {
		k := key{r.Experiment, r.Platform, r.Metric}
		s, ok := agg[k]
		if !ok {
			s = &Summary{
				Experiment: r.Experiment, Platform: r.Platform, Metric: r.Metric,
				Min: math.Inf(1), Max: math.Inf(-1),
			}
			agg[k] = s
		}
		if r.Failed {
			s.Failures++
			continue
		}
		s.Count++
		s.Mean += r.Value
		if r.Value < s.Min {
			s.Min = r.Value
		}
		if r.Value > s.Max {
			s.Max = r.Value
		}
	}
	out := make([]Summary, 0, len(agg))
	for _, s := range agg {
		if s.Count > 0 {
			s.Mean /= float64(s.Count)
		} else {
			s.Min, s.Max = 0, 0
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Platform != b.Platform {
			return a.Platform < b.Platform
		}
		return a.Metric < b.Metric
	})
	return out
}
