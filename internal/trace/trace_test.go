package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Experiment: "table1", Platform: "WSE-2", Config: "L=12", Metric: "alloc%", Value: 85},
		{Experiment: "table1", Platform: "WSE-2", Config: "L=78", Metric: "alloc%", Failed: true, Note: "OOM"},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Errorf("count = %d", w.Count())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestWriteRejectsIncomplete(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Record{Platform: "x"}); err == nil {
		t.Error("record without experiment accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"experiment\":\"a\"}\nnot json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	got, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank lines: %v %v", got, err)
	}
}

func TestAnalyze(t *testing.T) {
	recs := []Record{
		{Experiment: "e", Platform: "p", Metric: "m", Value: 10},
		{Experiment: "e", Platform: "p", Metric: "m", Value: 20},
		{Experiment: "e", Platform: "p", Metric: "m", Failed: true},
		{Experiment: "e", Platform: "q", Metric: "m", Value: 5},
	}
	sums := Analyze(recs)
	if len(sums) != 2 {
		t.Fatalf("groups = %d", len(sums))
	}
	s := sums[0]
	if s.Platform != "p" || s.Count != 2 || s.Failures != 1 || s.Mean != 15 || s.Min != 10 || s.Max != 20 {
		t.Errorf("summary = %+v", s)
	}
	if sums[1].Platform != "q" {
		t.Error("output not sorted")
	}
}

// Property: round-tripping any record set preserves length and values.
func TestRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, v := range vals {
			if v != v { // skip NaN (not JSON-encodable)
				return true
			}
			if err := w.Write(Record{Experiment: "e", Metric: "m", Config: string(rune('a' + i%26)), Value: v}); err != nil {
				return false
			}
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range got {
			if got[i].Value != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
