package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"v":1}`)
	resp := []byte(`{"spec_key":"k"}` + "\n")
	p, r, err := decodeFrame(encodeFrame(payload, resp))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, payload) || !bytes.Equal(r, resp) {
		t.Errorf("round trip diverged: %q %q", p, r)
	}

	// Payload-only frame (the shape a v1 upgrade writes).
	p, r, err = decodeFrame(encodeFrame(payload, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, payload) || r != nil {
		t.Errorf("payload-only frame = %q, %q; want payload, nil", p, r)
	}
}

func TestDecodeFrameRejectsDamage(t *testing.T) {
	good := encodeFrame([]byte(`{"v":1}`), []byte("resp"))

	if _, _, err := decodeFrame([]byte(`{"version":1}`)); !errors.Is(err, errNotFramed) {
		t.Errorf("bare JSON: err = %v, want errNotFramed", err)
	}
	if _, _, err := decodeFrame(good[:frameHeaderLen-2]); err == nil || errors.Is(err, errNotFramed) {
		t.Errorf("truncated header: err = %v, want hard error", err)
	}
	if _, _, err := decodeFrame(good[:len(good)-1]); err == nil || errors.Is(err, errNotFramed) {
		t.Errorf("truncated body: err = %v, want hard error", err)
	}

	bad := append([]byte(nil), good...)
	bad[4] = 99 // version
	if _, _, err := decodeFrame(bad); err == nil {
		t.Error("wrong version accepted")
	}

	bad = append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff // flip a resp byte -> CRC mismatch
	if _, _, err := decodeFrame(bad); err == nil {
		t.Error("CRC mismatch accepted")
	}
}

// TestV1BlobUpgrade is the version-negotiation contract: a bare-JSON
// blob written by a pre-frame build keeps loading, and its first Load
// rewrites it framed (observable as blob_upgrades) so the next process
// reads v2.
func TestV1BlobUpgrade(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)
	key := spec.Key()
	s := mustOpen(t, dir, 0)
	s.Store("WSE-2", key, testStored(12))
	s.Snapshot()
	s.Close()

	// Strip the frame: the bare payload is byte-for-byte what a v1
	// build wrote.
	name := address("WSE-2", key)
	path := filepath.Join(dir, name[:2], name+".json")
	framed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload, _, err := decodeFrame(framed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	if _, ok := s2.LoadRaw("WSE-2", key); ok {
		t.Fatal("LoadRaw hit on a v1 blob (it has no response section)")
	}
	if _, ok := s2.Load("WSE-2", key); !ok {
		t.Fatal("v1 blob did not load")
	}
	s2.Snapshot() // flush the write-behind upgrade
	if n := s2.Stats().BlobUpgrades; n != 1 {
		t.Errorf("blob upgrades = %d, want 1", n)
	}
	upgraded, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(upgraded, frameMagic[:]) {
		t.Fatal("upgraded blob is not framed")
	}
	p2, _, err := decodeFrame(upgraded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p2, payload) {
		t.Error("upgrade changed the payload bytes")
	}
	// A second load of the now-framed blob must not upgrade again.
	if _, ok := s2.Load("WSE-2", key); !ok {
		t.Fatal("upgraded blob did not load")
	}
	s2.Snapshot()
	if n := s2.Stats().BlobUpgrades; n != 1 {
		t.Errorf("blob upgrades after re-load = %d, want still 1", n)
	}
}

// TestStoreResponseRoundTrip covers the response section end to end:
// attach bytes, read them back raw across a reopen, and keep them
// through a payload rewrite (the carry-forward in the writer).
func TestStoreResponseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)
	key := spec.Key()
	resp := []byte(`{"platform":"wse","spec_key":"` + key + `"}` + "\n")

	s := mustOpen(t, dir, 0)
	s.Store("WSE-2", key, testStored(12))
	s.StoreResponse("WSE-2", key, resp)
	s.Snapshot()

	got, ok := s.LoadRaw("WSE-2", key)
	if !ok || !bytes.Equal(got, resp) {
		t.Fatalf("LoadRaw = %q, %v; want the stored response", got, ok)
	}
	st := s.Stats()
	if st.RawHits != 1 || st.RawMisses != 0 {
		t.Errorf("raw hits/misses = %d/%d, want 1/0", st.RawHits, st.RawMisses)
	}
	s.Close()

	// The bytes survive a restart.
	s2 := mustOpen(t, dir, 0)
	if got, ok := s2.LoadRaw("WSE-2", key); !ok || !bytes.Equal(got, resp) {
		t.Fatalf("LoadRaw after reopen = %q, %v", got, ok)
	}
	// And survive a payload rewrite of the same blob.
	s2.Store("WSE-2", key, testStored(12))
	s2.Snapshot()
	if got, ok := s2.LoadRaw("WSE-2", key); !ok || !bytes.Equal(got, resp) {
		t.Fatalf("LoadRaw after payload rewrite = %q, %v (response section lost)", got, ok)
	}
	// The payload tier still decodes normally next to the bytes.
	if _, ok := s2.Load("WSE-2", key); !ok {
		t.Fatal("Load missed on a framed blob with a response section")
	}
}

// TestCorruptFrameIsAMiss pins the delete-and-miss semantics on the
// raw path: a frame failing its CRC is deleted, counted corrupt, and
// reported as a miss on both Load and LoadRaw.
func TestCorruptFrameIsAMiss(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)
	key := spec.Key()
	s := mustOpen(t, dir, 0)
	s.Store("WSE-2", key, testStored(12))
	s.StoreResponse("WSE-2", key, []byte("resp-bytes"))
	s.Snapshot()
	s.Close()

	name := address("WSE-2", key)
	path := filepath.Join(dir, name[:2], name+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	if _, ok := s2.LoadRaw("WSE-2", key); ok {
		t.Fatal("corrupt frame served raw")
	}
	st := s2.Stats()
	if st.Corrupt != 1 || st.RawMisses != 1 {
		t.Errorf("stats after corruption = %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt frame not deleted")
	}
	if _, ok := s2.Load("WSE-2", key); ok {
		t.Fatal("deleted frame resurrected via Load")
	}
}
