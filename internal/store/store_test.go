package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/units"
)

func testSpec(layers int) platform.TrainSpec {
	return platform.TrainSpec{
		Model: model.GPT2Small().WithLayers(layers), Batch: 512, Seq: 1024,
		Precision: precision.FP16,
	}
}

func testStored(layers int) platform.Stored {
	spec := testSpec(layers)
	cr := &platform.CompileReport{
		Platform:  "WSE-2",
		Spec:      spec,
		Allocated: map[platform.Resource]float64{platform.ResPE: 123.5},
		Capacity:  map[platform.Resource]float64{platform.ResPE: 850 * 994},
		Memory:    platform.MemoryUse{Capacity: 40 << 30, Weights: 1 << 20},
		Notes:     []string{"note"},
		Tasks: []platform.Task{{
			Name: "L0/attention", Kind: "kernel",
			Units:      map[platform.Resource]float64{platform.ResPE: 17},
			Throughput: 3.25, Runtime: units.Seconds(0.125), Invocations: 2,
			FLOPs: 1e12, Traffic: 1e9,
		}},
	}
	rr := &platform.RunReport{
		Compile: cr, StepTime: 0.5, TokensPerSec: 1e6, SamplesPerSec: 1e3,
		Achieved: 2.5e14, Efficiency: 0.33, AI: 87.5,
	}
	return platform.Stored{Compile: cr, Run: rr}
}

func mustOpen(t *testing.T, dir string, budget int64) *Store {
	t.Helper()
	s, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)
	want := testStored(12)

	s := mustOpen(t, dir, 0)
	s.Store("WSE-2", spec.Key(), want)
	s.Snapshot()
	s.Close()

	// A fresh Store on the same dir is the restarted process.
	s2 := mustOpen(t, dir, 0)
	got, ok := s2.Load("WSE-2", spec.Key())
	if !ok {
		t.Fatal("warm lookup missed after reopen")
	}
	if !reflect.DeepEqual(got.Compile, want.Compile) {
		t.Errorf("compile report diverged:\n%+v\n%+v", got.Compile, want.Compile)
	}
	if got.Run.Compile != got.Compile {
		t.Error("run report's compile pointer not reattached to the loaded compile report")
	}
	gotRun, wantRun := *got.Run, *want.Run
	gotRun.Compile, wantRun.Compile = nil, nil
	if !reflect.DeepEqual(gotRun, wantRun) {
		t.Errorf("run report diverged:\n%+v\n%+v", gotRun, wantRun)
	}
	st := s2.Stats()
	if st.Hits != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMissOnUnknownKey(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	if _, ok := s.Load("WSE-2", "nope"); ok {
		t.Fatal("hit on unknown key")
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFailedCompilePersists(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(78)
	s := mustOpen(t, dir, 0)
	s.Store("WSE-2", spec.Key(), platform.Stored{Failed: true, FailReason: "needs 80 PEs over capacity"})
	s.Snapshot()
	s.Close()

	s2 := mustOpen(t, dir, 0)
	got, ok := s2.Load("WSE-2", spec.Key())
	if !ok || !got.Failed || got.FailReason != "needs 80 PEs over capacity" {
		t.Errorf("failed entry = %+v, %v", got, ok)
	}
}

// TestCorruptBlobIsAMiss is the corruption-tolerance contract: a blob
// that fails to decode is deleted and reported as a miss, never an
// error or a crash.
func TestCorruptBlobIsAMiss(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)
	s := mustOpen(t, dir, 0)
	s.Store("WSE-2", spec.Key(), testStored(12))
	s.Snapshot()
	s.Close()

	// Truncate the blob mid-JSON — a torn write from a crashed process.
	name := address("WSE-2", spec.Key())
	path := filepath.Join(dir, name[:2], name+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	if _, ok := s2.Load("WSE-2", spec.Key()); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	st := s2.Stats()
	if st.Corrupt != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Errorf("stats after corruption = %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt blob not deleted")
	}
	// The deleted blob must not resurrect on the next lookup.
	if _, ok := s2.Load("WSE-2", spec.Key()); ok {
		t.Fatal("deleted blob resurrected")
	}
}

func TestVersionMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)
	s := mustOpen(t, dir, 0)
	s.Store("WSE-2", spec.Key(), testStored(12))
	s.Snapshot()

	name := address("WSE-2", spec.Key())
	path := filepath.Join(dir, name[:2], name+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Forge a blob from a different pipeline epoch at the same address.
	forged := []byte(`{"version":999` + string(data[len(`{"version":`+strconv.Itoa(PipelineVersion)):]))
	if err := os.WriteFile(path, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("WSE-2", spec.Key()); ok {
		t.Fatal("stale-epoch blob served as a hit")
	}
}

func TestEvictionHonorsBudget(t *testing.T) {
	dir := t.TempDir()
	// Size one entry, then budget for roughly three.
	probe := mustOpen(t, dir, 0)
	probe.Store("WSE-2", testSpec(1).Key(), testStored(1))
	probe.Snapshot()
	one := probe.Stats().Bytes
	if one <= 0 {
		t.Fatal("probe entry has no size")
	}
	probe.Close()

	s := mustOpen(t, dir, 3*one+one/2)
	for l := 2; l <= 8; l++ {
		s.Store("WSE-2", testSpec(l).Key(), testStored(l))
	}
	s.Snapshot()
	st := s.Stats()
	if st.Bytes > 3*one+one/2 {
		t.Errorf("bytes %d over budget %d", st.Bytes, 3*one+one/2)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite exceeding the budget")
	}
	// The most recently written entry must have survived.
	if _, ok := s.Load("WSE-2", testSpec(8).Key()); !ok {
		t.Error("newest entry was evicted")
	}
	// The oldest (the probe's layer-1 entry) must be gone.
	if _, ok := s.Load("WSE-2", testSpec(1).Key()); ok {
		t.Error("oldest entry survived eviction")
	}
}

func TestOverwriteUpdatesNotDuplicates(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	spec := testSpec(12)
	st := testStored(12)
	s.Store("WSE-2", spec.Key(), platform.Stored{Compile: st.Compile}) // compile-only first
	s.Store("WSE-2", spec.Key(), st)                                   // then with the run report
	s.Snapshot()
	stats := s.Stats()
	if stats.Entries != 1 || stats.Puts != 2 {
		t.Errorf("stats = %+v, want 1 entry from 2 puts", stats)
	}
	got, ok := s.Load("WSE-2", spec.Key())
	if !ok || got.Run == nil {
		t.Errorf("final entry lost the run report: %+v, %v", got, ok)
	}
}

func TestStoreAfterCloseIsDropped(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Store("WSE-2", testSpec(1).Key(), testStored(1)) // must not panic or block
	s.Snapshot()                                       // must not block
}

// TestBlobWithNilCompileIsCorrupt: a blob whose identity frame decodes
// but whose payload is gone must be treated as corruption, never
// served as a (nil, nil) compile outcome.
func TestBlobWithNilCompileIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)
	s := mustOpen(t, dir, 0)
	s.Store("WSE-2", spec.Key(), testStored(12))
	s.Snapshot()

	name := address("WSE-2", spec.Key())
	path := filepath.Join(dir, name[:2], name+".json")
	forged, _ := json.Marshal(map[string]any{
		"version": PipelineVersion, "platform": "WSE-2", "spec_key": spec.Key(),
	})
	if err := os.WriteFile(path, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("WSE-2", spec.Key()); ok {
		t.Fatal("payload-less blob served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

// TestReadRecencySurvivesRestart is the LRU-recency regression: Load
// must refresh a hit blob's file mtime (debounced), because Open
// rebuilds eviction order from mtimes — without the refresh, a
// hot-but-old blob is evicted before a cold-but-newer one after a
// restart.
func TestReadRecencySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	hot, cold := testSpec(11), testSpec(12)
	s := mustOpen(t, dir, 0)
	s.Store("WSE-2", hot.Key(), testStored(11))
	s.Store("WSE-2", cold.Key(), testStored(12))
	s.Snapshot()
	one := s.Stats().Bytes / 2
	if one <= 0 {
		t.Fatal("probe entries have no size")
	}
	s.Close()

	// Age both blobs past the touch debounce; make hot the *older* of
	// the two so write-time order alone would evict it first.
	now := time.Now()
	hotPath := pathFor(dir, "WSE-2", hot.Key())
	coldPath := pathFor(dir, "WSE-2", cold.Key())
	if err := os.Chtimes(hotPath, now.Add(-2*time.Hour), now.Add(-2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(coldPath, now.Add(-time.Hour), now.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}

	// One life reads the hot blob: the hit must refresh its mtime.
	s2 := mustOpen(t, dir, 0)
	if _, ok := s2.Load("WSE-2", hot.Key()); !ok {
		t.Fatal("hot blob missing")
	}
	s2.Close()
	if fi, err := os.Stat(hotPath); err != nil || now.Sub(fi.ModTime()) > time.Minute {
		t.Fatalf("hot blob mtime not refreshed on hit: %v (err %v)", fi.ModTime(), err)
	}

	// The restart: over-fill the budget so exactly the stalest blob
	// goes. The hot (read) blob must survive; the cold one must not.
	s3 := mustOpen(t, dir, 4*one+one/2)
	for l := 13; l <= 15; l++ {
		s3.Store("WSE-2", testSpec(l).Key(), testStored(l))
	}
	s3.Snapshot()
	if st := s3.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions despite over-filling the budget: %+v", st)
	}
	if _, err := os.Stat(hotPath); err != nil {
		t.Error("hot blob evicted despite its read recency")
	}
	if _, err := os.Stat(coldPath); !os.IsNotExist(err) {
		t.Error("cold blob survived eviction ahead of fresher entries")
	}
}

func pathFor(dir, platformName, specKey string) string {
	name := address(platformName, specKey)
	return filepath.Join(dir, name[:2], name+".json")
}

// TestAdoptionEnforcesBudget is the sibling-adoption regression: blobs
// written by another process and adopted on Load must not grow the
// footprint past the budget until the next local write — adoption runs
// eviction itself.
func TestAdoptionEnforcesBudget(t *testing.T) {
	dir := t.TempDir()
	probe := mustOpen(t, dir, 0)
	probe.Store("WSE-2", testSpec(1).Key(), testStored(1))
	probe.Snapshot()
	one := probe.Stats().Bytes
	if one <= 0 {
		t.Fatal("probe entry has no size")
	}

	budget := 2*one + one/2
	b := mustOpen(t, dir, budget) // scanned one entry, well under budget
	for l := 2; l <= 5; l++ {
		probe.Store("WSE-2", testSpec(l).Key(), testStored(l))
	}
	probe.Snapshot()
	for l := 2; l <= 5; l++ {
		if _, ok := b.Load("WSE-2", testSpec(l).Key()); !ok {
			t.Fatalf("sibling blob %d invisible", l)
		}
	}
	st := b.Stats()
	if st.Bytes > budget {
		t.Errorf("adoption left %d bytes in a %d-byte budget", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite adopting past the budget")
	}
}

// TestAdoptionRefreshesMtime: adopting a sibling-written blob is a
// read like any other, so its on-disk mtime must be refreshed — an
// old sibling blob read through adoption has to carry that recency
// across a restart exactly like an indexed hit does.
func TestAdoptionRefreshesMtime(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(12)
	a := mustOpen(t, dir, 0)
	b := mustOpen(t, dir, 0) // scanned an empty dir
	a.Store("WSE-2", spec.Key(), testStored(12))
	a.Snapshot()

	// The sibling's blob is old by the time this process reads it.
	path := pathFor(dir, "WSE-2", spec.Key())
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Load("WSE-2", spec.Key()); !ok {
		t.Fatal("sibling blob invisible")
	}
	if fi, err := os.Stat(path); err != nil || time.Since(fi.ModTime()) > time.Minute {
		t.Errorf("adopted blob mtime not refreshed: %v (err %v)", fi.ModTime(), err)
	}
}

// TestLoadSeesSiblingWrites: a second Store over the same directory
// must see blobs written after its Open-time scan (the CLI-beside-
// daemon sharing case) and adopt them into its index.
func TestLoadSeesSiblingWrites(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, 0)
	b := mustOpen(t, dir, 0) // scanned an empty dir

	spec := testSpec(12)
	a.Store("WSE-2", spec.Key(), testStored(12))
	a.Snapshot()

	if _, ok := b.Load("WSE-2", spec.Key()); !ok {
		t.Fatal("sibling write invisible to a second mount")
	}
	st := b.Stats()
	if st.Hits != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("adopting mount stats = %+v", st)
	}
}
