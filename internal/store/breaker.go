package store

import (
	"sync"
	"time"
)

// Breaker states. The store runs two independent breakers — one over
// reads, one over writes — because the two paths fail independently (a
// read-only mount breaks writes while reads stay healthy) and a shared
// consecutive-failure counter would let one path's successes mask the
// other path's sustained failures.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

// breaker is a classic three-state circuit breaker over one I/O class.
//
//	closed    — operations flow; N consecutive failures trip it open.
//	open      — operations are skipped outright (the caller degrades:
//	            reads become misses, writes are dropped) until the
//	            cooldown elapses.
//	half-open — exactly one probe operation is let through; its success
//	            closes the breaker, its failure re-opens it (and
//	            restarts the cooldown).
//
// Tripping is what turns a sustained I/O failure from a per-operation
// retry storm into one cheap state check: the store is an optimization
// tier, so skipping it entirely is always correct — the memo tiers and
// recompute keep serving.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures to trip
	cooldown  time.Duration // open → half-open delay

	state       int
	consecutive int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	trips, probes, recoveries int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether the next operation may touch the disk. In the
// open state it transitions to half-open (admitting one probe) once the
// cooldown has elapsed; while a probe is in flight everything else is
// skipped.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.probes++
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
}

// success records a completed operation: it closes a half-open breaker
// (counting the recovery) and resets the consecutive-failure run.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.recoveries++
	}
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

// failure records a failed operation: a half-open probe failure re-opens
// immediately, a closed-state run of threshold failures trips open.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= b.threshold {
		if b.state != breakerOpen {
			b.trips++
		}
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.consecutive = 0
	}
}

// degraded reports whether the breaker is anything but closed.
func (b *breaker) degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}

// BreakerStats is one breaker's observable state in Stats.
type BreakerStats struct {
	State string `json:"state"` // closed | open | half-open
	// Trips counts transitions into the open state (including re-opens
	// from a failed half-open probe).
	Trips int64 `json:"trips"`
	// Probes counts half-open admissions; Recoveries counts probes that
	// closed the breaker.
	Probes     int64 `json:"probes"`
	Recoveries int64 `json:"recoveries"`
	// ConsecutiveFailures is the current run toward the trip threshold.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
}

func (b *breaker) stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State: breakerStateNames[b.state],
		Trips: b.trips, Probes: b.probes, Recoveries: b.recoveries,
		ConsecutiveFailures: b.consecutive,
	}
}
