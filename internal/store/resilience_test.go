package store

import (
	"io/fs"
	"path/filepath"
	"testing"
	"time"

	"dabench/internal/faults"
)

// fastOpts returns Options tuned for tests: tight backoff, a low trip
// threshold and a short cooldown so breaker transitions happen in
// milliseconds instead of the production ten seconds.
func fastOpts(in *faults.Injector) Options {
	return Options{
		RetryAttempts:    1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		Injector:         in,
	}
}

func mustOpenOptions(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	s, err := OpenOptions(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func mustInjector(t *testing.T, spec faults.Spec) *faults.Injector {
	t.Helper()
	in, err := faults.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// diskBytes sums the sizes of all blob files under dir — the ground
// truth Stats.Bytes must track.
func diskBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestReadRetryRidesOutTransientFault(t *testing.T) {
	in := mustInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpStoreRead, Kind: faults.KindEIO, Count: 1},
	}})
	o := fastOpts(in)
	o.RetryAttempts = 3
	s := mustOpenOptions(t, t.TempDir(), o)
	spec := testSpec(4)
	s.Store("WSE-2", spec.Key(), testStored(4))
	s.Snapshot()

	if _, ok := s.Load("WSE-2", spec.Key()); !ok {
		t.Fatal("Load missed despite retry budget covering the single fault")
	}
	st := s.Stats()
	if st.ReadRetries < 1 {
		t.Errorf("ReadRetries = %d, want >= 1", st.ReadRetries)
	}
	if st.ReadBreaker.State != "closed" || st.Degraded {
		t.Errorf("breaker = %+v degraded = %v after a recovered blip", st.ReadBreaker, st.Degraded)
	}
}

func TestReadBreakerTripsThenSkipsDisk(t *testing.T) {
	in := mustInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpStoreRead, Kind: faults.KindEIO},
	}})
	o := fastOpts(in)
	o.BreakerCooldown = time.Minute // never reaches half-open in this test
	s := mustOpenOptions(t, t.TempDir(), o)
	spec := testSpec(4)
	s.Store("WSE-2", spec.Key(), testStored(4))
	s.Snapshot()

	for i := 0; i < 2; i++ { // threshold failures trip the breaker
		if _, ok := s.Load("WSE-2", spec.Key()); ok {
			t.Fatal("Load hit through a permanent read fault")
		}
	}
	st := s.Stats()
	if st.ReadBreaker.State != "open" || st.ReadBreaker.Trips != 1 {
		t.Fatalf("read breaker = %+v, want open after %d failures", st.ReadBreaker, 2)
	}
	if !st.Degraded {
		t.Error("Degraded = false with an open read breaker")
	}

	// Open state: lookups are immediate misses, no disk consult (the
	// injector's fire counter would grow if readFile ran).
	firedBefore := in.Stats().Fired
	if _, ok := s.Load("WSE-2", spec.Key()); ok {
		t.Fatal("Load hit through an open breaker")
	}
	if got := in.Stats().Fired; got != firedBefore {
		t.Errorf("open breaker still touched the read path (fired %d -> %d)", firedBefore, got)
	}
	if st := s.Stats(); st.SkippedReads != 1 {
		t.Errorf("SkippedReads = %d, want 1", st.SkippedReads)
	}

	// The blob must survive transient-read failures: only corruption
	// deletes, an EIO leaves the bytes for the recovered disk to serve.
	if diskBytes(t, s.dir) == 0 {
		t.Error("transient read failures deleted the blob")
	}
}

func TestReadBreakerHalfOpenProbeRecovers(t *testing.T) {
	// Exactly enough fault budget to trip the breaker; the half-open
	// probe then lands on a healed disk.
	in := mustInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpStoreRead, Kind: faults.KindEIO, Count: 2},
	}})
	s := mustOpenOptions(t, t.TempDir(), fastOpts(in))
	spec := testSpec(4)
	s.Store("WSE-2", spec.Key(), testStored(4))
	s.Snapshot()

	for i := 0; i < 2; i++ {
		s.Load("WSE-2", spec.Key())
	}
	if st := s.Stats(); st.ReadBreaker.State != "open" {
		t.Fatalf("read breaker = %+v, want open", st.ReadBreaker)
	}

	time.Sleep(30 * time.Millisecond) // past the cooldown

	if _, ok := s.Load("WSE-2", spec.Key()); !ok {
		t.Fatal("half-open probe missed on a healed disk")
	}
	st := s.Stats()
	if st.ReadBreaker.State != "closed" {
		t.Errorf("breaker state = %s after successful probe, want closed", st.ReadBreaker.State)
	}
	if st.ReadBreaker.Probes != 1 || st.ReadBreaker.Recoveries != 1 {
		t.Errorf("probes/recoveries = %d/%d, want 1/1", st.ReadBreaker.Probes, st.ReadBreaker.Recoveries)
	}
	if st.Degraded {
		t.Error("Degraded = true after recovery")
	}
}

func TestWriteRetryRidesOutTransientFault(t *testing.T) {
	in := mustInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpStoreWrite, Kind: faults.KindENOSPC, Count: 1},
	}})
	o := fastOpts(in)
	o.RetryAttempts = 3
	s := mustOpenOptions(t, t.TempDir(), o)
	spec := testSpec(4)
	s.Store("WSE-2", spec.Key(), testStored(4))
	s.Snapshot()

	st := s.Stats()
	if st.Puts != 1 || st.WriteErrors != 0 {
		t.Errorf("puts/write_errors = %d/%d, want 1/0", st.Puts, st.WriteErrors)
	}
	if st.WriteRetries < 1 {
		t.Errorf("WriteRetries = %d, want >= 1", st.WriteRetries)
	}
	if _, ok := s.Load("WSE-2", spec.Key()); !ok {
		t.Error("retried write did not land")
	}
}

func TestWriteBreakerTripsAndDropsWrites(t *testing.T) {
	in := mustInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpStoreWrite, Kind: faults.KindEIO},
	}})
	o := fastOpts(in)
	o.BreakerCooldown = time.Minute
	s := mustOpenOptions(t, t.TempDir(), o)
	for i := 0; i < 4; i++ {
		spec := testSpec(2 + i)
		s.Store("WSE-2", spec.Key(), testStored(2+i))
	}
	s.Snapshot()

	st := s.Stats()
	if st.WriteBreaker.State != "open" || st.WriteBreaker.Trips != 1 {
		t.Fatalf("write breaker = %+v, want open after sustained failures", st.WriteBreaker)
	}
	if st.WriteErrors != 2 {
		t.Errorf("WriteErrors = %d, want 2 (threshold), rest skipped", st.WriteErrors)
	}
	if st.SkippedWrites != 2 {
		t.Errorf("SkippedWrites = %d, want 2", st.SkippedWrites)
	}
	if st.Puts != 0 || st.Entries != 0 {
		t.Errorf("puts/entries = %d/%d, want 0/0", st.Puts, st.Entries)
	}
	if !st.Degraded {
		t.Error("Degraded = false with an open write breaker")
	}
}

func TestCorruptInjectionDeletesAndMisses(t *testing.T) {
	in := mustInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpStoreRead, Kind: faults.KindCorrupt, Count: 1},
	}})
	s := mustOpenOptions(t, t.TempDir(), fastOpts(in))
	spec := testSpec(4)
	s.Store("WSE-2", spec.Key(), testStored(4))
	s.Snapshot()

	if _, ok := s.Load("WSE-2", spec.Key()); ok {
		t.Fatal("Load hit on injected-corrupt bytes")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
	// Corruption deletes: the follow-up read (injector budget spent)
	// finds no file and stays a healthy miss.
	if _, ok := s.Load("WSE-2", spec.Key()); ok {
		t.Fatal("corrupt blob was not deleted")
	}
	if st := s.Stats(); st.ReadBreaker.State != "closed" {
		t.Errorf("breaker = %+v; corruption is not a disk fault", st.ReadBreaker)
	}
}

func TestFailedEvictionKeepsAccountingOnDisk(t *testing.T) {
	in := mustInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpStoreRemove, Kind: faults.KindEIO},
	}})
	o := fastOpts(in)
	o.Budget = 1 // every write overflows: eviction runs after each put
	s := mustOpenOptions(t, t.TempDir(), o)
	for i := 0; i < 2; i++ {
		spec := testSpec(4 + i)
		s.Store("WSE-2", spec.Key(), testStored(4+i))
	}
	s.Snapshot()

	st := s.Stats()
	if st.EvictErrors == 0 {
		t.Fatal("EvictErrors = 0 with every unlink failing")
	}
	if st.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0 (none succeeded)", st.Evictions)
	}
	// The satellite fix under test: failed unlinks re-adopt their entry,
	// so the byte gauge still equals the real on-disk footprint instead
	// of drifting below it.
	if disk := diskBytes(t, s.dir); st.Bytes != disk {
		t.Errorf("Stats.Bytes = %d, disk = %d; accounting drifted", st.Bytes, disk)
	}
	if st.Entries != 2 {
		t.Errorf("Entries = %d, want 2 (victims re-adopted)", st.Entries)
	}
	// Re-adopted blobs remain servable.
	if _, ok := s.Load("WSE-2", testSpec(5).Key()); !ok {
		t.Error("re-adopted blob did not serve")
	}
}
