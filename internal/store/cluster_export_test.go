package store

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestValidAddr pins the blob-address gate: exactly 64 lowercase hex
// characters, nothing else. The rejects include every traversal-shaped
// input a crafted /v1/blobs/{addr} request could smuggle toward the
// store's path construction.
func TestValidAddr(t *testing.T) {
	ok := Address("WSE-2", "some-spec-key")
	if !ValidAddr(ok) {
		t.Fatalf("ValidAddr(%q) = false, want true", ok)
	}
	rejects := []string{
		"",
		"..",
		"../../etc/passwd",
		"..%2f..%2fetc%2fpasswd",
		strings.Repeat("a", 63),                  // one short
		strings.Repeat("a", 65),                  // one long
		strings.ToUpper(ok),                      // uppercase hex
		strings.Repeat("z", 64),                  // right length, not hex
		ok[:62] + "/x",                           // separator inside
		"." + ok[1:],                             // dot prefix
		ok[:63] + "\x00",                         // NUL
		"aa/" + strings.Repeat("b", 61),          // sharded-path shape
		"..\\..\\" + strings.Repeat("c", 58),     // windows separators
		strings.Repeat("a", 32) + "\n" + ok[:31], // newline
	}
	for _, bad := range rejects {
		if ValidAddr(bad) {
			t.Errorf("ValidAddr(%q) = true, want false", bad)
		}
	}
}

// TestReadFrameExportsRawBytes: the export path hands out the exact
// on-disk frame, and rejects malformed addresses before touching the
// filesystem.
func TestReadFrameExportsRawBytes(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	spec := testSpec(12)
	s.Store("WSE-2", spec.Key(), testStored(12))
	s.StoreResponse("WSE-2", spec.Key(), []byte(`{"served":"bytes"}`))
	s.Snapshot()

	addr := Address("WSE-2", spec.Key())
	frame, ok := s.ReadFrame(addr)
	if !ok {
		t.Fatalf("ReadFrame(%s) missed a just-written blob", addr)
	}
	payload, resp, err := decodeFrame(frame)
	if err != nil {
		t.Fatalf("exported bytes are not a valid frame: %v", err)
	}
	if len(payload) == 0 || !bytes.Equal(resp, []byte(`{"served":"bytes"}`)) {
		t.Errorf("frame sections: payload %d bytes, resp %q", len(payload), resp)
	}
	for _, bad := range []string{"", "../../x", strings.Repeat("a", 63)} {
		if _, ok := s.ReadFrame(bad); ok {
			t.Errorf("ReadFrame(%q) = ok, want rejected", bad)
		}
	}
	if _, ok := s.ReadFrame(Address("WSE-2", "never-stored")); ok {
		t.Error("ReadFrame of an absent address = ok, want miss")
	}
}

// TestAdoptFrameRoundTrip: a frame exported by one store adopts into a
// second store and loads back as the identical outcome, response
// section included.
func TestAdoptFrameRoundTrip(t *testing.T) {
	src := mustOpen(t, t.TempDir(), 0)
	spec := testSpec(24)
	want := testStored(24)
	src.Store("WSE-2", spec.Key(), want)
	src.StoreResponse("WSE-2", spec.Key(), []byte(`{"r":1}`))
	src.Snapshot()
	addr := Address("WSE-2", spec.Key())
	frame, ok := src.ReadFrame(addr)
	if !ok {
		t.Fatal("source ReadFrame missed")
	}

	dst := mustOpen(t, t.TempDir(), 0)
	st, resp, err := dst.AdoptFrame(addr, frame)
	if err != nil {
		t.Fatalf("AdoptFrame: %v", err)
	}
	if st.Compile == nil || st.Run == nil || st.Run.Compile != st.Compile {
		t.Errorf("adopted outcome incomplete: %+v", st)
	}
	if !bytes.Equal(resp, []byte(`{"r":1}`)) {
		t.Errorf("adopted response section = %q", resp)
	}
	dst.Snapshot()
	if got, ok := dst.Load("WSE-2", spec.Key()); !ok || got.Run == nil || got.Run.StepTime != want.Run.StepTime {
		t.Errorf("adopted blob did not load back: ok=%v got=%+v", ok, got)
	}
	if raw, ok := dst.LoadRaw("WSE-2", spec.Key()); !ok || !bytes.Equal(raw, []byte(`{"r":1}`)) {
		t.Errorf("adopted response bytes did not serve back: ok=%v raw=%q", ok, raw)
	}
	if dst.Stats().Puts != 1 {
		t.Errorf("adoption puts = %d, want 1", dst.Stats().Puts)
	}
}

// TestAdoptFrameRejectsUntrustworthyBytes: adoption re-derives the
// address from the payload's identity and verifies frame integrity, so
// a peer cannot plant bytes under a foreign address, ship a torn frame,
// or smuggle a different pipeline version.
func TestAdoptFrameRejectsUntrustworthyBytes(t *testing.T) {
	src := mustOpen(t, t.TempDir(), 0)
	spec := testSpec(36)
	src.Store("WSE-2", spec.Key(), testStored(36))
	src.Snapshot()
	addr := Address("WSE-2", spec.Key())
	frame, ok := src.ReadFrame(addr)
	if !ok {
		t.Fatal("source ReadFrame missed")
	}

	dst := mustOpen(t, t.TempDir(), 0)

	if _, _, err := dst.AdoptFrame("../../etc/passwd", frame); err == nil {
		t.Error("traversal-shaped address adopted, want rejection")
	}

	// A valid frame under the wrong (but well-formed) address: the
	// payload's identity does not hash to it.
	other := Address("WSE-2", "a-different-spec")
	if _, _, err := dst.AdoptFrame(other, frame); err == nil {
		t.Error("frame adopted under a foreign address, want identity rejection")
	}

	// Bit-flip inside the payload: the frame CRC must catch it.
	torn := append([]byte(nil), frame...)
	torn[len(torn)/2] ^= 0xff
	if _, _, err := dst.AdoptFrame(addr, torn); err == nil {
		t.Error("corrupted frame adopted, want CRC rejection")
	}

	// A well-formed frame whose payload claims a different pipeline
	// version: refuse rather than serve cross-version results.
	var b blob
	payload, _, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(payload, &b); err != nil {
		t.Fatal(err)
	}
	b.Version = PipelineVersion + 1
	vpay, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dst.AdoptFrame(addr, encodeFrame(vpay, nil)); err == nil {
		t.Error("cross-version frame adopted, want version rejection")
	}

	// Valid JSON that is not a blob at all.
	if _, _, err := dst.AdoptFrame(addr, encodeFrame([]byte(`{"hello":"world"}`), nil)); err == nil {
		t.Error("outcome-free payload adopted, want rejection")
	}

	if dst.Stats().Puts != 0 {
		t.Errorf("rejected adoptions still put %d blobs", dst.Stats().Puts)
	}
}

// TestAdoptFrameAcceptsBareV1Payload: a v1 node exports bare JSON; a
// v2 node adopts it re-framed so the upgrade is paid once, at adoption.
func TestAdoptFrameAcceptsBareV1Payload(t *testing.T) {
	src := mustOpen(t, t.TempDir(), 0)
	spec := testSpec(48)
	src.Store("WSE-2", spec.Key(), testStored(48))
	src.Snapshot()
	addr := Address("WSE-2", spec.Key())
	frame, ok := src.ReadFrame(addr)
	if !ok {
		t.Fatal("source ReadFrame missed")
	}
	payload, _, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}

	dst := mustOpen(t, t.TempDir(), 0)
	if _, _, err := dst.AdoptFrame(addr, payload); err != nil { // bare JSON, no frame
		t.Fatalf("bare v1 payload rejected: %v", err)
	}
	dst.Snapshot()
	if got, ok := dst.ReadFrame(addr); !ok {
		t.Fatal("adopted v1 payload not re-exportable")
	} else if _, _, err := decodeFrame(got); err != nil {
		t.Errorf("adopted v1 payload stored unframed: %v", err)
	}
}
