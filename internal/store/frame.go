package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Blob frame (format v2). A v1 blob is bare JSON and always begins
// with '{'; a v2 blob begins with a 4-byte magic that no JSON document
// can start with, so the two formats are distinguished by the first
// byte alone and share the .json path scheme:
//
//	offset  size  field
//	0       4     magic "DBLB"
//	4       2     format version (little-endian, currently 2)
//	6       4     payload length (little-endian)
//	10      4     response length (little-endian)
//	14      4     CRC-32 (IEEE) over payload ‖ response
//	18      —     payload: the canonical JSON blob (what v1 stored whole)
//	18+P    —     response: pre-marshaled /v1/run body for this outcome
//
// The payload section remains the source of truth Load decodes; the
// response section is an optional byte-level acceleration LoadRaw
// serves without any JSON work. The CRC covers both sections so a torn
// rename or bit rot is detected before either is trusted; any frame
// that fails validation is corrupt and keeps the store's
// delete-and-miss semantics.

const (
	frameVersion   = 2
	frameHeaderLen = 18
	// maxFrameSection bounds each section length read from a header so
	// a corrupt length field cannot drive a giant allocation.
	maxFrameSection = 1 << 30
)

var frameMagic = [4]byte{'D', 'B', 'L', 'B'}

// errNotFramed marks bytes with no frame magic: a v1 bare-JSON blob,
// to be decoded directly (and upgraded on its next write).
var errNotFramed = errors.New("store: blob is not framed (v1 bare JSON)")

// encodeFrame assembles a v2 frame. resp may be nil/empty: the frame
// then carries only the payload (the shape a v1 upgrade produces).
func encodeFrame(payload, resp []byte) []byte {
	b := make([]byte, frameHeaderLen+len(payload)+len(resp))
	copy(b, frameMagic[:])
	binary.LittleEndian.PutUint16(b[4:], frameVersion)
	binary.LittleEndian.PutUint32(b[6:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[10:], uint32(len(resp)))
	copy(b[frameHeaderLen:], payload)
	copy(b[frameHeaderLen+len(payload):], resp)
	binary.LittleEndian.PutUint32(b[14:], crc32.ChecksumIEEE(b[frameHeaderLen:]))
	return b
}

// decodeFrame splits a blob file into its payload and response
// sections. Bytes without the magic return errNotFramed (v1 blob);
// a frame with a bad version, impossible lengths, or a CRC mismatch
// returns a hard error the caller treats as corruption. The returned
// slices alias data.
func decodeFrame(data []byte) (payload, resp []byte, err error) {
	if len(data) < len(frameMagic) || [4]byte(data[:4]) != frameMagic {
		return nil, nil, errNotFramed
	}
	if len(data) < frameHeaderLen {
		return nil, nil, fmt.Errorf("store: truncated frame header (%d bytes)", len(data))
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != frameVersion {
		return nil, nil, fmt.Errorf("store: unsupported frame version %d", v)
	}
	pl := int64(binary.LittleEndian.Uint32(data[6:]))
	rl := int64(binary.LittleEndian.Uint32(data[10:]))
	if pl > maxFrameSection || rl > maxFrameSection ||
		int64(len(data)) != frameHeaderLen+pl+rl {
		return nil, nil, fmt.Errorf("store: frame length mismatch (file %d, sections %d+%d)", len(data), pl, rl)
	}
	body := data[frameHeaderLen:]
	if crc := crc32.ChecksumIEEE(body); crc != binary.LittleEndian.Uint32(data[14:]) {
		return nil, nil, errors.New("store: frame CRC mismatch")
	}
	if rl == 0 {
		return body[:pl], nil, nil
	}
	return body[:pl], body[pl:], nil
}
