// Package store is the persistent, content-addressed result store —
// the durable L2 tier under the in-memory graph/compile/run memo
// cells. Every cache tier above it is process RAM: a daemon restart
// used to recompile the world. The store keeps compile reports and run
// findings on disk as versioned JSON blobs, so a restarted dabenchd
// (or a CLI run pointed at the same -data-dir) answers identical specs
// with zero simulation.
//
// Addressing: a blob's name is the SHA-256 of the pipeline version,
// the platform name and the spec's canonical TrainSpec.Key — the full
// content address of one pipeline outcome. Blobs live in a sharded
// directory tree (first hex byte of the hash names the shard) so no
// single directory grows unboundedly.
//
// Versioning/invalidation rule: PipelineVersion participates in every
// address. Bump it whenever simulator outputs change shape or value
// for the same spec; old blobs then simply stop being addressed (and
// age out via the size budget) instead of poisoning the new pipeline
// with stale results.
//
// Durability posture: reads are synchronous (read-through), writes are
// behind — Store enqueues to a single writer goroutine and returns.
// Snapshot flushes the queue, giving callers a point on the timeline
// where everything computed so far is on disk. Corruption never
// propagates: a blob that fails to decode or verify is deleted and
// reported as a miss, because the pipeline can always recompute.
//
// On-disk format: blobs are written as v2 binary frames (see frame.go)
// carrying the canonical JSON payload plus, optionally, the
// pre-marshaled HTTP response bytes for the same outcome — LoadRaw
// serves the latter with zero JSON decoding. v1 bare-JSON blobs remain
// readable; the first Load that touches one enqueues a rewrite into
// the framed format (counted as a blob upgrade).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dabench/internal/faults"
	"dabench/internal/platform"
)

// PipelineVersion is the invalidation epoch baked into every blob
// address and payload. Bump on any change to simulator semantics,
// report shapes, or TrainSpec.Key composition.
const PipelineVersion = 1

// blob is the on-disk wire form of one platform.Stored outcome, framed
// with enough identity to verify the content address on load.
type blob struct {
	Version    int                     `json:"version"`
	Platform   string                  `json:"platform"`
	SpecKey    string                  `json:"spec_key"`
	Failed     bool                    `json:"failed,omitempty"`
	FailReason string                  `json:"fail_reason,omitempty"`
	Compile    *platform.CompileReport `json:"compile,omitempty"`
	Run        *platform.RunReport     `json:"run,omitempty"`
}

// Stats is the store's observable state: lookup counters plus the
// size gauges the eviction budget works against. It doubles as the
// /v1/stats wire form.
type Stats struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	Puts        int64   `json:"puts"`
	Evictions   int64   `json:"evictions"`
	Corrupt     int64   `json:"corrupt"`
	WriteErrors int64   `json:"write_errors,omitempty"`
	// Warm serve counters: raw-response lookups (LoadRaw, which serves
	// bytes without decoding) and v1→v2 frame rewrites.
	RawHits      int64 `json:"raw_hits,omitempty"`
	RawMisses    int64 `json:"raw_misses,omitempty"`
	BlobUpgrades int64 `json:"blob_upgrades,omitempty"`
	Entries      int64 `json:"entries"`
	Bytes        int64 `json:"bytes"`
	BudgetBytes  int64 `json:"budget_bytes,omitempty"`
	// Resilience counters: retry totals, operations skipped because a
	// breaker was open, unlinks that failed (and were re-adopted so the
	// byte accounting tracks the disk), and the two breakers' state.
	ReadRetries   int64         `json:"read_retries,omitempty"`
	WriteRetries  int64         `json:"write_retries,omitempty"`
	SkippedReads  int64         `json:"skipped_reads,omitempty"`
	SkippedWrites int64         `json:"skipped_writes,omitempty"`
	EvictErrors   int64         `json:"evict_errors,omitempty"`
	Degraded      bool          `json:"degraded,omitempty"`
	ReadBreaker   *BreakerStats `json:"read_breaker,omitempty"`
	WriteBreaker  *BreakerStats `json:"write_breaker,omitempty"`
}

type indexEntry struct {
	size int64
	used int64 // LRU tick; larger = more recent
	// touched is the blob file's last known mtime (UnixNano). Load
	// refreshes the mtime of hit blobs when it is older than
	// touchDebounce, so the mtime-derived LRU order a restart rebuilds
	// reflects reads, not just writes.
	touched int64
}

// touchDebounce is how stale a hit blob's mtime may get before Load
// refreshes it. Recency only needs to survive restarts at eviction
// granularity, so one utime per blob per minute is plenty — a hot
// blob's mtime stays within a minute of its last read at almost no
// syscall cost.
const touchDebounce = time.Minute

// putReq is one write-behind unit. Exactly one of payload, resp,
// frame or flush is set: a payload write persists a (possibly fresh)
// JSON blob framed, carrying forward any response bytes already on
// disk; a resp write merges pre-marshaled response bytes into the
// existing frame (dropped if the blob is gone — it is recomputable); a
// frame write persists an already-assembled frame verbatim (a peer-
// adopted blob); a flush is the Snapshot barrier.
type putReq struct {
	name    string
	payload []byte
	resp    []byte
	frame   []byte        // pre-built frame adopted whole (AdoptFrame)
	upgrade bool          // payload write triggered by a v1 blob read
	flush   chan struct{} // non-nil: flush barrier, no write
	// platformName and specKey ride along on payload writes so the
	// OnWrite hook can report the blob's identity without re-decoding
	// what was just encoded.
	platformName string
	specKey      string
}

// Store is an open result store. Create with Open; safe for concurrent
// use. The zero value is not usable.
type Store struct {
	dir    string
	budget int64 // bytes; <= 0 means unbounded

	retryAttempts int
	retryBackoff  time.Duration
	inj           *faults.Injector // nil in production: one pointer compare per I/O
	readBr        *breaker
	writeBr       *breaker
	onWrite       func(WriteEvent) // nil = unobserved; runs on the writer goroutine

	mu    sync.Mutex
	index map[string]*indexEntry
	bytes int64
	clock int64

	hits, misses, puts          atomic.Int64
	rawHits, rawMisses          atomic.Int64
	blobUpgrades                atomic.Int64
	evictions, corrupt, wfails  atomic.Int64
	readRetries, writeRetries   atomic.Int64
	skippedReads, skippedWrites atomic.Int64
	evictErrors                 atomic.Int64

	wq        chan putReq
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Resilience defaults: three total attempts per I/O with a few
// milliseconds of jittered backoff rides out blips; five consecutive
// hard failures trip the breaker, and the half-open probe retries ten
// seconds later. The store is an optimization tier, so every one of
// these degrades to "recompute" — never to an error the caller sees.
const (
	defaultRetryAttempts    = 3
	defaultRetryBackoff     = 2 * time.Millisecond
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 10 * time.Second
)

// Options tunes OpenOptions beyond the directory.
type Options struct {
	// Budget bounds the on-disk footprint in bytes; <= 0 = unbounded.
	Budget int64
	// RetryAttempts is the total attempts per blob read or write before
	// the operation counts as failed (default 3).
	RetryAttempts int
	// RetryBackoff is the initial exponential backoff between attempts,
	// with ±50% jitter (default 2ms).
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// breaker (default 5); BreakerCooldown the open → half-open delay
	// (default 10s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Injector is the optional fault-injection hook fired at the store's
	// read/write/remove syscall sites. Nil injects nothing.
	Injector *faults.Injector
	// OnWrite, when set, observes every successful blob payload persist
	// (fresh puts and v1→v2 upgrades; response-byte merges are excluded
	// because they do not change the outcome's identity). It runs on the
	// single writer goroutine, so it must be fast and must never fail
	// the write — provenance logging is the intended consumer.
	OnWrite func(WriteEvent)
}

// WriteEvent describes one durably persisted blob for Options.OnWrite.
type WriteEvent struct {
	// Addr is the blob's content address (its on-disk name).
	Addr string
	// Platform and SpecKey are the identity the address was derived
	// from; empty on upgrade rewrites of v1 blobs read by a process that
	// did not know the identity (never happens via Load, which always
	// knows both).
	Platform string
	SpecKey  string
	// Upgrade marks a v1→v2 frame rewrite rather than a fresh outcome.
	Upgrade bool
}

// Open loads the store rooted at dir (created if absent), rebuilding
// the in-memory index from the blobs already on disk — that scan is
// what lets a restarted process answer its first lookups from the
// previous life's results. budget bounds the on-disk footprint in
// bytes (<= 0: unbounded); when exceeded, least-recently-used blobs
// are evicted.
func Open(dir string, budget int64) (*Store, error) {
	return OpenOptions(dir, Options{Budget: budget})
}

// OpenOptions is Open with the resilience knobs (retry policy, breaker
// tuning, fault injection) exposed.
func OpenOptions(dir string, o Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if o.RetryAttempts < 1 {
		o.RetryAttempts = defaultRetryAttempts
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = defaultRetryBackoff
	}
	s := &Store{
		dir:           dir,
		budget:        o.Budget,
		retryAttempts: o.RetryAttempts,
		retryBackoff:  o.RetryBackoff,
		inj:           o.Injector,
		readBr:        newBreaker(o.BreakerThreshold, o.BreakerCooldown),
		writeBr:       newBreaker(o.BreakerThreshold, o.BreakerCooldown),
		onWrite:       o.OnWrite,
		index:         map[string]*indexEntry{},
		wq:            make(chan putReq, 1024),
		done:          make(chan struct{}),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// Degraded reports whether either breaker is away from its closed
// state — the store's contribution to /healthz.
func (s *Store) Degraded() bool {
	return s.readBr.degraded() || s.writeBr.degraded()
}

// load scans the shard tree into the index. Initial LRU order comes
// from file mtimes, so eviction survives restarts with sane ordering.
func (s *Store) load() error {
	type seen struct {
		name  string
		size  int64
		mtime int64
	}
	var blobs []seen
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // racing deletion; skip
		}
		blobs = append(blobs, seen{
			name:  d.Name()[:len(d.Name())-len(".json")],
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", s.dir, err)
	}
	sort.Slice(blobs, func(i, j int) bool { return blobs[i].mtime < blobs[j].mtime })
	for _, b := range blobs {
		s.clock++
		s.index[b.name] = &indexEntry{size: b.size, used: s.clock, touched: b.mtime}
		s.bytes += b.size
	}
	return nil
}

// Address derives a blob's content address from the pipeline version,
// platform and canonical spec key. It is exported for callers that
// need the address as an identity without touching the store — the
// server's strong ETags are exactly this address.
func Address(platformName, specKey string) string {
	return address(platformName, specKey)
}

// address derives a blob's content address from the pipeline version,
// platform and canonical spec key.
func address(platformName, specKey string) string {
	h := sha256.New()
	h.Write([]byte("dabench/store/v" + strconv.Itoa(PipelineVersion)))
	h.Write([]byte{0})
	h.Write([]byte(platformName))
	h.Write([]byte{0})
	h.Write([]byte(specKey))
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Store) path(name string) string {
	return filepath.Join(s.dir, name[:2], name+".json")
}

// ValidAddr reports whether addr is a well-formed blob address: exactly
// 64 lowercase hex characters, the only strings address() can produce.
// Every path that builds a file name from an externally supplied
// address (the cluster blob export, peer adoption) must check this
// first — path() shards on addr[:2], so anything else is at best a
// panic and at worst a traversal.
func ValidAddr(addr string) bool {
	if len(addr) != 64 {
		return false
	}
	for i := 0; i < len(addr); i++ {
		c := addr[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ReadFrame returns the raw on-disk bytes of the blob at addr — the
// exact frame (or v1 bare JSON) writeOnce persisted, suitable for
// byte-level export to a peer. The read goes through the same breaker
// and retry policy as Load; a malformed address, a missing blob, or
// degraded I/O is a miss. The bytes are not CRC-verified here: the
// consumer (AdoptFrame on the fetching node) verifies before trusting.
func (s *Store) ReadFrame(addr string) ([]byte, bool) {
	if !ValidAddr(addr) {
		return nil, false
	}
	s.mu.Lock()
	if e, ok := s.index[addr]; ok {
		s.clock++
		e.used = s.clock
	}
	s.mu.Unlock()
	if !s.readBr.allow() {
		s.skippedReads.Add(1)
		return nil, false
	}
	data, err := s.readBlob(s.path(addr))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.readBr.success()
		} else {
			s.readBr.failure()
		}
		return nil, false
	}
	s.readBr.success()
	return data, true
}

// AdoptFrame verifies a peer-exported blob and adopts it into the
// local store, write-behind and budget-enforced like any other put.
// The frame must decode (or be a v1 bare-JSON blob), its payload must
// carry the current pipeline version, and the payload's identity must
// re-derive exactly addr — a peer cannot plant bytes under an address
// they do not hash to. On success it returns the decoded outcome plus
// the frame's pre-marshaled response section (nil when absent) so the
// fetching request can be answered from what was just adopted.
func (s *Store) AdoptFrame(addr string, data []byte) (platform.Stored, []byte, error) {
	if !ValidAddr(addr) {
		return platform.Stored{}, nil, fmt.Errorf("store: adopt %q: malformed blob address", addr)
	}
	payload, resp, ferr := decodeFrame(data)
	frame := data
	if errors.Is(ferr, errNotFramed) {
		// A v1 bare-JSON export: adopt it framed so this node never
		// re-pays the upgrade read.
		payload, resp = data, nil
		frame = encodeFrame(payload, nil)
	} else if ferr != nil {
		return platform.Stored{}, nil, fmt.Errorf("store: adopt %.12s: %w", addr, ferr)
	}
	var b blob
	if err := json.Unmarshal(payload, &b); err != nil {
		return platform.Stored{}, nil, fmt.Errorf("store: adopt %.12s: payload does not decode: %w", addr, err)
	}
	if b.Version != PipelineVersion {
		return platform.Stored{}, nil, fmt.Errorf("store: adopt %.12s: pipeline version %d (want %d)", addr, b.Version, PipelineVersion)
	}
	if b.Compile == nil && !b.Failed {
		return platform.Stored{}, nil, fmt.Errorf("store: adopt %.12s: payload carries no outcome", addr)
	}
	if address(b.Platform, b.SpecKey) != addr {
		return platform.Stored{}, nil, fmt.Errorf("store: adopt %.12s: payload identity (%s, %.12s) does not hash to the address", addr, b.Platform, b.SpecKey)
	}
	select {
	case s.wq <- putReq{name: addr, frame: frame, platformName: b.Platform, specKey: b.SpecKey}:
	case <-s.done:
	}
	if b.Run != nil {
		b.Run.Compile = b.Compile
	}
	return platform.Stored{
		Compile: b.Compile, Run: b.Run,
		Failed: b.Failed, FailReason: b.FailReason,
	}, resp, nil
}

// Store is the byte-level tier the server's warm path reads through.
var _ platform.RawResponseStore = (*Store)(nil)

// Load implements platform.ResultStore: a synchronous read-through
// lookup. Any decode or identity failure deletes the blob and reports
// a miss — corruption costs one recompute, never a crash. The disk is
// probed even on an index miss: another process sharing the directory
// (a CLI run beside the daemon) may have written the blob after this
// process's Open-time scan.
//
// Resilience: a transient read error (anything but ErrNotExist) is
// retried with backoff; exhausting the retries feeds the read breaker
// and reports a miss while leaving the blob in place — the bytes on
// disk may be perfectly fine, only this read failed. With the read
// breaker open the disk is not consulted at all: every lookup is an
// immediate miss served by the memo tiers and recompute.
func (s *Store) Load(platformName, specKey string) (platform.Stored, bool) {
	name := address(platformName, specKey)
	s.mu.Lock()
	e, indexed := s.index[name]
	if indexed {
		s.clock++
		e.used = s.clock
	}
	s.mu.Unlock()

	if !s.readBr.allow() {
		s.skippedReads.Add(1)
		s.misses.Add(1)
		return platform.Stored{}, false
	}

	data, err := s.readBlob(s.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// Evicted or torn between index check and read: a plain miss
			// over healthy I/O.
			s.readBr.success()
			if indexed {
				s.drop(name, false)
			}
		} else {
			s.readBr.failure()
		}
		s.misses.Add(1)
		return platform.Stored{}, false
	}
	s.readBr.success()
	payload, _, ferr := decodeFrame(data)
	if errors.Is(ferr, errNotFramed) {
		// A v1 bare-JSON blob: the file is the payload. Decoding it is
		// this read's cost anyway; enqueue a framed rewrite so the next
		// life reads v2 (opportunistic — a full queue skips it).
		payload = data
	} else if ferr != nil {
		s.drop(name, true)
		s.misses.Add(1)
		return platform.Stored{}, false
	}
	var b blob
	if err := json.Unmarshal(payload, &b); err != nil ||
		b.Version != PipelineVersion || b.Platform != platformName || b.SpecKey != specKey ||
		(b.Compile == nil && !b.Failed) {
		// The last clause rejects a blob whose identity frame survived
		// but whose payload did not — serving it would hand the
		// pipeline a nil compile report.
		s.drop(name, true)
		s.misses.Add(1)
		return platform.Stored{}, false
	}
	if errors.Is(ferr, errNotFramed) {
		select {
		case s.wq <- putReq{name: name, payload: payload, upgrade: true, platformName: platformName, specKey: specKey}:
		case <-s.done:
		default:
		}
	}
	if !indexed {
		// A sibling process's write, discovered after our scan: adopt
		// it so the size gauges and LRU order see it from now on — and
		// enforce the budget right here, because a stream of sibling
		// writes would otherwise grow the footprint unchecked until
		// this process's next own write. The on-disk mtime is refreshed
		// too: the sibling may have written the blob long ago, and this
		// read's recency must survive a restart like any other hit's.
		now := time.Now()
		s.mu.Lock()
		if _, ok := s.index[name]; !ok {
			s.clock++
			s.index[name] = &indexEntry{size: int64(len(data)), used: s.clock, touched: now.UnixNano()}
			s.bytes += int64(len(data))
		}
		victims := s.evictLocked()
		s.mu.Unlock()
		s.remove(victims)
		_ = os.Chtimes(s.path(name), now, now)
	} else {
		s.maybeTouch(name)
	}
	if b.Run != nil {
		// The blob stores the run report detached from its compile
		// report (the pointer cycle is stripped on write); reattach so
		// consumers see the usual RunReport shape.
		b.Run.Compile = b.Compile
	}
	s.hits.Add(1)
	return platform.Stored{
		Compile: b.Compile, Run: b.Run,
		Failed: b.Failed, FailReason: b.FailReason,
	}, true
}

// LoadRaw returns the pre-marshaled response bytes stored alongside a
// blob's payload: directly servable, CRC-verified, and never JSON-
// decoded. A v1 blob, a frame with no response section, a corrupt
// frame, or any read failure is a raw miss — the caller falls back to
// Load and the compute path, so this tier can never surface an error.
// Identity needs no payload decode: the address already binds the
// pipeline version, platform and spec key, and the CRC covers the
// bytes.
func (s *Store) LoadRaw(platformName, specKey string) ([]byte, bool) {
	name := address(platformName, specKey)
	s.mu.Lock()
	e, indexed := s.index[name]
	if indexed {
		s.clock++
		e.used = s.clock
	}
	s.mu.Unlock()

	if !s.readBr.allow() {
		s.skippedReads.Add(1)
		s.rawMisses.Add(1)
		return nil, false
	}
	data, err := s.readBlob(s.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.readBr.success()
			if indexed {
				s.drop(name, false)
			}
		} else {
			s.readBr.failure()
		}
		s.rawMisses.Add(1)
		return nil, false
	}
	s.readBr.success()
	_, resp, ferr := decodeFrame(data)
	if ferr != nil && !errors.Is(ferr, errNotFramed) {
		s.drop(name, true)
		s.rawMisses.Add(1)
		return nil, false
	}
	if len(resp) == 0 {
		// v1 blob or a frame written before any response was attached:
		// a miss here, but the payload path still works.
		s.rawMisses.Add(1)
		return nil, false
	}
	if indexed {
		s.maybeTouch(name)
	}
	s.rawHits.Add(1)
	return resp, true
}

// StoreResponse attaches pre-marshaled response bytes to an existing
// blob, write-behind. The writer merges them into the blob's frame; if
// the blob is not on disk (evicted, or its payload write failed) the
// response is silently dropped — like every store write, it is an
// optimization, recomputable on the next request. Callers typically
// enqueue the payload (via Store) before the response within one
// request, and the single writer goroutine preserves that order.
func (s *Store) StoreResponse(platformName, specKey string, resp []byte) {
	if len(resp) == 0 {
		return
	}
	select {
	case s.wq <- putReq{name: address(platformName, specKey), resp: append([]byte(nil), resp...)}:
	case <-s.done:
	}
}

// maybeTouch refreshes a hit blob's file mtime when it has gone stale
// (debounced by touchDebounce), keeping the restart-rebuilt LRU order
// honest: without it the order Open derives from mtimes is write-time
// FIFO, and a hot-but-old blob is the first eviction victim after a
// restart.
func (s *Store) maybeTouch(name string) {
	now := time.Now()
	s.mu.Lock()
	e, ok := s.index[name]
	if !ok || now.UnixNano()-e.touched < int64(touchDebounce) {
		s.mu.Unlock()
		return
	}
	e.touched = now.UnixNano()
	s.mu.Unlock()
	// Best effort outside the lock: a failed utime costs restart
	// recency only, never correctness.
	_ = os.Chtimes(s.path(name), now, now)
}

// readBlob reads one blob with the bounded retry policy: transient
// errors back off and retry, ErrNotExist returns immediately (a
// missing file is a fact, not a fault).
func (s *Store) readBlob(path string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < s.retryAttempts; attempt++ {
		if attempt > 0 {
			s.readRetries.Add(1)
			s.backoff(attempt)
		}
		data, err := s.readFile(path)
		if err == nil {
			return data, nil
		}
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// readFile is the injectable read syscall site. An injected corruption
// fault "succeeds" with garbage bytes, exercising the corrupt-blob
// delete-and-miss path end to end.
func (s *Store) readFile(path string) ([]byte, error) {
	if s.inj != nil {
		if err := s.inj.Fire(faults.OpStoreRead); err != nil {
			if faults.IsCorrupt(err) {
				return []byte("\x00not json"), nil
			}
			return nil, err
		}
	}
	return os.ReadFile(path)
}

// removeFile is the injectable unlink syscall site.
func (s *Store) removeFile(path string) error {
	if s.inj != nil {
		if err := s.inj.Fire(faults.OpStoreRemove); err != nil {
			return err
		}
	}
	return os.Remove(path)
}

// backoff sleeps the exponential retry delay for attempt (1-based)
// with ±50% jitter, so concurrent retries against a recovering disk
// do not stampede in lockstep.
func (s *Store) backoff(attempt int) {
	d := s.retryBackoff << (attempt - 1)
	if d <= 0 {
		return
	}
	time.Sleep(d/2 + time.Duration(rand.Int63n(int64(d))))
}

// victim is one eviction candidate handed from evictLocked to remove:
// the size rides along so a failed unlink can restore the accounting.
type victim struct {
	name string
	size int64
}

// remove deletes evicted blob files and counts the evictions; called
// outside the index lock.
func (s *Store) remove(victims []victim) {
	for _, v := range victims {
		if s.unlink(v.name, v.size) {
			s.evictions.Add(1)
		}
	}
}

// unlink removes a blob file from disk. When the unlink fails with the
// file still present (EACCES, EIO), the entry is re-adopted into the
// index at its known size, so s.bytes keeps tracking what is actually
// on disk and a later eviction pass retries the removal — the
// accounting can never silently drift below the real footprint.
func (s *Store) unlink(name string, size int64) bool {
	err := s.removeFile(s.path(name))
	if err == nil || errors.Is(err, fs.ErrNotExist) {
		return true
	}
	s.evictErrors.Add(1)
	if size <= 0 {
		if fi, serr := os.Stat(s.path(name)); serr == nil {
			size = fi.Size()
		}
	}
	if size <= 0 {
		return false
	}
	s.mu.Lock()
	if _, ok := s.index[name]; !ok {
		s.clock++
		s.index[name] = &indexEntry{size: size, used: s.clock, touched: time.Now().UnixNano()}
		s.bytes += size
	}
	s.mu.Unlock()
	return false
}

// drop removes a blob from the index (and best-effort from disk),
// optionally counting it as corruption.
func (s *Store) drop(name string, isCorrupt bool) {
	s.mu.Lock()
	var size int64
	if e, ok := s.index[name]; ok {
		size = e.size
		s.bytes -= e.size
		delete(s.index, name)
	}
	s.mu.Unlock()
	s.unlink(name, size)
	if isCorrupt {
		s.corrupt.Add(1)
	}
}

// Store implements platform.ResultStore: serialize st and enqueue it
// for the write-behind goroutine. It never blocks on disk; if the
// store is closed the write is silently dropped (the entry is
// recomputable by definition).
func (s *Store) Store(platformName, specKey string, st platform.Stored) {
	b := blob{
		Version:  PipelineVersion,
		Platform: platformName,
		SpecKey:  specKey,
		Failed:   st.Failed, FailReason: st.FailReason,
		Compile: st.Compile,
	}
	if st.Run != nil {
		// Strip the run→compile back-pointer: the compile report is
		// already a sibling field, and marshaling it twice doubles
		// every blob.
		detached := *st.Run
		detached.Compile = nil
		b.Run = &detached
	}
	data, err := json.Marshal(b)
	if err != nil {
		// Non-finite floats and the like: unstorable, not fatal.
		s.wfails.Add(1)
		return
	}
	select {
	case s.wq <- putReq{name: address(platformName, specKey), payload: data, platformName: platformName, specKey: specKey}:
	case <-s.done:
	}
}

// writer is the single write-behind goroutine: it persists queued
// blobs atomically (temp file + rename) and enforces the size budget.
func (s *Store) writer() {
	defer s.wg.Done()
	for {
		select {
		case r := <-s.wq:
			s.write(r)
		case <-s.done:
			for {
				select {
				case r := <-s.wq:
					s.write(r)
				default:
					return
				}
			}
		}
	}
}

func (s *Store) write(r putReq) {
	if r.flush != nil {
		close(r.flush)
		return
	}
	if !s.writeBr.allow() {
		// Write-path degraded mode: drop the blob. It is recomputable by
		// definition, and a tripped breaker means the disk is hurting —
		// draining the queue cheaply beats hammering a failing device.
		s.skippedWrites.Add(1)
		return
	}
	data := r.frame
	if data == nil {
		var ok bool
		if data, ok = s.frameForWrite(r); !ok {
			return
		}
	}
	var err error
	for attempt := 0; attempt < s.retryAttempts; attempt++ {
		if attempt > 0 {
			s.writeRetries.Add(1)
			s.backoff(attempt)
		}
		if err = s.writeOnce(r.name, data); err == nil {
			break
		}
	}
	if err != nil {
		s.wfails.Add(1)
		s.writeBr.failure()
		return
	}
	s.writeBr.success()
	switch {
	case r.upgrade:
		s.blobUpgrades.Add(1)
	case r.payload != nil || r.frame != nil:
		s.puts.Add(1)
	}
	if s.onWrite != nil && (r.payload != nil || r.frame != nil) {
		// After the rename: the hook sees only blobs that actually exist.
		s.onWrite(WriteEvent{Addr: r.name, Platform: r.platformName, SpecKey: r.specKey, Upgrade: r.upgrade})
	}

	s.mu.Lock()
	s.clock++
	now := time.Now().UnixNano()
	if e, ok := s.index[r.name]; ok {
		s.bytes += int64(len(data)) - e.size
		e.size = int64(len(data))
		e.used = s.clock
		e.touched = now
	} else {
		s.index[r.name] = &indexEntry{size: int64(len(data)), used: s.clock, touched: now}
		s.bytes += int64(len(data))
	}
	victims := s.evictLocked()
	s.mu.Unlock()
	s.remove(victims)
}

// frameForWrite assembles the v2 frame one putReq persists. All reads
// here are plain (uninjected, unretried) best-effort probes of the
// file this single-goroutine writer owns: a payload write carries an
// existing frame's response section forward so re-storing an outcome
// never drops its cached response bytes; a response write merges into
// the existing payload and is dropped whole when no blob is on disk to
// carry it.
func (s *Store) frameForWrite(r putReq) ([]byte, bool) {
	if r.payload != nil {
		var resp []byte
		s.mu.Lock()
		_, exists := s.index[r.name]
		s.mu.Unlock()
		if exists {
			// Only probe the disk when the index says there is something
			// to salvage — the common case (a fresh blob) skips the read.
			if cur, err := os.ReadFile(s.path(r.name)); err == nil {
				if _, curResp, err := decodeFrame(cur); err == nil {
					resp = curResp
				}
			}
		}
		return encodeFrame(r.payload, resp), true
	}
	cur, err := os.ReadFile(s.path(r.name))
	if err != nil {
		return nil, false
	}
	payload, _, ferr := decodeFrame(cur)
	if ferr != nil {
		if !errors.Is(ferr, errNotFramed) {
			return nil, false // corrupt: leave it for a read path to drop
		}
		payload = cur // v1 blob: merging the response also frames it
	}
	return encodeFrame(payload, r.resp), true
}

// writeOnce is one atomic persist attempt (temp file + rename), with
// the injectable write site in front.
func (s *Store) writeOnce(name string, data []byte) error {
	if s.inj != nil {
		if err := s.inj.Fire(faults.OpStoreWrite); err != nil {
			return err
		}
	}
	path := s.path(name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// evictLocked selects least-recently-used blobs until the footprint is
// back under budget, removing them from the index; the caller deletes
// the files outside the lock.
func (s *Store) evictLocked() []victim {
	if s.budget <= 0 || s.bytes <= s.budget {
		return nil
	}
	type cand struct {
		name string
		used int64
		size int64
	}
	cands := make([]cand, 0, len(s.index))
	for name, e := range s.index {
		cands = append(cands, cand{name, e.used, e.size})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].used < cands[j].used })
	var victims []victim
	for _, c := range cands {
		if s.bytes <= s.budget {
			break
		}
		delete(s.index, c.name)
		s.bytes -= c.size
		victims = append(victims, victim{c.name, c.size})
	}
	return victims
}

// Snapshot flushes the write-behind queue: when it returns, every
// Store call that happened before it is durably on disk. It is the
// pre-shutdown (and pre-restart-test) barrier.
func (s *Store) Snapshot() {
	ch := make(chan struct{})
	select {
	case s.wq <- putReq{flush: ch}:
	case <-s.done:
		return
	}
	select {
	case <-ch:
	case <-s.done:
		// Closed while the barrier was queued: the writer's drain loop
		// services it if the writer is still up, but never wait on a
		// writer that has already exited.
	}
}

// Close flushes pending writes and stops the writer; it is idempotent.
// The store must not be used after Close; late Store calls are
// dropped, late Loads still work (reads need no writer).
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		s.Snapshot()
		close(s.done)
		s.wg.Wait()
	})
}

// Stats returns the current counters and size gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := int64(len(s.index)), s.bytes
	s.mu.Unlock()
	readBr, writeBr := s.readBr.stats(), s.writeBr.stats()
	st := Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Puts:          s.puts.Load(),
		Evictions:     s.evictions.Load(),
		Corrupt:       s.corrupt.Load(),
		WriteErrors:   s.wfails.Load(),
		RawHits:       s.rawHits.Load(),
		RawMisses:     s.rawMisses.Load(),
		BlobUpgrades:  s.blobUpgrades.Load(),
		Entries:       entries,
		Bytes:         bytes,
		BudgetBytes:   s.budget,
		ReadRetries:   s.readRetries.Load(),
		WriteRetries:  s.writeRetries.Load(),
		SkippedReads:  s.skippedReads.Load(),
		SkippedWrites: s.skippedWrites.Load(),
		EvictErrors:   s.evictErrors.Load(),
		Degraded:      s.Degraded(),
		ReadBreaker:   &readBr,
		WriteBreaker:  &writeBr,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}

// ScanBlobs walks the shard tree at dir offline (no open Store needed)
// and calls fn with each readable blob's address and decoded identity.
// It is the against-disk half of provenance verification: every blob
// found here should appear in the chain. Unreadable or undecodable
// blobs are reported to fn with an empty platform name so the caller
// can flag them rather than silently skipping; fn returning an error
// stops the walk.
func ScanBlobs(dir string, fn func(addr, platformName, specKey string, version int) error) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		addr := d.Name()[:len(d.Name())-len(".json")]
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return fn(addr, "", "", 0)
		}
		payload, _, ferr := decodeFrame(data)
		if errors.Is(ferr, errNotFramed) {
			payload = data
		} else if ferr != nil {
			return fn(addr, "", "", 0)
		}
		var b blob
		if jerr := json.Unmarshal(payload, &b); jerr != nil {
			return fn(addr, "", "", 0)
		}
		return fn(addr, b.Platform, b.SpecKey, b.Version)
	})
}
