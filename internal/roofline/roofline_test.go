package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"dabench/internal/units"
)

// The three paper platforms' global-memory rooflines (calibrated peaks).
func wse() Model { return Model{Name: "WSE-2", Peak: 1.7e15, BW: 20e15} }
func rdu() Model { return Model{Name: "RDU", Peak: 278e12, BW: 0.2e12} }
func ipu() Model { return Model{Name: "IPU", Peak: 350e12, BW: 8e12} }

func TestRidge(t *testing.T) {
	// WSE's 20 PB/s puts the ridge below 0.1 FLOPs/byte: everything is
	// compute-bound (paper Fig. 10a).
	if r := wse().Ridge(); r > 0.1 {
		t.Errorf("WSE ridge = %v, want < 0.1", r)
	}
	// RDU's 0.2 TB/s pushes the ridge to 1390 FLOPs/byte: LLM training
	// at AI 200-1600 is mostly memory-bound (Fig. 10b).
	if r := rdu().Ridge(); math.Abs(r-1390) > 1 {
		t.Errorf("RDU ridge = %v, want 1390", r)
	}
}

func TestAttainable(t *testing.T) {
	m := rdu()
	// Memory-bound region: AI 200 → 40 TFLOPs, matching the paper's
	// observed 35-50 TFLOPs band.
	got := m.Attainable(200)
	if math.Abs(got.TFLOPS()-40) > 1e-9 {
		t.Errorf("attainable(200) = %v TFLOPs, want 40", got.TFLOPS())
	}
	// Past the ridge the compute roof caps performance.
	if got := m.Attainable(1e6); got != m.Peak {
		t.Errorf("attainable beyond ridge = %v, want peak", got)
	}
	if got := m.Attainable(0); got != 0 {
		t.Errorf("attainable(0) = %v, want 0", got)
	}
}

func TestClassifyPaperRegimes(t *testing.T) {
	// Paper: WSE workloads AI 8.9-28 are compute-bound; RDU and IPU
	// workloads are memory-bound.
	for _, ai := range []float64{8.9, 15, 28} {
		if wse().Classify(ai) != ComputeBound {
			t.Errorf("WSE AI=%v should be compute-bound", ai)
		}
	}
	for _, ai := range []float64{200, 800, 1300} {
		if rdu().Classify(ai) != MemoryBound {
			t.Errorf("RDU AI=%v should be memory-bound", ai)
		}
	}
	for _, ai := range []float64{20, 30, 42} {
		if ipu().Classify(ai) != MemoryBound {
			t.Errorf("IPU AI=%v should be memory-bound", ai)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Model{Name: "x", Peak: 0, BW: 1}).Validate(); err == nil {
		t.Error("zero peak accepted")
	}
	if err := (Model{Name: "x", Peak: 1, BW: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := wse().Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestPlot(t *testing.T) {
	m := ipu()
	pts, err := m.Plot(
		[]string{"low", "mid", "high"},
		[]float64{20, 30, 42},
		[]units.FLOPSRate{91e12, 120e12, 143e12},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Regime != MemoryBound {
			t.Errorf("%s: regime = %v", p.Label, p.Regime)
		}
		if p.Efficiency <= 0 || p.Efficiency > 1 {
			t.Errorf("%s: efficiency = %v", p.Label, p.Efficiency)
		}
		if p.Achieved > p.Bound {
			t.Errorf("%s: achieved %v exceeds bound %v", p.Label, p.Achieved, p.Bound)
		}
	}
	if _, err := m.Plot([]string{"a"}, []float64{1, 2}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestRegimeString(t *testing.T) {
	if MemoryBound.String() != "memory-bound" || ComputeBound.String() != "compute-bound" {
		t.Error("regime names wrong")
	}
}

// Property: attainable performance is monotone in AI and never exceeds
// the peak.
func TestAttainableMonotoneProperty(t *testing.T) {
	m := rdu()
	f := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		px, py := m.Attainable(x), m.Attainable(y)
		return px <= py && py <= m.Peak
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the regime switches exactly at the ridge.
func TestRidgeConsistencyProperty(t *testing.T) {
	f := func(peakT, bwT uint16) bool {
		m := Model{
			Name: "p",
			Peak: units.FLOPSRate(float64(peakT%500)+1) * 1e12,
			BW:   units.Bandwidth(float64(bwT%500)+1) * 1e9,
		}
		r := m.Ridge()
		return m.Classify(r*0.99) == MemoryBound && m.Classify(r*1.01) == ComputeBound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
