// Package roofline implements the roofline performance model the paper
// uses to classify each accelerator's global-memory behaviour
// (Figure 10): attainable performance is the minimum of the compute
// peak and bandwidth × arithmetic intensity.
package roofline

import (
	"fmt"
	"math"

	"dabench/internal/units"
)

// Model is one platform's roofline at a single memory tier.
type Model struct {
	Name string
	Peak units.FLOPSRate // compute roof
	BW   units.Bandwidth // memory tier bandwidth
}

// Validate rejects non-positive roofs.
func (m Model) Validate() error {
	if m.Peak <= 0 {
		return fmt.Errorf("roofline %q: peak %v must be positive", m.Name, m.Peak)
	}
	if m.BW <= 0 {
		return fmt.Errorf("roofline %q: bandwidth %v must be positive", m.Name, m.BW)
	}
	return nil
}

// Ridge returns the arithmetic intensity (FLOPs/byte) at which the
// memory and compute roofs meet.
func (m Model) Ridge() float64 {
	if m.BW <= 0 {
		return math.Inf(1)
	}
	return float64(m.Peak) / float64(m.BW)
}

// Attainable returns the roofline bound for the given arithmetic
// intensity.
func (m Model) Attainable(ai float64) units.FLOPSRate {
	if ai <= 0 {
		return 0
	}
	mem := units.FLOPSRate(ai * float64(m.BW))
	if mem < m.Peak {
		return mem
	}
	return m.Peak
}

// Regime classifies a workload's position on the roofline.
type Regime int

// Roofline regimes.
const (
	MemoryBound Regime = iota
	ComputeBound
)

// String returns the regime name.
func (r Regime) String() string {
	if r == ComputeBound {
		return "compute-bound"
	}
	return "memory-bound"
}

// Classify returns the regime for arithmetic intensity ai.
func (m Model) Classify(ai float64) Regime {
	if ai >= m.Ridge() {
		return ComputeBound
	}
	return MemoryBound
}

// Point is one workload plotted on a roofline.
type Point struct {
	Label      string
	AI         float64         // FLOPs per byte
	Achieved   units.FLOPSRate // measured performance
	Bound      units.FLOPSRate // roofline bound at this AI
	Regime     Regime
	Efficiency float64 // achieved / bound
}

// Plot evaluates a set of (label, AI, achieved) samples against the
// model.
func (m Model) Plot(labels []string, ai []float64, achieved []units.FLOPSRate) ([]Point, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(labels) != len(ai) || len(ai) != len(achieved) {
		return nil, fmt.Errorf("roofline: mismatched lengths %d/%d/%d", len(labels), len(ai), len(achieved))
	}
	pts := make([]Point, len(ai))
	for i := range ai {
		bound := m.Attainable(ai[i])
		p := Point{
			Label:    labels[i],
			AI:       ai[i],
			Achieved: achieved[i],
			Bound:    bound,
			Regime:   m.Classify(ai[i]),
		}
		if bound > 0 {
			p.Efficiency = units.Clamp(float64(achieved[i])/float64(bound), 0, 1)
		}
		pts[i] = p
	}
	return pts, nil
}
