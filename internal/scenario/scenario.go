// Package scenario is the declarative layer over the experiment
// pipeline: where the paper's runners and the server's sweep endpoints
// each walk one platform's layer×batch×precision grid, a scenario
// names a parameter grid, a *set* of platforms, and the comparisons to
// compute — and the engine turns that document into speedup tables,
// best-per-point winner matrices and pareto frontiers, all produced by
// the same cached compile/run pipeline every other entry point uses.
//
// A scenario is a versioned JSON document:
//
//	{
//	  "version": 1,
//	  "name": "cross-platform-throughput",
//	  "platforms": ["wse", "rdu", "ipu", "gpu"],
//	  "base": {"model": "gpt2-small", "seq": 1024, "precision": "FP16"},
//	  "grid": {"layers": [6, 12], "batches": [256, 512]},
//	  "compare": ["speedup", "winners", "pareto"],
//	  "baseline": "gpu"
//	}
//
// Version is the format epoch: documents from a different epoch are
// rejected at parse time instead of silently misread. Grid axes that
// are omitted hold the base value fixed; every named axis contributes
// a segment to each point's label, so a point is identified the same
// way everywhere it is rendered.
//
// Execution goes through experiments.SharedPlatform and the sweep
// worker pool, so every compile and run lands in the process-wide
// graph/compile/run cache tiers and, when one is mounted, the
// persistent result store — a scenario re-run against a warm daemon
// costs lookups, not simulation. Placement failures are findings
// ("Fail" rows), never scenario errors. Rendering goes through
// experiments.Result.Render, the same path the CLI and the daemon use
// for experiment artifacts, which is what keeps a scenario's table and
// CSV output byte-identical across every entry point.
package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"dabench/internal/experiments"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/report"
	"dabench/internal/sweep"
)

// FormatVersion is the scenario document epoch. Bump it whenever the
// schema or the execution semantics change incompatibly; old documents
// then fail loudly at Parse instead of executing under new rules.
const FormatVersion = 1

// Comparison names accepted in a scenario's "compare" list.
const (
	CompareSpeedup = "speedup" // per-point throughput ratio vs the baseline platform
	CompareWinners = "winners" // best platform per grid point, with its margin
	ComparePareto  = "pareto"  // (tokens/s, efficiency) frontier over every outcome
)

// maxGridPoints bounds one scenario's per-platform grid. It is an
// engine sanity cap against pathological documents; the serving caps
// (sync budget, job cap) are far below it.
const maxGridPoints = 1 << 30

// Scenario is one declarative multi-platform study.
type Scenario struct {
	// Version must equal FormatVersion.
	Version int `json:"version"`
	// Name identifies the scenario in tables, job journals and the
	// library. Required.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Platforms is the set of platforms every grid point runs on
	// (aliases as accepted by experiments.SharedPlatform). Required,
	// no duplicates.
	Platforms []string `json:"platforms"`
	// Base is the fixed part of every point's TrainSpec.
	Base Base `json:"base"`
	// Grid names the swept axes; omitted axes hold the base value.
	Grid Grid `json:"grid,omitempty"`
	// Compare lists the comparisons to compute. Empty means every
	// comparison applicable to the platform set (speedup and winners
	// need at least two platforms; pareto always applies).
	Compare []string `json:"compare,omitempty"`
	// Baseline names the speedup denominator platform; default: the
	// first entry of Platforms. Must be a member of Platforms.
	Baseline string `json:"baseline,omitempty"`
}

// Base is the fixed workload underneath the grid: the same knobs as
// the server's run request, with the same defaults (batch 512, seq
// 1024, FP16).
type Base struct {
	Model     string `json:"model"`
	Layers    int    `json:"layers,omitempty"`
	Batch     int    `json:"batch,omitempty"`
	Seq       int    `json:"seq,omitempty"`
	Precision string `json:"precision,omitempty"`
	// Mode is the RDU build-optimization level ("O0", "O1", "O3");
	// platforms without compile modes ignore it.
	Mode string `json:"mode,omitempty"`
}

// Grid is the swept cross product. Point order is deterministic:
// layers-major, then batches, precisions, tensor-parallel degrees and
// modes — the order every results array and table follows.
type Grid struct {
	Layers         []int    `json:"layers,omitempty"`
	Batches        []int    `json:"batches,omitempty"`
	Precisions     []string `json:"precisions,omitempty"`
	TensorParallel []int    `json:"tensor_parallel,omitempty"`
	// Modes sweeps the RDU build-optimization levels.
	Modes []string `json:"modes,omitempty"`
}

// Outcome is one executed scenario: the wire form served by
// POST /v1/scenarios and stored as an async job's result, with the
// rendered tables carried whole so every consumer renders the same
// bytes.
type Outcome struct {
	Scenario  string   `json:"scenario"`
	Platforms []string `json:"platforms"`
	// GridPoints is the per-platform grid size; TotalPoints =
	// GridPoints × len(Platforms) is how many compile/run pairs the
	// scenario executed, and is the denominator Failed counts
	// against (it matches the async job view's points).
	GridPoints  int             `json:"grid_points"`
	TotalPoints int             `json:"total_points"`
	Failed      int             `json:"failed"`
	Tables      []*report.Table `json:"tables"`
}

// Render writes the outcome's tables through the shared
// experiments.Result.Render path — the one renderer the CLI, the
// synchronous endpoint and the async job result all use, byte for
// byte.
func (o *Outcome) Render(w io.Writer, csv bool) error {
	res := experiments.Result{ID: o.Scenario, Tables: o.Tables}
	return res.Render(w, csv)
}

// RunOptions tunes one Run call.
type RunOptions struct {
	// Workers overrides the sweep pool size (0: process default).
	Workers int
	// Progress, when non-nil, receives cumulative (done, failed)
	// counts as chunks of the platform×grid product complete — the
	// async job executor's progress beat.
	Progress func(done, failed int)
}

// Parse decodes and validates a scenario document. Decoding is strict:
// unknown fields, trailing data and wrong format versions are errors.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if dec.More() {
		return nil, errors.New("scenario: trailing data after JSON value")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Validate checks the document without executing it.
func (sc *Scenario) Validate() error {
	_, err := sc.compile()
	return err
}

// Points returns the total number of compile/run pairs the scenario
// executes: the grid size times the platform count.
func (sc *Scenario) Points() (int, error) {
	a, err := sc.compile()
	if err != nil {
		return 0, err
	}
	return len(a.plats) * a.gridN, nil
}

// axes is a validated, resolved scenario: platforms bound to the
// process-wide cached simulators and every grid axis normalized to at
// least one value.
type axes struct {
	plats   []platform.CachedPlatform
	names   []string // display names, index-aligned with plats
	base    platform.TrainSpec
	layers  []int
	batches []int
	formats []precision.Format
	tps     []int
	modes   []platform.CompileMode
	// labeled marks which axes were named in the document and so
	// appear in point labels.
	labeled  [5]bool
	gridN    int
	compare  []string
	baseline int // index into plats
}

// compile resolves and validates the document into executable axes.
func (sc *Scenario) compile() (*axes, error) {
	if sc.Version != FormatVersion {
		return nil, fmt.Errorf("scenario: format version %d not supported (this engine speaks version %d)",
			sc.Version, FormatVersion)
	}
	if sc.Name == "" {
		return nil, errors.New("scenario: name is required")
	}
	if len(sc.Platforms) == 0 {
		return nil, fmt.Errorf("scenario: platforms is required (valid: %s)",
			strings.Join(experiments.PlatformNames(), ", "))
	}
	a := &axes{baseline: -1}
	seen := map[string]bool{}
	for _, name := range sc.Platforms {
		p, ok := experiments.SharedPlatform(name)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown platform %q (valid: %s)",
				name, strings.Join(experiments.PlatformNames(), ", "))
		}
		if seen[p.Name()] {
			return nil, fmt.Errorf("scenario: duplicate platform %q", name)
		}
		seen[p.Name()] = true
		a.plats = append(a.plats, p)
		a.names = append(a.names, p.Name())
		if sc.Baseline != "" {
			if bp, ok := experiments.SharedPlatform(sc.Baseline); ok && bp.Name() == p.Name() {
				a.baseline = len(a.plats) - 1
			}
		}
	}
	if sc.Baseline == "" {
		a.baseline = 0
	} else if a.baseline < 0 {
		return nil, fmt.Errorf("scenario: baseline %q is not in platforms", sc.Baseline)
	}

	// The fixed base spec, with the server's defaults.
	if sc.Base.Model == "" {
		return nil, errors.New("scenario: base.model is required")
	}
	cfg, ok := model.ByName(sc.Base.Model)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown model %q", sc.Base.Model)
	}
	if sc.Base.Layers < 0 {
		return nil, fmt.Errorf("scenario: base.layers %d must be >= 0", sc.Base.Layers)
	}
	if sc.Base.Layers > 0 {
		cfg = cfg.WithLayers(sc.Base.Layers)
	}
	a.base = platform.TrainSpec{Model: cfg, Batch: sc.Base.Batch, Seq: sc.Base.Seq}
	if a.base.Batch == 0 {
		a.base.Batch = 512
	}
	if a.base.Seq == 0 {
		a.base.Seq = 1024
	}
	prec := sc.Base.Precision
	if prec == "" {
		prec = "FP16"
	}
	f, err := precision.Parse(prec)
	if err != nil {
		return nil, fmt.Errorf("scenario: base: %w", err)
	}
	a.base.Precision = f
	mode, err := platform.ParseMode(sc.Base.Mode)
	if err != nil {
		return nil, err
	}
	a.base.Par.Mode = mode

	// The grid axes: a named axis sweeps and labels; an omitted one
	// holds the base value.
	g := sc.Grid
	a.labeled = [5]bool{len(g.Layers) > 0, len(g.Batches) > 0, len(g.Precisions) > 0,
		len(g.TensorParallel) > 0, len(g.Modes) > 0}
	a.layers = g.Layers
	if len(a.layers) == 0 {
		a.layers = []int{a.base.Model.NumLayers}
	}
	a.batches = g.Batches
	if len(a.batches) == 0 {
		a.batches = []int{a.base.Batch}
	}
	for _, l := range a.layers {
		if l <= 0 {
			return nil, fmt.Errorf("scenario: grid axes must be positive (layer %d)", l)
		}
	}
	for _, b := range a.batches {
		if b <= 0 {
			return nil, fmt.Errorf("scenario: grid axes must be positive (batch %d)", b)
		}
	}
	if len(g.Precisions) == 0 {
		a.formats = []precision.Format{a.base.Precision}
	} else {
		for _, s := range g.Precisions {
			f, err := precision.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("scenario: grid: %w", err)
			}
			a.formats = append(a.formats, f)
		}
	}
	a.tps = g.TensorParallel
	if len(a.tps) == 0 {
		a.tps = []int{a.base.Par.TensorParallel}
	}
	for _, tp := range a.tps {
		// 0 is legal here: it means "no tensor parallelism", matching
		// TrainSpec's own >= 0 rule.
		if tp < 0 {
			return nil, fmt.Errorf("scenario: tensor_parallel must be >= 0 (got %d)", tp)
		}
	}
	if len(g.Modes) == 0 {
		a.modes = []platform.CompileMode{a.base.Par.Mode}
	} else {
		for _, s := range g.Modes {
			m, err := platform.ParseMode(s)
			if err != nil {
				return nil, err
			}
			a.modes = append(a.modes, m)
		}
	}
	n := 1
	for _, axis := range []int{len(a.layers), len(a.batches), len(a.formats), len(a.tps), len(a.modes)} {
		if n > maxGridPoints/axis {
			return nil, fmt.Errorf("scenario: grid exceeds %d points", maxGridPoints)
		}
		n *= axis
	}
	a.gridN = n

	// Every grid point must be a valid TrainSpec *now*: a bad document
	// has to fail at parse/submission, not deep inside an executor as
	// an internal error. The axes already check their own positivity,
	// and of the remaining TrainSpec rules only the layer count feeds
	// Validate, so probing one spec per layer value covers the whole
	// product without expanding it.
	for _, l := range a.layers {
		probe := a.base
		probe.Model = probe.Model.WithLayers(l)
		if err := probe.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	// Comparisons.
	if len(sc.Compare) == 0 {
		if len(a.plats) >= 2 {
			a.compare = []string{CompareSpeedup, CompareWinners, ComparePareto}
		} else {
			a.compare = []string{ComparePareto}
		}
	} else {
		for _, c := range sc.Compare {
			switch c {
			case CompareSpeedup, CompareWinners:
				if len(a.plats) < 2 {
					return nil, fmt.Errorf("scenario: comparison %q needs at least two platforms", c)
				}
			case ComparePareto:
			default:
				return nil, fmt.Errorf("scenario: unknown comparison %q (valid: %s, %s, %s)",
					c, CompareSpeedup, CompareWinners, ComparePareto)
			}
			a.compare = append(a.compare, c)
		}
	}
	return a, nil
}

// spec derives grid point i's TrainSpec: layers-major, then batches,
// precisions, TP degrees, modes.
func (a *axes) spec(i int) platform.TrainSpec {
	nm := len(a.modes)
	nt := len(a.tps) * nm
	nf := len(a.formats) * nt
	nb := len(a.batches) * nf
	spec := a.base
	spec.Model = spec.Model.WithLayers(a.layers[i/nb])
	spec.Batch = a.batches[(i/nf)%len(a.batches)]
	spec.Precision = a.formats[(i/nt)%len(a.formats)]
	spec.Par.TensorParallel = a.tps[(i/nm)%len(a.tps)]
	spec.Par.Mode = a.modes[i%nm]
	return spec
}

// label names grid point i from the axes the document swept; a
// scenario with no grid has the single label "base".
func (a *axes) label(i int) string {
	spec := a.spec(i)
	var parts []string
	if a.labeled[0] {
		parts = append(parts, fmt.Sprintf("L=%d", spec.Model.NumLayers))
	}
	if a.labeled[1] {
		parts = append(parts, fmt.Sprintf("B=%d", spec.Batch))
	}
	if a.labeled[2] {
		parts = append(parts, spec.Precision.String())
	}
	if a.labeled[3] {
		parts = append(parts, fmt.Sprintf("TP%d", spec.Par.TensorParallel))
	}
	if a.labeled[4] {
		parts = append(parts, spec.Par.Mode.String())
	}
	if len(parts) == 0 {
		return "base"
	}
	return strings.Join(parts, "/")
}

// pointOut is one (platform, grid point) outcome.
type pointOut struct {
	failed bool
	reason string
	step   float64
	tps    float64
	tflops float64
	eff    float64
}

// runChunk is how many platform×grid points one progress beat covers
// (mirrors the async job executor's chunking).
const runChunk = 256

// Run executes the scenario on the process-wide cached platform set
// and assembles its comparison tables. Placement failures are
// tolerated findings; a context cancellation or simulator fault aborts
// with that error.
func Run(ctx context.Context, sc *Scenario, opts RunOptions) (*Outcome, error) {
	a, err := sc.compile()
	if err != nil {
		return nil, err
	}
	total := len(a.plats) * a.gridN
	var sweepOpts []sweep.Option
	if opts.Workers > 0 {
		sweepOpts = append(sweepOpts, sweep.Workers(opts.Workers))
	}

	results := make([]pointOut, 0, total)
	failed := 0
	for lo := 0; lo < total; lo += runChunk {
		hi := min(lo+runChunk, total)
		outs, err := sweep.MapN(ctx, hi-lo, func(_ context.Context, i int) (pointOut, error) {
			idx := lo + i
			p := a.plats[idx/a.gridN]
			spec := a.spec(idx % a.gridN)
			cr, err := p.Compile(spec)
			if err != nil {
				return pointOut{}, err // placement failures tolerated by MapN's default predicate
			}
			rr, err := p.Run(cr)
			if err != nil {
				return pointOut{}, err
			}
			return pointOut{
				step: float64(rr.StepTime), tps: rr.TokensPerSec,
				tflops: rr.Achieved.TFLOPS(), eff: rr.Efficiency,
			}, nil
		}, sweepOpts...)
		if err != nil {
			return nil, err
		}
		for _, o := range outs {
			po := o.Value
			if o.Failed() {
				po = pointOut{failed: true, reason: o.Err.Error()}
				failed++
			}
			results = append(results, po)
		}
		if opts.Progress != nil {
			opts.Progress(hi, failed)
		}
	}

	out := &Outcome{
		Scenario:    sc.Name,
		Platforms:   a.names,
		GridPoints:  a.gridN,
		TotalPoints: total,
		Failed:      failed,
	}
	out.Tables = append(out.Tables, a.resultsTable(sc.Name, results))
	if failed > 0 {
		// Placement failures are findings: their reasons must be
		// reachable from every entry point, not computed and dropped.
		out.Tables = append(out.Tables, a.failuresTable(sc.Name, results))
	}
	for _, c := range a.compare {
		switch c {
		case CompareSpeedup:
			out.Tables = append(out.Tables, a.speedupTable(sc.Name, results))
		case CompareWinners:
			out.Tables = append(out.Tables, a.winnersTable(sc.Name, results))
		case ComparePareto:
			out.Tables = append(out.Tables, a.paretoTable(sc.Name, results))
		}
	}
	return out, nil
}

// at returns the outcome of grid point pt on platform pi.
func at(results []pointOut, gridN, pi, pt int) pointOut { return results[pi*gridN+pt] }

// resultsTable is the raw per-platform outcome listing every scenario
// produces, in platform-major point order.
func (a *axes) resultsTable(name string, results []pointOut) *report.Table {
	tbl := report.New(fmt.Sprintf("Scenario %s — per-platform results", name),
		"Platform", "Config", "Status", "Step time s", "Tokens/s", "TFLOPS", "Efficiency %")
	for pi, pname := range a.names {
		for pt := 0; pt < a.gridN; pt++ {
			r := at(results, a.gridN, pi, pt)
			if r.failed {
				tbl.Add(pname, a.label(pt), "Fail", "-", "-", "-", "-")
				continue
			}
			tbl.Add(pname, a.label(pt), "ok", report.F(r.step), report.F(r.tps),
				report.F(r.tflops), report.F(100*r.eff))
		}
	}
	return tbl
}

// failuresTable lists every failed (platform, point) with the
// compiler's reason — the diagnostics behind the results table's Fail
// markers, in the same platform-major order.
func (a *axes) failuresTable(name string, results []pointOut) *report.Table {
	tbl := report.New(fmt.Sprintf("Scenario %s — failures", name),
		"Platform", "Config", "Reason")
	for pi, pname := range a.names {
		for pt := 0; pt < a.gridN; pt++ {
			if r := at(results, a.gridN, pi, pt); r.failed {
				tbl.Add(pname, a.label(pt), r.reason)
			}
		}
	}
	return tbl
}

// speedupTable reports each platform's tokens/s per grid point as a
// multiple of the baseline platform's.
func (a *axes) speedupTable(name string, results []pointOut) *report.Table {
	headers := append([]string{"Config"}, a.names...)
	tbl := report.New(fmt.Sprintf("Scenario %s — tokens/s speedup vs %s", name, a.names[a.baseline]),
		headers...)
	for pt := 0; pt < a.gridN; pt++ {
		base := at(results, a.gridN, a.baseline, pt)
		row := make([]string, 0, len(a.names)+1)
		row = append(row, a.label(pt))
		for pi := range a.names {
			r := at(results, a.gridN, pi, pt)
			if r.failed || base.failed || base.tps <= 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, report.F(r.tps/base.tps))
		}
		tbl.Add(row...)
	}
	return tbl
}

// winnersTable names the best platform (by tokens/s) per grid point
// and its margin over the runner-up.
func (a *axes) winnersTable(name string, results []pointOut) *report.Table {
	tbl := report.New(fmt.Sprintf("Scenario %s — best platform per point (tokens/s)", name),
		"Config", "Winner", "Tokens/s", "Margin x")
	for pt := 0; pt < a.gridN; pt++ {
		best, second := -1, -1
		for pi := range a.names {
			r := at(results, a.gridN, pi, pt)
			if r.failed {
				continue
			}
			switch {
			case best == -1 || r.tps > at(results, a.gridN, best, pt).tps:
				second = best
				best = pi
			case second == -1 || r.tps > at(results, a.gridN, second, pt).tps:
				second = pi
			}
		}
		if best == -1 {
			tbl.Add(a.label(pt), "-", "-", "-")
			continue
		}
		margin := "-"
		bestTPS := at(results, a.gridN, best, pt).tps
		if second != -1 {
			if secondTPS := at(results, a.gridN, second, pt).tps; secondTPS > 0 {
				margin = report.F(bestTPS / secondTPS)
			}
		}
		tbl.Add(a.label(pt), a.names[best], report.F(bestTPS), margin)
	}
	return tbl
}

// paretoTable lists the (tokens/s, efficiency) frontier over every
// successful (platform, point) outcome: the configurations no other
// configuration beats on both axes.
func (a *axes) paretoTable(name string, results []pointOut) *report.Table {
	tbl := report.New(fmt.Sprintf("Scenario %s — pareto frontier (tokens/s vs efficiency)", name),
		"Platform", "Config", "Tokens/s", "Efficiency %")
	type cand struct{ pi, pt int }
	var ok []cand
	for pi := range a.names {
		for pt := 0; pt < a.gridN; pt++ {
			if !at(results, a.gridN, pi, pt).failed {
				ok = append(ok, cand{pi, pt})
			}
		}
	}
	// Sorted by (tokens/s desc, efficiency desc, platform, point) — the
	// presentation order — one sweep finds the frontier in O(n log n)
	// (grids can reach the async job cap; a quadratic dominance scan
	// would dwarf the sweep itself there). A point survives iff it has
	// the best efficiency of its throughput class AND strictly beats
	// every higher-throughput point's efficiency; equal (tps, eff) ties
	// dominate nothing and all survive.
	sort.Slice(ok, func(i, j int) bool {
		ri := at(results, a.gridN, ok[i].pi, ok[i].pt)
		rj := at(results, a.gridN, ok[j].pi, ok[j].pt)
		if ri.tps != rj.tps {
			return ri.tps > rj.tps
		}
		if ri.eff != rj.eff {
			return ri.eff > rj.eff
		}
		if ok[i].pi != ok[j].pi {
			return ok[i].pi < ok[j].pi
		}
		return ok[i].pt < ok[j].pt
	})
	seenEff := false
	var maxEffAbove float64 // max efficiency among strictly faster points
	for i := 0; i < len(ok); {
		j := i // the equal-throughput group [i, j)
		tps := at(results, a.gridN, ok[i].pi, ok[i].pt).tps
		for j < len(ok) && at(results, a.gridN, ok[j].pi, ok[j].pt).tps == tps {
			j++
		}
		groupMaxEff := at(results, a.gridN, ok[i].pi, ok[i].pt).eff
		for k := i; k < j; k++ {
			r := at(results, a.gridN, ok[k].pi, ok[k].pt)
			if r.eff == groupMaxEff && (!seenEff || r.eff > maxEffAbove) {
				tbl.Add(a.names[ok[k].pi], a.label(ok[k].pt), report.F(r.tps), report.F(100*r.eff))
			}
		}
		if !seenEff || groupMaxEff > maxEffAbove {
			seenEff, maxEffAbove = true, groupMaxEff
		}
		i = j
	}
	return tbl
}
