package scenario

// The built-in scenario library: the paper's cross-platform questions
// re-posed as declarative studies. Each is small enough to run
// synchronously under the default serving budget, and each exercises a
// different comparison shape — speedup vs a baseline, winner matrices,
// pareto frontiers, single-platform build-mode ladders. Golden-file
// tests pin every library scenario's rendered output.

// library is the ordered built-in set. Keep the order stable: list
// endpoints, docs and tests all follow it.
var library = []*Scenario{
	{
		Version:     FormatVersion,
		Name:        "cross-platform-throughput",
		Description: "GPT-2 layer/batch grid on all four platforms: speedup vs the GPU baseline, per-point winners, pareto frontier (the paper's Table III axis).",
		Platforms:   []string{"wse", "rdu", "ipu", "gpu"},
		Base:        Base{Model: "gpt2-small", Seq: 1024, Precision: "FP16"},
		Grid:        Grid{Layers: []int{6, 12}, Batches: []int{256, 512}},
		Compare:     []string{CompareSpeedup, CompareWinners, ComparePareto},
		Baseline:    "gpu",
	},
	{
		Version:     FormatVersion,
		Name:        "batch-scaling",
		Description: "Throughput vs batch size on the dataflow platforms and the GPU reference (the paper's Figure 12 axis).",
		Platforms:   []string{"wse", "ipu", "gpu"},
		Base:        Base{Model: "gpt2-small", Layers: 4, Seq: 1024, Precision: "FP16"},
		Grid:        Grid{Batches: []int{64, 128, 256, 512, 1024}},
		Compare:     []string{CompareSpeedup, CompareWinners, ComparePareto},
		Baseline:    "gpu",
	},
	{
		Version:     FormatVersion,
		Name:        "precision-ladder",
		Description: "Numeric format impact per platform (the paper's Table IV axis); formats a platform cannot place appear as Fail findings.",
		Platforms:   []string{"wse", "ipu", "gpu"},
		Base:        Base{Model: "gpt2-small", Layers: 2, Seq: 1024},
		Grid:        Grid{Precisions: []string{"FP32", "FP16", "Mixed"}},
		Compare:     []string{CompareWinners, ComparePareto},
	},
	{
		Version:     FormatVersion,
		Name:        "layer-ladder-pareto",
		Description: "Model-depth scaling across all four platforms, compared on the (throughput, efficiency) frontier.",
		Platforms:   []string{"wse", "rdu", "ipu", "gpu"},
		Base:        Base{Model: "gpt2-small", Batch: 256, Seq: 1024, Precision: "FP16"},
		Grid:        Grid{Layers: []int{2, 4, 8, 12}},
		Compare:     []string{CompareWinners, ComparePareto},
	},
	{
		Version:     FormatVersion,
		Name:        "rdu-build-modes",
		Description: "RDU build-optimization levels (O0/O1/O3) over a layer ladder — a single-platform study on the pareto frontier.",
		Platforms:   []string{"rdu"},
		Base:        Base{Model: "gpt2-small", Batch: 4, Seq: 1024, Precision: "BF16"},
		Grid:        Grid{Layers: []int{8, 16}, Modes: []string{"O0", "O1", "O3"}},
		Compare:     []string{ComparePareto},
	},
	{
		Version:     FormatVersion,
		Name:        "tp-scaling",
		Description: "LLaMA-2 7B tensor-parallel ladder on the RDU vs the GPU reference.",
		Platforms:   []string{"rdu", "gpu"},
		Base:        Base{Model: "llama2-7b", Batch: 8, Seq: 4096, Precision: "BF16", Mode: "O1"},
		Grid:        Grid{TensorParallel: []int{2, 4, 8}},
		Compare:     []string{CompareSpeedup, CompareWinners, ComparePareto},
		Baseline:    "gpu",
	},
}

// Library returns the built-in scenarios in their stable order. The
// slice and its elements are shared: callers must not mutate them.
func Library() []*Scenario { return library }

// ByName resolves a built-in scenario.
func ByName(name string) (*Scenario, bool) {
	for _, sc := range library {
		if sc.Name == name {
			return sc, true
		}
	}
	return nil, false
}

// Names lists the built-in scenario names in library order.
func Names() []string {
	names := make([]string, len(library))
	for i, sc := range library {
		names[i] = sc.Name
	}
	return names
}
