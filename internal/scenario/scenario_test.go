package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dabench/internal/experiments"
	"dabench/internal/report"
)

// -update regenerates the golden files from the current engine output.
var update = flag.Bool("update", false, "rewrite golden files")

// TestLibraryGolden pins every built-in scenario's rendered text
// output to a golden file: the engine's comparisons, point order and
// formatting are all part of the cross-entry-point byte-identity
// contract, so any drift must be a conscious golden update.
func TestLibraryGolden(t *testing.T) {
	for _, sc := range Library() {
		t.Run(sc.Name, func(t *testing.T) {
			out, err := Run(context.Background(), sc, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := out.Render(&buf, false); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", sc.Name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("rendered output diverged from %s:\n--- got ---\n%s\n--- want ---\n%s",
					golden, buf.Bytes(), want)
			}
		})
	}
}

// TestLibraryIsValidAndNamed: every library entry must parse its own
// JSON round trip (the server POSTs library documents through Parse)
// and resolve via ByName.
func TestLibraryRoundTripsThroughParse(t *testing.T) {
	if len(Library()) < 4 {
		t.Fatalf("library has %d scenarios, want at least 4", len(Library()))
	}
	for _, sc := range Library() {
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if parsed.Name != sc.Name {
			t.Errorf("round trip changed the name: %q vs %q", parsed.Name, sc.Name)
		}
		if got, ok := ByName(sc.Name); !ok || got != sc {
			t.Errorf("ByName(%q) = %v, %v", sc.Name, got, ok)
		}
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string]string{
		"wrong version":      `{"version":2,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small"}}`,
		"missing name":       `{"version":1,"platforms":["wse"],"base":{"model":"gpt2-small"}}`,
		"no platforms":       `{"version":1,"name":"x","base":{"model":"gpt2-small"}}`,
		"unknown platform":   `{"version":1,"name":"x","platforms":["tpu"],"base":{"model":"gpt2-small"}}`,
		"duplicate platform": `{"version":1,"name":"x","platforms":["wse","cerebras"],"base":{"model":"gpt2-small"}}`,
		"unknown model":      `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"nope"}}`,
		"missing model":      `{"version":1,"name":"x","platforms":["wse"],"base":{}}`,
		"bad precision":      `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small","precision":"int4"}}`,
		"bad mode":           `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small","mode":"O7"}}`,
		"bad grid mode":      `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small"},"grid":{"modes":["O2"]}}`,
		"zero layer axis":    `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small"},"grid":{"layers":[0]}}`,
		"negative batch":     `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small"},"grid":{"batches":[-1]}}`,
		"foreign baseline":   `{"version":1,"name":"x","platforms":["wse","rdu"],"base":{"model":"gpt2-small"},"baseline":"gpu"}`,
		"unknown comparison": `{"version":1,"name":"x","platforms":["wse","rdu"],"base":{"model":"gpt2-small"},"compare":["median"]}`,
		"speedup needs two":  `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small"},"compare":["speedup"]}`,
		"unknown field":      `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small"},"bogus":1}`,
		"trailing data":      `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small"}} {}`,
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: accepted %s", label, doc)
		}
	}
}

func TestPointsAndLabels(t *testing.T) {
	sc := &Scenario{
		Version: FormatVersion, Name: "t", Platforms: []string{"wse", "gpu"},
		Base: Base{Model: "gpt2-small"},
		Grid: Grid{Layers: []int{6, 12}, Batches: []int{128, 256}, Precisions: []string{"FP16"}},
	}
	n, err := sc.Points()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 { // 2 layers × 2 batches × 1 precision × 2 platforms
		t.Errorf("points = %d, want 8", n)
	}
	a, err := sc.compile()
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{
		"L=6/B=128/FP16", "L=6/B=256/FP16", "L=12/B=128/FP16", "L=12/B=256/FP16",
	}
	for i, want := range wantLabels {
		if got := a.label(i); got != want {
			t.Errorf("label(%d) = %q, want %q", i, got, want)
		}
	}

	// No grid at all: one point, labeled "base".
	flat := &Scenario{Version: FormatVersion, Name: "t", Platforms: []string{"wse"},
		Base: Base{Model: "gpt2-small"}}
	fa, err := flat.compile()
	if err != nil {
		t.Fatal(err)
	}
	if fa.gridN != 1 || fa.label(0) != "base" {
		t.Errorf("flat scenario = %d points, label %q", fa.gridN, fa.label(0))
	}
}

// TestRunProgressAndFailures: progress is cumulative and ends at the
// full platform×grid product, and placement failures are findings that
// surface as Fail rows, not errors.
func TestRunProgressAndFailures(t *testing.T) {
	sc := &Scenario{
		Version: FormatVersion, Name: "t", Platforms: []string{"wse"},
		Base: Base{Model: "gpt2-small"},
		Grid: Grid{Layers: []int{6, 78}}, // 78 layers does not place on the WSE-2
	}
	var beats []int
	out, err := Run(context.Background(), sc, RunOptions{
		Progress: func(done, failed int) { beats = append(beats, done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(beats) == 0 || beats[len(beats)-1] != 2 {
		t.Errorf("progress beats = %v, want final 2", beats)
	}
	if out.Failed != 1 || out.GridPoints != 2 || out.TotalPoints != 2 {
		t.Errorf("outcome = %d failed of %d grid / %d total, want 1 of 2/2",
			out.Failed, out.GridPoints, out.TotalPoints)
	}
	var buf bytes.Buffer
	if err := out.Render(&buf, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fail") {
		t.Errorf("failed point not rendered as a Fail row:\n%s", buf.String())
	}
	// The compiler's reason must be reachable, not just the marker.
	if !strings.Contains(buf.String(), "— failures") || !strings.Contains(buf.String(), "compile") {
		t.Errorf("failure reason not surfaced:\n%s", buf.String())
	}
}

// TestInvalidSpecsFailAtParse: a document whose specs cannot validate
// (bad seq, seq over the model max) must fail at Parse/Points —
// submission time — not deep inside an executor as an internal error.
func TestInvalidSpecsFailAtParse(t *testing.T) {
	cases := map[string]string{
		"negative seq": `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small","seq":-5}}`,
		"seq over max": `{"version":1,"name":"x","platforms":["wse"],"base":{"model":"gpt2-small","seq":999999}}`,
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: accepted %s", label, doc)
		}
	}
}

// TestParetoFrontierMatchesQuadraticReference checks the O(n log n)
// frontier sweep against a brute-force dominance scan on synthetic
// outcomes full of ties — the regime where the sweep's grouping logic
// could diverge from the definition.
func TestParetoFrontierMatchesQuadraticReference(t *testing.T) {
	sc := &Scenario{
		Version: FormatVersion, Name: "p", Platforms: []string{"wse", "gpu"},
		Base: Base{Model: "gpt2-small"},
		Grid: Grid{Layers: []int{1, 2, 3, 4, 5}, Batches: []int{1, 2, 3, 4, 5}},
	}
	a, err := sc.compile()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic pseudo-random outcomes over tiny discrete value
	// sets so (tps, eff) ties are common.
	n := len(a.plats) * a.gridN
	results := make([]pointOut, n)
	state := uint64(42)
	next := func(m uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % m
	}
	for i := range results {
		if next(10) == 0 {
			results[i] = pointOut{failed: true, reason: "synthetic"}
			continue
		}
		results[i] = pointOut{tps: float64(1 + next(4)), eff: float64(1+next(4)) / 10}
	}

	got := a.paretoTable("p", results)

	// Reference: quadratic dominance filter + presentation sort.
	type cand struct{ pi, pt int }
	var ok []cand
	for pi := range a.names {
		for pt := 0; pt < a.gridN; pt++ {
			if !at(results, a.gridN, pi, pt).failed {
				ok = append(ok, cand{pi, pt})
			}
		}
	}
	var frontier []cand
	for _, c := range ok {
		rc := at(results, a.gridN, c.pi, c.pt)
		dominated := false
		for _, d := range ok {
			rd := at(results, a.gridN, d.pi, d.pt)
			if rd.tps >= rc.tps && rd.eff >= rc.eff && (rd.tps > rc.tps || rd.eff > rc.eff) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, c)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		ri := at(results, a.gridN, frontier[i].pi, frontier[i].pt)
		rj := at(results, a.gridN, frontier[j].pi, frontier[j].pt)
		if ri.tps != rj.tps {
			return ri.tps > rj.tps
		}
		if ri.eff != rj.eff {
			return ri.eff > rj.eff
		}
		if frontier[i].pi != frontier[j].pi {
			return frontier[i].pi < frontier[j].pi
		}
		return frontier[i].pt < frontier[j].pt
	})
	want := report.New(got.Title, got.Headers...)
	for _, c := range frontier {
		r := at(results, a.gridN, c.pi, c.pt)
		want.Add(a.names[c.pi], a.label(c.pt), report.F(r.tps), report.F(100*r.eff))
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("frontier diverged from the quadratic reference:\ngot  %v\nwant %v", got.Rows, want.Rows)
	}
	if len(got.Rows) == 0 {
		t.Fatal("synthetic frontier is empty — test lost its teeth")
	}
}

// TestRunHitsSharedCaches: a scenario executes on the process-wide
// cached platforms, so an immediate re-run must add zero compile
// misses — the property the warm-daemon acceptance relies on.
func TestRunHitsSharedCaches(t *testing.T) {
	experiments.ResetCaches()
	sc, ok := ByName("rdu-build-modes")
	if !ok {
		t.Fatal("library scenario missing")
	}
	cold, err := Run(context.Background(), sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := experiments.CacheStats()
	warm, err := Run(context.Background(), sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta := experiments.CacheStats().Sub(before)
	if delta.Misses != 0 {
		t.Errorf("warm re-run compiled %d specs, want 0", delta.Misses)
	}
	var a, b bytes.Buffer
	if err := cold.Render(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := warm.Render(&b, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("cold and warm renders differ")
	}
}
