package scenario

import (
	"bytes"
	"context"
	"testing"
	"time"

	"dabench/internal/experiments"
	"dabench/internal/faults"
	"dabench/internal/store"
)

// TestRunByteIdenticalUnderStoreWriteFaults pins the degraded-mode
// invariance at the engine layer: with 30% of result-store writes
// failing, a scenario's rendered output must be byte-identical to the
// fault-free run. The store is an optimization tier — losing writes
// may cost future cache hits, never correctness.
func TestRunByteIdenticalUnderStoreWriteFaults(t *testing.T) {
	sc, ok := ByName("cross-platform-throughput")
	if !ok {
		t.Fatal("library scenario cross-platform-throughput missing")
	}

	experiments.ResetCaches()
	clean, err := Run(context.Background(), sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := clean.Render(&want, false); err != nil {
		t.Fatal(err)
	}

	in, err := faults.New(faults.Spec{Seed: 42, Rules: []faults.Rule{
		{Op: faults.OpStoreWrite, Kind: faults.KindEIO, Probability: 0.3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenOptions(t.TempDir(), store.Options{
		RetryAttempts: 1, RetryBackoff: time.Millisecond, Injector: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	experiments.ResetCaches()
	experiments.SetResultStore(st)
	defer func() {
		experiments.SetResultStore(nil)
		experiments.ResetCaches()
		st.Close()
	}()

	faulted, err := Run(context.Background(), sc, RunOptions{})
	if err != nil {
		t.Fatalf("scenario failed under store-write faults: %v", err)
	}
	var got bytes.Buffer
	if err := faulted.Render(&got, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("store-write faults changed the render:\nclean:\n%s\nfaulted:\n%s", &want, &got)
	}

	// The invariance proves nothing if no fault actually fired.
	st.Snapshot() // drain the write-behind queue so every write was evaluated
	if fired := in.Stats().Fired; fired == 0 {
		t.Error("no store-write faults fired — pick a different seed")
	}
}
