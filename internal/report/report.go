// Package report renders experiment results as aligned text tables and
// CSV, the formats the CLI and benchmark harness print so outputs can
// be compared row-by-row against the paper's tables and figure series.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row, padding or truncating to the header width.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(format string, vals ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, vals...), "\t")...)
}

// WriteText renders the aligned table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (fields with commas are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	write := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
