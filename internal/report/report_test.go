package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Sample", "A", "B")
	t.Add("1", "one")
	t.Add("22", "twenty,two")
	return t
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Sample", "A", "--", "22", "twenty,two"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"twenty,two\"") {
		t.Errorf("comma field not quoted:\n%s", buf.String())
	}
	quoted := New("", "X")
	quoted.Add(`say "hi"`)
	buf.Reset()
	if err := quoted.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"say ""hi"""`) {
		t.Errorf("quote escaping wrong:\n%s", buf.String())
	}
}

func TestAddPadsShortRows(t *testing.T) {
	tbl := New("", "A", "B", "C")
	tbl.Add("only")
	if len(tbl.Rows[0]) != 3 || tbl.Rows[0][1] != "" {
		t.Errorf("row = %v", tbl.Rows[0])
	}
	tbl.Addf("x\ty\tz")
	if tbl.Rows[1][2] != "z" {
		t.Errorf("Addf row = %v", tbl.Rows[1])
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234567: "1.23e+06",
		155.3:   "155",
		1.5:     "1.50",
		0.625:   "0.625",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
}
