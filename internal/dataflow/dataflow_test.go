package dataflow

import (
	"math"
	"testing"
	"testing/quick"

	"dabench/internal/units"
)

func TestChainThroughputSetByBottleneck(t *testing.T) {
	p := Chain(
		Stage{Name: "a", Service: 0.001},
		Stage{Name: "b", Service: 0.004}, // bottleneck
		Stage{Name: "c", Service: 0.002},
	)
	res, err := p.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck != 1 {
		t.Errorf("bottleneck = %d, want 1", res.Bottleneck)
	}
	if math.Abs(res.SteadyThroughput-250) > 1e-9 {
		t.Errorf("steady throughput = %v, want 250", res.SteadyThroughput)
	}
	// With 1000 samples the measured rate approaches steady state.
	if res.Throughput < 0.95*250 || res.Throughput > 250 {
		t.Errorf("measured throughput = %v, want ≈250 from below", res.Throughput)
	}
}

func TestMakespanExactForChain(t *testing.T) {
	// Classic pipeline formula: makespan = sum(service) + (n-1)·max(service).
	p := Chain(
		Stage{Name: "a", Service: 1},
		Stage{Name: "b", Service: 3},
		Stage{Name: "c", Service: 2},
	)
	n := 5
	res, err := p.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	want := 6.0 + float64(n-1)*3
	if math.Abs(float64(res.Makespan)-want) > 1e-9 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestReplicasRaiseThroughput(t *testing.T) {
	single := Chain(Stage{Name: "x", Service: 0.01, Replicas: 1})
	quad := Chain(Stage{Name: "x", Service: 0.01, Replicas: 4})
	r1, err := single.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := quad.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r4.SteadyThroughput-4*r1.SteadyThroughput) > 1e-6 {
		t.Errorf("4 replicas should 4x throughput: %v vs %v", r4.SteadyThroughput, r1.SteadyThroughput)
	}
	if float64(r4.Makespan) >= float64(r1.Makespan) {
		t.Error("replicated makespan should shrink")
	}
}

func TestDiamondDAG(t *testing.T) {
	p := NewPipeline()
	a := p.AddStage(Stage{Name: "a", Service: 1})
	b := p.AddStage(Stage{Name: "b", Service: 2})
	c := p.AddStage(Stage{Name: "c", Service: 3})
	d := p.AddStage(Stage{Name: "d", Service: 1})
	for _, e := range [][2]int{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := p.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	// Single-sample latency = critical path a->c->d = 5.
	if math.Abs(float64(res.Makespan)-5) > 1e-9 {
		t.Errorf("makespan = %v, want 5", res.Makespan)
	}
	cp, err := p.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(cp)-5) > 1e-9 {
		t.Errorf("critical path = %v, want 5", cp)
	}
}

func TestUtilizationOfBottleneckApproachesOne(t *testing.T) {
	p := Chain(
		Stage{Name: "fast", Service: 0.001},
		Stage{Name: "slow", Service: 0.01},
	)
	res, err := p.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	slow := res.Stages[1]
	if slow.Utilization < 0.99 || slow.Utilization > 1.0+1e-9 {
		t.Errorf("bottleneck utilization = %v, want ≈1", slow.Utilization)
	}
	fast := res.Stages[0]
	if fast.Utilization > 0.2 {
		t.Errorf("fast stage utilization = %v, want ≈0.1", fast.Utilization)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := NewPipeline().Run(1); err == nil {
		t.Error("empty pipeline accepted")
	}
	p := Chain(Stage{Name: "x", Service: 1})
	if _, err := p.Run(0); err == nil {
		t.Error("zero samples accepted")
	}
	neg := Chain(Stage{Name: "x", Service: -1})
	if _, err := neg.Run(1); err == nil {
		t.Error("negative service accepted")
	}
}

func TestConnectErrors(t *testing.T) {
	p := NewPipeline()
	a := p.AddStage(Stage{Name: "a", Service: 1})
	if err := p.Connect(a, a); err == nil {
		t.Error("self loop accepted")
	}
	if err := p.Connect(a, 7); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestCycleRejected(t *testing.T) {
	p := NewPipeline()
	a := p.AddStage(Stage{Name: "a", Service: 1})
	b := p.AddStage(Stage{Name: "b", Service: 1})
	if err := p.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	if err := p.Connect(b, a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(1); err == nil {
		t.Error("cyclic pipeline accepted")
	}
}

func TestZeroServiceStage(t *testing.T) {
	p := Chain(Stage{Name: "free", Service: 0}, Stage{Name: "work", Service: 1})
	res, err := p.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Makespan)-3) > 1e-9 {
		t.Errorf("makespan = %v, want 3", res.Makespan)
	}
	if !math.IsInf(res.Stages[0].Throughput, 1) {
		t.Error("zero-service stage should have infinite isolated throughput")
	}
}

// Property: measured throughput never exceeds the steady-state bound
// and approaches it as the stream lengthens.
func TestThroughputBoundProperty(t *testing.T) {
	f := func(s1, s2, s3 uint16, n uint8) bool {
		svc := func(v uint16) units.Seconds { return units.Seconds(float64(v%997+1) * 1e-4) }
		p := Chain(
			Stage{Name: "a", Service: svc(s1)},
			Stage{Name: "b", Service: svc(s2)},
			Stage{Name: "c", Service: svc(s3)},
		)
		samples := int(n%200) + 1
		res, err := p.Run(samples)
		if err != nil {
			return false
		}
		return res.Throughput <= res.SteadyThroughput*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: makespan is monotone non-decreasing in the sample count.
func TestMakespanMonotoneProperty(t *testing.T) {
	p := Chain(
		Stage{Name: "a", Service: 0.003},
		Stage{Name: "b", Service: 0.007, Replicas: 2},
	)
	f := func(n uint8) bool {
		k := int(n%100) + 1
		r1, err1 := p.Run(k)
		r2, err2 := p.Run(k + 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return float64(r2.Makespan) >= float64(r1.Makespan)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
