// Package dataflow models the data-driven execution that defines the
// accelerators in the paper: a DAG of stages in which each stage fires
// as soon as its inputs are available, with no global scheduling.
//
// The engine computes, for a stream of samples pushed through the
// pipeline, the exact completion times under unbounded inter-stage
// buffering (the classic marked-graph recurrence):
//
//	finish[s][k] = max(arrive[s][k], finish[s][k-R_s]) + service_s
//
// where R_s is the stage's replica count. From the schedule it derives
// steady-state throughput, per-stage busy fractions, and the bottleneck
// stage — the quantities behind the paper's load-imbalance metric
// ("overall throughput is typically limited by the slowest subtask").
package dataflow

import (
	"fmt"
	"math"

	"dabench/internal/units"
)

// Stage is one node of the executable pipeline.
type Stage struct {
	Name string
	// Service is the time the stage needs per sample.
	Service units.Seconds
	// Replicas is the number of samples the stage can process
	// concurrently (1 if zero).
	Replicas int
}

// Pipeline is a DAG of stages.
type Pipeline struct {
	stages []Stage
	succ   [][]int
	pred   [][]int
}

// NewPipeline creates an empty pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// AddStage appends a stage and returns its index.
func (p *Pipeline) AddStage(s Stage) int {
	p.stages = append(p.stages, s)
	p.succ = append(p.succ, nil)
	p.pred = append(p.pred, nil)
	return len(p.stages) - 1
}

// Connect adds a dependency from stage a to stage b.
func (p *Pipeline) Connect(a, b int) error {
	if a < 0 || a >= len(p.stages) || b < 0 || b >= len(p.stages) {
		return fmt.Errorf("dataflow: connect %d->%d out of range", a, b)
	}
	if a == b {
		return fmt.Errorf("dataflow: self loop on stage %d", a)
	}
	p.succ[a] = append(p.succ[a], b)
	p.pred[b] = append(p.pred[b], a)
	return nil
}

// Len returns the stage count.
func (p *Pipeline) Len() int { return len(p.stages) }

// Stage returns the stage at index i.
func (p *Pipeline) Stage(i int) Stage { return p.stages[i] }

// Chain builds a linear pipeline from the given stages.
func Chain(stages ...Stage) *Pipeline {
	p := NewPipeline()
	prev := -1
	for _, s := range stages {
		id := p.AddStage(s)
		if prev >= 0 {
			// Connect cannot fail for freshly added sequential ids.
			_ = p.Connect(prev, id)
		}
		prev = id
	}
	return p
}

// StageStats summarizes one stage's activity over a run.
type StageStats struct {
	Name      string
	Processed int
	Busy      units.Seconds
	// Utilization is busy time divided by the run's makespan.
	Utilization float64
	// Throughput is the stage's isolated capacity, samples/s.
	Throughput float64
}

// Result summarizes a pipeline run.
type Result struct {
	Samples  int
	Makespan units.Seconds
	// Throughput is samples per second over the whole run.
	Throughput float64
	// SteadyThroughput is the asymptotic rate set by the bottleneck.
	SteadyThroughput float64
	Bottleneck       int // stage index of the slowest stage
	Stages           []StageStats
}

// topoOrder returns a topological order of stage indices.
func (p *Pipeline) topoOrder() ([]int, error) {
	indeg := make([]int, len(p.stages))
	for _, outs := range p.succ {
		for _, b := range outs {
			indeg[b]++
		}
	}
	var q, order []int
	for i, d := range indeg {
		if d == 0 {
			q = append(q, i)
		}
	}
	for len(q) > 0 {
		i := q[0]
		q = q[1:]
		order = append(order, i)
		for _, b := range p.succ[i] {
			indeg[b]--
			if indeg[b] == 0 {
				q = append(q, b)
			}
		}
	}
	if len(order) != len(p.stages) {
		return nil, fmt.Errorf("dataflow: pipeline has a cycle")
	}
	return order, nil
}

// Run pushes n samples through the pipeline and returns the schedule
// summary. Samples are all available at time 0 at the source stages.
func (p *Pipeline) Run(n int) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataflow: sample count %d must be positive", n)
	}
	if len(p.stages) == 0 {
		return nil, fmt.Errorf("dataflow: empty pipeline")
	}
	order, err := p.topoOrder()
	if err != nil {
		return nil, err
	}

	// finish[s][k]: completion time of sample k at stage s.
	finish := make([][]float64, len(p.stages))
	for s := range finish {
		finish[s] = make([]float64, n)
	}
	for _, s := range order {
		st := p.stages[s]
		r := st.Replicas
		if r < 1 {
			r = 1
		}
		svc := float64(st.Service)
		if svc < 0 || math.IsNaN(svc) {
			return nil, fmt.Errorf("dataflow: stage %q has invalid service time %v", st.Name, svc)
		}
		for k := 0; k < n; k++ {
			arrive := 0.0
			for _, pr := range p.pred[s] {
				if f := finish[pr][k]; f > arrive {
					arrive = f
				}
			}
			start := arrive
			if k >= r {
				if f := finish[s][k-r]; f > start {
					start = f
				}
			}
			finish[s][k] = start + svc
		}
	}

	makespan := 0.0
	for s := range p.stages {
		if f := finish[s][n-1]; f > makespan {
			makespan = f
		}
	}

	res := &Result{
		Samples:    n,
		Makespan:   units.Seconds(makespan),
		Bottleneck: -1,
		Stages:     make([]StageStats, len(p.stages)),
	}
	if makespan > 0 {
		res.Throughput = float64(n) / makespan
	}
	slowest := 0.0
	for s, st := range p.stages {
		r := st.Replicas
		if r < 1 {
			r = 1
		}
		svc := float64(st.Service)
		busy := svc * float64(n) / float64(r)
		stats := StageStats{Name: st.Name, Processed: n, Busy: units.Seconds(busy)}
		if makespan > 0 {
			stats.Utilization = busy / makespan
		}
		if svc > 0 {
			stats.Throughput = float64(r) / svc
		} else {
			stats.Throughput = math.Inf(1)
		}
		res.Stages[s] = stats
		if eff := svc / float64(r); eff > slowest {
			slowest = eff
			res.Bottleneck = s
		}
	}
	if slowest > 0 {
		res.SteadyThroughput = 1 / slowest
	} else {
		res.SteadyThroughput = math.Inf(1)
	}
	return res, nil
}

// CriticalPath returns the longest service-time path through the
// pipeline — the single-sample latency.
func (p *Pipeline) CriticalPath() (units.Seconds, error) {
	order, err := p.topoOrder()
	if err != nil {
		return 0, err
	}
	longest := make([]float64, len(p.stages))
	best := 0.0
	for _, s := range order {
		svc := float64(p.stages[s].Service)
		longest[s] += svc
		if longest[s] > best {
			best = longest[s]
		}
		for _, b := range p.succ[s] {
			if longest[s] > longest[b] {
				longest[b] = longest[s]
			}
		}
	}
	return units.Seconds(best), nil
}
