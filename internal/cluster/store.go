package cluster

import (
	"dabench/internal/platform"
	"dabench/internal/store"
)

// FabricStore wraps a local *store.Store with the peer-fetch tier: the
// network generalization of the store's local sibling-blob adoption. A
// local miss consults the ring, fetches the framed blob from a peer,
// verifies and adopts it into the local store (write-behind, budget-
// enforced — the adoption is a put like any other), and answers from
// the adopted bytes. Writes delegate untouched: every node persists
// only what it computed or adopted, and replication happens by demand
// (heat spreads to where the requests are), not by push.
//
// It implements platform.RawResponseStore, so it mounts wherever the
// bare store does: under the memo tiers via experiments.SetResultStore
// and as the server's raw byte lane.
type FabricStore struct {
	local  *store.Store
	fabric *Fabric
}

var _ platform.RawResponseStore = (*FabricStore)(nil)

// WrapStore mounts the fabric's peer-fetch tier over local. A nil
// fabric returns a wrapper that is exactly the local store.
func (f *Fabric) WrapStore(local *store.Store) *FabricStore {
	return &FabricStore{local: local, fabric: f}
}

// fetchAdopt is the shared miss path: fetch the frame for (platform,
// specKey) from a peer and adopt it locally. Returns the decoded
// outcome, the frame's response section (nil when absent), and whether
// anything was adopted.
func (fs *FabricStore) fetchAdopt(platformName, specKey string) (platform.Stored, []byte, bool) {
	if fs.fabric == nil {
		return platform.Stored{}, nil, false
	}
	// The platform.ResultStore seam carries no request context, so the
	// fetch runs under the fabric's lifecycle root: still bounded by
	// FetchTimeout per peer, and cancelled the moment the fabric
	// closes — a draining daemon no longer leaks peer fetches.
	addr := store.Address(platformName, specKey)
	data, _, ok := fs.fabric.FetchFrame(fs.fabric.baseCtx, addr)
	if !ok {
		return platform.Stored{}, nil, false
	}
	st, resp, err := fs.local.AdoptFrame(addr, data)
	if err != nil {
		// A frame that does not verify is counted like a transport error:
		// the peer sent bytes we cannot trust.
		fs.fabric.fetchErrors.Add(1)
		return platform.Stored{}, nil, false
	}
	fs.fabric.noteAdoption()
	return st, resp, true
}

// Load implements platform.ResultStore: local store first, then the
// peer tier.
func (fs *FabricStore) Load(platformName, specKey string) (platform.Stored, bool) {
	if st, ok := fs.local.Load(platformName, specKey); ok {
		return st, true
	}
	st, _, ok := fs.fetchAdopt(platformName, specKey)
	return st, ok
}

// Store implements platform.ResultStore, delegating to the local store.
func (fs *FabricStore) Store(platformName, specKey string, st platform.Stored) {
	fs.local.Store(platformName, specKey, st)
}

// LoadRaw implements the byte-level warm lane: local frame first, then
// a peer fetch whose adopted frame may carry the pre-marshaled response
// section — in which case the fetching node serves the exact bytes the
// computing node served, zero re-render.
func (fs *FabricStore) LoadRaw(platformName, specKey string) ([]byte, bool) {
	if raw, ok := fs.local.LoadRaw(platformName, specKey); ok {
		return raw, true
	}
	_, resp, ok := fs.fetchAdopt(platformName, specKey)
	if !ok || len(resp) == 0 {
		return nil, false
	}
	return resp, true
}

// StoreResponse delegates to the local store.
func (fs *FabricStore) StoreResponse(platformName, specKey string, resp []byte) {
	fs.local.StoreResponse(platformName, specKey, resp)
}
