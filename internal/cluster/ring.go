package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// defaultReplicas is the vnode count per node. 64 points per node keeps
// the ring's load spread within a few percent of even for the small
// static memberships this fabric targets, at ~1.5KB of ring per node.
const defaultReplicas = 64

// ring is a consistent-hash ring over node IDs. Blob addresses (and job
// chunk keys) hash onto the same 64-bit circle the nodes' vnodes
// occupy; a key's owners are the distinct nodes met walking clockwise
// from the key's point. Membership is static (construction-time), so
// the ring is immutable and lock-free to read.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  int         // distinct node count
}

type ringPoint struct {
	hash uint64
	node string
}

// hash64 maps a key onto the ring's circle: the first 8 bytes of its
// SHA-256, matching the entropy of the addresses being placed.
func hash64(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring over nodes with replicas vnodes each
// (defaultReplicas when <= 0). Duplicate node IDs collapse.
func newRing(nodes []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	seen := map[string]bool{}
	r := &ring{}
	for _, n := range nodes {
		if seen[n] {
			continue
		}
		seen[n] = true
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash64(n + "#" + strconv.Itoa(i)), n})
		}
	}
	r.nodes = len(seen)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// owners returns every distinct node in clockwise preference order from
// key's ring position: owners(key)[0] is the key's primary owner, the
// rest the fallback order a fetch fans out over.
func (r *ring) owners(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, r.nodes)
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < r.nodes; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
