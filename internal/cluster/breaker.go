package cluster

import (
	"sync"
	"time"
)

// Per-peer circuit breaker, the same three-state machine the store runs
// over its disk I/O (internal/store/breaker.go), re-instantiated here
// because each peer is an independent failure domain: one dead node
// must cost the fabric a handful of connection errors, then one cheap
// state check per fetch, never a per-request timeout storm. Peer
// defaults are tighter than the store's (3 failures, 5s cooldown) —
// network failures cluster faster than disk failures, and the penalty
// for a false trip is just a local recompute.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 5 * time.Second
)

type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	state       int
	consecutive int
	openedAt    time.Time
	probing     bool

	trips, probes, recoveries int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether the next call may go over the wire; an open
// breaker admits one probe after its cooldown.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.probes++
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
}

func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.recoveries++
	}
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= b.threshold {
		if b.state != breakerOpen {
			b.trips++
		}
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.consecutive = 0
	}
}

func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateNames[b.state]
}

func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && time.Since(b.openedAt) < b.cooldown
}
