// Package cluster is the multi-node result fabric: static peer
// membership, a pull-based gossip heartbeat, and a consistent-hash ring
// that turns the store's content addresses into a cluster-wide
// namespace. A spec compiled on any node is warm everywhere — a local
// store miss consults the ring and fetches the framed blob from a peer
// (GET /v1/blobs/{addr}) before falling back to simulation, and the
// fetched frame is adopted into the local store so heat spreads.
//
// Membership is static on purpose: the fabric targets small fleets
// declared in a compose file or a unit file (-peers id=url,...), where
// a membership protocol would be machinery without a failure mode to
// earn it. Liveness within that fixed set is dynamic: each node polls
// every peer's /v1/gossip on an interval, learning health, store
// gauges, and the peer's provenance chain tip (the cross-node tamper
// anchor `dabench provenance verify -peer` checks).
//
// Failure posture mirrors the store's: every peer interaction is an
// optimization with a local fallback (recompute, run the chunk here),
// so peer calls are bounded by a short timeout and a per-peer circuit
// breaker — a dead node costs a few connection errors, then one state
// check per request until its breaker's cooldown probes it again.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dabench/internal/faults"
)

// maxPeerBody bounds one peer response read (blob frames and chunk
// results are at most a few MB; anything larger is a wire error).
const maxPeerBody = 64 << 20

// NodeState is what one node reports about itself in its gossip
// payload: identity, health, store gauges, and its provenance chain
// tip.
type NodeState struct {
	NodeID    string  `json:"node_id"`
	URL       string  `json:"url,omitempty"`
	Status    string  `json:"status"` // ok | degraded
	UptimeSec float64 `json:"uptime_sec"`
	// Store gauges (zero without a -data-dir).
	StoreEntries int64 `json:"store_entries"`
	StoreBytes   int64 `json:"store_bytes"`
	// ChainRecords / ChainTip anchor the node's provenance chain: the
	// tip hash commits to the node's entire write history, so a peer
	// that remembers a tip can later prove the chain was rewritten.
	ChainRecords int64  `json:"chain_records"`
	ChainTip     string `json:"chain_tip,omitempty"`
}

// PeerView is this node's view of one peer: transport liveness plus the
// peer's last self-reported NodeState.
type PeerView struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// State is the fabric's liveness verdict: "alive" (last gossip probe
	// succeeded), "dead" (threshold consecutive probes failed), or
	// "unknown" (never reached since boot).
	State          string  `json:"state"`
	Breaker        string  `json:"breaker"` // closed | open | half-open
	LastSeenSec    float64 `json:"last_seen_sec,omitempty"`
	GossipFailures int     `json:"gossip_failures,omitempty"` // consecutive
	// The peer's last gossiped self-report.
	Status       string `json:"status,omitempty"`
	StoreEntries int64  `json:"store_entries,omitempty"`
	StoreBytes   int64  `json:"store_bytes,omitempty"`
	ChainRecords int64  `json:"chain_records,omitempty"`
	ChainTip     string `json:"chain_tip,omitempty"`
}

// GossipResponse is the GET /v1/gossip payload: the answering node's
// own state plus its current view of every peer. The Peers section is
// what makes one round of polling transitive enough for a small fleet:
// every node learns secondhand what it has not probed firsthand yet.
type GossipResponse struct {
	NodeState
	Peers []PeerView `json:"peers,omitempty"`
}

// PeerConfig names one static peer.
type PeerConfig struct {
	ID  string
	URL string
}

// ParsePeers parses the -peers flag form: comma-separated id=url pairs,
// e.g. "node-b=http://node-b:8080,node-c=http://node-c:8080".
func ParsePeers(s string) ([]PeerConfig, error) {
	var out []PeerConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(part, "=")
		if !ok || id == "" || rawURL == "" {
			return nil, fmt.Errorf("cluster: peer %q is not id=url", part)
		}
		u, err := url.Parse(rawURL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q: url must be http(s)://host[:port]", part)
		}
		out = append(out, PeerConfig{ID: id, URL: strings.TrimRight(rawURL, "/")})
	}
	if len(out) == 0 {
		return nil, errors.New("cluster: -peers named no peers")
	}
	return out, nil
}

// Config tunes one Fabric.
type Config struct {
	// NodeID is this node's name on the ring (required, unique).
	NodeID string
	// SelfURL is the base URL peers can reach this node at; advertised
	// in gossip, informational otherwise.
	SelfURL string
	// Peers is the static membership, excluding this node (required).
	Peers []PeerConfig
	// GossipInterval is the peer-poll period (default 1s; Start only).
	GossipInterval time.Duration
	// FetchTimeout bounds one peer HTTP call — gossip probe or blob
	// fetch (default 500ms). Peer fetches race a local recompute that
	// costs milliseconds, so the budget must stay cheap.
	FetchTimeout time.Duration
	// ChunkTimeout bounds one remote chunk execution (default 30s —
	// a chunk is real simulation work, not a byte copy).
	ChunkTimeout time.Duration
	// BreakerThreshold / BreakerCooldown tune the per-peer breakers
	// (defaults 3 and 5s) and the gossip dead-peer threshold.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Injector fires at the peer-call boundary (faults.OpPeerFetch).
	Injector *faults.Injector
	// Client overrides the fabric's HTTP client (tests).
	Client *http.Client
}

// peer is one static peer's live state.
type peer struct {
	id, url string
	br      *breaker

	mu          sync.Mutex
	seen        bool // ever gossiped successfully
	lastSeen    time.Time
	gossipFails int // consecutive
	last        NodeState
}

// Fabric is one node's membership in the cluster. Create with New;
// safe for concurrent use. A nil *Fabric is a valid "single node, no
// fabric" value everywhere the server consults it.
type Fabric struct {
	nodeID  string
	selfURL string
	ring    *ring
	peers   []*peer // ring-independent stable order (config order)
	byID    map[string]*peer
	client  *http.Client
	inj     *faults.Injector

	gossipInterval time.Duration
	fetchTimeout   time.Duration
	chunkTimeout   time.Duration
	deadThreshold  int

	// baseCtx is the fabric's lifecycle root: every peer call made on
	// the fabric's own behalf (gossip probes, the store-seam blob
	// fetches that have no request context to thread) derives from it,
	// and Close cancels it — shutdown kills in-flight peer I/O instead
	// of waiting out timeouts.
	baseCtx context.Context
	cancel  context.CancelFunc

	fetchHits, fetchMisses, fetchErrors atomic.Int64
	adoptions                           atomic.Int64
	remoteChunks, reassignedChunks      atomic.Int64
	gossipRounds, gossipErrors          atomic.Int64

	startOnce, closeOnce sync.Once
	done                 chan struct{}
	wg                   sync.WaitGroup
}

// New validates the membership and builds the fabric. The gossip loop
// does not run until Start.
func New(cfg Config) (*Fabric, error) {
	if cfg.NodeID == "" {
		return nil, errors.New("cluster: NodeID is required")
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: at least one peer is required")
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = time.Second
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 500 * time.Millisecond
	}
	if cfg.ChunkTimeout <= 0 {
		cfg.ChunkTimeout = 30 * time.Second
	}
	threshold := cfg.BreakerThreshold
	if threshold < 1 {
		threshold = defaultBreakerThreshold
	}
	f := &Fabric{
		nodeID:         cfg.NodeID,
		selfURL:        strings.TrimRight(cfg.SelfURL, "/"),
		byID:           map[string]*peer{},
		client:         cfg.Client,
		inj:            cfg.Injector,
		gossipInterval: cfg.GossipInterval,
		fetchTimeout:   cfg.FetchTimeout,
		chunkTimeout:   cfg.ChunkTimeout,
		deadThreshold:  threshold,
		done:           make(chan struct{}),
	}
	//dalint:ignore noctxbg -- the fabric's lifecycle root: cancelled in Close, every peer call derives from it
	f.baseCtx, f.cancel = context.WithCancel(context.Background())
	if f.client == nil {
		f.client = &http.Client{}
	}
	nodes := []string{cfg.NodeID}
	for _, pc := range cfg.Peers {
		if pc.ID == "" || pc.URL == "" {
			return nil, errors.New("cluster: peer with empty id or url")
		}
		if pc.ID == cfg.NodeID {
			return nil, fmt.Errorf("cluster: peer %q collides with this node's id", pc.ID)
		}
		if _, dup := f.byID[pc.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", pc.ID)
		}
		p := &peer{id: pc.ID, url: strings.TrimRight(pc.URL, "/"),
			br: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)}
		f.peers = append(f.peers, p)
		f.byID[pc.ID] = p
		nodes = append(nodes, pc.ID)
	}
	f.ring = newRing(nodes, 0)
	return f, nil
}

// NodeID returns this node's ring name.
func (f *Fabric) NodeID() string {
	if f == nil {
		return ""
	}
	return f.nodeID
}

// SelfURL returns the advertised base URL ("" when not configured).
func (f *Fabric) SelfURL() string {
	if f == nil {
		return ""
	}
	return f.selfURL
}

// Start launches the background gossip loop; idempotent.
func (f *Fabric) Start() {
	if f == nil {
		return
	}
	f.startOnce.Do(func() {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			t := time.NewTicker(f.gossipInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					ctx, cancel := context.WithTimeout(f.baseCtx, f.fetchTimeout)
					f.GossipOnce(ctx)
					cancel()
				case <-f.done:
					return
				}
			}
		}()
	})
}

// Close stops the gossip loop; idempotent.
func (f *Fabric) Close() {
	if f == nil {
		return
	}
	f.closeOnce.Do(func() {
		close(f.done)
		f.cancel()
		f.wg.Wait()
	})
}

// GossipOnce polls every peer's /v1/gossip concurrently and folds the
// answers into the fabric's peer views. Exported (rather than loop-
// only) so tests drive deterministic rounds.
func (f *Fabric) GossipOnce(ctx context.Context) {
	if f == nil {
		return
	}
	f.gossipRounds.Add(1)
	var wg sync.WaitGroup
	for _, p := range f.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			f.gossipPeer(ctx, p)
		}(p)
	}
	wg.Wait()
}

// gossipPeer probes one peer. Probes run even with the peer's breaker
// open — gossip IS the health probe, and a recovered peer must be able
// to close its breaker without waiting out a fetch-path cooldown.
func (f *Fabric) gossipPeer(ctx context.Context, p *peer) {
	ctx, cancel := context.WithTimeout(ctx, f.fetchTimeout)
	defer cancel()
	var gr GossipResponse
	err := f.getJSON(ctx, p.url+"/v1/gossip", &gr)
	p.mu.Lock()
	if err != nil {
		p.gossipFails++
		p.mu.Unlock()
		f.gossipErrors.Add(1)
		p.br.failure()
		return
	}
	p.seen = true
	p.lastSeen = time.Now()
	p.gossipFails = 0
	p.last = gr.NodeState
	p.mu.Unlock()
	p.br.success()
}

// getJSON is one bounded, injectable GET + decode.
func (f *Fabric) getJSON(ctx context.Context, url string, v any) error {
	if err := f.inj.Fire(faults.OpPeerFetch); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s answered %s", url, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxPeerBody)).Decode(v)
}

// view snapshots one peer under its lock.
func (f *Fabric) view(p *peer) PeerView {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := PeerView{
		ID: p.id, URL: p.url, State: "unknown",
		Breaker:        p.br.stateName(),
		GossipFailures: p.gossipFails,
		Status:         p.last.Status,
		StoreEntries:   p.last.StoreEntries,
		StoreBytes:     p.last.StoreBytes,
		ChainRecords:   p.last.ChainRecords,
		ChainTip:       p.last.ChainTip,
	}
	if p.seen {
		v.State = "alive"
		v.LastSeenSec = time.Since(p.lastSeen).Seconds()
	}
	if p.gossipFails >= f.deadThreshold {
		v.State = "dead"
	}
	return v
}

// Peers returns this node's current view of every peer, in config
// order.
func (f *Fabric) Peers() []PeerView {
	if f == nil {
		return nil
	}
	out := make([]PeerView, len(f.peers))
	for i, p := range f.peers {
		out[i] = f.view(p)
	}
	return out
}

// PeerTip returns the provenance chain tip (and record count) peer
// peerID last gossiped — the cross-node anchor provenance verification
// checks. ok is false when the peer is unknown or has never gossiped.
func (f *Fabric) PeerTip(peerID string) (tip string, records int64, ok bool) {
	if f == nil {
		return "", 0, false
	}
	p, found := f.byID[peerID]
	if !found {
		return "", 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.seen {
		return "", 0, false
	}
	return p.last.ChainTip, p.last.ChainRecords, true
}

// FetchFrame tries to obtain the framed blob at addr from a peer:
// candidates are walked in the ring's preference order for addr (self
// skipped), each behind its breaker, each bounded by FetchTimeout. The
// ring's owner is only the *likeliest* holder — any node that computed
// the spec has the blob — so a miss at the owner falls through to the
// remaining peers rather than straight to simulation. Returns the raw
// frame bytes and the answering peer's ID.
func (f *Fabric) FetchFrame(ctx context.Context, addr string) ([]byte, string, bool) {
	if f == nil {
		return nil, "", false
	}
	tried := false
	for _, nodeID := range f.ring.owners("blob\x00" + addr) {
		if nodeID == f.nodeID {
			continue
		}
		p := f.byID[nodeID]
		if !p.br.allow() {
			continue
		}
		tried = true
		data, err := f.fetchBlob(ctx, p, addr)
		if err != nil {
			if errors.Is(err, errPeerMiss) {
				// A clean 404 is healthy transport: the peer just never
				// computed this spec.
				p.br.success()
				continue
			}
			p.br.failure()
			f.fetchErrors.Add(1)
			continue
		}
		p.br.success()
		f.fetchHits.Add(1)
		return data, p.id, true
	}
	if tried {
		f.fetchMisses.Add(1)
	}
	return nil, "", false
}

// errPeerMiss marks a peer's well-formed "I don't have it" answer.
var errPeerMiss = errors.New("cluster: peer does not hold the blob")

// fetchBlob is one bounded GET /v1/blobs/{addr} against one peer.
func (f *Fabric) fetchBlob(ctx context.Context, p *peer, addr string) ([]byte, error) {
	if err := f.inj.Fire(faults.OpPeerFetch); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, f.fetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/v1/blobs/"+addr, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, errPeerMiss
	default:
		return nil, fmt.Errorf("cluster: blob fetch from %s answered %s", p.id, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxPeerBody {
		return nil, fmt.Errorf("cluster: blob from %s exceeds the %d-byte bound", p.id, maxPeerBody)
	}
	return data, nil
}

// ChunkNodes returns the node IDs a job's chunk should prefer, self
// included: the ring's preference order for the job key, rotated by the
// chunk index so consecutive chunks of one job land on different nodes
// (round-robin sharding with a deterministic, job-stable assignment).
func (f *Fabric) ChunkNodes(jobKey string, chunk int) []string {
	if f == nil {
		return nil
	}
	nodes := f.ring.owners("job\x00" + jobKey)
	if len(nodes) == 0 {
		return nil
	}
	rot := chunk % len(nodes)
	out := make([]string, 0, len(nodes))
	out = append(out, nodes[rot:]...)
	out = append(out, nodes[:rot]...)
	return out
}

// ChunkEligible reports whether a remote peer should be offered a
// chunk: its breaker must admit traffic and gossip must not have
// declared it dead. (Blob fetches only consult the breaker — they cost
// a connection attempt; a chunk dispatch wastes a whole timeout.)
func (f *Fabric) ChunkEligible(peerID string) bool {
	if f == nil {
		return false
	}
	p, ok := f.byID[peerID]
	if !ok {
		return false
	}
	p.mu.Lock()
	dead := p.gossipFails >= f.deadThreshold
	p.mu.Unlock()
	return !dead && !p.br.isOpen()
}

// ExecuteChunk POSTs one chunk execution request to peerID and returns
// the response body (the peer's ChunkResponse JSON). Any transport or
// HTTP failure feeds the peer's breaker and returns an error — the
// caller reassigns the chunk locally.
func (f *Fabric) ExecuteChunk(ctx context.Context, peerID string, body []byte) ([]byte, error) {
	if f == nil {
		return nil, errors.New("cluster: no fabric")
	}
	p, ok := f.byID[peerID]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %q", peerID)
	}
	if !p.br.allow() {
		return nil, fmt.Errorf("cluster: peer %s breaker is open", peerID)
	}
	data, err := f.executeChunk(ctx, p, body)
	if err != nil {
		p.br.failure()
		return nil, err
	}
	p.br.success()
	f.remoteChunks.Add(1)
	return data, nil
}

func (f *Fabric) executeChunk(ctx context.Context, p *peer, body []byte) ([]byte, error) {
	if err := f.inj.Fire(faults.OpPeerFetch); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, f.chunkTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+"/v1/chunks", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: chunk on %s answered %s", p.id, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxPeerBody {
		return nil, fmt.Errorf("cluster: chunk result from %s exceeds the %d-byte bound", p.id, maxPeerBody)
	}
	return data, nil
}

// NoteReassigned counts one chunk that fell back to local execution
// after its remote owner failed.
func (f *Fabric) NoteReassigned() {
	if f != nil {
		f.reassignedChunks.Add(1)
	}
}

// noteAdoption counts one peer-fetched blob adopted into the local
// store (fed by FabricStore).
func (f *Fabric) noteAdoption() {
	if f != nil {
		f.adoptions.Add(1)
	}
}

// Stats is the fabric's /v1/stats wire form. The counter names mirror
// the /metrics families one to one.
type Stats struct {
	NodeID     string `json:"node_id"`
	SelfURL    string `json:"self_url,omitempty"`
	RingNodes  int    `json:"ring_nodes"`
	PeersAlive int    `json:"peers_alive"`
	PeersDead  int    `json:"peers_dead"`
	// Peer-fetch counters: hits answered a local store miss from a peer,
	// misses found the blob on no reachable peer, errors are transport
	// failures, adoptions are fetched frames persisted locally.
	PeerFetchHits   int64 `json:"peer_fetch_hits"`
	PeerFetchMisses int64 `json:"peer_fetch_misses"`
	PeerFetchErrors int64 `json:"peer_fetch_errors"`
	PeerAdoptions   int64 `json:"peer_adoptions"`
	// Job sharding counters.
	RemoteChunks     int64 `json:"remote_chunks"`
	ReassignedChunks int64 `json:"reassigned_chunks"`
	// Gossip counters.
	GossipRounds int64      `json:"gossip_rounds"`
	GossipErrors int64      `json:"gossip_errors"`
	Peers        []PeerView `json:"peers"`
}

// Stats snapshots the fabric; nil on a nil receiver (single-node).
func (f *Fabric) Stats() *Stats {
	if f == nil {
		return nil
	}
	st := &Stats{
		NodeID:  f.nodeID,
		SelfURL: f.selfURL,
		// ring nodes = peers + self; the ring is immutable so the count
		// is exact, not gossip-derived.
		RingNodes:        f.ring.nodes,
		PeerFetchHits:    f.fetchHits.Load(),
		PeerFetchMisses:  f.fetchMisses.Load(),
		PeerFetchErrors:  f.fetchErrors.Load(),
		PeerAdoptions:    f.adoptions.Load(),
		RemoteChunks:     f.remoteChunks.Load(),
		ReassignedChunks: f.reassignedChunks.Load(),
		GossipRounds:     f.gossipRounds.Load(),
		GossipErrors:     f.gossipErrors.Load(),
		Peers:            f.Peers(),
	}
	for _, v := range st.Peers {
		switch v.State {
		case "alive":
			st.PeersAlive++
		case "dead":
			st.PeersDead++
		}
	}
	return st
}
