package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers("node-b=http://node-b:8080, node-c=https://node-c:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (PeerConfig{ID: "node-b", URL: "http://node-b:8080"}) ||
		got[1] != (PeerConfig{ID: "node-c", URL: "https://node-c:8080"}) {
		t.Errorf("ParsePeers = %+v", got)
	}
	for _, bad := range []string{
		"",
		",,,",
		"node-b",                      // no =
		"=http://x",                   // empty id
		"node-b=",                     // empty url
		"node-b=ftp://x",              // wrong scheme
		"node-b=http://",              // no host
		"node-b=http://ok,node-c=not", // one bad pair poisons the set
	} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted, want error", bad)
		}
	}
}

func TestNewValidatesMembership(t *testing.T) {
	peers := []PeerConfig{{ID: "b", URL: "http://b"}}
	cases := []Config{
		{Peers: peers},              // no node id
		{NodeID: "a"},               // no peers
		{NodeID: "a", Peers: []PeerConfig{{ID: "a", URL: "http://a"}}},                          // self collision
		{NodeID: "a", Peers: []PeerConfig{{ID: "b", URL: "http://b"}, {ID: "b", URL: "http://b2"}}}, // dup
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid membership", i)
		}
	}
	if _, err := New(Config{NodeID: "a", Peers: peers}); err != nil {
		t.Errorf("valid membership rejected: %v", err)
	}
}

// TestRingOwnersDeterministicAndComplete: every key resolves to all
// distinct nodes exactly once, in a stable order, and primary ownership
// spreads across the membership.
func TestRingOwnersDeterministicAndComplete(t *testing.T) {
	r := newRing([]string{"a", "b", "c"}, 0)
	primaries := map[string]int{}
	for i := 0; i < 200; i++ {
		key := "blob\x00key-" + strconv.Itoa(i)
		first := r.owners(key)
		if len(first) != 3 {
			t.Fatalf("owners(%q) = %v, want all 3 nodes", key, first)
		}
		seen := map[string]bool{}
		for _, n := range first {
			if seen[n] {
				t.Fatalf("owners(%q) repeats %q", key, n)
			}
			seen[n] = true
		}
		second := r.owners(key)
		for j := range first {
			if first[j] != second[j] {
				t.Fatalf("owners(%q) not deterministic: %v vs %v", key, first, second)
			}
		}
		primaries[first[0]]++
	}
	for _, n := range []string{"a", "b", "c"} {
		if primaries[n] == 0 {
			t.Errorf("node %s is never a primary owner over 200 keys: %v", n, primaries)
		}
	}
}

// TestChunkNodesRotation: consecutive chunks of one job cycle through
// the ring's owner list, so a multi-chunk job always spreads.
func TestChunkNodesRotation(t *testing.T) {
	f, err := New(Config{NodeID: "a", Peers: []PeerConfig{
		{ID: "b", URL: "http://b"}, {ID: "c", URL: "http://c"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	base := f.ChunkNodes("job-1", 0)
	if len(base) != 3 {
		t.Fatalf("ChunkNodes = %v, want 3 nodes", base)
	}
	for chunk := 0; chunk < 6; chunk++ {
		got := f.ChunkNodes("job-1", chunk)
		rot := chunk % 3
		for j := range got {
			if got[j] != base[(rot+j)%3] {
				t.Fatalf("chunk %d: ChunkNodes = %v, want rotation %d of %v", chunk, got, rot, base)
			}
		}
	}
	// Across any 3 consecutive chunks every node leads exactly once.
	leads := map[string]bool{}
	for chunk := 0; chunk < 3; chunk++ {
		leads[f.ChunkNodes("job-1", chunk)[0]] = true
	}
	if len(leads) != 3 {
		t.Errorf("3 consecutive chunks led by %v, want all 3 nodes", leads)
	}
}

func TestBreakerTripProbeRecover(t *testing.T) {
	b := newBreaker(3, 20*time.Millisecond)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.failure()
	}
	if b.stateName() != "closed" {
		t.Fatalf("state after 2 failures = %s, want closed", b.stateName())
	}
	b.failure() // third consecutive: trips
	if b.stateName() != "open" || b.allow() {
		t.Fatalf("state after threshold = %s (allow=%v), want open and denying", b.stateName(), b.allow())
	}
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooled-down breaker denied its probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.success()
	if b.stateName() != "closed" || !b.allow() {
		t.Fatalf("state after probe success = %s, want closed", b.stateName())
	}
	// A failed probe reopens immediately, threshold or not.
	b.failure()
	b.failure()
	b.failure()
	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("denied probe after second cooldown")
	}
	b.failure()
	if b.stateName() != "open" {
		t.Fatalf("state after failed probe = %s, want open", b.stateName())
	}
}

// TestGossipLiveness: a reachable peer turns alive after one round; an
// unreachable one turns dead after threshold consecutive failures and
// recovers on the next good round.
func TestGossipLiveness(t *testing.T) {
	peerB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/gossip" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"node_id":"b","status":"ok","uptime_sec":1,` +
			`"store_entries":7,"store_bytes":700,"chain_records":3,"chain_tip":"feedface"}`))
	}))
	defer peerB.Close()

	f, err := New(Config{
		NodeID: "a", SelfURL: "http://a",
		Peers:            []PeerConfig{{ID: "b", URL: peerB.URL}},
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
		FetchTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	f.GossipOnce(context.Background())
	views := f.Peers()
	if len(views) != 1 || views[0].State != "alive" {
		t.Fatalf("after one good round: %+v", views)
	}
	if v := views[0]; v.ChainTip != "feedface" || v.ChainRecords != 3 || v.StoreEntries != 7 {
		t.Errorf("gossiped self-report not folded in: %+v", v)
	}
	if tip, recs, ok := f.PeerTip("b"); !ok || tip != "feedface" || recs != 3 {
		t.Errorf("PeerTip = %q %d %v", tip, recs, ok)
	}

	peerB.Close()
	for i := 0; i < 2; i++ {
		f.GossipOnce(context.Background())
	}
	if got := f.Peers()[0]; got.State != "dead" || got.GossipFailures < 2 {
		t.Fatalf("after threshold failed rounds: %+v", got)
	}
	st := f.Stats()
	if st.PeersDead != 1 || st.PeersAlive != 0 || st.GossipErrors < 2 {
		t.Errorf("stats after death: %+v", st)
	}
}

// TestFetchFrameFansOutPastMisses: a clean 404 at the ring's preferred
// peer is a healthy miss — the fetch continues to the next peer and
// still hits.
func TestFetchFrameFansOutPastMisses(t *testing.T) {
	addr := strings.Repeat("ab", 32)
	missing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"not_found"}}`, http.StatusNotFound)
	}))
	defer missing.Close()
	holding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/blobs/"+addr {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte("frame-bytes"))
	}))
	defer holding.Close()

	f, err := New(Config{
		NodeID: "a",
		Peers: []PeerConfig{
			{ID: "miss-1", URL: missing.URL},
			{ID: "miss-2", URL: missing.URL},
			{ID: "hold", URL: holding.URL},
		},
		FetchTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, from, ok := f.FetchFrame(context.Background(), addr)
	if !ok || from != "hold" || string(data) != "frame-bytes" {
		t.Fatalf("FetchFrame = %q from %q ok=%v", data, from, ok)
	}
	st := f.Stats()
	if st.PeerFetchHits != 1 || st.PeerFetchErrors != 0 {
		t.Errorf("stats after fan-out hit: %+v", st)
	}

	// An address nobody holds is a miss, not an error.
	if _, _, ok := f.FetchFrame(context.Background(), strings.Repeat("cd", 32)); ok {
		t.Error("FetchFrame hit an address nobody holds")
	}
	if st := f.Stats(); st.PeerFetchMisses < 1 {
		t.Errorf("miss not counted: %+v", st)
	}
}

// TestNilFabricIsSingleNode: every fabric entry point tolerates the nil
// receiver the single-node server carries.
func TestNilFabricIsSingleNode(t *testing.T) {
	var f *Fabric
	f.Start()
	f.Close()
	f.GossipOnce(context.Background())
	f.NoteReassigned()
	f.noteAdoption()
	if f.Stats() != nil || f.Peers() != nil || f.NodeID() != "" || f.SelfURL() != "" {
		t.Error("nil fabric leaked state")
	}
	if _, _, ok := f.FetchFrame(context.Background(), strings.Repeat("ab", 32)); ok {
		t.Error("nil fabric fetched")
	}
	if f.ChunkNodes("k", 0) != nil || f.ChunkEligible("b") {
		t.Error("nil fabric offered chunks")
	}
	if _, _, ok := f.PeerTip("b"); ok {
		t.Error("nil fabric had a peer tip")
	}
	fs := f.WrapStore(nil)
	if _, _, ok := fs.fetchAdopt("wse", "k"); ok {
		t.Error("nil-fabric wrapper adopted")
	}
}
