// Package rdu simulates the SambaNova SN30 Reconfigurable Dataflow
// Unit: the computation graph is partitioned into sections that execute
// sequentially on one chip, with all model state streamed from off-chip
// DDR. Three compile modes change the partitioning (paper Figure 4):
//
//   - O0 (operator mode): one operator per section; decoder layers are
//     merged, so each section is invoked once per layer.
//   - O1 (module mode): operator fusion groups the operators of the
//     attention and MLP modules into shared sections, again invoked per
//     layer; oversized matrices (the LM head) are sharded.
//   - O3 (full-graph mode): decoder-by-decoder sections without fusion;
//     section boundaries shift with model size.
//
// The simulator derives every Tier-1 metric from the section schedule:
// time-weighted PCU/PMU allocation (paper Eq. 2), operator-level load
// imbalance (Eq. 3/4), and the sequential-section step time that sets
// TFLOPs and throughput.
package rdu

import "dabench/internal/precision"

// Hardware constants (paper Section II-B2 and the SN30 datasheet).
const (
	// PCUs and PMUs per RDU: 4 tiles × 160 each.
	PCUs = 640
	PMUs = 640
	// Peak16 is the per-RDU peak 16-bit rate. The paper's 18.2% peak
	// efficiency at 50.6 TFLOPs implies ≈278 TFLOPs.
	Peak16 = 278e12
	// ratePerPCU is Peak16 / PCUs.
	ratePerPCU = Peak16 / PCUs
	// DDRBW is the per-RDU external memory bandwidth (paper: 0.2 TB/s).
	DDRBW = 0.2e12
	// DDRBytes is the off-chip DDR capacity per RDU.
	DDRBytes = 512e9
	// PMUBytes is the scratchpad capacity of one PMU (≈0.5 MB).
	PMUBytes = 512 * 1024
	// ChipsPerNode: one SN30 node pairs two RDUs on a fast local
	// interconnect; TP beyond 2 crosses machines.
	ChipsPerNode = 2
)

// Calibration constants with their paper anchors.
const (
	// sectionEff is the fraction of allocated-PCU peak a section
	// sustains. Anchor: RDU peak efficiency 18.2% at ≈35% PCU
	// allocation (Figures 7 and 9b/9c).
	sectionEff = 0.40

	// hostOverheadSec is the fixed per-step orchestration cost (host
	// round trip, section-graph launch). Anchor: Figure 9b — TFLOPs
	// rising with layer count as the fixed cost amortizes.
	hostOverheadSec = 0.02

	// Section-switch overheads per invocation: reconfiguring the
	// dataflow fabric between sections. Anchor: O0's severely limited
	// TFLOPs (Figure 9b) against O1/O3 at identical allocation.
	o0SwitchSec = 300e-6
	o1SwitchSec = 150e-6
	o3SwitchSec = 150e-6

	// Operator PCU demand: matmuls get ~one PCU per matmulGrain hidden
	// columns; pointwise operators a fixed small band. Anchor:
	// Figure 7's O0/O1 allocation band (10–25%) rising with hidden
	// size.
	matmulPCUBase  = 24.0
	matmulPCUSlope = 1.0 / 26.0 // PCUs per hidden column
	minMatmulPCUs  = 16.0
	maxSectionPCUs = 480.0 // hardware scheduler never fills all 640
	pointwisePCUs  = 16.0
	attentionPCUs  = 48.0

	// PMU demand follows PCU demand: matmul sections hold operand
	// tiles (pmuMatmulFactor·PCU + pmuMatmulBase); pointwise sections
	// buffer streams (pmuPointwiseFactor·PCU). Anchor: Figure 7's PMU
	// curves tracking PCU curves, and Table II(b)'s 316–339 PMUs per
	// shard section.
	pmuMatmulFactor    = 0.50
	pmuMatmulBase      = 32.0
	pmuPointwiseFactor = 1.5

	// O1 module fusion multiplies the fused section's PCU demand
	// relative to the operator average (clamped to maxSectionPCUs so
	// the chip-level ratio stays under the paper's 60%% ceiling).
	// Anchor: "O0 and O1 behave almost identically" in allocation
	// (Figure 7a).
	o1FusionBoost = 1.15
	// o1ModuleEffDiscount models the fused pipeline's internal stalls.
	// Anchor: Figure 9c — O1 TFLOPs topping out near ≈50.
	o1ModuleEffDiscount = 0.8

	// LM-head sharding (O1): the V×H head matmul is split into shards
	// grouped into sections. Anchor: Table II(b) — 9 shards/2 sections
	// at HS 3072 growing to ~30 shards/3 sections at HS 8192, with
	// per-section PCUs falling from ≈504 to ≈382 and PMUs rising from
	// ≈316 to ≈339 as the shard count (not HS) grows.
	shardBudgetBytes      = 24e6
	shardsPerSection      = 6.0
	shardSectionPCUBase   = 504.0
	shardSectionPCUSlope  = 8.0 // PCUs lost per extra shard beyond 9
	shardSectionPMUBase   = 316.0
	shardSectionPMUSlope  = 2.0
	shardSectionPCUFloor  = 320.0
	shardSectionPMUCeil   = 360.0
	headShardEffDiscount  = 0.85
	nonDecoderUtilO3      = 0.35 // embed/loss/opt sections (O3)
	o3BwdUtilFactor       = 0.88 // backward sections allocate slightly less
	o0MatmulInvOverlapExp = 0.93 // sub-linear growth of merged-mode matmul time with L

	// TP scaling (Table III / Figure 11b). Within a node (TP2) the RDU
	// Connect link costs ~6%; crossing machines collapses per-chip
	// efficiency: allocation drops (PCU −40%, PMU −25%) and ring
	// traffic serializes on the slow link.
	tpIntraFactor  = 0.94
	tpCrossPCUDrop = 0.60
	tpCrossPMUDrop = 0.75
	tpCrossKappa   = 0.45

	// Batch amortization (Figure 12b): throughput(B) = 1/(w + o/B)
	// with a per-step overhead o. Anchor: 580→630 tokens/s over batch
	// 4→16 for the 7B model.
	batchOverheadFrac = 0.12 // fraction of the B=4 step that is fixed overhead

	// weightPasses scales the per-decoder DDR weight traffic in O3
	// (weight read, gradient write, optimizer read/write).
	weightPasses = 6.0

	// O3 cross-decoder allocation spread: the compiler's automatic
	// load strategy balances decoders worse as depth grows. Anchor:
	// Figure 8a — O3's LI falling with layer count while O1 stays
	// flat; Figure 8b — LI improving with hidden size.
	o3SpreadPerLayer = 0.012
	o3SpreadMax      = 0.45
	// o3HSSpread adds imbalance for narrow models: small decoders leave
	// the compiler fewer placement choices, so balance improves with
	// hidden size (Figure 8b).
	o3HSSpread    = 0.45
	o3HSSpreadRef = 1600.0
	o1Spread      = 0.10
	spreadHSRef   = 1024.0
)

// precFactor returns the throughput multiplier relative to the RDU's
// BF16 default. Anchor: Table IV — mixed precision beats the BF16
// baseline by 34.3% on the 7B model (mixed keeps FP32 master state on
// chip, halving DDR optimizer traffic); FP32 roughly halves throughput.
func precFactor(f precision.Format) float64 {
	switch f {
	case precision.FP32:
		return 0.52
	case precision.Mixed:
		return 1.343
	case precision.BF16, precision.FP16, precision.CB16:
		return 1.0
	default:
		return 1.0
	}
}

// o3FwdUtil returns the O3 forward-section PCU utilization for a given
// hidden size, interpolating the paper's Table II(a) anchors. The
// oscillation reflects repartitioning: utilization climbs until the
// decoder no longer fits one section, drops at the split point, then
// recovers.
func o3FwdUtil(h int) float64 { return interpAnchors(h, o3FwdAnchors) }

// o3BwdUtil is the backward-section analogue from Table II(a).
func o3BwdUtil(h int) float64 { return interpAnchors(h, o3BwdAnchors) }

// o3FwdRatio returns forward sections per decoder (Table II(a) "Ratio"
// column: 0.66 at small HS — three decoders pack into two sections —
// rising to 1 and beyond as decoders split).
func o3FwdRatio(h int) float64 {
	switch {
	case h <= 1024:
		if h <= 768 {
			return 2.0 / 3.0
		}
		return 0.75
	case h <= 1600:
		return 1
	default:
		return float64(h) / 1600.0
	}
}

// o3BwdRatio returns backward sections per decoder (Table II(a):
// 1.83 → 3 across the sweep).
func o3BwdRatio(h int) float64 {
	r := 1.5 + float64(h)/1024.0
	if r < 1.8 {
		r = 1.8
	}
	return r
}

type anchor struct {
	h int
	v float64
}

var o3FwdAnchors = []anchor{
	{480, 0.55}, {768, 0.62}, {1024, 0.64}, {1280, 0.53}, {1600, 0.63},
}

var o3BwdAnchors = []anchor{
	{480, 0.44}, {768, 0.525}, {1024, 0.595}, {1280, 0.605}, {1600, 0.5675},
}

// interpAnchors linearly interpolates the anchor table, clamping at the
// ends.
func interpAnchors(h int, as []anchor) float64 {
	if h <= as[0].h {
		return as[0].v
	}
	for i := 1; i < len(as); i++ {
		if h <= as[i].h {
			t := float64(h-as[i-1].h) / float64(as[i].h-as[i-1].h)
			return as[i-1].v + t*(as[i].v-as[i-1].v)
		}
	}
	return as[len(as)-1].v
}
