package rdu

import (
	"reflect"
	"testing"

	"dabench/internal/graph"
	"dabench/internal/platform"
)

// TestCompileSharesGraphAcrossModes asserts the cross-spec payoff the
// graph cache exists for: O0 and O1 compiles of the same workload (and
// any TP degree) lower the model once.
func TestCompileSharesGraphAcrossModes(t *testing.T) {
	graph.ResetCache()
	s := New()
	before := graph.Stats()
	if _, err := s.Compile(gptSpec(8, platform.ModeO0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compile(gptSpec(8, platform.ModeO1)); err != nil {
		t.Fatal(err)
	}
	d := graph.Stats().Sub(before)
	if d.Misses != 1 || d.Hits != 1 {
		t.Errorf("graph cache deltas = %+v, want O1 to reuse O0's build (1 miss / 1 hit)", d)
	}
}

// TestCompileLeavesCachedGraphUntouched is the consumer-side guard of
// the graph immutability contract: section building over a shared
// cached graph must not perturb it, or a later compile of the same
// workload would read a corrupted lowering.
func TestCompileLeavesCachedGraphUntouched(t *testing.T) {
	graph.ResetCache()
	g, err := buildGraph(gptSpec(8, platform.ModeO0))
	if err != nil {
		t.Fatal(err)
	}
	before := make([]graph.Node, 0, g.Len())
	for _, n := range g.Nodes() {
		before = append(before, *n)
	}

	crA := mustCompile(t, gptSpec(8, platform.ModeO0))
	crB := mustCompile(t, gptSpec(8, platform.ModeO1))

	after := make([]graph.Node, 0, g.Len())
	for _, n := range g.Nodes() {
		after = append(after, *n)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("section builders mutated the shared cached graph")
	}

	// And a re-compile over the (still cached) graph must reproduce the
	// original reports exactly.
	if !reflect.DeepEqual(crA, mustCompile(t, gptSpec(8, platform.ModeO0))) {
		t.Error("O0 re-compile over the cached graph diverged")
	}
	if !reflect.DeepEqual(crB, mustCompile(t, gptSpec(8, platform.ModeO1))) {
		t.Error("O1 re-compile over the cached graph diverged")
	}
}
