package rdu

import (
	"testing"
	"testing/quick"

	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
)

func gptSpec(layers int, mode platform.CompileMode) platform.TrainSpec {
	return platform.TrainSpec{
		Model: model.GPT2Small().WithLayers(layers), Batch: 4, Seq: 1024,
		Precision: precision.BF16, Par: platform.Parallelism{Mode: mode},
	}
}

func blockSpec(h int, mode platform.CompileMode) platform.TrainSpec {
	fam := model.GPT2
	if mode == platform.ModeO1 {
		fam = model.LLaMA2 // the paper runs O1 on the LLaMA-2 block
	}
	return platform.TrainSpec{
		Model: model.DecoderBlock(fam, h).WithLayers(8), Batch: 4, Seq: 1024,
		Precision: precision.BF16, Par: platform.Parallelism{Mode: mode},
	}
}

func mustCompile(t *testing.T, s platform.TrainSpec) *platform.CompileReport {
	t.Helper()
	cr, err := New().Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return cr
}

func mustRun(t *testing.T, s platform.TrainSpec) *platform.RunReport {
	t.Helper()
	cr := mustCompile(t, s)
	rr, err := New().Run(cr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rr
}

// Figure 7: overall allocation never exceeds ~60%, with O3 highest and
// O0 lowest.
func TestFigure7AllocationOrdering(t *testing.T) {
	for _, l := range []int{4, 12, 24, 48} {
		o0 := mustCompile(t, gptSpec(l, platform.ModeO0)).AllocationRatio(platform.ResPCU)
		o1 := mustCompile(t, gptSpec(l, platform.ModeO1)).AllocationRatio(platform.ResPCU)
		o3 := mustCompile(t, gptSpec(l, platform.ModeO3)).AllocationRatio(platform.ResPCU)
		if !(o0 < o1 && o1 < o3) {
			t.Errorf("L=%d: ordering violated O0=%.3f O1=%.3f O3=%.3f", l, o0, o1, o3)
		}
		if o3 > 0.60 {
			t.Errorf("L=%d: O3 allocation %.3f exceeds the paper's 60%% ceiling", l, o3)
		}
	}
}

// Figure 7a: O3 allocation rises with layers and stabilizes; O0/O1
// drift down slightly.
func TestFigure7aLayerTrends(t *testing.T) {
	o3a := mustCompile(t, gptSpec(4, platform.ModeO3)).AllocationRatio(platform.ResPCU)
	o3b := mustCompile(t, gptSpec(24, platform.ModeO3)).AllocationRatio(platform.ResPCU)
	o3c := mustCompile(t, gptSpec(48, platform.ModeO3)).AllocationRatio(platform.ResPCU)
	if !(o3a < o3b && o3b <= o3c+0.01) {
		t.Errorf("O3 should rise then stabilize: %.3f %.3f %.3f", o3a, o3b, o3c)
	}
	o1a := mustCompile(t, gptSpec(4, platform.ModeO1)).AllocationRatio(platform.ResPCU)
	o1c := mustCompile(t, gptSpec(48, platform.ModeO1)).AllocationRatio(platform.ResPCU)
	if o1c >= o1a {
		t.Errorf("O1 allocation should drift down with depth: %.3f -> %.3f", o1a, o1c)
	}
}

// Figure 7b: allocation grows with hidden size; O3 dips at the
// repartition point (HS 1280, Table IIa).
func TestFigure7bHiddenSizeTrends(t *testing.T) {
	o0 := func(h int) float64 {
		return mustCompile(t, blockSpec(h, platform.ModeO0)).AllocationRatio(platform.ResPCU)
	}
	if !(o0(480) < o0(768) && o0(768) < o0(1600)) {
		t.Error("O0 allocation should rise with hidden size")
	}
	o3 := func(h int) float64 {
		return mustCompile(t, blockSpec(h, platform.ModeO3)).AllocationRatio(platform.ResPCU)
	}
	if !(o3(1280) < o3(1024)) {
		t.Errorf("O3 should dip at the 1280 repartition point: %v vs %v", o3(1280), o3(1024))
	}
}

// Table II(b): the LM head shards into more sections as HS grows, with
// per-shard-section PCUs in the low hundreds (well under 640).
func TestTableIIbSharding(t *testing.T) {
	shardPCU := func(h int) (n int, pcu float64) {
		cr := mustCompile(t, blockSpec(h, platform.ModeO1))
		for _, task := range cr.Tasks {
			if task.Kind == "section" && len(task.Name) > 8 && task.Name[:8] == "lm-head." {
				n++
				pcu = task.Units[platform.ResPCU]
			}
		}
		return
	}
	n3072, pcu3072 := shardPCU(3072)
	n8192, pcu8192 := shardPCU(8192)
	if n3072 < 1 || n8192 <= n3072 {
		t.Errorf("shard sections should grow with HS: %d -> %d", n3072, n8192)
	}
	if pcu3072 < 400 || pcu3072 > 520 {
		t.Errorf("shard section PCU at 3072 = %v, want ≈504", pcu3072)
	}
	if pcu8192 >= pcu3072 {
		t.Errorf("per-section PCUs should fall as shards grow: %v -> %v", pcu3072, pcu8192)
	}
	if pcu8192 >= 640 {
		t.Error("shard PCUs must stay below the 640 hardware limit")
	}
}

// Figure 8: O1's fused balance beats O3; O3's LI decays with depth and
// improves with hidden size.
func TestFigure8LoadImbalance(t *testing.T) {
	sim := New()
	li := func(s platform.TrainSpec) float64 {
		v, err := sim.LoadImbalance(mustCompile(t, s))
		if err != nil {
			t.Fatalf("LI: %v", err)
		}
		return v
	}
	o1 := li(gptSpec(24, platform.ModeO1))
	o3 := li(gptSpec(24, platform.ModeO3))
	if o1 <= o3 {
		t.Errorf("O1 LI %v should exceed O3 LI %v", o1, o3)
	}
	if o1 < 0.85 || o1 > 1.0 {
		t.Errorf("O1 LI = %v, want ≈0.9", o1)
	}
	// O3 decays with layers.
	if a, b := li(gptSpec(4, platform.ModeO3)), li(gptSpec(48, platform.ModeO3)); b >= a {
		t.Errorf("O3 LI should decay with layers: %v -> %v", a, b)
	}
	// O3 improves from HS 1024 to 1600 (Figure 8b's rising tail).
	if a, b := li(blockSpec(1024, platform.ModeO3)), li(blockSpec(1600, platform.ModeO3)); b <= a {
		t.Errorf("O3 LI should improve with hidden size: %v -> %v", a, b)
	}
	// O1 LI is insensitive to layer count (shared graph).
	if a, b := li(gptSpec(4, platform.ModeO1)), li(gptSpec(48, platform.ModeO1)); b < a-0.1 {
		t.Errorf("O1 LI should be stable across layers: %v -> %v", a, b)
	}
}

// Figure 9b/9c: O0 TFLOPs are severely limited; O1/O3 rise with layers
// and hidden size, topping out near the paper's 35–51 TFLOPs band.
func TestFigure9bcTFLOPs(t *testing.T) {
	o0 := mustRun(t, gptSpec(24, platform.ModeO0)).Achieved.TFLOPS()
	o3s := mustRun(t, gptSpec(4, platform.ModeO3)).Achieved.TFLOPS()
	o3l := mustRun(t, gptSpec(48, platform.ModeO3)).Achieved.TFLOPS()
	if o0 > 15 {
		t.Errorf("O0 TFLOPs = %v, should be severely limited (<15)", o0)
	}
	if o3l <= o3s {
		t.Errorf("O3 TFLOPs should rise with layers: %v -> %v", o3s, o3l)
	}
	if o3l < 30 || o3l > 55 {
		t.Errorf("O3 TFLOPs at depth = %v, want in the 35–51 band", o3l)
	}
	// Rising with hidden size too (Figure 9c).
	a := mustRun(t, blockSpec(480, platform.ModeO3)).Achieved.TFLOPS()
	b := mustRun(t, blockSpec(1600, platform.ModeO3)).Achieved.TFLOPS()
	if b <= a {
		t.Errorf("O3 TFLOPs should rise with HS: %v -> %v", a, b)
	}
	// Peak efficiency ≈18%.
	eff := mustRun(t, blockSpec(1600, platform.ModeO3)).Efficiency
	if eff < 0.12 || eff > 0.22 {
		t.Errorf("peak efficiency = %v, want ≈0.18", eff)
	}
}

// Figure 10b: RDU workloads sit in the memory-bound region (AI below
// the 1390 FLOPs/byte ridge) and AI rises with hidden size.
func TestFigure10bAI(t *testing.T) {
	ridge := Peak16 / DDRBW
	ai3072 := mustRun(t, blockSpec(3072, platform.ModeO1)).AI
	ai8192 := mustRun(t, blockSpec(8192, platform.ModeO1)).AI
	if ai8192 <= ai3072 {
		t.Errorf("AI should rise with HS: %v -> %v", ai3072, ai8192)
	}
	if ai3072 < 100 || ai8192 > ridge {
		t.Errorf("AI band [%v, %v] should stay memory-bound (ridge %v)", ai3072, ai8192, ridge)
	}
}

// Table III / Figure 11b: TP2 is near-linear; crossing machines at TP4
// collapses throughput ≈40% and drops PCU/PMU allocation.
func TestTableIIITPScaling(t *testing.T) {
	tpSpec := func(n int) platform.TrainSpec {
		return platform.TrainSpec{
			Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: n},
		}
	}
	t2 := mustRun(t, tpSpec(2))
	t4 := mustRun(t, tpSpec(4))
	t8 := mustRun(t, tpSpec(8))
	drop := t4.TokensPerSec / t2.TokensPerSec
	if drop < 0.5 || drop > 0.75 {
		t.Errorf("TP2->TP4 ratio = %v, want ≈0.61 (40%% drop)", drop)
	}
	flat := t8.TokensPerSec / t4.TokensPerSec
	if flat < 0.85 || flat > 1.15 {
		t.Errorf("TP4->TP8 ratio = %v, want ≈1 (minimal additional overhead)", flat)
	}
	// Allocation drop (Figure 11b): PCU −40%, PMU −25%.
	c2, c4 := t2.Compile, t4.Compile
	pcuDrop := c4.AllocationRatio(platform.ResPCU) / c2.AllocationRatio(platform.ResPCU)
	pmuDrop := c4.AllocationRatio(platform.ResPMU) / c2.AllocationRatio(platform.ResPMU)
	if pcuDrop > 0.7 || pcuDrop < 0.5 {
		t.Errorf("cross-machine PCU drop = %v, want ≈0.6", pcuDrop)
	}
	if pmuDrop > 0.85 || pmuDrop < 0.65 {
		t.Errorf("cross-machine PMU drop = %v, want ≈0.75", pmuDrop)
	}
}

// Figure 12b: throughput rises steadily with batch.
func TestFigure12bBatch(t *testing.T) {
	at := func(b int) float64 {
		s := platform.TrainSpec{
			Model: model.LLaMA2_7B(), Batch: b, Seq: 4096, Precision: precision.BF16,
			Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: 2},
		}
		return mustRun(t, s).TokensPerSec
	}
	t4, t8, t16 := at(4), at(8), at(16)
	if !(t4 < t8 && t8 < t16) {
		t.Fatalf("batch scaling broken: %v %v %v", t4, t8, t16)
	}
	// The paper's 580→630 tokens/s is a modest ≈9% gain over 4×batch.
	gain := t16/t4 - 1
	if gain < 0.03 || gain > 1.0 {
		t.Errorf("batch 4->16 gain = %v, want modest positive", gain)
	}
}

// Table IV: mixed precision beats BF16 by ≈34%.
func TestTableIVMixedPrecision(t *testing.T) {
	s := platform.TrainSpec{
		Model: model.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: precision.BF16,
		Par: platform.Parallelism{Mode: platform.ModeO1, TensorParallel: 2},
	}
	base := mustRun(t, s).TokensPerSec
	s.Precision = precision.Mixed
	mixed := mustRun(t, s).TokensPerSec
	gain := mixed/base - 1
	if gain < 0.30 || gain > 0.40 {
		t.Errorf("mixed gain = %v, want ≈0.343", gain)
	}
}

// Unlimited scalability: arbitrarily deep models compile via
// partitioning (the paper's O3 insight), but DDR capacity gates TP=1
// for very large models.
func TestUnlimitedDepthCompiles(t *testing.T) {
	s := gptSpec(200, platform.ModeO3)
	if _, err := New().Compile(s); err != nil {
		t.Errorf("deep model should compile: %v", err)
	}
	big := platform.TrainSpec{
		Model: model.LLaMA2_70B(), Batch: 1, Seq: 4096, Precision: precision.BF16,
		Par: platform.Parallelism{Mode: platform.ModeO1},
	}
	if _, err := New().Compile(big); !platform.IsCompileFailure(err) {
		t.Errorf("70B at TP1 should exceed DDR: %v", err)
	}
	big.Par.TensorParallel = 8
	if _, err := New().Compile(big); err != nil {
		t.Errorf("70B at TP8 should fit: %v", err)
	}
}

func TestRejectsUnsupportedParallelism(t *testing.T) {
	s := gptSpec(4, platform.ModeO1)
	s.Par.DataParallel = 2
	if _, err := New().Compile(s); err == nil {
		t.Error("DP accepted")
	}
	s = gptSpec(4, platform.ModeO1)
	s.Par.PipelineParallel = 2
	if _, err := New().Compile(s); err == nil {
		t.Error("PP accepted")
	}
}

func TestDefaultModeIsO1(t *testing.T) {
	s := gptSpec(4, platform.ModeDefault)
	cr := mustCompile(t, s)
	found := false
	for _, n := range cr.Notes {
		if n == "mode=O1 sections="+itoa(len(filterSections(cr)))+" tp=1" {
			found = true
		}
	}
	_ = found // note text format may evolve; assert sections exist instead
	if len(cr.Tasks) == 0 {
		t.Fatal("no sections compiled")
	}
}

func filterSections(cr *platform.CompileReport) []platform.Task {
	var out []platform.Task
	for _, t := range cr.Tasks {
		if t.Kind == "section" {
			out = append(out, t)
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestRunRejectsForeignReport(t *testing.T) {
	if _, err := New().Run(nil); err == nil {
		t.Error("nil report accepted")
	}
	if _, err := New().Run(&platform.CompileReport{Platform: "WSE-2"}); err == nil {
		t.Error("foreign report accepted")
	}
}

// Property: every compiled section respects the PCU/PMU hardware caps
// and has positive runtime.
func TestSectionInvariants(t *testing.T) {
	modes := []platform.CompileMode{platform.ModeO0, platform.ModeO1, platform.ModeO3}
	f := func(n uint8, m uint8) bool {
		l := int(n%32) + 1
		mode := modes[int(m)%len(modes)]
		cr, err := New().Compile(gptSpec(l, mode))
		if err != nil {
			return false
		}
		for _, task := range cr.Tasks {
			if task.Kind != "section" {
				continue
			}
			if task.Units[platform.ResPCU] <= 0 || task.Units[platform.ResPCU] > PCUs {
				return false
			}
			if task.Units[platform.ResPMU] <= 0 || task.Units[platform.ResPMU] > PMUs {
				return false
			}
			if task.Runtime <= 0 || task.Invocations < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
