package rdu

import (
	"fmt"
	"math"
	"strings"

	"dabench/internal/metrics"
	"dabench/internal/platform"
	"dabench/internal/units"
)

// Sim is the SN30 RDU simulator. The zero value is ready to use.
type Sim struct{}

// New returns an RDU simulator.
func New() *Sim { return &Sim{} }

// Name implements platform.Platform.
func (*Sim) Name() string { return "RDU" }

// HardwareSpec implements platform.Platform.
func (*Sim) HardwareSpec() platform.Spec {
	return platform.Spec{
		Name: "SambaNova SN30 RDU",
		Resources: map[platform.Resource]float64{
			platform.ResPCU: PCUs,
			platform.ResPMU: PMUs,
		},
		Peak16:       Peak16,
		OnChipMemory: PCUs * PMUBytes,
		OnChipBW:     0, // not published; the paper models only the DDR tier
		GlobalMemory: DDRBytes,
		GlobalBW:     DDRBW,
	}
}

// Compile implements platform.Platform: partition the training graph
// into sections per the selected compile mode.
func (s *Sim) Compile(spec platform.TrainSpec) (*platform.CompileReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Par.DataParallel > 1 {
		return nil, fmt.Errorf("rdu: data parallelism is not modeled on SN30 (the paper scales via TP)")
	}
	if spec.Par.PipelineParallel > 1 {
		return nil, fmt.Errorf("rdu: pipeline parallelism is not modeled on SN30")
	}
	tp := spec.Par.TensorParallel
	if tp < 1 {
		tp = 1
	}

	mode := spec.Par.Mode
	if mode == platform.ModeDefault {
		mode = platform.ModeO1
	}
	var (
		secs []section
		err  error
	)
	switch mode {
	case platform.ModeO0:
		secs, err = buildO0(spec)
	case platform.ModeO1:
		secs, err = buildO1(spec)
	case platform.ModeO3:
		secs, err = buildO3(spec)
	default:
		return nil, fmt.Errorf("rdu: unknown compile mode %v", mode)
	}
	if err != nil {
		return nil, err
	}
	sortSections(secs)

	// DDR capacity check: weights + gradients + optimizer state.
	p := float64(spec.Model.Params())
	statePerChip := p * (2 + 2 + 8 + spec.Precision.MasterWeightBytes()) / float64(tp)
	if statePerChip > DDRBytes {
		return nil, &platform.CompileError{
			Platform: s.Name(),
			Reason: fmt.Sprintf("model state %s exceeds DDR capacity %s at TP=%d — increase tensor parallelism",
				units.Bytes(statePerChip), units.Bytes(float64(DDRBytes)), tp),
		}
	}

	// Tensor parallelism shards each section's work; crossing the
	// machine boundary (TP>2) costs allocation (Figure 11b).
	pcuDrop, pmuDrop := 1.0, 1.0
	if tp > ChipsPerNode {
		pcuDrop, pmuDrop = tpCrossPCUDrop, tpCrossPMUDrop
	}

	overhead := switchOverhead(mode)
	tasks := make([]platform.Task, 0, len(secs))
	for _, sec := range secs {
		pcu := sec.pcus * pcuDrop
		pmu := sec.pmus * pmuDrop
		t := sectionTime(sec, pcu, spec, tp) + overhead
		thr := 0.0
		if t > 0 {
			thr = 1 / t
		}
		tasks = append(tasks, platform.Task{
			Name: sec.name, Kind: "section",
			Units: map[platform.Resource]float64{
				platform.ResPCU: pcu,
				platform.ResPMU: pmu,
			},
			Throughput:  thr,
			Runtime:     units.Seconds(t),
			Invocations: sec.invocations,
			FLOPs:       units.FLOPs(sec.flops / float64(tp)),
			Traffic:     units.Bytes(sec.ddrBytes / float64(tp)),
			Subtasks:    opTasks(sec),
		})
	}

	// Chip-level allocation is the time-weighted average over sections
	// (paper Eq. 2); store the weighted means as the allocation row.
	wPCU, wPMU := weightedAlloc(tasks)
	notes := []string{
		fmt.Sprintf("mode=%s sections=%d tp=%d", mode, len(secs), tp),
	}
	if sh := countShards(secs); sh > 0 {
		notes = append(notes, fmt.Sprintf("lm-head shard sections=%d", sh))
	}

	return &platform.CompileReport{
		Platform: s.Name(),
		Spec:     spec,
		Tasks:    tasks,
		Allocated: map[platform.Resource]float64{
			platform.ResPCU: wPCU * PCUs,
			platform.ResPMU: wPMU * PMUs,
		},
		Capacity: map[platform.Resource]float64{
			platform.ResPCU: PCUs,
			platform.ResPMU: PMUs,
		},
		Memory: platform.MemoryUse{
			Capacity: DDRBytes,
			Weights:  units.Bytes(statePerChip),
			Activations: spec.Model.ActivationBytesPerToken(spec.Seq, spec.Precision) *
				units.Bytes(spec.Tokens()/float64(tp)),
		},
		Notes: notes,
	}, nil
}

// switchOverhead is the per-invocation fabric reconfiguration cost.
func switchOverhead(mode platform.CompileMode) float64 {
	switch mode {
	case platform.ModeO0:
		return o0SwitchSec
	case platform.ModeO3:
		return o3SwitchSec
	default:
		return o1SwitchSec
	}
}

// sectionTime is one invocation's wall time (excluding switch
// overhead): the max of compute time and DDR streaming time.
func sectionTime(sec section, pcus float64, spec platform.TrainSpec, tp int) float64 {
	if pcus <= 0 {
		return math.Inf(1)
	}
	comp := (sec.flops / float64(tp)) / (pcus * ratePerPCU * sectionEff)
	mem := (sec.ddrBytes / float64(tp)) / DDRBW
	if sec.kind == "shard" {
		comp /= headShardEffDiscount
	}
	if sec.kind == "matmul" {
		comp /= o1ModuleEffDiscount
	}
	// The precision factor applies to the whole streaming pipeline:
	// mixed precision accelerates the datapath and halves optimizer
	// DDR traffic; FP32 doubles both (Table IV).
	return math.Max(comp, mem) / precFactor(spec.Precision)
}

// opTasks converts a section's operator rows to platform tasks.
func opTasks(sec section) []platform.Task {
	out := make([]platform.Task, 0, len(sec.ops))
	for _, o := range sec.ops {
		out = append(out, platform.Task{
			Name: o.Name, Kind: "operator",
			Units:      map[platform.Resource]float64{platform.ResPCU: o.Resources},
			Throughput: o.Throughput,
		})
	}
	return out
}

// weightedAlloc computes the Eq. 2 time-weighted PCU and PMU
// allocation ratios over the section schedule. Merged-mode matmul
// sections overlap across invocations (sub-linear growth), which is
// why O0/O1 allocation drifts down slightly with depth (Figure 7a).
func weightedAlloc(tasks []platform.Task) (pcu, pmu float64) {
	var num1, num2, den float64
	for _, t := range tasks {
		w := float64(t.Runtime) * effInvocations(t)
		num1 += w * t.Units[platform.ResPCU] / PCUs
		num2 += w * t.Units[platform.ResPMU] / PMUs
		den += w
	}
	if den == 0 {
		return 0, 0
	}
	return num1 / den, num2 / den
}

// effInvocations applies the merged-mode overlap exponent.
func effInvocations(t platform.Task) float64 {
	inv := float64(t.Invocations)
	if inv <= 1 {
		return 1
	}
	return math.Pow(inv, o0MatmulInvOverlapExp)
}

// Run implements platform.Platform.
func (s *Sim) Run(cr *platform.CompileReport) (*platform.RunReport, error) {
	if cr == nil || cr.Platform != s.Name() {
		return nil, fmt.Errorf("rdu: run requires an RDU compile report")
	}
	spec := cr.Spec
	tp := spec.Par.TensorParallel
	if tp < 1 {
		tp = 1
	}

	// Sections execute sequentially: step time is the invocation-
	// weighted sum, plus the fixed host orchestration cost (whose
	// amortization makes TFLOPs rise with depth, Figure 9b).
	var stepTime, traffic float64
	for _, t := range cr.Tasks {
		stepTime += float64(t.Runtime) * effInvocations(t)
		traffic += float64(t.Traffic) * float64(t.Invocations)
	}
	if stepTime <= 0 {
		return nil, fmt.Errorf("rdu: degenerate section schedule")
	}
	stepTime += hostOverheadSec

	// Batch amortization (Figure 12b): a fixed fraction of the step is
	// batch-independent orchestration.
	refBatch := 4.0
	overhead := stepTime * batchOverheadFrac * refBatch / math.Max(float64(spec.Batch), 1)
	stepTime = stepTime*(1-batchOverheadFrac) + overhead

	// Cross-machine TP serializes ring traffic on the slow link
	// (Table III's 1540 → 945 tokens/s collapse from TP2 to TP4).
	comm := 1.0
	if tp == 2 {
		comm = tpIntraFactor
	} else if tp > 2 {
		comm = tpIntraFactor / (1 + tpCrossKappa*float64(tp-2))
	}
	stepTime /= comm

	tokensPerSec := spec.Tokens() / stepTime
	flopsPerStep := float64(spec.Model.TrainFLOPs(spec.Batch, spec.Seq))
	achieved := units.FLOPSRate(flopsPerStep / stepTime / float64(tp))

	// DDR-tier arithmetic intensity from the compiled schedule
	// (Figure 10b): per-chip FLOPs over per-chip DDR traffic.
	ai := 0.0
	if traffic > 0 {
		ai = flopsPerStep / float64(tp) / traffic
	}

	return &platform.RunReport{
		Compile:       cr,
		StepTime:      units.Seconds(stepTime),
		TokensPerSec:  tokensPerSec,
		SamplesPerSec: tokensPerSec / float64(spec.Seq),
		Achieved:      achieved,
		Efficiency:    float64(achieved) / Peak16,
		AI:            ai,
	}, nil
}

// LoadImbalance computes the paper's operator-level LI for a compiled
// workload: Eq. 3 within each section, Eq. 4 time-weighted across
// sections. For O3, sections themselves are the operator-granularity
// tasks (one decoder per section), so LI is computed across sections.
func (s *Sim) LoadImbalance(cr *platform.CompileReport) (float64, error) {
	if cr == nil || cr.Platform != s.Name() {
		return 0, fmt.Errorf("rdu: LI requires an RDU compile report")
	}
	if cr.Spec.Par.Mode == platform.ModeO3 {
		// O3: one decoder per section, so cross-section imbalance is
		// the operator-granularity signal; IO sections are excluded as
		// in the paper's decoder-focused analysis.
		var tasks []metrics.TaskSample
		for _, t := range cr.Tasks {
			if t.Kind != "section" || len(t.Subtasks) == 0 ||
				!strings.HasPrefix(t.Name, "decoder.") {
				continue
			}
			if t.Subtasks[0].Throughput <= 0 {
				continue
			}
			tasks = append(tasks, metrics.TaskSample{
				Name:       t.Name,
				Resources:  t.Units[platform.ResPCU],
				Throughput: t.Subtasks[0].Throughput,
			})
		}
		return metrics.LoadImbalance(tasks)
	}
	var rows []metrics.WeightedLI
	for _, t := range cr.Tasks {
		if len(t.Subtasks) == 0 {
			continue
		}
		var ops []metrics.TaskSample
		for _, o := range t.Subtasks {
			if o.Throughput <= 0 || math.IsInf(o.Throughput, 1) {
				continue
			}
			ops = append(ops, metrics.TaskSample{
				Name:       o.Name,
				Resources:  o.Units[platform.ResPCU],
				Throughput: o.Throughput,
			})
		}
		if len(ops) == 0 {
			continue
		}
		li, err := metrics.LoadImbalance(ops)
		if err != nil {
			return 0, err
		}
		rows = append(rows, metrics.WeightedLI{
			Name:    t.Name,
			Runtime: units.Seconds(float64(t.Runtime) * effInvocations(t)),
			LI:      li,
		})
	}
	return metrics.TimeWeightedLI(rows)
}

func countShards(secs []section) int {
	n := 0
	for _, s := range secs {
		if s.kind == "shard" {
			n++
		}
	}
	return n
}
