package rdu

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"dabench/internal/graph"
	"dabench/internal/metrics"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
)

// section is one schedulable unit of the RDU execution plan. Sections
// execute strictly sequentially on a chip; a section may be invoked
// several times per training step (once per decoder layer in the
// merged O0/O1 modes).
type section struct {
	name        string
	kind        string // "matmul", "pointwise", "shard", "decoder", "nondecoder"
	pcus        float64
	pmus        float64
	flops       float64 // per invocation
	ddrBytes    float64 // per invocation
	invocations int
	// ops are the operator-level subtasks for the LI metric.
	ops []metrics.TaskSample
}

// opPCUs returns the PCU demand of one operator instance.
func opPCUs(kind graph.OpKind, hidden int) float64 {
	h := float64(hidden)
	switch kind {
	case graph.OpMatMul:
		return clampF(matmulPCUBase+h*matmulPCUSlope, minMatmulPCUs, maxSectionPCUs)
	case graph.OpAttnScore, graph.OpAttnContext:
		return clampF(attentionPCUs+h/64, minMatmulPCUs, maxSectionPCUs)
	case graph.OpOptimizer:
		return clampF(32+h/64, minMatmulPCUs, maxSectionPCUs)
	default:
		return clampF(pointwisePCUs+h/256, pointwisePCUs, maxSectionPCUs)
	}
}

// opPMUs returns the PMU demand accompanying a PCU allocation.
func opPMUs(kind graph.OpKind, pcus float64) float64 {
	switch kind {
	case graph.OpMatMul, graph.OpAttnScore, graph.OpAttnContext, graph.OpOptimizer:
		return clampF(pmuMatmulFactor*pcus+pmuMatmulBase, 16, maxSectionPCUs)
	default:
		return clampF(pmuPointwiseFactor*pcus, 16, maxSectionPCUs)
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func isMatmulKind(k graph.OpKind) bool {
	return k == graph.OpMatMul || k == graph.OpAttnScore || k == graph.OpAttnContext
}

// templateKey strips the layer prefix so per-layer operator instances
// collapse onto one merged section (O0/O1 "decoders merged" semantics).
func templateKey(name string) string {
	if i := strings.Index(name, "/"); i > 0 && strings.HasPrefix(name, "L") {
		return name[i+1:]
	}
	return name
}

// buildGraph lowers the spec's model to its training graph through the
// process-wide build cache: the graph depends only on (model, batch,
// seq, precision), so the O0/O1/O3 mode grids and the TP ladders all
// share one lowering. The returned graph is immutable — section
// builders only read it.
func buildGraph(spec platform.TrainSpec) (*graph.Graph, error) {
	return graph.Cached(spec.Model, graph.BuildOptions{
		Batch: spec.Batch, Seq: spec.Seq, Precision: spec.Precision, Backward: true,
	})
}

// buildO0 creates operator-mode sections: one per operator template,
// invoked once per decoder layer.
func buildO0(spec platform.TrainSpec) ([]section, error) {
	g, err := buildGraph(spec)
	if err != nil {
		return nil, err
	}
	return mergedSections(g, spec, 1.0), nil
}

// buildO1 creates module-mode sections: the paper's operator fusion
// groups each decoder module's operators into one section, and shards
// the LM head.
func buildO1(spec platform.TrainSpec) ([]section, error) {
	g, err := buildGraph(spec)
	if err != nil {
		return nil, err
	}
	h := spec.Model.HiddenSize
	L := spec.Model.NumLayers

	// Group decoder nodes by (module, phase); shared nodes stay solo
	// except the LM head, which is sharded.
	type agg struct {
		flops, traffic, pcus, pmus float64
		kind                       string
		ops                        []metrics.TaskSample
		count                      int
	}
	groups := make(map[string]*agg, 16)
	order := make([]string, 0, 16)
	add := func(key, kind string, n *graph.Node, fused bool) {
		a, ok := groups[key]
		if !ok {
			a = &agg{kind: kind}
			groups[key] = a
			order = append(order, key)
		}
		a.flops += float64(n.FLOPs)
		a.traffic += float64(n.Traffic())
		pc := opPCUs(n.Kind, h)
		if fused {
			// Fused module operators share the section spatially; the
			// section allocation is the fused-pipeline width, not the
			// sum of operator widths.
			if b := clampF(pc*o1FusionBoost, minMatmulPCUs, maxSectionPCUs); b > a.pcus {
				a.pcus = b
			}
		} else if pc > a.pcus {
			a.pcus = pc
		}
		pm := opPMUs(n.Kind, a.pcus)
		if pm > a.pmus {
			a.pmus = pm
		}
		a.count++
		a.ops = append(a.ops, metrics.TaskSample{
			Name: n.Name, Resources: pc,
			Throughput: opThroughput(n, pc, spec.Precision),
		})
	}

	var headNodes []*graph.Node
	for _, n := range g.Nodes() {
		if n.Layer >= 0 {
			mod := moduleOf(templateKey(n.Name))
			key := mod + "." + n.Phase.String()
			add(key, moduleKind(mod), n, true)
			continue
		}
		if strings.HasPrefix(n.Name, "lm-head") {
			headNodes = append(headNodes, n)
			continue
		}
		add(templateKey(n.Name)+"."+n.Phase.String(), "nondecoder", n, false)
	}

	var secs []section
	for _, key := range order {
		a := groups[key]
		inv := 1
		flops, traffic := a.flops, a.traffic
		if strings.HasPrefix(key, "attn.") || strings.HasPrefix(key, "mlp.") {
			inv = L
			flops /= float64(L)
			traffic /= float64(L)
			// The merged section's op rows also represent one layer,
			// and fusion rebalances the pipeline: each operator gets
			// resources proportional to its work (this is what makes
			// O1's LI markedly better than O3's, Figure 8).
			a.ops = rebalanceOps(dedupeOps(a.ops), a.pcus, spec)
		}
		secs = append(secs, section{
			name: key, kind: a.kind,
			pcus: a.pcus, pmus: a.pmus,
			flops: flops, ddrBytes: traffic,
			invocations: inv, ops: a.ops,
		})
	}

	secs = append(secs, shardHead(spec, headNodes)...)
	return secs, nil
}

// rebalanceOps redistributes a fused section's PCUs work-
// proportionally, leaving only placement-quantization jitter. The
// jitter shrinks with hidden size (wider operators quantize better),
// reproducing Figure 8b's LI rising with HS.
func rebalanceOps(ops []metrics.TaskSample, sectionPCUs float64, spec platform.TrainSpec) []metrics.TaskSample {
	var total float64
	work := make([]float64, len(ops))
	for i, o := range ops {
		if o.Throughput <= 0 || math.IsInf(o.Throughput, 1) {
			continue
		}
		// Recover the op's FLOPs from its throughput and allocation.
		work[i] = o.Resources * ratePerPCU * sectionEff * precFactor(spec.Precision) / o.Throughput
		total += work[i]
	}
	if total == 0 {
		return ops
	}
	h := float64(spec.Model.HiddenSize)
	spread := o1Spread * (1 + spreadHSRef/(spreadHSRef+h)) / 1.5
	out := make([]metrics.TaskSample, len(ops))
	for i, o := range ops {
		if work[i] == 0 {
			out[i] = o
			continue
		}
		z := math.Mod(float64(i)*0.6180339887+0.41, 1.0)
		res := sectionPCUs * work[i] / total * (1 + spread*(2*z-1))
		out[i] = metrics.TaskSample{
			Name:       o.Name,
			Resources:  res,
			Throughput: res * ratePerPCU * sectionEff * precFactor(spec.Precision) / work[i],
		}
	}
	return out
}

// moduleOf maps an operator template name to its decoder module.
func moduleOf(tmpl string) string {
	switch {
	case strings.HasPrefix(tmpl, "norm2"), strings.HasPrefix(tmpl, "mlp"),
		strings.HasPrefix(tmpl, "residual2"):
		return "mlp"
	default:
		return "attn"
	}
}

func moduleKind(mod string) string { return "matmul" }

// dedupeOps keeps one op row per template (the merged section executes
// the same operator for every layer).
func dedupeOps(ops []metrics.TaskSample) []metrics.TaskSample {
	seen := map[string]bool{}
	var out []metrics.TaskSample
	for _, o := range ops {
		k := templateKey(o.Name)
		if seen[k] {
			continue
		}
		seen[k] = true
		o.Name = k
		out = append(out, o)
	}
	return out
}

// mergedSections implements O0: one section per operator template.
func mergedSections(g *graph.Graph, spec platform.TrainSpec, fusion float64) []section {
	h := spec.Model.HiddenSize
	type agg struct {
		node    *graph.Node
		flops   float64
		traffic float64
		inv     int
	}
	groups := make(map[string]*agg, 48)
	order := make([]string, 0, 48)
	for _, n := range g.Nodes() {
		key := templateKey(n.Name) + "." + n.Phase.String()
		a, ok := groups[key]
		if !ok {
			a = &agg{node: n}
			groups[key] = a
			order = append(order, key)
		}
		a.flops += float64(n.FLOPs)
		a.traffic += float64(n.Traffic())
		a.inv++
	}
	secs := make([]section, 0, len(order))
	for _, key := range order {
		a := groups[key]
		pc := opPCUs(a.node.Kind, h) * fusion
		kind := "pointwise"
		if isMatmulKind(a.node.Kind) {
			kind = "matmul"
		}
		secs = append(secs, section{
			name: key, kind: kind,
			pcus:  clampF(pc, pointwisePCUs, maxSectionPCUs),
			pmus:  opPMUs(a.node.Kind, pc),
			flops: a.flops / float64(a.inv), ddrBytes: a.traffic / float64(a.inv),
			invocations: a.inv,
			ops: []metrics.TaskSample{{
				Name: key, Resources: pc,
				Throughput: opThroughput(a.node, pc, spec.Precision),
			}},
		})
	}
	return secs
}

// shardHead splits the LM-head matmul (and its backward) into shard
// sections per the Table II(b) model.
func shardHead(spec platform.TrainSpec, headNodes []*graph.Node) []section {
	if len(headNodes) == 0 {
		return nil
	}
	cfg := spec.Model
	headBytes := 2.0 * float64(cfg.VocabSize) * float64(cfg.HiddenSize)
	shards := int(math.Ceil(headBytes / shardBudgetBytes))
	if shards < 1 {
		shards = 1
	}
	nsec := int(math.Ceil(float64(shards) / shardsPerSection))
	pcu := clampF(shardSectionPCUBase-shardSectionPCUSlope*float64(shards-9),
		shardSectionPCUFloor, shardSectionPCUBase)
	pmu := clampF(shardSectionPMUBase+shardSectionPMUSlope*float64(shards-9),
		shardSectionPMUBase, shardSectionPMUCeil)

	var flops, traffic float64
	var ops []metrics.TaskSample
	for _, n := range headNodes {
		flops += float64(n.FLOPs)
		traffic += float64(n.Traffic())
		ops = append(ops, metrics.TaskSample{
			Name: n.Name, Resources: pcu,
			Throughput: opThroughput(n, pcu, spec.Precision),
		})
	}
	secs := make([]section, 0, nsec)
	for i := 0; i < nsec; i++ {
		secs = append(secs, section{
			name: "lm-head.shardsec" + strconv.Itoa(i), kind: "shard",
			pcus: pcu, pmus: pmu,
			flops: flops / float64(nsec), ddrBytes: traffic / float64(nsec),
			invocations: 1, ops: ops,
		})
	}
	return secs
}

// opThroughput is the operator's isolated rate in invocations/s.
func opThroughput(n *graph.Node, pcus float64, f precision.Format) float64 {
	fl := float64(n.FLOPs)
	if fl <= 0 {
		return math.Inf(1)
	}
	return pcus * ratePerPCU * sectionEff * precFactor(f) / fl
}

// buildO3 creates full-graph-mode sections: decoder-by-decoder, with
// the per-decoder section counts and utilizations of Table II(a).
func buildO3(spec platform.TrainSpec) ([]section, error) {
	cfg := spec.Model
	h := cfg.HiddenSize
	L := cfg.NumLayers
	tokens := spec.Tokens()

	// Per-decoder training work split 1:2 forward:backward.
	layerFlops := 3.0 * decoderFwdFLOPsPerToken(cfg, spec.Seq) * tokens
	fwdFlops := layerFlops / 3
	bwdFlops := layerFlops * 2 / 3
	layerBytes := 2.0 * float64(cfg.LayerParams())
	actBytes := float64(cfg.ActivationBytesPerToken(spec.Seq, spec.Precision)) * tokens / float64(L)

	nFwd := int(math.Max(1, math.Ceil(float64(L)*o3FwdRatio(h))))
	nBwd := int(math.Max(1, math.Ceil(float64(L)*o3BwdRatio(h))))

	fUtil, bUtil := o3FwdUtil(h), o3BwdUtil(h)
	spread := math.Min(o3SpreadMax, o3SpreadPerLayer*float64(L))*spreadHSRef/(spreadHSRef+float64(h)) +
		o3HSSpread*math.Max(0, o3HSSpreadRef-float64(h))/o3HSSpreadRef

	secs := make([]section, 0, L*2+3)
	mk := func(i, n int, phase string, util, flopsTotal, bytesTotal float64) section {
		// Deterministic cross-decoder allocation spread (compiler
		// balances deeper stacks worse).
		z := math.Mod(float64(i)*0.754877666+0.31, 1.0)
		factor := 1 + spread*(2*z-1)
		pcu := clampF(PCUs*util*factor, minMatmulPCUs, maxSectionPCUs)
		pmu := clampF(pcu*0.9+pmuMatmulBase, 16, maxSectionPCUs)
		fl := flopsTotal * float64(L) / float64(n)
		by := (bytesTotal*weightPasses/3 + actBytes) * float64(L) / float64(n)
		name := "decoder." + phase + "." + strconv.Itoa(i)
		return section{
			name: name, kind: "decoder",
			pcus: pcu, pmus: pmu, flops: fl, ddrBytes: by, invocations: 1,
			ops: []metrics.TaskSample{{
				Name:       name,
				Resources:  pcu,
				Throughput: pcu * ratePerPCU * sectionEff * precFactor(spec.Precision) / fl,
			}},
		}
	}
	for i := 0; i < nFwd; i++ {
		secs = append(secs, mk(i, nFwd, "fwd", fUtil, fwdFlops, layerBytes))
	}
	for i := 0; i < nBwd; i++ {
		secs = append(secs, mk(nFwd+i, nBwd, "bwd", bUtil, bwdFlops, 2*layerBytes))
	}

	// Non-decoder sections: embedding, head, loss, optimizer.
	shared := 3.0 * 2 * float64(cfg.EmbeddingHeadMatmulParams()) * tokens
	sharedBytes := weightPasses * 2 * float64(cfg.EmbeddingParams()+cfg.EmbeddingHeadMatmulParams())
	for i, name := range []string{"embedding", "lm-head", "loss-opt"} {
		pcu := clampF(PCUs*nonDecoderUtilO3, minMatmulPCUs, maxSectionPCUs)
		fl := shared / 3
		secs = append(secs, section{
			name: "shared." + name, kind: "nondecoder",
			pcus: pcu, pmus: pcu * 1.1, flops: fl, ddrBytes: sharedBytes / 3,
			invocations: 1,
			ops: []metrics.TaskSample{{
				Name: name, Resources: pcu,
				Throughput: pcu * ratePerPCU * sectionEff * precFactor(spec.Precision) / fl,
			}},
		})
		_ = i
	}
	return secs, nil
}

// decoderFwdFLOPsPerToken is one decoder block's forward FLOPs per
// token at sequence length seq.
func decoderFwdFLOPsPerToken(cfg model.Config, seq int) float64 {
	h := float64(cfg.HiddenSize)
	f := float64(cfg.FFNHidden)
	s := float64(seq)
	kvFrac := float64(cfg.KVHeads) / float64(cfg.NumHeads)
	up := h * f
	if cfg.Activation == model.SwiGLU {
		up = 2 * h * f
	}
	return 2*(h*h+2*h*h*kvFrac+h*h+up+f*h) + 4*s*h + 5*s*float64(cfg.NumHeads) + 8*f + 12*h
}

// sortSections gives deterministic ordering for reports.
func sortSections(secs []section) {
	sort.SliceStable(secs, func(i, j int) bool { return secs[i].name < secs[j].name })
}
