// Package metrics implements the Tier-1 metric definitions of
// DABench-LLM exactly as the paper states them:
//
//   - Eq. 1  resource allocation ratio          U = R_used / R_all
//   - Eq. 2  time-weighted allocation ratio     U = Σ Lᵢ(Rᵢ/R_all) / Σ Lᵢ
//   - Eq. 3  load imbalance                     LI = Σ (T_min/Tᵢ)·Rᵢ / Σ Rᵢ
//   - Eq. 4  time-weighted load imbalance       LI = Σ Lᵢ·LIᵢ / Σ Lᵢ
//   - Eq. 5  arithmetic intensity               AI = 6PBS / (4P + ActMem)
//
// LI lies in (0,1]; values near 1 indicate good balance. The metric is
// granularity-sensitive, so cross-platform LI comparisons are not
// meaningful (the paper evaluates WSE at kernel level and RDU at
// operator level) — the functions here take whatever task list the
// caller provides.
package metrics

import (
	"fmt"
	"math"

	"dabench/internal/units"
)

// TaskSample is one task's allocation and achieved throughput, the
// input row for the load-imbalance metric.
type TaskSample struct {
	Name       string
	Resources  float64 // units allocated to the task (PEs, PCUs, ...)
	Throughput float64 // achieved task throughput (any consistent unit)
}

// AllocationRatio implements Eq. 1. It returns an error when the
// capacity is non-positive; a usage exceeding capacity is clamped to 1
// (compiler reports can double-count shared units).
func AllocationRatio(used, capacity float64) (float64, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("metrics: capacity %v must be positive", capacity)
	}
	if used < 0 {
		return 0, fmt.Errorf("metrics: usage %v must be non-negative", used)
	}
	return units.Clamp(used/capacity, 0, 1), nil
}

// WeightedSample pairs a phase's runtime with its resource usage, the
// input row for Eq. 2 (the RDU executes sections one at a time, so the
// chip-level ratio is the runtime-weighted mean of section ratios).
type WeightedSample struct {
	Name    string
	Runtime units.Seconds
	Used    float64
}

// WeightedAllocationRatio implements Eq. 2.
func WeightedAllocationRatio(samples []WeightedSample, capacity float64) (float64, error) {
	if capacity <= 0 {
		return 0, fmt.Errorf("metrics: capacity %v must be positive", capacity)
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("metrics: no samples")
	}
	var num, den float64
	for _, s := range samples {
		if s.Runtime < 0 {
			return 0, fmt.Errorf("metrics: sample %q has negative runtime", s.Name)
		}
		num += float64(s.Runtime) * units.Clamp(s.Used/capacity, 0, 1)
		den += float64(s.Runtime)
	}
	if den == 0 {
		return 0, fmt.Errorf("metrics: total runtime is zero")
	}
	return num / den, nil
}

// LoadImbalance implements Eq. 3 over a set of concurrently executing
// tasks. Returns 1 for a single task (perfect balance by definition).
func LoadImbalance(tasks []TaskSample) (float64, error) {
	if len(tasks) == 0 {
		return 0, fmt.Errorf("metrics: no tasks")
	}
	tmin := math.Inf(1)
	var totalR float64
	for _, t := range tasks {
		if t.Throughput <= 0 {
			return 0, fmt.Errorf("metrics: task %q has non-positive throughput", t.Name)
		}
		if t.Resources < 0 {
			return 0, fmt.Errorf("metrics: task %q has negative resources", t.Name)
		}
		if t.Throughput < tmin {
			tmin = t.Throughput
		}
		totalR += t.Resources
	}
	if totalR == 0 {
		return 0, fmt.Errorf("metrics: total resources are zero")
	}
	var sum float64
	for _, t := range tasks {
		sum += (tmin / t.Throughput) * t.Resources
	}
	return sum / totalR, nil
}

// WeightedLI is one section's LI with its runtime, the input for Eq. 4.
type WeightedLI struct {
	Name    string
	Runtime units.Seconds
	LI      float64
}

// TimeWeightedLI implements Eq. 4.
func TimeWeightedLI(sections []WeightedLI) (float64, error) {
	if len(sections) == 0 {
		return 0, fmt.Errorf("metrics: no sections")
	}
	var num, den float64
	for _, s := range sections {
		if s.Runtime < 0 {
			return 0, fmt.Errorf("metrics: section %q has negative runtime", s.Name)
		}
		if s.LI < 0 || s.LI > 1 {
			return 0, fmt.Errorf("metrics: section %q LI %v outside [0,1]", s.Name, s.LI)
		}
		num += float64(s.Runtime) * s.LI
		den += float64(s.Runtime)
	}
	if den == 0 {
		return 0, fmt.Errorf("metrics: total runtime is zero")
	}
	return num / den, nil
}

// ArithmeticIntensity implements Eq. 5 directly from its terms:
// params P, batch B, sequence length S and the activation memory
// estimate in bytes. The constant 6 covers forward (2×) plus backward
// (4×) FLOPs per token; the denominator is weight traffic (4 bytes per
// parameter) plus activation traffic.
func ArithmeticIntensity(params int64, batch, seq int, activationBytes units.Bytes) (float64, error) {
	if params <= 0 || batch <= 0 || seq <= 0 {
		return 0, fmt.Errorf("metrics: P=%d B=%d S=%d must be positive", params, batch, seq)
	}
	if activationBytes < 0 {
		return 0, fmt.Errorf("metrics: negative activation memory")
	}
	p := float64(params)
	num := 6 * p * float64(batch) * float64(seq)
	den := 4*p + float64(activationBytes)
	return num / den, nil
}

// ComputeEfficiency returns achieved/peak, clamped to [0,1].
func ComputeEfficiency(achieved, peak units.FLOPSRate) (float64, error) {
	if peak <= 0 {
		return 0, fmt.Errorf("metrics: peak %v must be positive", peak)
	}
	if achieved < 0 {
		return 0, fmt.Errorf("metrics: achieved %v must be non-negative", achieved)
	}
	return units.Clamp(float64(achieved)/float64(peak), 0, 1), nil
}
