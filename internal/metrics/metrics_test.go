package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllocationRatio(t *testing.T) {
	got, err := AllocationRatio(790000, 850000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9294117647) > 1e-9 {
		t.Errorf("ratio = %v", got)
	}
	if v, _ := AllocationRatio(900, 800); v != 1 {
		t.Errorf("over-capacity should clamp to 1, got %v", v)
	}
	if _, err := AllocationRatio(1, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := AllocationRatio(-1, 10); err == nil {
		t.Error("negative usage accepted")
	}
}

func TestWeightedAllocationRatio(t *testing.T) {
	// Two sections: 2s at 50%, 1s at 80% → (2·0.5 + 1·0.8)/3 = 0.6.
	samples := []WeightedSample{
		{Name: "s0", Runtime: 2, Used: 320},
		{Name: "s1", Runtime: 1, Used: 512},
	}
	got, err := WeightedAllocationRatio(samples, 640)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.6) > 1e-9 {
		t.Errorf("weighted ratio = %v, want 0.6", got)
	}
	if _, err := WeightedAllocationRatio(nil, 640); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := WeightedAllocationRatio(samples, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := WeightedAllocationRatio([]WeightedSample{{Runtime: -1, Used: 1}}, 10); err == nil {
		t.Error("negative runtime accepted")
	}
	if _, err := WeightedAllocationRatio([]WeightedSample{{Runtime: 0, Used: 1}}, 10); err == nil {
		t.Error("zero total runtime accepted")
	}
}

func TestLoadImbalancePerfect(t *testing.T) {
	tasks := []TaskSample{
		{Name: "a", Resources: 100, Throughput: 10},
		{Name: "b", Resources: 200, Throughput: 10},
	}
	got, err := LoadImbalance(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform throughput LI = %v, want 1", got)
	}
}

func TestLoadImbalanceSkewed(t *testing.T) {
	// One task 4× faster than the other, equal resources:
	// LI = (1·R + 0.25·R) / 2R = 0.625.
	tasks := []TaskSample{
		{Name: "slow", Resources: 50, Throughput: 5},
		{Name: "fast", Resources: 50, Throughput: 20},
	}
	got, err := LoadImbalance(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.625) > 1e-12 {
		t.Errorf("LI = %v, want 0.625", got)
	}
}

func TestLoadImbalanceSingleTask(t *testing.T) {
	got, err := LoadImbalance([]TaskSample{{Name: "solo", Resources: 10, Throughput: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("single task LI = %v, want 1", got)
	}
}

func TestLoadImbalanceErrors(t *testing.T) {
	if _, err := LoadImbalance(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := LoadImbalance([]TaskSample{{Throughput: 0, Resources: 1}}); err == nil {
		t.Error("zero throughput accepted")
	}
	if _, err := LoadImbalance([]TaskSample{{Throughput: 1, Resources: -1}}); err == nil {
		t.Error("negative resources accepted")
	}
	if _, err := LoadImbalance([]TaskSample{{Throughput: 1, Resources: 0}, {Throughput: 2, Resources: 0}}); err == nil {
		t.Error("zero total resources accepted")
	}
}

func TestTimeWeightedLI(t *testing.T) {
	secs := []WeightedLI{
		{Name: "s0", Runtime: 3, LI: 0.9},
		{Name: "s1", Runtime: 1, LI: 0.5},
	}
	got, err := TimeWeightedLI(secs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("weighted LI = %v, want 0.8", got)
	}
	if _, err := TimeWeightedLI(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := TimeWeightedLI([]WeightedLI{{Runtime: 1, LI: 1.5}}); err == nil {
		t.Error("LI > 1 accepted")
	}
	if _, err := TimeWeightedLI([]WeightedLI{{Runtime: 0, LI: 0.5}}); err == nil {
		t.Error("zero total runtime accepted")
	}
}

func TestArithmeticIntensityEq5(t *testing.T) {
	// Hand-computed: P=1e6, B=2, S=100, act=4e6 bytes:
	// AI = 6e6·200 / (4e6+4e6) = 150.
	got, err := ArithmeticIntensity(1e6, 2, 100, 4e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-150) > 1e-9 {
		t.Errorf("AI = %v, want 150", got)
	}
	if _, err := ArithmeticIntensity(0, 1, 1, 0); err == nil {
		t.Error("zero params accepted")
	}
	if _, err := ArithmeticIntensity(1, 1, 1, -1); err == nil {
		t.Error("negative activation accepted")
	}
}

func TestComputeEfficiency(t *testing.T) {
	got, err := ComputeEfficiency(338e12, 1.7e15)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's WSE-2 peak efficiency ≈ 20%.
	if math.Abs(got-0.1988) > 1e-3 {
		t.Errorf("efficiency = %v, want ≈0.199", got)
	}
	if _, err := ComputeEfficiency(1, 0); err == nil {
		t.Error("zero peak accepted")
	}
	if v, _ := ComputeEfficiency(2e15, 1.7e15); v != 1 {
		t.Error("efficiency should clamp to 1")
	}
}

// Property: LI is always in (0, 1] and equals 1 iff all throughputs are
// equal (up to float noise), independent of resource scaling.
func TestLIBoundsProperty(t *testing.T) {
	f := func(a, b, c uint16) bool {
		tasks := []TaskSample{
			{Name: "a", Resources: float64(a%100) + 1, Throughput: float64(a%7) + 1},
			{Name: "b", Resources: float64(b%100) + 1, Throughput: float64(b%7) + 1},
			{Name: "c", Resources: float64(c%100) + 1, Throughput: float64(c%7) + 1},
		}
		li, err := LoadImbalance(tasks)
		if err != nil {
			return false
		}
		return li > 0 && li <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LI is invariant under uniform throughput scaling.
func TestLIScaleInvariance(t *testing.T) {
	f := func(a, b uint16, scale uint8) bool {
		s := float64(scale%50) + 1
		t1 := []TaskSample{
			{Resources: 10, Throughput: float64(a%9) + 1},
			{Resources: 20, Throughput: float64(b%9) + 1},
		}
		t2 := []TaskSample{
			{Resources: 10, Throughput: (float64(a%9) + 1) * s},
			{Resources: 20, Throughput: (float64(b%9) + 1) * s},
		}
		l1, err1 := LoadImbalance(t1)
		l2, err2 := LoadImbalance(t2)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(l1-l2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
