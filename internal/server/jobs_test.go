package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"dabench/internal/experiments"
	"dabench/internal/jobs"
	"dabench/internal/store"
)

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func waitJobState(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobs.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var v jobs.View
		resp := getJSON(t, ts.URL+"/v1/jobs/"+id, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll status = %d", resp.StatusCode)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s ended as %s (%s), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.View{}
}

// TestJobLargerThanSweepCapCompletes is the tentpole acceptance: a
// cross product over -max-sweep-points is rejected synchronously but
// completes as an async job, with results byte-identical to the
// equivalent synchronous sweeps.
func TestJobLargerThanSweepCapCompletes(t *testing.T) {
	ts := newTestServer(t, Config{MaxSweepPoints: 4})

	// 2 layers × 2 batches × 2 precisions = 8 points > cap of 4.
	const axes = `"layer_counts":[6,12],"batches":[256,512],"precisions":["FP16","CB16"]`
	jobBody := `{"platform":"wse","model":"gpt2-small","seq":1024,` + axes + `}`

	if resp, _ := postJSON(t, ts.URL+"/v1/sweep", jobBody); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sync sweep over cap: status = %d, want 429", resp.StatusCode)
	}

	resp, body := postJSON(t, ts.URL+"/v1/jobs", jobBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status = %d: %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	var v jobs.View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Points != 8 {
		t.Errorf("submitted points = %d, want 8", v.Points)
	}

	done := waitJobState(t, ts, v.ID, jobs.StateDone)
	if done.Done != 8 || done.FailedPoints != 0 {
		t.Errorf("final progress = %d done / %d failed, want 8/0", done.Done, done.FailedPoints)
	}

	var jobResp SweepResponse
	rr := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &jobResp)
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", rr.StatusCode)
	}
	if jobResp.Points != 8 || len(jobResp.Results) != 8 {
		t.Fatalf("job result = %d points, %d results", jobResp.Points, len(jobResp.Results))
	}

	// The same 8 points as two synchronous sweeps under the cap: the
	// async results must equal their concatenation, element for element.
	var syncResults []RunResult
	for _, layers := range []string{"[6]", "[12]"} {
		syncBody := `{"platform":"wse","model":"gpt2-small","seq":1024,"layer_counts":` + layers +
			`,"batches":[256,512],"precisions":["FP16","CB16"]}`
		resp, b := postJSON(t, ts.URL+"/v1/sweep", syncBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sync half status = %d: %s", resp.StatusCode, b)
		}
		var sr SweepResponse
		if err := json.Unmarshal(b, &sr); err != nil {
			t.Fatal(err)
		}
		syncResults = append(syncResults, sr.Results...)
	}
	if !reflect.DeepEqual(jobResp.Results, syncResults) {
		t.Errorf("async results diverge from the equivalent synchronous sweeps:\n%+v\n%+v",
			jobResp.Results, syncResults)
	}
	// Byte-level check too: the re-marshaled arrays must be identical.
	aj, _ := json.Marshal(jobResp.Results)
	sj, _ := json.Marshal(syncResults)
	if !bytes.Equal(aj, sj) {
		t.Error("async and sync result encodings differ at the byte level")
	}
}

func TestJobResultFormats(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"platform":"wse","model":"gpt2-small","layer_counts":[6,78]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	done := waitJobState(t, ts, v.ID, jobs.StateDone)
	if done.FailedPoints != 1 { // L=78 does not place on the WSE-2
		t.Errorf("failed points = %d, want 1", done.FailedPoints)
	}

	tableResp, table := postBodyless(t, ts.URL+"/v1/jobs/"+v.ID+"/result?format=table")
	if tableResp.StatusCode != http.StatusOK || !strings.HasPrefix(tableResp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("table result: %d %s", tableResp.StatusCode, tableResp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(table), "Fail") || !strings.Contains(string(table), "L=6/B=512/FP16") {
		t.Errorf("table render missing rows:\n%s", table)
	}
	csvResp, csv := postBodyless(t, ts.URL+"/v1/jobs/"+v.ID+"/result?format=csv")
	if csvResp.StatusCode != http.StatusOK || !strings.HasPrefix(csvResp.Header.Get("Content-Type"), "text/csv") {
		t.Fatalf("csv result: %d", csvResp.StatusCode)
	}
	if !strings.Contains(string(csv), "L=6/B=512/FP16") {
		t.Errorf("csv render missing rows:\n%s", csv)
	}
	if resp, _ := postBodyless(t, ts.URL+"/v1/jobs/"+v.ID+"/result?format=xml"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format status = %d", resp.StatusCode)
	}
}

func postBodyless(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func TestJobEndpointErrors(t *testing.T) {
	ts := newTestServer(t, Config{MaxJobPoints: 4})

	if resp, _ := postBodyless(t, ts.URL+"/v1/jobs/job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d", resp.StatusCode)
	}
	if resp, _ := postBodyless(t, ts.URL+"/v1/jobs/job-999999/result"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown result status = %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"platform":"wse","model":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad model: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", `{"platform":"wse","model":"gpt2-small","bogus":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d %s", resp.StatusCode, body)
	}
	// Over the job cap: structured rejection mirroring the sweep one.
	resp, body = postJSON(t, ts.URL+"/v1/jobs",
		`{"platform":"wse","model":"gpt2-small","batches":[1,2,3,4,5]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over job cap: %d %s", resp.StatusCode, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != CodeSweepTooLarge ||
		env.Error.Limit != 4 || env.Error.RequestedPoints != 5 {
		t.Errorf("job cap rejection = %+v (%v)", env.Error, err)
	}
}

func TestJobCancelEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	// A large-ish WSE job; cancel races its execution, both outcomes
	// below are legal.
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"platform":"wse","model":"gpt2-small","layer_counts":[2,4,6,8,10,12,14,16,18,20]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var v jobs.View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	switch dresp.StatusCode {
	case http.StatusOK:
		// Cancelled while queued or running: must settle in cancelled.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			var got jobs.View
			getJSON(t, ts.URL+"/v1/jobs/"+v.ID, &got)
			if got.State == jobs.StateCancelled {
				return
			}
			if got.State.Terminal() {
				t.Fatalf("cancelled job ended as %s", got.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("cancel never settled")
	case http.StatusConflict:
		// The job finished before the cancel landed — fine.
	default:
		t.Fatalf("cancel status = %d", dresp.StatusCode)
	}
}

func TestJobListEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{"platform":"wse","model":"gpt2-small"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var list map[string][]jobs.View
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list["jobs"]) == 0 {
		t.Error("job list is empty after a submit")
	}
}

// TestStatsReportsStoreAndJobs: the /v1/stats payload gains the store
// tier and job gauges alongside the cache tiers.
func TestStatsReportsStoreAndJobs(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := newTestServer(t, Config{Store: st})

	var stats Stats
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Store == nil {
		t.Fatal("stats missing store section")
	}
	if stats.Jobs == nil {
		t.Fatal("stats missing jobs section")
	}
	for _, tier := range []string{"compile", "run", "graph"} {
		if _, ok := stats.Caches[tier]; !ok {
			t.Errorf("stats missing cache tier %q", tier)
		}
	}
}

// TestWarmRestartServesFromStore is the durability acceptance: with a
// data dir, a "restarted daemon" (fresh memo cells + fresh Store over
// the same directory) must answer an identical sweep byte-for-byte
// with all points served from the persistent store.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	const body = `{"platform":"rdu","model":"gpt2-small","batch":4,"precision":"BF16","mode":"O1","layer_counts":[2,4],"batches":[4,8]}`

	experiments.ResetCaches()
	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	experiments.SetResultStore(st1)
	defer experiments.SetResultStore(nil)
	ts1 := newTestServer(t, Config{Store: st1})
	resp, cold := postJSON(t, ts1.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep: %d %s", resp.StatusCode, cold)
	}
	ts1.Close()
	st1.Close() // flush write-behind; "process exit"

	// The restart: new store over the same dir, empty memo tiers.
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	experiments.SetResultStore(st2)
	ts2 := newTestServer(t, Config{Store: st2})
	resp, warm := postJSON(t, ts2.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep: %d %s", resp.StatusCode, warm)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("restart changed the response:\ncold: %s\nwarm: %s", cold, warm)
	}

	var stats Stats
	getJSON(t, ts2.URL+"/v1/stats", &stats)
	if stats.Store == nil {
		t.Fatal("no store stats")
	}
	// 4 sweep points = 4 unique specs, every one answered by the store:
	// zero simulator compiles in the new process.
	if stats.Store.Hits != 4 || stats.Store.Misses != 0 {
		t.Errorf("store after restart: %d hits / %d misses, want 4/0", stats.Store.Hits, stats.Store.Misses)
	}
	st2.Close()
}
