package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dabench/internal/cluster"
	"dabench/internal/experiments"
	"dabench/internal/faults"
	"dabench/internal/jobs"
	"dabench/internal/provenance"
	"dabench/internal/store"
)

// fleetNode is one in-process cluster member: a full Server behind a
// real listener, its own store, and its fabric.
type fleetNode struct {
	id  string
	s   *Server
	ts  *httptest.Server
	st  *store.Store
	fab *cluster.Fabric
}

// newFleet builds an n-node in-process cluster. Fabrics attach after
// every listener is up (peer URLs are unknowable before), mirroring how
// tests must wire SetCluster. The nodes share the process-global memo
// tiers — callers that need per-node cache behavior reset and re-point
// experiments between phases.
func newFleet(t *testing.T, n int, inj *faults.Injector) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(st.Close)
		s, err := New(Config{Store: st})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		nodes[i] = &fleetNode{id: fmt.Sprintf("node-%c", 'a'+i), s: s, ts: ts, st: st}
	}
	for i, nd := range nodes {
		var peers []cluster.PeerConfig
		for j, p := range nodes {
			if j != i {
				peers = append(peers, cluster.PeerConfig{ID: p.id, URL: p.ts.URL})
			}
		}
		fab, err := cluster.New(cluster.Config{
			NodeID: nd.id, SelfURL: nd.ts.URL, Peers: peers,
			FetchTimeout: 2 * time.Second, ChunkTimeout: 30 * time.Second,
			BreakerThreshold: 2, BreakerCooldown: time.Minute,
			Injector: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(fab.Close)
		nd.fab = fab
		nd.s.SetCluster(fab)
	}
	return nodes
}


// TestClusterWarmServeFromPeer pins the tentpole's acceptance
// criterion: a spec computed on node A serves warm from node B via peer
// fetch — zero compile misses on B, response bytes identical to A's,
// and peer_fetch_hits visible on both /v1/stats and /metrics.
func TestClusterWarmServeFromPeer(t *testing.T) {
	nodes := newFleet(t, 3, nil)
	a, b := nodes[0], nodes[1]

	// Phase A: node A computes the spec cold and persists it.
	experiments.ResetCaches()
	experiments.SetResultStore(a.fab.WrapStore(a.st))
	defer func() {
		experiments.SetResultStore(nil)
		experiments.ResetCaches()
	}()
	resp, bodyA := postRunWith(t, a.ts.URL, warmRunBody, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node A run = %d: %s", resp.StatusCode, bodyA)
	}
	a.st.Snapshot() // drain the write-behind frame before B comes asking

	// Phase B: memo tiers dropped, node B's store (empty) mounted. The
	// only warm copy of the spec in the world is node A's store — B must
	// serve through the peer-fetch tier, not recompute.
	experiments.ResetCaches()
	experiments.SetResultStore(b.fab.WrapStore(b.st))
	missesBefore := experiments.CacheStats().Misses
	resp, bodyB := postRunWith(t, b.ts.URL, warmRunBody, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node B run = %d: %s", resp.StatusCode, bodyB)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Errorf("node B's peer-served bytes diverged from node A's:\nA: %s\nB: %s", bodyA, bodyB)
	}
	if d := experiments.CacheStats().Misses - missesBefore; d != 0 {
		t.Errorf("node B paid %d compile misses, want 0 (peer fetch must pre-empt simulation)", d)
	}

	var st Stats
	getJSON(t, b.ts.URL+"/v1/stats", &st)
	if st.Cluster == nil {
		t.Fatal("/v1/stats on a fleet node has no cluster section")
	}
	if st.Cluster.NodeID != "node-b" || st.Cluster.RingNodes != 3 {
		t.Errorf("cluster identity = %s over %d ring nodes", st.Cluster.NodeID, st.Cluster.RingNodes)
	}
	if st.Cluster.PeerFetchHits < 1 || st.Cluster.PeerAdoptions < 1 {
		t.Errorf("peer fetch hits=%d adoptions=%d, want >= 1 each",
			st.Cluster.PeerFetchHits, st.Cluster.PeerAdoptions)
	}
	expo := scrapeMetrics(t, b.ts)
	if v := metricValue(t, expo, "dabench_peer_fetch_hits_total"); v < 1 {
		t.Errorf("dabench_peer_fetch_hits_total = %v, want >= 1", v)
	}
	if v := metricValue(t, expo, "dabench_peer_adoptions_total"); v < 1 {
		t.Errorf("dabench_peer_adoptions_total = %v, want >= 1", v)
	}

	// The adopted blob is durable on B: a direct local read now hits.
	b.st.Snapshot()
	plat, key := bodyIdentity(t, bodyB)
	if _, ok := b.st.LoadRaw(plat, key); !ok {
		t.Error("adopted blob not readable from node B's own store")
	}

	// healthz on a fleet node reports the cluster component.
	var hr healthResponse
	getJSON(t, b.ts.URL+"/healthz", &hr)
	if _, ok := hr.Components["cluster"]; !ok {
		t.Errorf("healthz components = %+v, want a cluster entry", hr.Components)
	}
}

// bodyIdentity extracts the canonical platform name and spec key a
// /v1/run response carries — the pair blob addresses derive from — so
// tests can address the store directly.
func bodyIdentity(t *testing.T, body []byte) (platformName, specKey string) {
	t.Helper()
	var res RunResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Platform == "" || res.SpecKey == "" {
		t.Fatalf("response carries no identity: %s", body)
	}
	return res.Platform, res.SpecKey
}

// TestClusterBlobEndpointRejectsMalformedAddrs pins the address gate on
// the export endpoint: traversal-shaped and otherwise malformed {addr}
// values answer 400 before any store path handling; a well-formed but
// absent address answers 404.
func TestClusterBlobEndpointRejectsMalformedAddrs(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := newTestServer(t, Config{Store: st})

	// A bare ".." segment never reaches the handler (the HTTP stack
	// cleans it away); escaped separators do, and must bounce off the
	// address gate.
	bad := []string{
		"../../etc/passwd",
		strings.Repeat("a", 63),
		strings.Repeat("a", 65),
		strings.Repeat("A", 64),
		strings.Repeat("z", 64),
		"aa/" + strings.Repeat("b", 61),
		"..\\..\\" + strings.Repeat("c", 58),
	}
	for _, addr := range bad {
		u := ts.URL + "/v1/blobs/" + url.PathEscape(addr)
		resp, err := http.Get(u)
		if err != nil {
			t.Fatalf("GET %s: %v", u, err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET blob %q = %d (%s), want 400", addr, resp.StatusCode, body)
		}
	}

	// Well-formed but unknown: a clean 404 (the peer-miss signal).
	resp, err := http.Get(ts.URL + "/v1/blobs/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent blob = %d, want 404", resp.StatusCode)
	}

	// RAM-only node: nothing to export, also 404.
	ram := newTestServer(t, Config{})
	resp, err = http.Get(ram.URL + "/v1/blobs/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("RAM-only blob export = %d, want 404", resp.StatusCode)
	}
}

// TestClusterDegradedFabricFallsBack pins the failure posture: with
// every peer call failing under the injector, the breaker opens after
// its threshold and requests fall back to simulation — never an error,
// and byte-identical to a single-node serve.
func TestClusterDegradedFabricFallsBack(t *testing.T) {
	experiments.ResetCaches()
	standalone := newTestServer(t, Config{})
	resp, baseline := postRunWith(t, standalone.URL, warmRunBody, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("standalone run = %d", resp.StatusCode)
	}

	inj := serverInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpPeerFetch, Kind: faults.KindEIO, Probability: 1},
	}})
	nodes := newFleet(t, 2, inj)
	a := nodes[0]

	experiments.ResetCaches()
	experiments.SetResultStore(a.fab.WrapStore(a.st))
	defer func() {
		experiments.SetResultStore(nil)
		experiments.ResetCaches()
	}()
	for i := 0; i < 4; i++ {
		resp, got := postRunWith(t, a.ts.URL, warmRunBody, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d under peer faults = %d (a degraded fabric must never surface)", i, resp.StatusCode)
		}
		if !bytes.Equal(baseline, got) {
			t.Errorf("run %d under peer faults diverged from the single-node serve", i)
		}
	}
	st := a.fab.Stats()
	if st.PeerFetchErrors < 2 {
		t.Errorf("peer fetch errors = %d, want >= 2 (the injector fails every call)", st.PeerFetchErrors)
	}
	if st.Peers[0].Breaker != "open" {
		t.Errorf("peer breaker = %s after %d errors, want open", st.Peers[0].Breaker, st.PeerFetchErrors)
	}
}

// TestClusterGossipAnchorsChainTips pins satellite 1: a node's
// provenance chain tip travels in gossip, lands in the peer's view (and
// its /v1/stats), and a silenced node turns dead after the threshold.
func TestClusterGossipAnchorsChainTips(t *testing.T) {
	dirA := t.TempDir()
	provA, err := provenance.Open(filepath.Join(dirA, "provenance.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer provA.Close()
	provA.Append(strings.Repeat("ab", 32), "wse", "spec-1", store.PipelineVersion)
	provA.Append(strings.Repeat("cd", 32), "wse", "spec-2", store.PipelineVersion)
	wantTip := provA.Stats().TipHash

	sA, err := New(Config{Provenance: provA})
	if err != nil {
		t.Fatal(err)
	}
	defer sA.Close()
	tsA := httptest.NewServer(sA)
	defer tsA.Close()

	sB, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sB.Close()
	tsB := httptest.NewServer(sB)
	defer tsB.Close()
	fabB, err := cluster.New(cluster.Config{
		NodeID: "node-b", SelfURL: tsB.URL,
		Peers:            []cluster.PeerConfig{{ID: "node-a", URL: tsA.URL}},
		FetchTimeout:     2 * time.Second,
		BreakerThreshold: 2, BreakerCooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fabB.Close()
	sB.SetCluster(fabB)

	fabB.GossipOnce(context.Background())
	tip, records, ok := fabB.PeerTip("node-a")
	if !ok || tip != wantTip || records != 2 {
		t.Fatalf("PeerTip(node-a) = %q (%d records) ok=%v, want %q (2 records)", tip, records, ok, wantTip)
	}
	var st Stats
	getJSON(t, tsB.URL+"/v1/stats", &st)
	if st.Cluster == nil || len(st.Cluster.Peers) != 1 ||
		st.Cluster.Peers[0].ChainTip != wantTip || st.Cluster.Peers[0].State != "alive" {
		t.Errorf("peer view in /v1/stats = %+v", st.Cluster)
	}

	// The tip a peer remembers is exactly what `provenance verify -peer`
	// checks membership of: it must be in the chain's hash set, and a
	// rewritten chain's set would not contain it.
	res, err := provenance.VerifyFile(filepath.Join(dirA, "provenance.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hashes[tip] {
		t.Errorf("gossiped tip %.12s not in the chain's verified hash set", tip)
	}

	// Silence node A: threshold consecutive failed rounds flip it dead.
	tsA.Close()
	for i := 0; i < 2; i++ {
		fabB.GossipOnce(context.Background())
	}
	getJSON(t, tsB.URL+"/v1/stats", &st)
	if st.Cluster.PeersDead != 1 || st.Cluster.Peers[0].State != "dead" {
		t.Errorf("after silencing node A: %+v", st.Cluster)
	}
	// And /healthz degrades without failing.
	var hr healthResponse
	getJSON(t, tsB.URL+"/healthz", &hr)
	if hr.Components["cluster"].Status != "degraded" {
		t.Errorf("cluster health = %+v, want degraded with a dead peer", hr.Components["cluster"])
	}
}

// shardJobBody is a 512-point sweep: exactly two jobChunk-sized chunks,
// so a two-node fleet deterministically dispatches one chunk remotely
// (the rotation gives each node the lead for one chunk).
func shardJobBody() string {
	var lc, bt []string
	for i := 1; i <= 32; i++ {
		lc = append(lc, strconv.Itoa(i))
	}
	for i := 1; i <= 16; i++ {
		bt = append(bt, strconv.Itoa(16*i))
	}
	return `{"platform":"wse","model":"gpt2-small","layer_counts":[` + strings.Join(lc, ",") +
		`],"batches":[` + strings.Join(bt, ",") + `]}`
}

func runJobToBytes(t *testing.T, ts *httptest.Server, body string) []byte {
	t.Helper()
	resp, b := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, b)
	}
	var v jobs.View
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, ts, v.ID, jobs.StateDone)
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	out := readAll(t, rresp)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", rresp.StatusCode, out)
	}
	return out
}

// TestJobShardsChunksAcrossPeers pins the sharding half of the
// tentpole: a multi-chunk job on a fleet coordinator executes at least
// one chunk on a peer, and the assembled result is byte-identical to a
// single-node run of the same job.
func TestJobShardsChunksAcrossPeers(t *testing.T) {
	experiments.ResetCaches()
	standalone := newTestServer(t, Config{})
	want := runJobToBytes(t, standalone, shardJobBody())

	nodes := newFleet(t, 2, nil)
	a := nodes[0]
	got := runJobToBytes(t, a.ts, shardJobBody())
	if !bytes.Equal(want, got) {
		t.Errorf("sharded job result diverged from single-node (%d vs %d bytes)", len(want), len(got))
	}
	st := a.fab.Stats()
	if st.RemoteChunks < 1 {
		t.Errorf("remote chunks = %d, want >= 1 (one of two chunks must rotate to the peer)", st.RemoteChunks)
	}
	if v := metricValue(t, scrapeMetrics(t, a.ts), "dabench_job_chunks_remote_total"); v < 1 {
		t.Errorf("dabench_job_chunks_remote_total = %v, want >= 1", v)
	}
}

// TestJobReassignsChunksFromDeadPeer: with the peer gone, the remote
// dispatch fails, the chunk reassigns to local execution, and the job
// still finishes with the correct result.
func TestJobReassignsChunksFromDeadPeer(t *testing.T) {
	experiments.ResetCaches()
	standalone := newTestServer(t, Config{})
	want := runJobToBytes(t, standalone, shardJobBody())

	nodes := newFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	b.ts.Close() // the peer vanishes before the job arrives

	got := runJobToBytes(t, a.ts, shardJobBody())
	if !bytes.Equal(want, got) {
		t.Errorf("reassigned job result diverged from single-node (%d vs %d bytes)", len(want), len(got))
	}
	st := a.fab.Stats()
	if st.ReassignedChunks < 1 {
		t.Errorf("reassigned chunks = %d, want >= 1", st.ReassignedChunks)
	}
	if st.RemoteChunks != 0 {
		t.Errorf("remote chunks = %d against a dead peer, want 0", st.RemoteChunks)
	}
}

// TestChunkEndpointValidatesRanges: the remote-execution endpoint
// rejects ranges outside the sweep and oversized chunks.
func TestChunkEndpointValidatesRanges(t *testing.T) {
	ts := newTestServer(t, Config{})
	sweepBody := `{"platform":"wse","model":"gpt2-small","layer_counts":[2,4],"batches":[256]}`
	cases := []string{
		`{"request":` + sweepBody + `,"start":-1,"end":1}`,
		`{"request":` + sweepBody + `,"start":1,"end":1}`,
		`{"request":` + sweepBody + `,"start":0,"end":3}`,
		`{"request":` + sweepBody + `,"start":0,"end":` + strconv.Itoa(jobChunk+1) + `}`,
	}
	for _, body := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/chunks", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("chunk %s = %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
	// A valid range executes and labels its outcomes.
	resp, b := postJSON(t, ts.URL+"/v1/chunks", `{"request":`+sweepBody+`,"start":0,"end":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid chunk = %d: %s", resp.StatusCode, b)
	}
	var cr ChunkResponse
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Results) != 2 || cr.Results[0].Label == "" {
		t.Errorf("chunk response = %+v, want 2 labeled results", cr)
	}
}
