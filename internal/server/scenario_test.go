package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"dabench/internal/jobs"
	"dabench/internal/scenario"
)

func TestScenarioListEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	var list map[string][]scenarioInfo
	if resp := getJSON(t, ts.URL+"/v1/scenarios", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	infos := list["scenarios"]
	if len(infos) != len(scenario.Library()) {
		t.Fatalf("listed %d scenarios, library has %d", len(infos), len(scenario.Library()))
	}
	for i, sc := range scenario.Library() {
		if infos[i].Name != sc.Name || infos[i].Points <= 0 || len(infos[i].Platforms) == 0 {
			t.Errorf("entry %d = %+v, want %s with points and platforms", i, infos[i], sc.Name)
		}
	}
}

// TestScenarioGetMatchesEngineRender: the library endpoint's default
// text body is the shared Render path's output, byte for byte — the
// same bytes `dabench scenario run` prints (CI cmps the two for real).
func TestScenarioGetMatchesEngineRender(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postBodyless(t, ts.URL+"/v1/scenarios/rdu-build-modes")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("get: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	sc, _ := scenario.ByName("rdu-build-modes")
	out, err := scenario.Run(context.Background(), sc, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := out.Render(&want, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("served scenario differs from the engine render:\n--- served ---\n%s\n--- engine ---\n%s",
			body, want.Bytes())
	}

	// CSV too.
	resp, csv := postBodyless(t, ts.URL+"/v1/scenarios/rdu-build-modes?format=csv")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/csv") {
		t.Fatalf("csv get: %d", resp.StatusCode)
	}
	var wantCSV bytes.Buffer
	if err := out.Render(&wantCSV, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv, wantCSV.Bytes()) {
		t.Error("served CSV differs from the engine render")
	}
}

func TestScenarioGetErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	if resp, _ := postBodyless(t, ts.URL+"/v1/scenarios/no-such"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown scenario status = %d", resp.StatusCode)
	}
	if resp, _ := postBodyless(t, ts.URL+"/v1/scenarios/rdu-build-modes?format=xml"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format status = %d", resp.StatusCode)
	}
}

func postScenario(t *testing.T, ts string, body, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts+"/v1/scenarios"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestScenarioSyncAsyncInvariance is the scenario-engine acceptance:
// the same document answered synchronously by POST /v1/scenarios and
// asynchronously through the job subsystem yields byte-identical
// result documents AND byte-identical rendered output.
func TestScenarioSyncAsyncInvariance(t *testing.T) {
	sc, _ := scenario.ByName("rdu-build-modes")
	doc, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}

	// Sync: the 6-point scenario fits the default budget.
	syncTS := newTestServer(t, Config{})
	resp, syncJSON := postScenario(t, syncTS.URL, string(doc), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync status = %d: %s", resp.StatusCode, syncJSON)
	}
	_, syncTable := postScenario(t, syncTS.URL, string(doc), "?format=table")

	// Async: a 1-point sync budget forces the same document through
	// the job subsystem.
	asyncTS := newTestServer(t, Config{MaxSweepPoints: 1})
	resp, body := postScenario(t, asyncTS.URL, string(doc), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status = %d: %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	var v jobs.View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Points != 6 {
		t.Errorf("submitted points = %d, want 6", v.Points)
	}
	done := waitJobState(t, asyncTS, v.ID, jobs.StateDone)
	if done.Done != 6 {
		t.Errorf("final progress = %d, want 6", done.Done)
	}

	_, asyncJSON := postBodyless(t, asyncTS.URL+"/v1/jobs/"+v.ID+"/result")
	if !bytes.Equal(asyncJSON, syncJSON) {
		t.Errorf("async result document differs from the synchronous response:\n--- async ---\n%s\n--- sync ---\n%s",
			asyncJSON, syncJSON)
	}
	_, asyncTable := postBodyless(t, asyncTS.URL+"/v1/jobs/"+v.ID+"/result?format=table")
	if !bytes.Equal(asyncTable, syncTable) {
		t.Errorf("async rendered table differs from the synchronous one:\n--- async ---\n%s\n--- sync ---\n%s",
			asyncTable, syncTable)
	}
	// And both match the admitted library endpoint's rendering.
	_, getTable := postBodyless(t, syncTS.URL+"/v1/scenarios/rdu-build-modes")
	if !bytes.Equal(getTable, syncTable) {
		t.Error("GET /v1/scenarios/{name} render differs from the POST render")
	}

	// The async path went through the real job vocabulary: a sweep job
	// on the same manager still works (no envelope confusion).
	resp, body = postJSON(t, asyncTS.URL+"/v1/jobs", `{"platform":"wse","model":"gpt2-small"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep job after scenario job: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, asyncTS, v.ID, jobs.StateDone)
}

func TestScenarioSubmitValidation(t *testing.T) {
	ts := newTestServer(t, Config{MaxSweepPoints: 1, MaxJobPoints: 4})

	if resp, _ := postScenario(t, ts.URL, `{"version":99}`, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong version status = %d", resp.StatusCode)
	}
	if resp, _ := postScenario(t, ts.URL, `not json`, ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk body status = %d", resp.StatusCode)
	}

	// 6 points > job cap of 4: structured rejection.
	sc, _ := scenario.ByName("rdu-build-modes")
	doc, _ := json.Marshal(sc)
	resp, body := postScenario(t, ts.URL, string(doc), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over job cap status = %d: %s", resp.StatusCode, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != CodeSweepTooLarge ||
		env.Error.Limit != 4 || env.Error.RequestedPoints != 6 {
		t.Errorf("rejection envelope = %+v (%v)", env.Error, err)
	}
}
