package server

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dabench/internal/experiments"
	"dabench/internal/provenance"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts one sample's value from an exposition by its
// exact series line prefix (name plus rendered label set).
func metricValue(t *testing.T, expo, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(expo, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition", series)
	return 0
}

var buildInfoLabels = regexp.MustCompile(`(version|goversion)="[^"]*"`)

// normalizeMetrics masks every sample value (and the build-identity
// labels) so the golden file pins the exposition's *shape* — family
// names, HELP/TYPE lines, label sets, ordering — independent of
// timing, Go version, and whatever the process-global caches have
// accumulated by the time this test runs.
func normalizeMetrics(expo string) string {
	lines := strings.Split(strings.TrimRight(expo, "\n"), "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		line = buildInfoLabels.ReplaceAllString(line, `$1="X"`)
		if j := strings.LastIndexByte(line, ' '); j >= 0 {
			line = line[:j] + " V"
		}
		lines[i] = line
	}
	return strings.Join(lines, "\n") + "\n"
}

// TestMetricsGolden pins the /metrics exposition shape. The histogram
// grid is pre-created at server construction, so a fresh server with
// zero traffic already exposes every series the server can ever emit —
// which is exactly what makes a golden file viable. If you add or
// rename a series, regenerate with:
//
//	go test ./internal/server -run TestMetricsGolden -update
func TestMetricsGolden(t *testing.T) {
	ts := newTestServer(t, Config{MaxInFlight: 3})
	got := normalizeMetrics(scrapeMetrics(t, ts))

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("/metrics shape drifted from %s (rerun with -update if intentional)\ngot:\n%s", golden, got)
	}

	// Traffic must never change the shape — only the values.
	postRun(t, ts, `{"platform":"wse","model":"gpt2-small","batch":512,"seq":1024,"precision":"FP16"}`)
	if after := normalizeMetrics(scrapeMetrics(t, ts)); after != got {
		t.Error("/metrics shape changed after traffic; series must be pre-created, not minted on demand")
	}
}

// TestMetricsStageCounts exercises the cold and warm /v1/run lanes and
// checks the per-stage sample counts: the cold request records every
// stage, the L0 byte hit records only the explicit zero admission-wait
// sample and total — so warm latency stays comparable against the same
// histograms cold latency lands in.
func TestMetricsStageCounts(t *testing.T) {
	experiments.ResetCaches()
	ts := newTestServer(t, Config{MaxInFlight: 3})
	body := `{"platform":"wse","model":"gpt2-small","batch":512,"seq":1024,"precision":"FP16"}`
	for i := 0; i < 3; i++ { // 1 cold + 2 L0 hits
		resp, _ := postRun(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d = %d", i, resp.StatusCode)
		}
	}
	expo := scrapeMetrics(t, ts)
	series := func(stage string) string {
		return `dabench_request_stage_seconds_count{endpoint="/v1/run",stage="` + stage + `"}`
	}
	if got := metricValue(t, expo, series("total")); got != 3 {
		t.Errorf("total count = %v, want 3 (every served response)", got)
	}
	if got := metricValue(t, expo, series("admission")); got != 3 {
		t.Errorf("admission count = %v, want 3 (fast lanes record explicit zeros)", got)
	}
	for _, stage := range []string{"decode", "compile", "run", "render"} {
		if got := metricValue(t, expo, series(stage)); got != 1 {
			t.Errorf("%s count = %v, want 1 (cold request only)", stage, got)
		}
	}
	// RAM-only server: the store stages exist in the exposition (the
	// grid is pre-created) but never record.
	for _, stage := range []string{"store_read", "store_write"} {
		if got := metricValue(t, expo, series(stage)); got != 0 {
			t.Errorf("%s count = %v, want 0 without a store", stage, got)
		}
	}
	// The two warm zeros land in the smallest bucket by definition.
	zeroBucket := `dabench_request_stage_seconds_bucket{endpoint="/v1/run",stage="admission",le="1e-06"}`
	if got := metricValue(t, expo, zeroBucket); got < 2 {
		t.Errorf("admission le=1e-06 bucket = %v, want >= 2 (the explicit fast-lane zeros)", got)
	}
	// Errors record nothing: a validation reject must not move a count.
	resp, _ := postRun(t, ts, `{"platform":"wse"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid run = %d", resp.StatusCode)
	}
	if got := metricValue(t, scrapeMetrics(t, ts), series("total")); got != 3 {
		t.Errorf("total count after reject = %v, want 3 (errors are not served outcomes)", got)
	}
}

// TestServerTimingHeader checks the per-request breakdown rides every
// serving lane: cold, L0 warm, and the bodiless 304.
func TestServerTimingHeader(t *testing.T) {
	experiments.ResetCaches()
	ts := newTestServer(t, Config{MaxInFlight: 3})
	body := `{"platform":"wse","model":"gpt2-small","batch":512,"seq":1024,"precision":"FP16"}`

	cold, _ := postRun(t, ts, body)
	st := cold.Header.Get("Server-Timing")
	for _, stage := range []string{"admission;dur=", "decode;dur=", "compile;dur=", "run;dur=", "render;dur=", "total;dur="} {
		if !strings.Contains(st, stage) {
			t.Errorf("cold Server-Timing %q missing %q", st, stage)
		}
	}
	warm, _ := postRun(t, ts, body)
	wst := warm.Header.Get("Server-Timing")
	if !strings.HasPrefix(wst, "admission;dur=0.000") || !strings.Contains(wst, "total;dur=") {
		t.Errorf("warm Server-Timing = %q, want zero admission + total", wst)
	}
	if strings.Contains(wst, "compile") {
		t.Errorf("warm Server-Timing = %q records stages the lane never ran", wst)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", cold.Header.Get("ETag"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional run = %d, want 304", resp.StatusCode)
	}
	if nm := resp.Header.Get("Server-Timing"); !strings.Contains(nm, "admission;dur=0.000") {
		t.Errorf("304 Server-Timing = %q, want the explicit zero admission sample", nm)
	}
}

// TestMetricsScrapeRace drives scrapes concurrently with traffic and
// cache resets; the -race build is the assertion.
func TestMetricsScrapeRace(t *testing.T) {
	ts := newTestServer(t, Config{MaxInFlight: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	body := `{"platform":"wse","model":"gpt2-small","batch":512,"seq":1024,"precision":"FP16"}`
	for i := 0; i < 10; i++ {
		postRun(t, ts, body)
		experiments.ResetCaches() // also purges L0 via the reset hook
	}
	close(stop)
	wg.Wait()
}

// TestProvenanceEndpoint exercises GET /v1/provenance/{addr} against a
// real chain and both 404 shapes (unknown address, no log mounted).
func TestProvenanceEndpoint(t *testing.T) {
	dir := t.TempDir()
	log, err := provenance.Open(filepath.Join(dir, "provenance.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	log.Append("cafe01", "WSE-2", "spec-a", 1)

	ts := newTestServer(t, Config{MaxInFlight: 3, Provenance: log})
	var rec provenance.Record
	resp := getJSON(t, ts.URL+"/v1/provenance/cafe01", &rec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("known addr = %d", resp.StatusCode)
	}
	if rec.Addr != "cafe01" || rec.Platform != "WSE-2" || rec.SpecKey != "spec-a" || rec.Seq != 1 {
		t.Errorf("record = %+v", rec)
	}
	if rec.PrevHash != provenance.GenesisHash() {
		t.Errorf("first record prev_hash = %q, want genesis", rec.PrevHash)
	}
	if resp := getJSON(t, ts.URL+"/v1/provenance/deadbeef", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown addr = %d, want 404", resp.StatusCode)
	}

	bare := newTestServer(t, Config{MaxInFlight: 3})
	if resp := getJSON(t, bare.URL+"/v1/provenance/cafe01", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("no log mounted = %d, want 404", resp.StatusCode)
	}
}

// TestStageLogCSV checks the -stage-log flight recorder: a header on
// the fresh file, one column-aligned row per served request, and
// append (not truncate) semantics across reopens.
func TestStageLogCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stages.csv")
	s, err := New(Config{MaxInFlight: 3, StageLogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	postRun(t, ts, `{"platform":"wse","model":"gpt2-small","batch":512,"seq":1024,"precision":"FP16"}`)
	ts.Close()
	s.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if lines[0] != strings.TrimRight(stageLogHeader, "\n") {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 2 {
		t.Fatalf("rows = %d, want 1 (+header)", len(lines)-1)
	}
	cols := strings.Split(lines[1], ",")
	if want := strings.Count(stageLogHeader, ","); len(cols) != want+1 {
		t.Errorf("row has %d columns, want %d: %q", len(cols), want+1, lines[1])
	}
	if cols[1] != "/v1/run" {
		t.Errorf("endpoint column = %q", cols[1])
	}

	// Reopen: the header must not repeat.
	s2, err := New(Config{MaxInFlight: 3, StageLogPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	postRun(t, ts2, `{"platform":"wse","model":"gpt2-small","batch":512,"seq":1024,"precision":"FP16"}`)
	ts2.Close()
	s2.Close()
	b, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(b), "unix_ms"); got != 1 {
		t.Errorf("header appears %d times after reopen, want 1", got)
	}
}

// TestVersionInStats pins the version field added to /v1/stats.
func TestVersionInStats(t *testing.T) {
	ts := newTestServer(t, Config{MaxInFlight: 3})
	var got struct {
		Version string `json:"version"`
	}
	getJSON(t, ts.URL+"/v1/stats", &got)
	if got.Version == "" {
		t.Error("stats version is empty")
	}
}
