package server

import (
	"bufio"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Per-request stage timing. Every serving endpoint accounts its wall
// clock into named stages — where a request's latency actually went —
// and reports them three ways at once: the per-endpoint histograms on
// /metrics, a Server-Timing response header (so a single curl shows
// the breakdown without a scrape), and optionally one CSV row per
// request via -stage-log.
//
// Two deliberate asymmetries keep the distributions honest:
//
//   - Fast-lane answers (L0 byte hits, ETag 304s) never touch the
//     admission gate, but they still record an explicit zero
//     admission-wait sample. Without it the admission histogram would
//     only ever see cold requests, and comparing warm vs cold
//     latency against it would overstate what admission costs.
//   - Error responses record nothing: the histograms describe served
//     outcomes, and folding validation rejects into them would drag
//     every percentile toward the cost of parsing garbage.
//
// Stage semantics per endpoint (total is always first-byte latency —
// request arrival to response start; the body write is excluded
// because Server-Timing must be on the wire before it):
//
//	admission    time to acquire a simulation slot (0 on fast lanes;
//	             the gate sheds rather than queues, so nonzero values
//	             are scheduler noise, not queueing)
//	decode       body read + JSON decode + request resolution
//	compile      platform.Compile (memo hits return in ns; the
//	             pipeline histograms isolate real simulator work)
//	run          platform.Run, a sweep's full Map, or an experiment /
//	             scenario execution
//	render       response marshaling
//	store_read   the L2 raw-response probe
//	store_write  enqueueing the response bytes to the write-behind
//	             store (the disk write itself is off-path)

// Endpoint indices for the stage grid.
const (
	epRun = iota
	epSweep
	epExperiment
	epScenarioGet
	epScenarioPost
	nEndpoints
)

// Stage indices. Order is the Server-Timing / CSV column order.
const (
	stgAdmission = iota
	stgDecode
	stgCompile
	stgRun
	stgRender
	stgStoreRead
	stgStoreWrite
	stgTotal
	nStages
)

var endpointNames = [nEndpoints]string{
	epRun:          "/v1/run",
	epSweep:        "/v1/sweep",
	epExperiment:   "/v1/experiments/{id}",
	epScenarioGet:  "/v1/scenarios/{name}",
	epScenarioPost: "/v1/scenarios",
}

var stageNames = [nStages]string{
	stgAdmission:  "admission",
	stgDecode:     "decode",
	stgCompile:    "compile",
	stgRun:        "run",
	stgRender:     "render",
	stgStoreRead:  "store_read",
	stgStoreWrite: "store_write",
	stgTotal:      "total",
}

// endpointStages is the full (endpoint, stage) grid — which stages
// each endpoint can ever record. The histogram series for every cell
// are created at server construction, so the /metrics exposition has
// the same shape whether or not traffic has arrived (what lets a
// golden file pin it).
var endpointStages = [nEndpoints][]int{
	epRun:          {stgAdmission, stgDecode, stgCompile, stgRun, stgRender, stgStoreRead, stgStoreWrite, stgTotal},
	epSweep:        {stgAdmission, stgDecode, stgRun, stgRender, stgTotal},
	epExperiment:   {stgAdmission, stgRun, stgRender, stgTotal},
	epScenarioGet:  {stgAdmission, stgRun, stgRender, stgTotal},
	epScenarioPost: {stgAdmission, stgDecode, stgRun, stgRender, stgTotal},
}

// stageTimer accumulates one request's stage durations on the
// handler's stack — no allocation until the final header build.
type stageTimer struct {
	ep   int
	t0   time.Time
	durs [nStages]time.Duration
	set  uint16 // bitmask of recorded stages
}

func newStageTimer(ep int) stageTimer {
	return stageTimer{ep: ep, t0: time.Now()}
}

// observe records one stage's duration (last write wins).
func (t *stageTimer) observe(stg int, d time.Duration) {
	t.durs[stg] = d
	t.set |= 1 << stg
}

// finishStages closes out a request's timing immediately before the
// response starts: total is stamped, every recorded stage feeds its
// histogram, the Server-Timing header is set (it must precede
// WriteHeader), and the optional CSV row is appended. Cost on the warm
// path is three small allocations (the header bytes, its string, and
// the one-element header slice).
func (s *Server) finishStages(w http.ResponseWriter, t *stageTimer) {
	t.observe(stgTotal, time.Since(t.t0))
	buf := make([]byte, 0, 160)
	for stg := 0; stg < nStages; stg++ {
		if t.set&(1<<stg) == 0 {
			continue
		}
		s.stageHist[t.ep][stg].Observe(t.durs[stg].Seconds())
		if len(buf) > 0 {
			buf = append(buf, ", "...)
		}
		buf = append(buf, stageNames[stg]...)
		buf = append(buf, ";dur="...)
		// Server-Timing dur is milliseconds (fractional allowed).
		buf = strconv.AppendFloat(buf, float64(t.durs[stg])/float64(time.Millisecond), 'f', 3, 64)
	}
	w.Header()["Server-Timing"] = []string{string(buf)}
	if s.stageLog != nil {
		s.stageLog.record(t)
	}
}

// stageLog appends one CSV row per served request. It is a debugging
// flight recorder, not a durability surface: rows flush per record so
// a tail -f mid-incident sees them, write failures are counted (and
// surfaced on /metrics) but never fail a request.
type stageLog struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	errs atomic.Int64
}

// stageLogHeader is the CSV column row, written once per fresh file.
const stageLogHeader = "unix_ms,endpoint,admission_s,decode_s,compile_s,run_s,render_s,store_read_s,store_write_s,total_s\n"

func openStageLog(path string) (*stageLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	l := &stageLog{f: f, w: bufio.NewWriter(f)}
	if fi, err := f.Stat(); err == nil && fi.Size() == 0 {
		_, _ = l.w.WriteString(stageLogHeader)
		_ = l.w.Flush()
	}
	return l, nil
}

// record appends one row; stages the request never recorded render as
// empty fields, so warm and cold rows stay column-aligned.
func (l *stageLog) record(t *stageTimer) {
	buf := make([]byte, 0, 192)
	buf = strconv.AppendInt(buf, time.Now().UnixMilli(), 10)
	buf = append(buf, ',')
	buf = append(buf, endpointNames[t.ep]...)
	for stg := 0; stg < nStages; stg++ {
		buf = append(buf, ',')
		if t.set&(1<<stg) != 0 {
			buf = strconv.AppendFloat(buf, t.durs[stg].Seconds(), 'f', 9, 64)
		}
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	_, err := l.w.Write(buf)
	if err == nil {
		err = l.w.Flush()
	}
	l.mu.Unlock()
	if err != nil {
		l.errs.Add(1)
	}
}

func (l *stageLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		_ = l.f.Close()
		return err
	}
	return l.f.Close()
}
