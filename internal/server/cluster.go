package server

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"dabench/internal/cluster"
	"dabench/internal/platform"
	"dabench/internal/store"
)

// Cluster fabric endpoints. All three are registered unconditionally —
// a single-node daemon answers gossip with its own state and an empty
// peer list, exports blobs, and executes chunks — so a fleet can be
// formed around a node that booted first, and tests can attach a
// fabric (SetCluster) after the listener is up.
//
//	GET  /v1/gossip        this node's state + its view of every peer
//	GET  /v1/blobs/{addr}  raw framed store blob export (peer fetch)
//	POST /v1/chunks        execute one job chunk remotely (job sharding)

// SetCluster attaches a fabric to a running server: the gossip payload
// gains the node identity, /v1/stats and /metrics gain the cluster
// families, and — when a store is mounted — the raw serve lane is
// re-pointed through the fabric's peer-fetch wrapper. Call before
// serving traffic (the daemon wires it at boot; tests between
// constructing httptest servers and issuing requests).
func (s *Server) SetCluster(f *cluster.Fabric) {
	s.fabric.Store(f)
	if f != nil && s.cfg.Store != nil {
		s.fabricRaw.Store(f.WrapStore(s.cfg.Store))
	}
}

// cluster returns the attached fabric (nil on a single node).
func (s *Server) cluster() *cluster.Fabric {
	return s.fabric.Load()
}

// rawStore resolves the byte-level serve tier: the fabric's peer-fetch
// wrapper when a cluster is attached, else the bare store, else nil.
func (s *Server) rawStore() platform.RawResponseStore {
	if fr := s.fabricRaw.Load(); fr != nil {
		return fr
	}
	if s.raw != nil {
		return s.raw
	}
	return nil
}

// nodeState assembles this node's gossip self-report from the same
// sources /v1/stats reads.
func (s *Server) nodeState() cluster.NodeState {
	ns := cluster.NodeState{Status: "ok", UptimeSec: time.Since(s.start).Seconds()}
	if f := s.cluster(); f != nil {
		ns.NodeID, ns.URL = f.NodeID(), f.SelfURL()
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		ns.StoreEntries, ns.StoreBytes = st.Entries, st.Bytes
		if st.Degraded {
			ns.Status = "degraded"
		}
	}
	if s.cfg.Provenance != nil {
		ps := s.cfg.Provenance.Stats()
		ns.ChainRecords, ns.ChainTip = ps.Records, ps.TipHash
	}
	return ns
}

func (s *Server) handleGossip(w http.ResponseWriter, _ *http.Request) {
	resp := cluster.GossipResponse{NodeState: s.nodeState()}
	if f := s.cluster(); f != nil {
		resp.Peers = f.Peers()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBlob exports one store blob's raw on-disk bytes — frame and
// all — for a peer to adopt. The address is validated as strict
// hex-sha256 before any path handling: it is about to become a file
// name on this node's disk, and the shape check is the only thing
// between a crafted request and the filesystem.
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	if !store.ValidAddr(addr) {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"blob address must be exactly 64 lowercase hex characters")
		return
	}
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"this node serves RAM-only (no -data-dir); no blobs to export")
		return
	}
	data, ok := s.cfg.Store.ReadFrame(addr)
	if !ok {
		// The store is write-behind: a blob computed moments ago may
		// still be in the queue. One flush barrier before declaring the
		// miss keeps the freshly-computed case — the whole point of peer
		// fetch — from racing the writer goroutine.
		s.cfg.Store.Snapshot()
		data, ok = s.cfg.Store.ReadFrame(addr)
	}
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"no blob at "+strconv.Quote(addr))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// ChunkRequest is the POST /v1/chunks wire form: one sweep's axes plus
// the half-open point range [Start, End) to execute here.
type ChunkRequest struct {
	Request SweepRequest `json:"request"`
	Start   int          `json:"start"`
	End     int          `json:"end"`
}

// ChunkResponse is the remote chunk result: labeled outcomes in point
// order plus the tolerated-failure count, exactly what the
// coordinator's local chunk path produces.
type ChunkResponse struct {
	Results []RunResult `json:"results"`
	Failed  int         `json:"failed"`
}

// handleChunk executes one job chunk on behalf of a peer coordinator.
// It runs under this node's own admission gate and chunk retry policy —
// a remote chunk competes with local traffic like any other simulation
// work — and never re-dispatches (the coordinator owns sharding, so
// there is no forwarding cycle to break).
func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	var req ChunkRequest
	if err := decodeLean(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	a, err := req.Request.axes()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	n := a.product()
	if req.Start < 0 || req.End <= req.Start || int64(req.End) > n {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"chunk range ["+strconv.Itoa(req.Start)+", "+strconv.Itoa(req.End)+") is not within the sweep's "+strconv.FormatInt(n, 10)+" points")
		return
	}
	if req.End-req.Start > jobChunk {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"chunk of "+strconv.Itoa(req.End-req.Start)+" points exceeds the chunk size of "+strconv.Itoa(jobChunk))
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	outs, _, err := s.runChunk(ctx, a, req.Start, req.End)
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	resp := ChunkResponse{Results: make([]RunResult, len(outs))}
	for i, o := range outs {
		spec, label, _ := a.point(req.Start + i)
		res := o.Value
		if o.Failed() {
			res = result(a.p, spec, nil, nil)
			res.Failed, res.FailReason = true, o.Err.Error()
			resp.Failed++
		}
		res.Label = label
		resp.Results[i] = res
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}
