package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"dabench/internal/experiments"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
)

// maxBodyBytes bounds request bodies; specs are tiny and anything
// larger is a client bug or abuse.
const maxBodyBytes = 1 << 20

// RunRequest is the wire form of a TrainSpec plus its target platform:
// the same knobs the paper's "training configuration" input category
// and the CLI's profile flags expose. Zero-valued fields take the
// CLI's defaults (batch 512, seq 1024, FP16).
type RunRequest struct {
	Platform string `json:"platform"`
	Model    string `json:"model"`
	// Layers overrides the preset's decoder-layer count when > 0.
	Layers    int    `json:"layers,omitempty"`
	Batch     int    `json:"batch,omitempty"`
	Seq       int    `json:"seq,omitempty"`
	Precision string `json:"precision,omitempty"`
	// Mode is the RDU compile mode: "O0", "O1" or "O3".
	Mode             string `json:"mode,omitempty"`
	DataParallel     int    `json:"data_parallel,omitempty"`
	TensorParallel   int    `json:"tensor_parallel,omitempty"`
	PipelineParallel int    `json:"pipeline_parallel,omitempty"`
	LayerAssignment  []int  `json:"layer_assignment,omitempty"`
	WeightStreaming  bool   `json:"weight_streaming,omitempty"`
}

// SweepRequest is a RunRequest base point plus the axes to fan out:
// the cross product of layer counts, batch sizes and precision formats
// (an empty axis holds the base value fixed). Budget caps the point
// count for this request; the server clamps it to its own maximum.
type SweepRequest struct {
	RunRequest
	LayerCounts []int    `json:"layer_counts,omitempty"`
	Batches     []int    `json:"batches,omitempty"`
	Precisions  []string `json:"precisions,omitempty"`
	Budget      int      `json:"budget,omitempty"`
}

// RunResult is one compile+run outcome. A placement failure (the
// paper's "Fail" table entries) is a finding, not an error: it comes
// back with 200, Failed set, and the compiler's reason.
type RunResult struct {
	Label    string `json:"label,omitempty"`
	Platform string `json:"platform"`
	// SpecKey is the canonical spec fingerprint — the singleflight
	// compile-cache key this request coalesced on.
	SpecKey          string             `json:"spec_key"`
	Failed           bool               `json:"failed,omitempty"`
	FailReason       string             `json:"fail_reason,omitempty"`
	StepTimeSec      float64            `json:"step_time_sec,omitempty"`
	TokensPerSec     float64            `json:"tokens_per_sec,omitempty"`
	SamplesPerSec    float64            `json:"samples_per_sec,omitempty"`
	TFLOPS           float64            `json:"tflops,omitempty"`
	Efficiency       float64            `json:"efficiency,omitempty"`
	AI               float64            `json:"arithmetic_intensity,omitempty"`
	Allocation       map[string]float64 `json:"allocation,omitempty"`
	MemoryUsedMB     float64            `json:"memory_used_mb,omitempty"`
	MemoryCapacityMB float64            `json:"memory_capacity_mb,omitempty"`
	Notes            []string           `json:"notes,omitempty"`
}

// ErrorBody is the uniform error envelope payload.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// Error codes of the envelope.
const (
	CodeBadRequest = "bad_request"
	CodeNotFound   = "not_found"
	CodeSaturated  = "saturated"
	CodeTimeout    = "timeout"
	CodeInternal   = "internal"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // headers are out; nothing left to do on error
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}

// decode parses a JSON body strictly: unknown fields, trailing data
// and oversized bodies are client errors, never silently ignored.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	if dec.More() {
		return errors.New("decode body: trailing data after JSON value")
	}
	return nil
}

// resolve maps the request onto the process-wide cached platform set
// and a validated TrainSpec. All errors are client errors.
func (req RunRequest) resolve() (platform.CachedPlatform, platform.TrainSpec, error) {
	var spec platform.TrainSpec
	if req.Platform == "" {
		return nil, spec, errors.New("platform is required (wse, rdu, ipu, gpu)")
	}
	p, ok := experiments.SharedPlatform(req.Platform)
	if !ok {
		return nil, spec, fmt.Errorf("unknown platform %q (valid: %s)",
			req.Platform, strings.Join(experiments.PlatformNames(), ", "))
	}
	if req.Model == "" {
		return nil, spec, errors.New("model is required (run `dabench list` for the preset names)")
	}
	cfg, ok := model.ByName(req.Model)
	if !ok {
		return nil, spec, fmt.Errorf("unknown model %q", req.Model)
	}
	if req.Layers < 0 {
		return nil, spec, fmt.Errorf("layers %d must be >= 0", req.Layers)
	}
	if req.Layers > 0 {
		cfg = cfg.WithLayers(req.Layers)
	}

	spec = platform.TrainSpec{Model: cfg, Batch: req.Batch, Seq: req.Seq}
	if spec.Batch == 0 {
		spec.Batch = 512
	}
	if spec.Seq == 0 {
		spec.Seq = 1024
	}
	prec := req.Precision
	if prec == "" {
		prec = "FP16"
	}
	f, err := precision.Parse(prec)
	if err != nil {
		return nil, spec, err
	}
	spec.Precision = f

	spec.Par = platform.Parallelism{
		DataParallel:     req.DataParallel,
		TensorParallel:   req.TensorParallel,
		PipelineParallel: req.PipelineParallel,
		LayerAssignment:  req.LayerAssignment,
		WeightStreaming:  req.WeightStreaming,
	}
	switch strings.ToUpper(req.Mode) {
	case "":
	case "O0":
		spec.Par.Mode = platform.ModeO0
	case "O1":
		spec.Par.Mode = platform.ModeO1
	case "O3":
		spec.Par.Mode = platform.ModeO3
	default:
		return nil, spec, fmt.Errorf("unknown mode %q (valid: O0, O1, O3)", req.Mode)
	}

	if err := spec.Validate(); err != nil {
		return nil, spec, err
	}
	return p, spec, nil
}

// points expands the sweep axes into the cross-product of specs, in
// deterministic layer-major → batch → precision order (the order the
// response's results array follows). The cross product is checked
// against budget arithmetically, before any expansion: one request
// with three large axes must fail cheaply, not materialize the
// product and take the process down with it.
func (req SweepRequest) points(budget int) (platform.CachedPlatform, []platform.TrainSpec, []string, error) {
	p, base, err := req.RunRequest.resolve()
	if err != nil {
		return nil, nil, nil, err
	}
	layers := req.LayerCounts
	if len(layers) == 0 {
		layers = []int{base.Model.NumLayers}
	}
	batches := req.Batches
	if len(batches) == 0 {
		batches = []int{base.Batch}
	}
	nFormats := len(req.Precisions)
	if nFormats == 0 {
		nFormats = 1
	}
	// Axis lengths are bounded by the body cap (~1e5 each), so the
	// 3-way product cannot overflow int64 arithmetic.
	if product := int64(len(layers)) * int64(len(batches)) * int64(nFormats); product > int64(budget) {
		return nil, nil, nil, fmt.Errorf("sweep of %d points exceeds the budget of %d", product, budget)
	}
	formats := make([]precision.Format, 0, nFormats)
	if len(req.Precisions) == 0 {
		formats = append(formats, base.Precision)
	}
	for _, s := range req.Precisions {
		f, err := precision.Parse(s)
		if err != nil {
			return nil, nil, nil, err
		}
		formats = append(formats, f)
	}

	specs := make([]platform.TrainSpec, 0, len(layers)*len(batches)*len(formats))
	labels := make([]string, 0, cap(specs))
	for _, l := range layers {
		for _, b := range batches {
			for _, f := range formats {
				spec := base
				if l <= 0 || b <= 0 {
					return nil, nil, nil, fmt.Errorf("sweep axes must be positive (layer %d, batch %d)", l, b)
				}
				spec.Model = spec.Model.WithLayers(l)
				spec.Batch = b
				spec.Precision = f
				if err := spec.Validate(); err != nil {
					return nil, nil, nil, err
				}
				specs = append(specs, spec)
				labels = append(labels, fmt.Sprintf("L=%d/B=%d/%s", l, b, f))
			}
		}
	}
	return p, specs, labels, nil
}

// result assembles the wire form of one compile+run outcome.
func result(p platform.Platform, spec platform.TrainSpec, cr *platform.CompileReport, rr *platform.RunReport) RunResult {
	res := RunResult{Platform: p.Name(), SpecKey: spec.Key()}
	if cr != nil {
		res.Allocation = make(map[string]float64, len(cr.Capacity))
		for r := range cr.Capacity {
			res.Allocation[string(r)] = cr.AllocationRatio(r)
		}
		res.MemoryUsedMB = cr.Memory.Used().MB()
		res.MemoryCapacityMB = cr.Memory.Capacity.MB()
		res.Notes = cr.Notes
	}
	if rr != nil {
		res.StepTimeSec = float64(rr.StepTime)
		res.TokensPerSec = rr.TokensPerSec
		res.SamplesPerSec = rr.SamplesPerSec
		res.TFLOPS = rr.Achieved.TFLOPS()
		res.Efficiency = rr.Efficiency
		res.AI = rr.AI
	}
	return res
}
