package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"dabench/internal/experiments"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
)

// maxBodyBytes bounds request bodies; specs are tiny and anything
// larger is a client bug or abuse.
const maxBodyBytes = 1 << 20

// RunRequest is the wire form of a TrainSpec plus its target platform:
// the same knobs the paper's "training configuration" input category
// and the CLI's profile flags expose. Zero-valued fields take the
// CLI's defaults (batch 512, seq 1024, FP16).
type RunRequest struct {
	Platform string `json:"platform"`
	Model    string `json:"model"`
	// Layers overrides the preset's decoder-layer count when > 0.
	Layers    int    `json:"layers,omitempty"`
	Batch     int    `json:"batch,omitempty"`
	Seq       int    `json:"seq,omitempty"`
	Precision string `json:"precision,omitempty"`
	// Mode is the RDU compile mode: "O0", "O1" or "O3".
	Mode             string `json:"mode,omitempty"`
	DataParallel     int    `json:"data_parallel,omitempty"`
	TensorParallel   int    `json:"tensor_parallel,omitempty"`
	PipelineParallel int    `json:"pipeline_parallel,omitempty"`
	LayerAssignment  []int  `json:"layer_assignment,omitempty"`
	WeightStreaming  bool   `json:"weight_streaming,omitempty"`
}

// SweepRequest is a RunRequest base point plus the axes to fan out:
// the cross product of layer counts, batch sizes and precision formats
// (an empty axis holds the base value fixed). Budget caps the point
// count for this request; the server clamps it to its own maximum.
type SweepRequest struct {
	RunRequest
	LayerCounts []int    `json:"layer_counts,omitempty"`
	Batches     []int    `json:"batches,omitempty"`
	Precisions  []string `json:"precisions,omitempty"`
	Budget      int      `json:"budget,omitempty"`
}

// RunResult is one compile+run outcome. A placement failure (the
// paper's "Fail" table entries) is a finding, not an error: it comes
// back with 200, Failed set, and the compiler's reason.
type RunResult struct {
	Label    string `json:"label,omitempty"`
	Platform string `json:"platform"`
	// SpecKey is the canonical spec fingerprint — the singleflight
	// compile-cache key this request coalesced on.
	SpecKey          string             `json:"spec_key"`
	Failed           bool               `json:"failed,omitempty"`
	FailReason       string             `json:"fail_reason,omitempty"`
	StepTimeSec      float64            `json:"step_time_sec,omitempty"`
	TokensPerSec     float64            `json:"tokens_per_sec,omitempty"`
	SamplesPerSec    float64            `json:"samples_per_sec,omitempty"`
	TFLOPS           float64            `json:"tflops,omitempty"`
	Efficiency       float64            `json:"efficiency,omitempty"`
	AI               float64            `json:"arithmetic_intensity,omitempty"`
	Allocation       map[string]float64 `json:"allocation,omitempty"`
	MemoryUsedMB     float64            `json:"memory_used_mb,omitempty"`
	MemoryCapacityMB float64            `json:"memory_capacity_mb,omitempty"`
	Notes            []string           `json:"notes,omitempty"`
}

// ErrorBody is the uniform error envelope payload. Limit and
// RequestedPoints are populated on sweep-budget rejections so clients
// learn the cap and their overshoot without parsing the message.
type ErrorBody struct {
	Code            string `json:"code"`
	Message         string `json:"message"`
	Limit           int    `json:"limit,omitempty"`
	RequestedPoints int64  `json:"requested_points,omitempty"`
	Hint            string `json:"hint,omitempty"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// Error codes of the envelope.
const (
	CodeBadRequest    = "bad_request"
	CodeNotFound      = "not_found"
	CodeSaturated     = "saturated"
	CodeTimeout       = "timeout"
	CodeInternal      = "internal"
	CodeSweepTooLarge = "sweep_too_large"
	CodeNotReady      = "not_ready"
	CodeConflict      = "conflict"
	CodeQueueFull     = "queue_full"
)

// BudgetError is a sweep cross product over the request's point
// budget: a structured rejection, so the response can name both the
// limit and the requested size (and point at /v1/jobs, which has no
// synchronous cap).
type BudgetError struct {
	Points int64
	Budget int
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("sweep of %d points exceeds the budget of %d", e.Points, e.Budget)
}

// jsonBufPool recycles the encode buffers every response marshals
// through. Buffers that grew past maxPooledBuf are dropped instead of
// pinned — one multi-megabyte sweep response must not turn the pool
// into a leak.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

// encodeJSON marshals v into a pooled buffer with the server's one
// encoder configuration (HTML escaping off, trailing newline — every
// byte-identity guarantee in this package rides on all paths using
// exactly this). The caller returns the buffer via putBuf.
func encodeJSON(v any) (*bytes.Buffer, error) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		jsonBufPool.Put(buf)
		return nil, err
	}
	return buf, nil
}

func putBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		jsonBufPool.Put(buf)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := encodeJSON(v)
	if err != nil {
		// Marshal failed before any header went out; answer a manual
		// envelope (writeError would recurse into this same path).
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":{"code":"internal","message":` +
			strconv.Quote("encode response: "+err.Error()) + "}}\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	putBuf(buf)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorEnvelope{Error: ErrorBody{Code: code, Message: msg}})
}

// decode parses a JSON body strictly: unknown fields, trailing data
// and oversized bodies are client errors, never silently ignored.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	if dec.More() {
		return errors.New("decode body: trailing data after JSON value")
	}
	return nil
}

// bodyBuf is one pooled request-read buffer plus the bytes.Reader that
// re-reads it — both recycled together so the lean decode path costs
// zero steady-state allocations for the transport plumbing.
type bodyBuf struct {
	b  []byte
	rd bytes.Reader
}

var bodyBufPool = sync.Pool{New: func() any { return &bodyBuf{b: make([]byte, 4096)} }}

// readBody reads a Content-Length-framed body whole into a pooled
// buffer, returning the pooled holder plus the filled slice (which
// aliases the holder's storage). A chunked body — no Content-Length —
// returns a nil holder so callers fall back to the streaming decode.
// The caller must return the holder via putBodyBuf once the bytes are
// no longer referenced.
func readBody(r *http.Request) (*bodyBuf, []byte, error) {
	n := r.ContentLength
	if n < 0 {
		return nil, nil, nil
	}
	if n > maxBodyBytes {
		return nil, nil, fmt.Errorf("decode body: request body of %d bytes exceeds the %d-byte limit", n, maxBodyBytes)
	}
	bb := bodyBufPool.Get().(*bodyBuf)
	if int64(cap(bb.b)) < n {
		bb.b = make([]byte, n)
	}
	buf := bb.b[:n]
	if _, err := io.ReadFull(r.Body, buf); err != nil {
		bodyBufPool.Put(bb)
		return nil, nil, fmt.Errorf("decode body: %w", err)
	}
	return bb, buf, nil
}

// putBodyBuf recycles a readBody holder; a nil holder is a no-op.
func putBodyBuf(bb *bodyBuf) {
	if bb != nil {
		bodyBufPool.Put(bb)
	}
}

// decodeBody decodes one strict JSON value from buf through bb's pooled
// reader. Strictness is identical to decode: unknown fields and
// trailing data are client errors.
func decodeBody(bb *bodyBuf, buf []byte, v any) error {
	bb.rd.Reset(buf)
	dec := json.NewDecoder(&bb.rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	if dec.More() {
		return errors.New("decode body: trailing data after JSON value")
	}
	return nil
}

// decodeLean is decode for the hot endpoints: when the client sent a
// Content-Length (every real client does), the body is read whole into
// a pooled buffer and decoded from memory — no bufio allocation per
// request. Chunked bodies fall back to the streaming decode. Strictness
// is identical: unknown fields, trailing data and oversized bodies are
// client errors.
func decodeLean(w http.ResponseWriter, r *http.Request, v any) error {
	bb, buf, err := readBody(r)
	if err != nil {
		return err
	}
	if bb == nil {
		return decode(w, r, v)
	}
	defer bodyBufPool.Put(bb)
	return decodeBody(bb, buf, v)
}

// resolve maps the request onto the process-wide cached platform set
// and a validated TrainSpec. All errors are client errors.
func (req RunRequest) resolve() (platform.CachedPlatform, platform.TrainSpec, error) {
	var spec platform.TrainSpec
	if req.Platform == "" {
		return nil, spec, errors.New("platform is required (wse, rdu, ipu, gpu)")
	}
	p, ok := experiments.SharedPlatform(req.Platform)
	if !ok {
		return nil, spec, fmt.Errorf("unknown platform %q (valid: %s)",
			req.Platform, strings.Join(experiments.PlatformNames(), ", "))
	}
	if req.Model == "" {
		return nil, spec, errors.New("model is required (run `dabench list` for the preset names)")
	}
	cfg, ok := model.ByName(req.Model)
	if !ok {
		return nil, spec, fmt.Errorf("unknown model %q", req.Model)
	}
	if req.Layers < 0 {
		return nil, spec, fmt.Errorf("layers %d must be >= 0", req.Layers)
	}
	if req.Layers > 0 {
		cfg = cfg.WithLayers(req.Layers)
	}

	spec = platform.TrainSpec{Model: cfg, Batch: req.Batch, Seq: req.Seq}
	if spec.Batch == 0 {
		spec.Batch = 512
	}
	if spec.Seq == 0 {
		spec.Seq = 1024
	}
	prec := req.Precision
	if prec == "" {
		prec = "FP16"
	}
	f, err := precision.Parse(prec)
	if err != nil {
		return nil, spec, err
	}
	spec.Precision = f

	spec.Par = platform.Parallelism{
		DataParallel:     req.DataParallel,
		TensorParallel:   req.TensorParallel,
		PipelineParallel: req.PipelineParallel,
		LayerAssignment:  req.LayerAssignment,
		WeightStreaming:  req.WeightStreaming,
	}
	mode, err := platform.ParseMode(req.Mode)
	if err != nil {
		return nil, spec, err
	}
	spec.Par.Mode = mode

	if err := spec.Validate(); err != nil {
		return nil, spec, err
	}
	return p, spec, nil
}

// sweepAxes is a validated sweep cross product in unexpanded form:
// the i-th point is derived on demand, so arbitrarily large products
// (async jobs walk them chunk by chunk) never materialize whole.
type sweepAxes struct {
	p       platform.CachedPlatform
	base    platform.TrainSpec
	layers  []int
	batches []int
	formats []precision.Format
}

// axes validates the request and its axis values without expanding the
// cross product. All errors are client errors.
func (req SweepRequest) axes() (*sweepAxes, error) {
	p, base, err := req.RunRequest.resolve()
	if err != nil {
		return nil, err
	}
	a := &sweepAxes{p: p, base: base, layers: req.LayerCounts, batches: req.Batches}
	if len(a.layers) == 0 {
		a.layers = []int{base.Model.NumLayers}
	}
	if len(a.batches) == 0 {
		a.batches = []int{base.Batch}
	}
	for _, l := range a.layers {
		if l <= 0 {
			return nil, fmt.Errorf("sweep axes must be positive (layer %d)", l)
		}
	}
	for _, b := range a.batches {
		if b <= 0 {
			return nil, fmt.Errorf("sweep axes must be positive (batch %d)", b)
		}
	}
	if len(req.Precisions) == 0 {
		a.formats = []precision.Format{base.Precision}
	} else {
		a.formats = make([]precision.Format, 0, len(req.Precisions))
		for _, s := range req.Precisions {
			f, err := precision.Parse(s)
			if err != nil {
				return nil, err
			}
			a.formats = append(a.formats, f)
		}
	}
	return a, nil
}

// product is the cross-product size. Axis lengths are bounded by the
// body cap (~1e5 each), so the 3-way product cannot overflow int64.
func (a *sweepAxes) product() int64 {
	return int64(len(a.layers)) * int64(len(a.batches)) * int64(len(a.formats))
}

// point derives the i-th spec and label in deterministic layer-major →
// batch → precision order (the order every results array follows).
func (a *sweepAxes) point(i int) (platform.TrainSpec, string, error) {
	nf, nb := len(a.formats), len(a.batches)
	l := a.layers[i/(nb*nf)]
	b := a.batches[(i/nf)%nb]
	f := a.formats[i%nf]
	spec := a.base
	spec.Model = spec.Model.WithLayers(l)
	spec.Batch = b
	spec.Precision = f
	if err := spec.Validate(); err != nil {
		return spec, "", err
	}
	return spec, fmt.Sprintf("L=%d/B=%d/%s", l, b, f), nil
}

// points expands the sweep into specs and labels after checking the
// product against budget arithmetically — one request with three
// large axes must fail cheaply, not materialize the product and take
// the process down with it. Over-budget requests return a *BudgetError
// so the handler can answer with the structured rejection.
func (req SweepRequest) points(budget int) (platform.CachedPlatform, []platform.TrainSpec, []string, error) {
	a, err := req.axes()
	if err != nil {
		return nil, nil, nil, err
	}
	n := a.product()
	if n > int64(budget) {
		return nil, nil, nil, &BudgetError{Points: n, Budget: budget}
	}
	specs := make([]platform.TrainSpec, 0, n)
	labels := make([]string, 0, n)
	for i := 0; i < int(n); i++ {
		spec, label, err := a.point(i)
		if err != nil {
			return nil, nil, nil, err
		}
		specs = append(specs, spec)
		labels = append(labels, label)
	}
	return a.p, specs, labels, nil
}

// result assembles the wire form of one compile+run outcome.
func result(p platform.Platform, spec platform.TrainSpec, cr *platform.CompileReport, rr *platform.RunReport) RunResult {
	res := RunResult{Platform: p.Name(), SpecKey: spec.Key()}
	if cr != nil {
		res.Allocation = make(map[string]float64, len(cr.Capacity))
		for r := range cr.Capacity {
			res.Allocation[string(r)] = cr.AllocationRatio(r)
		}
		res.MemoryUsedMB = cr.Memory.Used().MB()
		res.MemoryCapacityMB = cr.Memory.Capacity.MB()
		res.Notes = cr.Notes
	}
	if rr != nil {
		res.StepTimeSec = float64(rr.StepTime)
		res.TokensPerSec = rr.TokensPerSec
		res.SamplesPerSec = rr.SamplesPerSec
		res.TFLOPS = rr.Achieved.TFLOPS()
		res.Efficiency = rr.Efficiency
		res.AI = rr.AI
	}
	return res
}
