package server

import (
	"net/http"
	"runtime"
	"time"

	"dabench/internal/experiments"
	"dabench/internal/platform"
	"dabench/internal/telemetry"
	"dabench/internal/version"
)

// GET /metrics — the Prometheus face of everything /v1/stats reports,
// plus the latency distributions JSON counters cannot carry. The
// registry owns only the stage histograms; every other series is
// folded in at scrape time by one collector reading the same sources
// /v1/stats reads, so the two surfaces can never disagree about a
// count. /v1/stats stays unchanged for humans and the existing CI
// greps; fleets scrape this.
//
// Naming scheme: every series is dabench_<subsystem>_<what>[_total],
// seconds for durations, bytes for sizes; monotonic counts end in
// _total, point-in-time values are gauges. Multi-instance families
// discriminate by label (tier=, breaker=, state=) instead of minting
// per-instance names.

func lbl(name, value string) telemetry.Label {
	return telemetry.Label{Name: name, Value: value}
}

// initMetrics builds the registry: the full request-stage and
// pipeline-stage histogram grids (pre-created so the exposition shape
// is traffic-independent) plus the scrape-time collector.
func (s *Server) initMetrics() {
	s.reg = telemetry.NewRegistry()
	for ep := 0; ep < nEndpoints; ep++ {
		for _, stg := range endpointStages[ep] {
			s.stageHist[ep][stg] = s.reg.Histogram(
				"dabench_request_stage_seconds",
				"Per-request stage latency by endpoint (served responses only).",
				nil,
				lbl("endpoint", endpointNames[ep]), lbl("stage", stageNames[stg]))
		}
	}
	s.pipeHist = map[string]*telemetry.Histogram{}
	for _, pn := range experiments.PlatformNames() {
		for _, stg := range []string{platform.StageCompile, platform.StageRun} {
			s.pipeHist[pn+"\x00"+stg] = s.reg.Histogram(
				"dabench_pipeline_stage_seconds",
				"Real simulator work by platform and stage (cache misses only).",
				nil,
				lbl("platform", pn), lbl("stage", stg))
		}
	}
	s.reg.RegisterCollector(s.collect)
}

// pipelineStage is the experiments.SetStageHook target: it routes one
// real Compile/Run invocation into its platform histogram. The map is
// read-only after initMetrics, so the hook is lock-free.
func (s *Server) pipelineStage(platformName, stage string, d time.Duration) {
	if h, ok := s.pipeHist[platformName+"\x00"+stage]; ok {
		h.Observe(d.Seconds())
	}
}

// breakerStateValue maps a breaker's state name onto the conventional
// numeric gauge: 0 closed (healthy), 1 open, 2 half-open.
func breakerStateValue(state string) float64 {
	switch state {
	case "open":
		return 1
	case "half-open":
		return 2
	default:
		return 0
	}
}

// collect folds every externally-owned counter into one scrape.
func (s *Server) collect(e *telemetry.Exposition) {
	e.Gauge("dabench_build_info",
		"Build identity; always 1, the labels carry the facts.", 1,
		lbl("version", version.Version), lbl("goversion", runtime.Version()))
	e.Gauge("dabench_uptime_seconds", "Seconds since the server started.",
		time.Since(s.start).Seconds())

	e.Gauge("dabench_requests_in_flight", "Requests currently holding an admission slot.",
		float64(s.inFlight.Load()))
	e.Gauge("dabench_admission_slots", "Total admission slots (MaxInFlight).",
		float64(cap(s.sem)))
	e.Counter("dabench_requests_served_total", "Responses served (any lane).",
		float64(s.served.Load()))
	e.Counter("dabench_requests_rejected_total", "Requests shed with 429 at the admission gate.",
		float64(s.rejected.Load()))
	e.Counter("dabench_not_modified_total", "Conditional requests answered 304 from the ETag lane.",
		float64(s.notModified.Load()))

	tiers := []struct {
		name string
		st   platform.CacheStats
	}{
		{"compile", experiments.CacheStats()},
		{"run", experiments.RunCacheStats()},
		{"graph", experiments.GraphCacheStats()},
	}
	for _, t := range tiers {
		e.Counter("dabench_cache_hits_total", "Memo-tier cache hits by tier.",
			float64(t.st.Hits), lbl("tier", t.name))
		e.Counter("dabench_cache_misses_total", "Memo-tier cache misses by tier.",
			float64(t.st.Misses), lbl("tier", t.name))
	}

	if s.resp != nil {
		rs := s.resp.Stats()
		e.Counter("dabench_resp_cache_hits_total", "L0 response-byte cache hits.", float64(rs.Hits))
		e.Counter("dabench_resp_cache_misses_total", "L0 response-byte cache misses.", float64(rs.Misses))
		e.Counter("dabench_resp_cache_evictions_total", "L0 entries evicted by the byte budget.", float64(rs.Evictions))
		e.Gauge("dabench_resp_cache_entries", "L0 entries resident.", float64(rs.Entries))
		e.Gauge("dabench_resp_cache_bytes", "L0 bytes resident.", float64(rs.Bytes))
		e.Gauge("dabench_resp_cache_budget_bytes", "L0 byte budget.", float64(rs.BudgetBytes))
	}

	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		storeCounters := []struct {
			name, help string
			v          int64
		}{
			{"dabench_store_hits_total", "Persistent-store payload hits.", ss.Hits},
			{"dabench_store_misses_total", "Persistent-store payload misses.", ss.Misses},
			{"dabench_store_puts_total", "Blobs persisted.", ss.Puts},
			{"dabench_store_evictions_total", "Blobs evicted by the size budget.", ss.Evictions},
			{"dabench_store_corrupt_total", "Blobs dropped as corrupt.", ss.Corrupt},
			{"dabench_store_write_errors_total", "Blob writes that exhausted their retries.", ss.WriteErrors},
			{"dabench_store_raw_hits_total", "Raw response-byte hits (zero-decode serves).", ss.RawHits},
			{"dabench_store_raw_misses_total", "Raw response-byte misses.", ss.RawMisses},
			{"dabench_store_blob_upgrades_total", "v1 blobs rewritten into the v2 frame.", ss.BlobUpgrades},
			{"dabench_store_read_retries_total", "Blob read attempts beyond the first.", ss.ReadRetries},
			{"dabench_store_write_retries_total", "Blob write attempts beyond the first.", ss.WriteRetries},
			{"dabench_store_skipped_reads_total", "Reads skipped with the read breaker open.", ss.SkippedReads},
			{"dabench_store_skipped_writes_total", "Writes dropped with the write breaker open.", ss.SkippedWrites},
			{"dabench_store_evict_errors_total", "Evictions whose unlink failed (re-adopted).", ss.EvictErrors},
		}
		for _, c := range storeCounters {
			e.Counter(c.name, c.help, float64(c.v))
		}
		e.Gauge("dabench_store_entries", "Blobs resident on disk.", float64(ss.Entries))
		e.Gauge("dabench_store_bytes", "Bytes resident on disk.", float64(ss.Bytes))
		e.Gauge("dabench_store_budget_bytes", "On-disk byte budget (0 = unbounded).", float64(ss.BudgetBytes))
		e.Gauge("dabench_store_breaker_state", "Breaker state: 0 closed, 1 open, 2 half-open.",
			breakerStateValue(ss.ReadBreaker.State), lbl("breaker", "read"))
		e.Gauge("dabench_store_breaker_state", "Breaker state: 0 closed, 1 open, 2 half-open.",
			breakerStateValue(ss.WriteBreaker.State), lbl("breaker", "write"))
		e.Counter("dabench_store_breaker_trips_total", "Breaker transitions into open by breaker.",
			float64(ss.ReadBreaker.Trips), lbl("breaker", "read"))
		e.Counter("dabench_store_breaker_trips_total", "Breaker transitions into open by breaker.",
			float64(ss.WriteBreaker.Trips), lbl("breaker", "write"))
	}

	g := s.jobs.Stats()
	jobStates := []struct {
		state string
		v     int64
	}{
		{"queued", g.Queued}, {"running", g.Running}, {"done", g.Done},
		{"failed", g.Failed}, {"cancelled", g.Cancelled},
	}
	for _, j := range jobStates {
		e.Gauge("dabench_jobs", "Jobs by lifecycle state.", float64(j.v), lbl("state", j.state))
	}
	e.Counter("dabench_jobs_replayed_total", "Jobs revived from the journal on boot.", float64(g.Replayed))
	e.Counter("dabench_journal_torn_records_total", "Journal lines dropped as corrupt during replay.", float64(g.Torn))
	e.Counter("dabench_job_chunk_retries_total", "Job chunk attempts beyond the first.",
		float64(s.chunkRetries.Load()))
	e.Counter("dabench_job_chunks_quarantined_total", "Job chunks that exhausted their retry budget.",
		float64(s.chunksQuarantined.Load()))

	// Cluster families are emitted unconditionally — zeros on a single
	// node — so the exposition shape is identical with and without a
	// fabric (dashboards and the golden test never depend on topology).
	cs := s.cluster().Stats()
	var alive, dead, ringNodes float64
	var fetchHits, fetchMisses, fetchErrors, adoptions float64
	var remoteChunks, reassigned float64
	if cs != nil {
		alive, dead = float64(cs.PeersAlive), float64(cs.PeersDead)
		ringNodes = float64(cs.RingNodes)
		fetchHits, fetchMisses = float64(cs.PeerFetchHits), float64(cs.PeerFetchMisses)
		fetchErrors, adoptions = float64(cs.PeerFetchErrors), float64(cs.PeerAdoptions)
		remoteChunks, reassigned = float64(cs.RemoteChunks), float64(cs.ReassignedChunks)
	}
	e.Gauge("dabench_cluster_peers", "Peers by liveness state.", alive, lbl("state", "alive"))
	e.Gauge("dabench_cluster_peers", "Peers by liveness state.", dead, lbl("state", "dead"))
	e.Gauge("dabench_cluster_ring_nodes", "Nodes on the consistent-hash ring, including this one (0 = no fabric).",
		ringNodes)
	e.Counter("dabench_peer_fetch_hits_total", "Local store misses answered by a peer's blob export.", fetchHits)
	e.Counter("dabench_peer_fetch_misses_total", "Peer-fetch rounds that found the blob on no reachable peer.", fetchMisses)
	e.Counter("dabench_peer_fetch_errors_total", "Peer calls that failed in transport (or failed verification).", fetchErrors)
	e.Counter("dabench_peer_adoptions_total", "Peer-fetched blobs adopted into the local store.", adoptions)
	e.Counter("dabench_job_chunks_remote_total", "Job chunks executed on a peer via the ring.", remoteChunks)
	e.Counter("dabench_job_chunks_reassigned_total", "Job chunks reassigned to local execution after owner failure.", reassigned)

	if fs := s.cfg.Injector.Stats(); fs != nil {
		e.Counter("dabench_faults_fired_total", "Injected faults fired across all rules.", float64(fs.Fired))
	}
	if s.cfg.Provenance != nil {
		ps := s.cfg.Provenance.Stats()
		e.Gauge("dabench_provenance_records", "Length of the provenance hash chain.", float64(ps.Records))
	}
	if s.stageLog != nil {
		e.Counter("dabench_stage_log_errors_total", "Stage-log CSV rows lost to write errors.",
			float64(s.stageLog.errs.Load()))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}
