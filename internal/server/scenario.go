package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"dabench/internal/jobs"
	"dabench/internal/scenario"
)

// scenarioInfo is one library entry in the GET /v1/scenarios listing.
type scenarioInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Platforms   []string `json:"platforms"`
	// Points is the total compile/run pairs the scenario executes
	// (grid size × platform count).
	Points int `json:"points"`
}

// libraryInfos resolves the immutable built-in library once (at server
// construction) so the listing endpoint is a plain write, not a
// revalidation of every scenario per request.
func libraryInfos() ([]scenarioInfo, error) {
	lib := scenario.Library()
	infos := make([]scenarioInfo, 0, len(lib))
	for _, sc := range lib {
		n, err := sc.Points()
		if err != nil {
			return nil, fmt.Errorf("library scenario %q is invalid: %w", sc.Name, err)
		}
		infos = append(infos, scenarioInfo{
			Name: sc.Name, Description: sc.Description,
			Platforms: sc.Platforms, Points: n,
		})
	}
	return infos, nil
}

func (s *Server) handleScenarioList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]scenarioInfo{"scenarios": s.scenarios})
}

// scenarioFormat validates the ?format= parameter shared by the
// scenario endpoints. dflt is what an empty parameter means: the
// GET endpoint defaults to the CLI's text rendering (CI diffs the
// two), the POST endpoint to the JSON document.
func scenarioFormat(w http.ResponseWriter, r *http.Request, dflt string) (string, bool) {
	format := r.URL.Query().Get("format")
	switch format {
	case "":
		return dflt, true
	case "text", "table":
		return "text", true
	case "csv", "json":
		return format, true
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"unknown format "+strconv.Quote(format)+" (valid: text, table, csv, json)")
		return "", false
	}
}

// handleScenarioGet runs one built-in library scenario synchronously.
// The library is immutable within a build and the engine deterministic,
// so (name, format) pins the rendered bytes: a repeat request is
// answered from the ETag/304 or response-byte fast lane before the
// admission gate; only the compute path claims a slot and shares the
// in-flight budget and request deadline with the other heavy endpoints.
func (s *Server) handleScenarioGet(w http.ResponseWriter, r *http.Request) {
	st := newStageTimer(epScenarioGet)
	name := r.PathValue("name")
	sc, ok := scenario.ByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown scenario "+strconv.Quote(name))
		return
	}
	format, ok := scenarioFormat(w, r, "text")
	if !ok {
		return
	}
	etag := scenarioETag(name, format)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		st.observe(stgAdmission, 0)
		s.finishStages(w, &st)
		s.writeNotModified(w, etag)
		s.served.Add(1)
		return
	}
	ck := scenarioRespKey(name, format)
	if s.resp != nil {
		if e, ok := s.resp.Get(ck); ok {
			st.observe(stgAdmission, 0)
			s.finishStages(w, &st)
			serveEntry(w, e)
			s.served.Add(1)
			return
		}
	}

	t := time.Now()
	if !s.acquire(w) {
		return
	}
	st.observe(stgAdmission, time.Since(t))
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	defer s.served.Add(1)
	t = time.Now()
	out, err := scenario.Run(ctx, sc, scenario.RunOptions{})
	st.observe(stgRun, time.Since(t))
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	t = time.Now()
	body, contentType, err := renderScenario(out, format)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	st.observe(stgRender, time.Since(t))
	s.finishStages(w, &st)
	s.cacheAndServe(w, ck, etag, contentType, body)
}

// handleScenarioSubmit executes a posted scenario document: under the
// synchronous point budget it runs inline (admission-gated like every
// heavy request); over it, the document is journaled as an async job
// on the background pool and answered 202 + Location, exactly like
// POST /v1/jobs. The async result document is byte-identical to the
// synchronous response for the same scenario — both paths encode one
// scenario.Outcome with the same encoder.
func (s *Server) handleScenarioSubmit(w http.ResponseWriter, r *http.Request) {
	st := newStageTimer(epScenarioPost)
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "read body: "+err.Error())
		return
	}
	sc, err := scenario.Parse(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	format, ok := scenarioFormat(w, r, "json")
	if !ok {
		return
	}
	total, err := sc.Points()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	st.observe(stgDecode, time.Since(st.t0))

	if total > s.cfg.MaxSweepPoints {
		// Too heavy for a synchronous answer: hand it to the job
		// subsystem. The journaled request wraps the client's exact
		// bytes so replay re-executes what was submitted.
		if total > s.cfg.MaxJobPoints {
			s.writeJobCapExceeded(w, "scenario", int64(total))
			return
		}
		v, err := s.jobs.Submit(scenarioJobRequest(raw), total)
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			s.writeQueueFull(w)
			return
		case errors.Is(err, jobs.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, CodeInternal, "job manager is shut down")
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+v.ID)
		writeJSON(w, http.StatusAccepted, v)
		return
	}

	t := time.Now()
	if !s.acquire(w) {
		return
	}
	st.observe(stgAdmission, time.Since(t))
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	t = time.Now()
	out, err := scenario.Run(ctx, sc, scenario.RunOptions{})
	st.observe(stgRun, time.Since(t))
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	t = time.Now()
	body, contentType, err := renderScenario(out, format)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	st.observe(stgRender, time.Since(t))
	s.finishStages(w, &st)
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
	s.served.Add(1)
}

// renderScenario materializes one scenario outcome in the requested
// format as (body, content type). Text and CSV go through
// Outcome.Render — the shared experiments.Result.Render path that
// keeps the bytes identical to the CLI's stdout and the async job
// result for the same scenario; JSON goes through the server's one
// encoder configuration for the same reason.
func renderScenario(out *scenario.Outcome, format string) ([]byte, string, error) {
	switch format {
	case "json":
		buf, err := encodeJSON(out)
		if err != nil {
			return nil, "", err
		}
		body := append([]byte(nil), buf.Bytes()...)
		putBuf(buf)
		return body, ctJSON, nil
	case "csv":
		var buf bytes.Buffer
		if err := out.Render(&buf, true); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), "text/csv; charset=utf-8", nil
	default: // text
		var buf bytes.Buffer
		if err := out.Render(&buf, false); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), "text/plain; charset=utf-8", nil
	}
}

// writeScenario renders one scenario outcome straight to the wire (the
// POST paths, which have no fast lane to feed).
func writeScenario(w http.ResponseWriter, out *scenario.Outcome, format string) {
	body, contentType, err := renderScenario(out, format)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

// jobEnvelope distinguishes journaled job request vocabularies: sweep
// requests are journaled bare (the original /v1/jobs wire form, kept
// for journal compatibility), scenario requests wrapped with a kind
// marker. SweepRequest has no "kind" field and is decoded strictly at
// submission, so no sweep body can alias a scenario envelope.
type jobEnvelope struct {
	Kind     string          `json:"kind"`
	Scenario json.RawMessage `json:"scenario"`
}

// scenarioJobRequest wraps a scenario document's exact client bytes in
// the journal envelope.
func scenarioJobRequest(raw []byte) json.RawMessage {
	buf := make([]byte, 0, len(raw)+len(`{"kind":"scenario","scenario":}`))
	buf = append(buf, `{"kind":"scenario","scenario":`...)
	buf = append(buf, raw...)
	buf = append(buf, '}')
	return buf
}

// runScenarioJob executes one journaled scenario on the background
// pool, reporting chunked progress. The result document is encoded
// exactly as the synchronous handler encodes its response.
func (s *Server) runScenarioJob(ctx context.Context, raw json.RawMessage, progress func(done, failed int)) (json.RawMessage, error) {
	sc, err := scenario.Parse(raw)
	if err != nil {
		return nil, err
	}
	total, err := sc.Points()
	if err != nil {
		return nil, err
	}
	if total > s.cfg.MaxJobPoints {
		// Replayed from a journal written under a larger cap.
		return nil, fmt.Errorf("scenario of %d points exceeds the job cap of %d", total, s.cfg.MaxJobPoints)
	}
	out, err := scenario.Run(ctx, sc, scenario.RunOptions{
		Workers:  s.cfg.JobSweepWorkers,
		Progress: progress,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// isScenarioResult classifies a stored job result by probing the
// "scenario" field alone — a SweepResponse has no such field and can
// never produce a non-empty one, and the one-field probe avoids
// materializing a multi-megabyte result document twice just to
// classify it. Classification is independent of whether the full
// outcome still decodes, so a scenario blob written by an
// incompatible build fails closed (explicit error) instead of falling
// through to the sweep renderer.
func isScenarioResult(raw []byte) bool {
	var probe struct {
		Scenario string `json:"scenario"`
	}
	return json.Unmarshal(raw, &probe) == nil && probe.Scenario != ""
}
