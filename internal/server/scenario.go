package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"dabench/internal/jobs"
	"dabench/internal/scenario"
)

// scenarioInfo is one library entry in the GET /v1/scenarios listing.
type scenarioInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Platforms   []string `json:"platforms"`
	// Points is the total compile/run pairs the scenario executes
	// (grid size × platform count).
	Points int `json:"points"`
}

// libraryInfos resolves the immutable built-in library once (at server
// construction) so the listing endpoint is a plain write, not a
// revalidation of every scenario per request.
func libraryInfos() ([]scenarioInfo, error) {
	lib := scenario.Library()
	infos := make([]scenarioInfo, 0, len(lib))
	for _, sc := range lib {
		n, err := sc.Points()
		if err != nil {
			return nil, fmt.Errorf("library scenario %q is invalid: %w", sc.Name, err)
		}
		infos = append(infos, scenarioInfo{
			Name: sc.Name, Description: sc.Description,
			Platforms: sc.Platforms, Points: n,
		})
	}
	return infos, nil
}

func (s *Server) handleScenarioList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]scenarioInfo{"scenarios": s.scenarios})
}

// scenarioFormat validates the ?format= parameter shared by the
// scenario endpoints. dflt is what an empty parameter means: the
// GET endpoint defaults to the CLI's text rendering (CI diffs the
// two), the POST endpoint to the JSON document.
func scenarioFormat(w http.ResponseWriter, r *http.Request, dflt string) (string, bool) {
	format := r.URL.Query().Get("format")
	switch format {
	case "":
		return dflt, true
	case "text", "table":
		return "text", true
	case "csv", "json":
		return format, true
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"unknown format "+strconv.Quote(format)+" (valid: text, table, csv, json)")
		return "", false
	}
}

// handleScenarioGet runs one built-in library scenario synchronously.
// It sits behind the admission gate (wired in New), so it shares the
// in-flight budget and request deadline with the other heavy
// endpoints.
func (s *Server) handleScenarioGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sc, ok := scenario.ByName(name)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown scenario "+strconv.Quote(name))
		return
	}
	format, ok := scenarioFormat(w, r, "text")
	if !ok {
		return
	}
	out, err := scenario.Run(r.Context(), sc, scenario.RunOptions{})
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	writeScenario(w, out, format)
}

// handleScenarioSubmit executes a posted scenario document: under the
// synchronous point budget it runs inline (admission-gated like every
// heavy request); over it, the document is journaled as an async job
// on the background pool and answered 202 + Location, exactly like
// POST /v1/jobs. The async result document is byte-identical to the
// synchronous response for the same scenario — both paths encode one
// scenario.Outcome with the same encoder.
func (s *Server) handleScenarioSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "read body: "+err.Error())
		return
	}
	sc, err := scenario.Parse(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	format, ok := scenarioFormat(w, r, "json")
	if !ok {
		return
	}
	total, err := sc.Points()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}

	if total > s.cfg.MaxSweepPoints {
		// Too heavy for a synchronous answer: hand it to the job
		// subsystem. The journaled request wraps the client's exact
		// bytes so replay re-executes what was submitted.
		if total > s.cfg.MaxJobPoints {
			s.writeJobCapExceeded(w, "scenario", int64(total))
			return
		}
		v, err := s.jobs.Submit(scenarioJobRequest(raw), total)
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			s.writeQueueFull(w)
			return
		case errors.Is(err, jobs.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, CodeInternal, "job manager is shut down")
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+v.ID)
		writeJSON(w, http.StatusAccepted, v)
		return
	}

	if !s.acquire(w) {
		return
	}
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	out, err := scenario.Run(ctx, sc, scenario.RunOptions{})
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	writeScenario(w, out, format)
	s.served.Add(1)
}

// writeScenario renders one scenario outcome in the requested format.
// Text and CSV go through Outcome.Render — the shared
// experiments.Result.Render path that keeps the bytes identical to the
// CLI's stdout and the async job result for the same scenario.
func writeScenario(w http.ResponseWriter, out *scenario.Outcome, format string) {
	switch format {
	case "json":
		writeJSON(w, http.StatusOK, out)
	case "csv":
		var buf bytes.Buffer
		if err := out.Render(&buf, true); err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	default: // text
		var buf bytes.Buffer
		if err := out.Render(&buf, false); err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	}
}

// jobEnvelope distinguishes journaled job request vocabularies: sweep
// requests are journaled bare (the original /v1/jobs wire form, kept
// for journal compatibility), scenario requests wrapped with a kind
// marker. SweepRequest has no "kind" field and is decoded strictly at
// submission, so no sweep body can alias a scenario envelope.
type jobEnvelope struct {
	Kind     string          `json:"kind"`
	Scenario json.RawMessage `json:"scenario"`
}

// scenarioJobRequest wraps a scenario document's exact client bytes in
// the journal envelope.
func scenarioJobRequest(raw []byte) json.RawMessage {
	buf := make([]byte, 0, len(raw)+len(`{"kind":"scenario","scenario":}`))
	buf = append(buf, `{"kind":"scenario","scenario":`...)
	buf = append(buf, raw...)
	buf = append(buf, '}')
	return buf
}

// runScenarioJob executes one journaled scenario on the background
// pool, reporting chunked progress. The result document is encoded
// exactly as the synchronous handler encodes its response.
func (s *Server) runScenarioJob(ctx context.Context, raw json.RawMessage, progress func(done, failed int)) (json.RawMessage, error) {
	sc, err := scenario.Parse(raw)
	if err != nil {
		return nil, err
	}
	total, err := sc.Points()
	if err != nil {
		return nil, err
	}
	if total > s.cfg.MaxJobPoints {
		// Replayed from a journal written under a larger cap.
		return nil, fmt.Errorf("scenario of %d points exceeds the job cap of %d", total, s.cfg.MaxJobPoints)
	}
	out, err := scenario.Run(ctx, sc, scenario.RunOptions{
		Workers:  s.cfg.JobSweepWorkers,
		Progress: progress,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// isScenarioResult classifies a stored job result by probing the
// "scenario" field alone — a SweepResponse has no such field and can
// never produce a non-empty one, and the one-field probe avoids
// materializing a multi-megabyte result document twice just to
// classify it. Classification is independent of whether the full
// outcome still decodes, so a scenario blob written by an
// incompatible build fails closed (explicit error) instead of falling
// through to the sweep renderer.
func isScenarioResult(raw []byte) bool {
	var probe struct {
		Scenario string `json:"scenario"`
	}
	return json.Unmarshal(raw, &probe) == nil && probe.Scenario != ""
}
