package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"dabench/internal/faults"
	"dabench/internal/jobs"
	"dabench/internal/platform"
	"dabench/internal/report"
	"dabench/internal/scenario"
	"dabench/internal/sweep"
)

// jobChunk is how many points one journal/progress beat covers: large
// enough to amortize the bookkeeping, small enough that progress and
// cancellation stay responsive. It is also the retry/quarantine unit:
// a failing chunk is retried whole and, past the budget, quarantined
// whole.
const jobChunk = 256

// runChunk executes one job chunk [lo, hi) under the chunk retry
// policy: a hard error (anything sweep.Tolerating lets through) backs
// off and retries the whole chunk up to Config.ChunkRetries attempts.
// Point compiles are memoized, so a retry only re-runs what actually
// failed. Context errors are never retried — cancellation must stay
// prompt. Returns the outcomes, the attempts consumed, and the final
// error if the budget ran dry.
func (s *Server) runChunk(ctx context.Context, a *sweepAxes, lo, hi int) ([]sweep.Outcome[RunResult], int, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		err := s.cfg.Injector.Fire(faults.OpChunkRun)
		var outs []sweep.Outcome[RunResult]
		if err == nil {
			outs, err = sweep.MapN(ctx, hi-lo, func(_ context.Context, i int) (RunResult, error) {
				spec, _, err := a.point(lo + i)
				if err != nil {
					return RunResult{}, err
				}
				return runPoint(a.p, spec)
			}, sweep.Workers(s.cfg.JobSweepWorkers), sweep.Tolerating(platform.IsCompileFailure))
		}
		if err == nil {
			return outs, attempt, nil
		}
		lastErr = err
		if ctx.Err() != nil || attempt >= s.cfg.ChunkRetries {
			return nil, attempt, lastErr
		}
		s.chunkRetries.Add(1)
		select {
		case <-time.After(s.cfg.ChunkRetryBackoff << (attempt - 1)):
		case <-ctx.Done():
			return nil, attempt, lastErr
		}
	}
}

// handleJobSubmit accepts a SweepRequest of (nearly) any size for
// asynchronous execution: validation is synchronous and strict — a bad
// request must fail at submission, not hours later in the executor —
// but the cross product is only counted, never materialized.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "read body: "+err.Error())
		return
	}
	req, err := decodeSweepRequest(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	a, err := req.axes()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	n := a.product()
	if n > int64(s.cfg.MaxJobPoints) {
		s.writeJobCapExceeded(w, "job", n)
		return
	}

	// Journal the raw body, not a re-marshaled struct: replay must
	// re-execute exactly what the client sent.
	v, err := s.jobs.Submit(json.RawMessage(raw), int(n))
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.writeQueueFull(w)
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, CodeInternal, "job manager is shut down")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+v.ID)
	writeJSON(w, http.StatusAccepted, v)
}

// writeJobCapExceeded answers a submission whose cross product exceeds
// the async job cap: the one structured rejection both the sweep and
// scenario submission paths share.
func (s *Server) writeJobCapExceeded(w http.ResponseWriter, what string, requested int64) {
	writeJSON(w, http.StatusTooManyRequests, errorEnvelope{Error: ErrorBody{
		Code:            CodeSweepTooLarge,
		Message:         fmt.Sprintf("%s of %d points exceeds the job cap of %d", what, requested, s.cfg.MaxJobPoints),
		Limit:           s.cfg.MaxJobPoints,
		RequestedPoints: requested,
	}})
}

// writeQueueFull answers a job submission that found the queue full:
// 429 with a Retry-After derived from how much work is actually
// queued, so a deep backlog pushes clients out further than a blip.
func (s *Server) writeQueueFull(w http.ResponseWriter) {
	s.setRetryAfter(w, int(s.jobs.Queued()))
	writeError(w, http.StatusTooManyRequests, CodeQueueFull, "job queue is full; retry later")
}

// decodeSweepRequest parses raw strictly (unknown fields and trailing
// data are client errors), mirroring the synchronous path's decode.
func decodeSweepRequest(raw []byte) (SweepRequest, error) {
	var req SweepRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("decode body: %w", err)
	}
	if dec.More() {
		return req, errors.New("decode body: trailing data after JSON value")
	}
	return req, nil
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]jobs.View{"jobs": s.jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job "+strconv.Quote(id))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	format := r.URL.Query().Get("format")
	switch format {
	case "", "csv", "table":
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"unknown format "+strconv.Quote(format)+" (valid: csv, table, or empty for JSON)")
		return
	}
	raw, err := s.jobs.Result(id)
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job "+strconv.Quote(id))
		return
	case errors.Is(err, jobs.ErrNotFinished):
		writeError(w, http.StatusConflict, CodeNotReady, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	// A finished job's result is immutable, so its ETag only exists
	// once Result succeeds — an unfinished job must keep answering 409,
	// not 304. The check sits after the (cheap) result fetch but before
	// any rendering.
	etag := s.jobResultETag(id, format)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		s.writeNotModified(w, etag)
		return
	}
	if format == "" {
		// The stored document is the /v1/sweep encoder's exact output;
		// serving the bytes untouched keeps async results byte-identical
		// to their synchronous equivalents.
		serveWithETag(w, etag, ctJSON, raw)
		return
	}

	if isScenarioResult(raw) {
		// A scenario job: its tables render through the same shared
		// path as the synchronous endpoint and the CLI, byte for byte.
		// A blob that classifies as a scenario but no longer decodes
		// (written by an incompatible build) is an explicit error, not
		// a silent fall-through to the sweep renderer.
		var out scenario.Outcome
		if err := json.Unmarshal(raw, &out); err != nil || len(out.Tables) == 0 {
			writeError(w, http.StatusInternalServerError, CodeInternal,
				"stored scenario result for "+strconv.Quote(id)+" does not decode (written by an incompatible version?)")
			return
		}
		body, contentType, rerr := renderScenario(&out, format) // "csv" or "table" (rendered as text) here
		if rerr != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, rerr.Error())
			return
		}
		serveWithETag(w, etag, contentType, body)
		return
	}

	var resp SweepResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "stored result corrupt: "+err.Error())
		return
	}
	tbl := report.New(fmt.Sprintf("Job %s — %s, %d points, %d failed", id, resp.Platform, resp.Points, resp.Failed),
		"Label", "Status", "Step time s", "Tokens/s", "TFLOPS", "Efficiency")
	for _, res := range resp.Results {
		if res.Failed {
			tbl.Add(res.Label, "Fail", "-", "-", "-", "-")
			continue
		}
		tbl.Add(res.Label, "ok", report.F(res.StepTimeSec), report.F(res.TokensPerSec),
			report.F(res.TFLOPS), report.F(res.Efficiency))
	}
	var buf bytes.Buffer
	var rerr error
	contentType := "text/plain; charset=utf-8"
	if format == "csv" {
		contentType = "text/csv; charset=utf-8"
		rerr = tbl.WriteCSV(&buf)
	} else {
		rerr = tbl.WriteText(&buf)
	}
	if rerr != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, rerr.Error())
		return
	}
	serveWithETag(w, etag, contentType, buf.Bytes())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := s.jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job "+strconv.Quote(id))
		return
	case errors.Is(err, jobs.ErrFinished):
		writeError(w, http.StatusConflict, CodeConflict,
			fmt.Sprintf("job %s already finished (%s)", id, v.State))
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// runJob is the jobs.RunFunc: execute one journaled SweepRequest on
// the background pool, chunk by chunk. Each chunk re-derives its specs
// from the axes (the full product is never materialized), fans out on
// sweep.MapN with the dedicated job pool size, and reports cumulative
// progress. The assembled result is encoded exactly as the synchronous
// sweep handler encodes its response.
func (s *Server) runJob(ctx context.Context, raw json.RawMessage, progress func(done, failed int)) (json.RawMessage, error) {
	// Scenario jobs are journaled inside a kind-marked envelope; bare
	// bodies are the original sweep vocabulary. A sweep request can
	// never alias the envelope: its strict submission decode rejects a
	// "kind" field.
	var env jobEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Kind == "scenario" {
		return s.runScenarioJob(ctx, env.Scenario, progress)
	}

	req, err := decodeSweepRequest(raw)
	if err != nil {
		return nil, err
	}
	a, err := req.axes()
	if err != nil {
		return nil, err
	}
	n := int(a.product())
	if n > s.cfg.MaxJobPoints {
		// Replayed from a journal written under a larger cap.
		return nil, fmt.Errorf("job of %d points exceeds the job cap of %d", n, s.cfg.MaxJobPoints)
	}

	// With a fabric attached, chunks shard across the fleet: the job key
	// (a digest of the raw body — journal-stable, so a replayed job
	// shards identically) places the job on the ring, and the rotation in
	// ChunkNodes spreads consecutive chunks across its owners. The raw
	// body travels with each dispatch so the remote node re-derives the
	// same axes this node validated.
	var jobKey string
	if s.cluster() != nil {
		sum := sha256.Sum256(raw)
		jobKey = hex.EncodeToString(sum[:])
	}

	resp := SweepResponse{Platform: a.p.Name(), Points: n}
	resp.Results = make([]RunResult, 0, n)
	for lo := 0; lo < n; lo += jobChunk {
		hi := min(lo+jobChunk, n)
		if rr, ok := s.runRemoteChunk(ctx, jobKey, raw, lo/jobChunk, lo, hi); ok {
			resp.Results = append(resp.Results, rr.Results...)
			resp.Failed += rr.Failed
			progress(hi, resp.Failed)
			continue
		}
		outs, attempts, err := s.runChunk(ctx, a, lo, hi)
		if err != nil {
			if ctx.Err() != nil {
				// Cancellation and shutdown keep their wholesale semantics:
				// the manager turns them into cancelled/revived, and a
				// quarantine entry would misclassify them as poison.
				return nil, err
			}
			// Poison chunk: quarantine it and keep going. The job finishes
			// done with the surviving chunks' results plus this manifest —
			// partial data beats losing an hours-long sweep to one chunk.
			s.chunksQuarantined.Add(1)
			resp.FailedChunks = append(resp.FailedChunks, ChunkFailure{
				Chunk: lo / jobChunk, Start: lo, End: hi,
				Attempts: attempts, Error: err.Error(),
			})
			progress(hi, resp.Failed)
			continue
		}
		for i, o := range outs {
			spec, label, _ := a.point(lo + i)
			res := o.Value
			if o.Failed() {
				res = result(a.p, spec, nil, nil)
				res.Failed, res.FailReason = true, o.Err.Error()
				resp.Failed++
			}
			res.Label = label
			resp.Results = append(resp.Results, res)
		}
		progress(hi, resp.Failed)
	}

	// Encode with the same settings writeJSON uses so the stored bytes
	// equal a synchronous response body for the same points (a clean run
	// omits failed_chunks, so the envelopes stay identical).
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runRemoteChunk offers chunk [lo, hi) to its ring-assigned owner when
// that owner is a live remote peer. Only the rotation's first choice is
// consulted: when it is this node, the chunk is local by assignment (no
// reassignment counted); when it is a dead or breaker-open peer, or the
// dispatch fails, the chunk is reassigned to local execution — the same
// recompute fallback every other peer interaction has. The peer's
// ChunkResponse carries fully-labeled results produced by the exact
// code path the local chunk loop runs, so sharded job results stay
// byte-identical to single-node ones.
func (s *Server) runRemoteChunk(ctx context.Context, jobKey string, raw json.RawMessage, chunk, lo, hi int) (ChunkResponse, bool) {
	f := s.cluster()
	if f == nil {
		return ChunkResponse{}, false
	}
	nodes := f.ChunkNodes(jobKey, chunk)
	if len(nodes) == 0 || nodes[0] == f.NodeID() {
		return ChunkResponse{}, false
	}
	owner := nodes[0]
	if !f.ChunkEligible(owner) {
		f.NoteReassigned()
		return ChunkResponse{}, false
	}
	// Assemble the wire body around the raw journaled bytes — no
	// re-marshal of the request, so the remote decodes exactly what this
	// node validated.
	body := make([]byte, 0, len(raw)+64)
	body = append(body, `{"request":`...)
	body = append(body, raw...)
	body = append(body, `,"start":`...)
	body = strconv.AppendInt(body, int64(lo), 10)
	body = append(body, `,"end":`...)
	body = strconv.AppendInt(body, int64(hi), 10)
	body = append(body, '}')
	data, err := f.ExecuteChunk(ctx, owner, body)
	if err != nil {
		f.NoteReassigned()
		return ChunkResponse{}, false
	}
	var rr ChunkResponse
	if err := json.Unmarshal(data, &rr); err != nil || len(rr.Results) != hi-lo {
		// A peer answer that does not decode to exactly this range is
		// discarded, not patched: recomputing locally is cheap and always
		// right.
		f.NoteReassigned()
		return ChunkResponse{}, false
	}
	return rr, true
}
