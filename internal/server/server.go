// Package server puts the cached compile/run pipeline behind a
// long-lived HTTP JSON API — the dabenchd daemon. Where the CLI dies
// with its process, the server's hot state (the graph/compile/run
// singleflight tiers behind experiments.SharedPlatform) amortizes
// across requests: identical specs coalesce to one compile whether
// they arrive concurrently or hours apart, and a warm experiment
// re-render costs cache lookups, not simulation.
//
// Endpoints:
//
//	GET  /healthz               liveness
//	GET  /v1/stats              per-tier cache counters + serving counters
//	POST /v1/run                one compile+run of a TrainSpec-shaped request
//	POST /v1/sweep              batch sweep (layer × batch × precision cross product)
//	GET  /v1/experiments        list paper artifact IDs
//	GET  /v1/experiments/{id}   rendered artifact (?format=text|csv|trace)
//
// Admission control is a bounded semaphore sized off the sweep worker
// pool: when every simulation slot is busy the heavy endpoints answer
// 429 immediately instead of queueing unboundedly. Each admitted
// request runs under a deadline threaded through every sweep it fans
// out (/v1/sweep points, /v1/experiments runners), so a dropped client
// or a drain stops the worker pool instead of simulating into the
// void; /v1/run's single compile+run is the pipeline's atomic unit,
// with the deadline honored at its stage boundaries. Graceful drain is
// the caller's http.Server Shutdown: in-flight requests finish, new
// ones are refused.
package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dabench/internal/cachestats"
	"dabench/internal/cluster"
	"dabench/internal/experiments"
	"dabench/internal/faults"
	"dabench/internal/jobs"
	"dabench/internal/memo"
	"dabench/internal/platform"
	"dabench/internal/provenance"
	"dabench/internal/store"
	"dabench/internal/sweep"
	"dabench/internal/telemetry"
	"dabench/internal/version"
)

// Config tunes one Server.
type Config struct {
	// MaxInFlight bounds concurrently admitted heavy requests
	// (run/sweep/experiments). 0 means twice the sweep worker pool:
	// enough headroom for duplicate specs to coalesce in the
	// singleflight cells while the pool is busy, without unbounded
	// queueing.
	MaxInFlight int
	// RequestTimeout is the per-request deadline threaded into every
	// sweep (default 2m).
	RequestTimeout time.Duration
	// MaxSweepPoints caps one synchronous /v1/sweep request's cross
	// product (default 1024). A request's own budget may only lower
	// it; larger sweeps belong on POST /v1/jobs.
	MaxSweepPoints int

	// RespCacheBudget bounds the in-memory response-byte cache (L0) in
	// bytes: pre-marshaled bodies served without any JSON work on a
	// warm hit. 0 means the 32 MiB default; negative disables the tier
	// entirely (every warm request falls through to the memo tiers and
	// the store's raw path).
	RespCacheBudget int64

	// Store is the persistent result store whose counters /v1/stats
	// reports (the wiring into the pipeline itself happens via
	// experiments.SetResultStore). Nil when serving RAM-only.
	Store *store.Store

	// JobsDir is the job journal/results directory; "" runs the job
	// subsystem ephemeral (full lifecycle, no restart durability).
	JobsDir string
	// JobSweepWorkers is the background pool size each async job's
	// sweeps fan out on (default: half the process sweep pool, min 1 —
	// batch work must not starve interactive requests).
	JobSweepWorkers int
	// MaxJobPoints caps one job's cross product (default 1<<20). Jobs
	// hold their full result in memory while accumulating, so this is
	// a memory bound, not a latency one.
	MaxJobPoints int

	// ChunkRetries is the total attempts per failed job chunk before it
	// is quarantined (default 3); ChunkRetryBackoff the initial
	// exponential backoff between attempts (default 50ms).
	ChunkRetries      int
	ChunkRetryBackoff time.Duration
	// Injector is the optional fault injector: fired at the job
	// executor's chunk boundary, handed to the job journal, and snap-
	// shotted into /v1/stats. Nil injects nothing.
	Injector *faults.Injector

	// Provenance is the hash-linked blob lineage log GET
	// /v1/provenance/{addr} answers from (and /metrics gauges). Nil —
	// no data dir — disables the endpoint.
	Provenance *provenance.Log

	// Cluster is the multi-node result fabric (nil = single node). With
	// a Store mounted, the raw serve lane is routed through the fabric's
	// peer-fetch wrapper so local store misses consult the ring before
	// simulating.
	Cluster *cluster.Fabric
	// StageLogPath, when set, appends one CSV row of per-stage timings
	// for every served request (the flight-recorder complement to the
	// /metrics histograms).
	StageLogPath string
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * sweep.DefaultWorkers()
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 1024
	}
	if c.RespCacheBudget == 0 {
		c.RespCacheBudget = 32 << 20
	}
	if c.JobSweepWorkers <= 0 {
		c.JobSweepWorkers = max(1, sweep.DefaultWorkers()/2)
	}
	if c.MaxJobPoints <= 0 {
		c.MaxJobPoints = 1 << 20
	}
	if c.ChunkRetries <= 0 {
		c.ChunkRetries = 3
	}
	if c.ChunkRetryBackoff <= 0 {
		c.ChunkRetryBackoff = 50 * time.Millisecond
	}
	return c
}

// Stats is the /v1/stats payload: serving counters plus a snapshot of
// every cache tier the pipeline runs on, the persistent store's
// counters (when one is mounted) and the job manager's gauges.
type Stats struct {
	InFlight     int64                          `json:"in_flight"`
	Served       int64                          `json:"served"`
	Rejected     int64                          `json:"rejected"`
	MaxInFlight  int                            `json:"max_in_flight"`
	SweepWorkers int                            `json:"sweep_workers"`
	UptimeSec    float64                        `json:"uptime_sec"`
	Version      string                         `json:"version"`
	Caches       map[string]cachestats.Snapshot `json:"caches"`
	// RespCache is the L0 response-byte tier's counters (absent when
	// the tier is disabled); NotModified counts 304 fast-lane answers;
	// BlobUpgrades mirrors the store's v1→v2 frame rewrites (0 without
	// a store).
	RespCache    *cachestats.ByteSnapshot `json:"resp_cache,omitempty"`
	NotModified  int64                    `json:"not_modified"`
	BlobUpgrades int64                    `json:"blob_upgrades"`
	Store        *store.Stats             `json:"store,omitempty"`
	Jobs         *jobs.Gauges             `json:"jobs,omitempty"`
	// Resilience counters: chunk-level job retries and quarantines, plus
	// the fault injector's fire counts when one is mounted.
	ChunkRetries      int64         `json:"chunk_retries,omitempty"`
	ChunksQuarantined int64         `json:"chunks_quarantined,omitempty"`
	Faults            *faults.Stats `json:"faults,omitempty"`
	// Cluster is the fabric's snapshot (absent on a single node):
	// peer liveness views, peer-fetch counters, chunk sharding counters.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

// Server is the dabenchd HTTP handler. Create with New; the zero value
// is not usable.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	sem  chan struct{}
	jobs *jobs.Manager
	// scenarios is the built-in library's listing payload, resolved
	// once at construction (the library is immutable).
	scenarios []scenarioInfo

	// resp is the L0 response-byte cache (nil when disabled); raw the
	// store's byte-level read path (nil without a store). unhookReset
	// detaches resp from experiments.ResetCaches on Close.
	resp        *memo.ByteLRU[string, *respEntry]
	raw         platform.RawResponseStore
	unhookReset func()

	// reg is the /metrics registry; stageHist the pre-resolved
	// (endpoint, stage) histogram grid (nil cells are stages that
	// endpoint never records); pipeHist the per-platform simulator-work
	// histograms fed by the experiments stage hook. stageLog is the
	// optional CSV flight recorder.
	reg       *telemetry.Registry
	stageHist [nEndpoints][nStages]*telemetry.Histogram
	pipeHist  map[string]*telemetry.Histogram
	stageLog  *stageLog

	// fabric is the attached cluster fabric (nil single-node); an
	// atomic pointer so tests can attach one after their httptest
	// servers exist (peer URLs are unknowable before Listen).
	// fabricRaw is the fabric's peer-fetch wrapper over the store,
	// shadowing raw when set — atomic for the same late-attach reason.
	fabric    atomic.Pointer[cluster.Fabric]
	fabricRaw atomic.Pointer[cluster.FabricStore]

	inFlight          atomic.Int64
	served            atomic.Int64
	rejected          atomic.Int64
	notModified       atomic.Int64
	chunkRetries      atomic.Int64
	chunksQuarantined atomic.Int64
	start             time.Time
}

// New builds a Server over the process-wide cached platform set,
// opening (and, when JobsDir is set, replaying) the async job manager.
// Callers own Close.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
	}
	if cfg.RespCacheBudget > 0 {
		s.resp = memo.NewByteLRU[string, *respEntry](cfg.RespCacheBudget)
		// L0 holds marshaled copies of what the tiers below compute;
		// it must drop in lockstep when those tiers are reset.
		s.unhookReset = experiments.OnReset(s.resp.Purge)
	}
	if cfg.Store != nil {
		s.raw = cfg.Store
	}
	if cfg.Cluster != nil {
		s.SetCluster(cfg.Cluster)
	}
	s.initMetrics()
	if cfg.StageLogPath != "" {
		sl, err := openStageLog(cfg.StageLogPath)
		if err != nil {
			if s.unhookReset != nil {
				s.unhookReset()
			}
			return nil, err
		}
		s.stageLog = sl
	}
	jm, err := jobs.Open(jobs.Config{Dir: cfg.JobsDir, Run: s.runJob, Injector: cfg.Injector})
	if err != nil {
		if s.unhookReset != nil {
			s.unhookReset()
		}
		if s.stageLog != nil {
			_ = s.stageLog.Close()
		}
		return nil, err
	}
	s.jobs = jm
	if s.scenarios, err = libraryInfos(); err != nil {
		s.Close()
		return nil, err
	}
	// The pipeline stage hook is process-global (it must survive the
	// cached-platform rebuilds SetResultStore triggers); the last server
	// constructed owns it, and Close unmounts it. One daemon process
	// runs one server, so the global is only contended in tests.
	experiments.SetStageHook(s.pipelineStage)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/provenance/{addr}", s.handleProvenance)
	// Cluster fabric endpoints (see cluster.go); registered even on a
	// single node so a fleet can form around a node that booted first.
	s.mux.HandleFunc("GET /v1/gossip", s.handleGossip)
	s.mux.HandleFunc("GET /v1/blobs/{addr}", s.handleBlob)
	s.mux.HandleFunc("POST /v1/chunks", s.handleChunk)
	// The warm-path endpoints manage admission inline: their ETag/304
	// and response-byte fast lanes answer repeat requests before ever
	// claiming a simulation slot, so only the compute path is gated.
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarioList)
	s.mux.HandleFunc("GET /v1/scenarios/{name}", s.handleScenarioGet)
	// Scenario submission manages admission itself: a document under
	// the sync budget runs inline on an admission slot, a larger one
	// becomes an async job (submission is cheap, so it must not burn a
	// simulation slot or be shed while slots are busy).
	s.mux.HandleFunc("POST /v1/scenarios", s.handleScenarioSubmit)
	// Job endpoints skip the admission gate on purpose: submission and
	// observation are cheap, and the executor's background pool — not
	// the in-flight semaphore — is the bounded resource.
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	return s, nil
}

// Close stops the job manager (running jobs are interrupted; with a
// JobsDir they revive on the next boot) and detaches the response
// cache's reset hook. The HTTP listener's drain is the caller's
// http.Server.Shutdown, done before this.
func (s *Server) Close() {
	experiments.SetStageHook(nil)
	if s.unhookReset != nil {
		s.unhookReset()
		s.unhookReset = nil
	}
	if s.stageLog != nil {
		_ = s.stageLog.Close()
		s.stageLog = nil
	}
	s.jobs.Close()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// acquire claims one admission slot, answering 429 (with a
// load-derived Retry-After) when every slot is busy — shedding load
// beats queueing it when every slot is a full simulation sweep. On
// success the caller must release.
func (s *Server) acquire(w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return true
	default:
		s.rejected.Add(1)
		// The backoff signal is all the work already queued ahead of a
		// retry: the busy admission slots plus the async job backlog
		// draining on the same simulation cores (in-flight alone is
		// capped at the slot count and could never scale the advice).
		// Queued is one atomic load — the shed path stays O(1) under a
		// saturation storm.
		s.setRetryAfter(w, int(s.inFlight.Load())+int(s.jobs.Queued()))
		writeError(w, http.StatusTooManyRequests, CodeSaturated,
			"all "+strconv.Itoa(cap(s.sem))+" simulation slots are busy; retry shortly")
		return false
	}
}

// release returns an admission slot claimed by acquire.
func (s *Server) release() {
	s.inFlight.Add(-1)
	<-s.sem
}

// retryAfterSecs derives a Retry-After hint from the amount of work
// already waiting: one second when lightly loaded, plus one second per
// full admission pool's worth of queued depth, clamped to a minute.
// Both 429 sites (the admission gate and the job queue) derive their
// header from this one function, so clients see consistent backoff
// advice that scales with actual pressure instead of a hardcoded
// constant.
func retryAfterSecs(depth, slots int) int {
	if slots < 1 {
		slots = 1
	}
	if depth < 0 {
		depth = 0
	}
	secs := 1 + depth/slots
	if secs > 60 {
		secs = 60
	}
	return secs
}

// setRetryAfter stamps the Retry-After header for a 429 given the
// current queued-work depth.
func (s *Server) setRetryAfter(w http.ResponseWriter, depth int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(depth, cap(s.sem))))
}

// componentHealth is one subsystem's entry in the /healthz body.
type componentHealth struct {
	Status string `json:"status"` // ok | degraded | disabled
	Detail string `json:"detail,omitempty"`
}

// healthResponse is the multi-state /healthz body. The HTTP status is
// always 200 while the process serves — degradation is a body-level
// fact, because a degraded daemon still answers every request (the
// store and journal are optimization/durability tiers, not correctness
// dependencies). Orchestrators that only check the status code see
// liveness; ones that parse the body see the difference.
type healthResponse struct {
	Status     string                     `json:"status"` // ok | degraded
	Components map[string]componentHealth `json:"components"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := healthResponse{Status: "ok", Components: map[string]componentHealth{}}

	storeHealth := componentHealth{Status: "disabled", Detail: "serving RAM-only (no -data-dir)"}
	if s.cfg.Store != nil {
		storeHealth = componentHealth{Status: "ok"}
		if s.cfg.Store.Degraded() {
			storeHealth = componentHealth{Status: "degraded",
				Detail: "a circuit breaker is open; serving from memo tiers and recompute"}
		}
	}
	resp.Components["store"] = storeHealth

	gauges := s.jobs.Stats()
	journalHealth := componentHealth{Status: "disabled", Detail: "ephemeral job manager (no journal)"}
	if gauges.Journal != nil {
		journalHealth = componentHealth{Status: "ok"}
		if gauges.Journal.Degraded {
			journalHealth = componentHealth{Status: "degraded",
				Detail: "journal writes failing; job state is in-memory only"}
		}
	}
	resp.Components["journal"] = journalHealth

	jobsHealth := componentHealth{Status: "ok"}
	if q := s.chunksQuarantined.Load(); q > 0 {
		jobsHealth = componentHealth{Status: "degraded",
			Detail: strconv.FormatInt(q, 10) + " chunk(s) quarantined; affected jobs carry failed_chunks manifests"}
	}
	resp.Components["jobs"] = jobsHealth

	// The cluster component only exists with a fabric attached; a
	// single-node /healthz body is unchanged. Dead peers degrade this
	// node's health honestly — it still serves everything, just without
	// the fabric's warm-anywhere guarantee.
	if cs := s.cluster().Stats(); cs != nil {
		clusterHealth := componentHealth{Status: "ok",
			Detail: strconv.Itoa(cs.PeersAlive) + "/" + strconv.Itoa(cs.RingNodes-1) + " peers alive"}
		if cs.PeersDead > 0 {
			clusterHealth.Status = "degraded"
			clusterHealth.Detail = strconv.Itoa(cs.PeersDead) + " peer(s) unreachable; their blobs fall back to simulation"
		}
		resp.Components["cluster"] = clusterHealth
	}

	for _, c := range resp.Components {
		if c.Status == "degraded" {
			resp.Status = "degraded"
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := Stats{
		InFlight:     s.inFlight.Load(),
		Served:       s.served.Load(),
		Rejected:     s.rejected.Load(),
		MaxInFlight:  cap(s.sem),
		SweepWorkers: sweep.DefaultWorkers(),
		UptimeSec:    time.Since(s.start).Seconds(),
		Version:      version.Version,
		Caches: map[string]cachestats.Snapshot{
			"compile": experiments.CacheStats().Snapshot(),
			"run":     experiments.RunCacheStats().Snapshot(),
			"graph":   experiments.GraphCacheStats().Snapshot(),
		},
	}
	if s.resp != nil {
		snap := s.resp.Stats().Snapshot()
		st.RespCache = &snap
	}
	st.NotModified = s.notModified.Load()
	if s.cfg.Store != nil {
		snap := s.cfg.Store.Stats()
		st.Store = &snap
		st.BlobUpgrades = snap.BlobUpgrades
	}
	gauges := s.jobs.Stats()
	st.Jobs = &gauges
	st.ChunkRetries = s.chunkRetries.Load()
	st.ChunksQuarantined = s.chunksQuarantined.Load()
	st.Faults = s.cfg.Injector.Stats()
	st.Cluster = s.cluster().Stats()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	st := newStageTimer(epRun)
	bb, body, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	defer putBodyBuf(bb)
	inm := r.Header.Get("If-None-Match")

	// L0 by request bytes: the verbatim body is itself a cache key, so
	// a repeat POST is answered before any JSON work — no decode, no
	// resolve, no spec hashing, zero allocations. Valid JSON never
	// contains a raw NUL byte while every canonical L0 key namespace
	// embeds one, so a NUL-free body can only hit entries this lane
	// installed (each recorded after its body decoded successfully).
	bodyKeyed := s.resp != nil && bb != nil && bytes.IndexByte(body, 0) < 0
	if bodyKeyed {
		if e, ok := memo.LookupBytes(s.resp, body); ok {
			// Fast lanes bypass admission entirely, but the histogram
			// still gets an explicit zero sample — without it the
			// admission distribution would describe only cold requests.
			st.observe(stgAdmission, 0)
			s.finishStages(w, &st)
			if inm != "" && etagMatches(inm, e.etag) {
				s.writeNotModifiedEntry(w, e)
			} else {
				serveEntry(w, e)
			}
			s.served.Add(1)
			return
		}
	}

	var req RunRequest
	if bb != nil {
		err = decodeBody(bb, body, &req)
	} else {
		err = decode(w, r, &req)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	p, spec, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	key := spec.Key()
	st.observe(stgDecode, time.Since(st.t0))

	// alias installs a served entry under the verbatim body bytes, so
	// the next identical POST takes the zero-decode lane above. The
	// entry is shared with its canonical key; only the key is copied.
	alias := func(e *respEntry) {
		if bodyKeyed && e != nil {
			s.resp.Put(string(body), e, int64(len(body))+respEntryOverhead)
		}
	}

	// L0 by canonical key: catches the same spec spelled as different
	// JSON (field order, defaults made explicit). The entry carries its
	// own ETag, so a conditional hit answers 304 without a hash.
	if s.resp != nil {
		if e, ok := s.resp.Get(runRespKey(p.Name(), key)); ok {
			alias(e)
			st.observe(stgAdmission, 0)
			s.finishStages(w, &st)
			if inm != "" && etagMatches(inm, e.etag) {
				s.writeNotModifiedEntry(w, e)
			} else {
				serveEntry(w, e)
			}
			s.served.Add(1)
			return
		}
	}

	// The ETag is the request's identity, not the response's bytes —
	// computable without running anything, which is what lets a 304
	// skip both the admission gate and the pipeline. A client can only
	// hold a matching tag from a prior 200 of this same identity.
	etag := runETag(p.Name(), key)
	if inm != "" && etagMatches(inm, etag) {
		st.observe(stgAdmission, 0)
		s.finishStages(w, &st)
		s.writeNotModified(w, etag)
		s.served.Add(1)
		return
	}

	// L2 raw: the framed blob's pre-marshaled response section —
	// servable bytes with zero JSON work, refilling L0 on the way out.
	// With a fabric attached this tier reaches through peer fetch, so a
	// spec any fleet member computed serves warm here.
	if rs := s.rawStore(); rs != nil {
		t := time.Now()
		raw, ok := rs.LoadRaw(p.Name(), key)
		st.observe(stgStoreRead, time.Since(t))
		if ok {
			st.observe(stgAdmission, 0)
			s.finishStages(w, &st)
			alias(s.cacheAndServe(w, runRespKey(p.Name(), key), etag, ctJSON, raw))
			s.served.Add(1)
			return
		}
	}

	// Cold: admission gate, deadline, simulate.
	t := time.Now()
	if !s.acquire(w) {
		return
	}
	st.observe(stgAdmission, time.Since(t))
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	alias(s.runSlow(w, r.WithContext(ctx), p, spec, etag, &st))
	s.served.Add(1)
}

// runSlow is /v1/run's compute path: one compile+run under the request
// deadline. A single Compile/Run pair is the pipeline's atomic unit —
// the Platform interface is context-free by design (simulators are
// pure functions, milliseconds each), so the deadline is honored at
// the stage boundaries instead. Returns the cached entry it served, or
// nil on error paths (nothing cacheable was produced).
func (s *Server) runSlow(w http.ResponseWriter, r *http.Request, p platform.CachedPlatform, spec platform.TrainSpec, etag string, st *stageTimer) *respEntry {
	if err := r.Context().Err(); err != nil {
		s.writeRunError(w, err)
		return nil
	}
	t := time.Now()
	cr, err := p.Compile(spec)
	st.observe(stgCompile, time.Since(t))
	if err != nil {
		if platform.IsCompileFailure(err) {
			// A placement failure is a finding — the paper's "Fail"
			// entries — not a request error, and it is as cacheable as
			// a success (the store persists it as a Failed blob).
			res := result(p, spec, nil, nil)
			res.Failed, res.FailReason = true, err.Error()
			return s.finishRun(w, p.Name(), etag, res, st)
		}
		// The simulators validate their inputs in Compile; anything
		// that is neither placement nor validation would have failed
		// spec.Validate above.
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return nil
	}
	if err := r.Context().Err(); err != nil {
		s.writeRunError(w, err)
		return nil
	}
	t = time.Now()
	rr, err := p.Run(cr)
	st.observe(stgRun, time.Since(t))
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return nil
	}
	return s.finishRun(w, p.Name(), etag, result(p, spec, cr, rr), st)
}

// finishRun marshals a run outcome exactly once and fans the bytes out
// to every tier: the client, the L0 response cache, and the store's
// frame response section (write-behind) so the next process boots with
// a byte-warm path. Returns the entry it served (nil if encoding
// failed).
func (s *Server) finishRun(w http.ResponseWriter, platformName, etag string, res RunResult, st *stageTimer) *respEntry {
	t := time.Now()
	buf, err := encodeJSON(res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return nil
	}
	body := append([]byte(nil), buf.Bytes()...)
	putBuf(buf)
	st.observe(stgRender, time.Since(t))
	if rs := s.rawStore(); rs != nil {
		// The enqueue, not the disk write — the store is write-behind,
		// so this is the full store cost the request path pays.
		t = time.Now()
		rs.StoreResponse(platformName, res.SpecKey, body)
		st.observe(stgStoreWrite, time.Since(t))
	}
	s.finishStages(w, st)
	return s.cacheAndServe(w, runRespKey(platformName, res.SpecKey), etag, ctJSON, body)
}

// SweepResponse is the /v1/sweep payload; Results follows the
// deterministic layer-major point order.
type SweepResponse struct {
	Platform string      `json:"platform"`
	Points   int         `json:"points"`
	Failed   int         `json:"failed"`
	Results  []RunResult `json:"results"`
	// FailedChunks is an async job's poison-chunk quarantine manifest:
	// chunks that exhausted their retry budget. The job still finishes
	// done — the listed point ranges are simply absent from Results.
	// Always empty on synchronous sweeps (they fail wholesale instead,
	// preserving their all-or-nothing contract).
	FailedChunks []ChunkFailure `json:"failed_chunks,omitempty"`
}

// ChunkFailure is one quarantined chunk: the half-open point range
// [Start, End) it covered, how many attempts it burned, and the final
// error.
type ChunkFailure struct {
	Chunk    int    `json:"chunk"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	st := newStageTimer(epSweep)
	var req SweepRequest
	if err := decodeLean(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	budget := s.cfg.MaxSweepPoints
	if req.Budget > 0 && req.Budget < budget {
		budget = req.Budget
	}
	p, specs, labels, err := req.points(budget)
	if err != nil {
		var be *BudgetError
		if errors.As(err, &be) {
			// Over-budget rejection happens before admission: refusing
			// work must never queue behind work.
			writeBudgetError(w, be)
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	// Decode covers the body read through the cross-product expansion —
	// everything before the serve/compute decision.
	st.observe(stgDecode, time.Since(st.t0))

	// Fast lane: the ETag pins (pipeline version, platform, ordered
	// point keys) — the whole response identity — so both the 304 and
	// the L0 byte hit skip the admission gate and the worker pool.
	etag := sweepETag(p.Name(), specs)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		st.observe(stgAdmission, 0)
		s.finishStages(w, &st)
		s.writeNotModified(w, etag)
		s.served.Add(1)
		return
	}
	ck := "sweep\x00" + etag
	if s.resp != nil {
		if e, ok := s.resp.Get(ck); ok {
			st.observe(stgAdmission, 0)
			s.finishStages(w, &st)
			serveEntry(w, e)
			s.served.Add(1)
			return
		}
	}

	t := time.Now()
	if !s.acquire(w) {
		return
	}
	st.observe(stgAdmission, time.Since(t))
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	defer s.served.Add(1)

	t = time.Now()
	outs, err := sweep.Map(ctx, specs,
		func(_ context.Context, _ int, spec platform.TrainSpec) (RunResult, error) {
			return runPoint(p, spec)
		})
	st.observe(stgRun, time.Since(t))
	if err != nil {
		s.writeRunError(w, err)
		return
	}

	t = time.Now()
	resp := SweepResponse{Platform: p.Name(), Points: len(outs)}
	resp.Results = make([]RunResult, len(outs))
	for i, o := range outs {
		res := o.Value
		if o.Failed() {
			res = result(p, specs[i], nil, nil)
			res.Failed, res.FailReason = true, o.Err.Error()
			resp.Failed++
		}
		res.Label = labels[i]
		resp.Results[i] = res
	}
	buf, err := encodeJSON(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	body := append([]byte(nil), buf.Bytes()...)
	putBuf(buf)
	st.observe(stgRender, time.Since(t))
	s.finishStages(w, &st)
	s.cacheAndServe(w, ck, etag, ctJSON, body)
}

// runPoint is one sweep point's compile+run — the unit shared by the
// synchronous sweep handler and the async job executor, so the two
// paths cannot drift (job results are byte-identical to sync sweeps of
// the same specs by construction).
func runPoint(p platform.CachedPlatform, spec platform.TrainSpec) (RunResult, error) {
	cr, err := p.Compile(spec)
	if err != nil {
		return RunResult{}, err // placement failures tolerated by default
	}
	rr, err := p.Run(cr)
	if err != nil {
		return RunResult{}, err
	}
	return result(p, spec, cr, rr), nil
}

// writeBudgetError answers an over-budget synchronous sweep: 429 with
// the structured envelope naming the cap and the requested size, plus
// the escape hatch for legitimate large sweeps.
func writeBudgetError(w http.ResponseWriter, be *BudgetError) {
	writeJSON(w, http.StatusTooManyRequests, errorEnvelope{Error: ErrorBody{
		Code:            CodeSweepTooLarge,
		Message:         be.Error(),
		Limit:           be.Budget,
		RequestedPoints: be.Points,
		Hint:            "submit large sweeps asynchronously via POST /v1/jobs",
	}})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"experiments": experiments.IDs()})
}

// handleExperiment manages admission inline (it was the last admit-
// wrapped handler): validation rejects answer before claiming a slot,
// and the stage timer needs the acquire duration the wrapper hid.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	st := newStageTimer(epExperiment)
	id := r.PathValue("id")
	runner, ok := experiments.All()[id]
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown experiment "+strconv.Quote(id))
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "text", "csv", "trace":
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"unknown format "+strconv.Quote(format)+" (valid: text, csv, trace)")
		return
	}

	t := time.Now()
	if !s.acquire(w) {
		return
	}
	st.observe(stgAdmission, time.Since(t))
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	defer s.served.Add(1)

	t = time.Now()
	res, err := runner(ctx)
	st.observe(stgRun, time.Since(t))
	if err != nil {
		s.writeRunError(w, err)
		return
	}

	t = time.Now()
	switch format {
	case "trace":
		buf, err := encodeJSON(res.Trace)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		st.observe(stgRender, time.Since(t))
		s.finishStages(w, &st)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		_, _ = w.Write(buf.Bytes())
		putBuf(buf)
	case "csv":
		var buf bytes.Buffer
		if err := res.Render(&buf, true); err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		st.observe(stgRender, time.Since(t))
		s.finishStages(w, &st)
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	default:
		// The text body goes through the same Render path as the CLI's
		// stdout, byte for byte — CI diffs the two.
		var buf bytes.Buffer
		if err := res.Render(&buf, false); err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
			return
		}
		st.observe(stgRender, time.Since(t))
		s.finishStages(w, &st)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	}
}

// handleProvenance answers one blob's chain record: where a served
// result came from (platform, spec key, pipeline version) and where it
// sits in the tamper-evident chain. The address is exactly the
// unquoted ETag /v1/run returns for the same outcome.
func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Provenance == nil {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"no provenance log (the daemon is running without -data-dir)")
		return
	}
	addr := r.PathValue("addr")
	rec, ok := s.cfg.Provenance.Lookup(addr)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			"no provenance record for "+strconv.Quote(addr))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// writeRunError maps a pipeline error to the wire: deadline → 504,
// client gone → nothing useful to send, anything else → 500.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeTimeout, "request deadline exceeded mid-sweep")
	case errors.Is(err, context.Canceled):
		// The client hung up; 499-style best effort.
		writeError(w, 499, CodeTimeout, "request canceled")
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}
