package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dabench/internal/experiments"
	"dabench/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	var got healthResponse
	resp := getJSON(t, ts.URL+"/healthz", &got)
	if resp.StatusCode != http.StatusOK || got.Status != "ok" {
		t.Errorf("healthz = %d %+v", resp.StatusCode, got)
	}
	// RAM-only test server: the optional durability tiers report
	// disabled, the always-on jobs subsystem ok.
	if got.Components["store"].Status != "disabled" ||
		got.Components["journal"].Status != "disabled" ||
		got.Components["jobs"].Status != "ok" {
		t.Errorf("components = %+v", got.Components)
	}
}

func TestStatsShape(t *testing.T) {
	ts := newTestServer(t, Config{MaxInFlight: 3})
	var st Stats
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if st.MaxInFlight != 3 {
		t.Errorf("max_in_flight = %d, want 3", st.MaxInFlight)
	}
	if st.SweepWorkers < 1 {
		t.Errorf("sweep_workers = %d", st.SweepWorkers)
	}
	for _, tier := range []string{"compile", "run", "graph"} {
		if _, ok := st.Caches[tier]; !ok {
			t.Errorf("stats missing cache tier %q", tier)
		}
	}
}

func TestRunEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, body := postRun(t, ts, `{"platform":"wse","model":"gpt2-small","batch":512,"seq":1024,"precision":"FP16"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d: %s", resp.StatusCode, body)
	}
	var res RunResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.TokensPerSec <= 0 || res.TFLOPS <= 0 {
		t.Errorf("run result = %+v", res)
	}
	if res.Platform != "WSE-2" || res.SpecKey == "" {
		t.Errorf("run identity = %q / %q", res.Platform, res.SpecKey)
	}
	if res.Allocation["PE"] <= 0 {
		t.Errorf("allocation = %v", res.Allocation)
	}
}

func TestRunEndpointClientErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantCode string
	}{
		{"unknown platform", `{"platform":"tpu","model":"gpt2-small"}`, CodeBadRequest},
		{"missing model", `{"platform":"wse"}`, CodeBadRequest},
		{"unknown model", `{"platform":"wse","model":"gpt5"}`, CodeBadRequest},
		{"unknown precision", `{"platform":"wse","model":"gpt2-small","precision":"int4"}`, CodeBadRequest},
		{"unknown mode", `{"platform":"rdu","model":"gpt2-small","mode":"O7"}`, CodeBadRequest},
		{"unknown field", `{"platform":"wse","model":"gpt2-small","bogus":1}`, CodeBadRequest},
		{"negative batch", `{"platform":"wse","model":"gpt2-small","batch":-4}`, CodeBadRequest},
		{"seq over max", `{"platform":"wse","model":"gpt2-small","seq":999999}`, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRun(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d: %s", resp.StatusCode, body)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.wantCode || env.Error.Message == "" {
				t.Errorf("error = %+v", env.Error)
			}
		})
	}
}

func TestRunCompileFailureIsFinding(t *testing.T) {
	ts := newTestServer(t, Config{})
	// 78 GPT-2 layers do not place on the WSE-2 (paper Table I's Fail row).
	resp, body := postRun(t, ts, `{"platform":"wse","model":"gpt2-small","layers":78}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var res RunResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.FailReason == "" {
		t.Errorf("placement failure not reported as finding: %+v", res)
	}
}

// TestConcurrentIdenticalRunsCoalesce is the acceptance contract of
// the serving tentpole: two concurrent identical POST /v1/run requests
// must produce exactly one underlying compile, observable as exactly 1
// miss on the compile and run tiers via /v1/stats. How the second
// caller is served depends on timing: arriving during the first's
// compute it rides the singleflight cell (a compile hit); arriving
// after, it is answered from the response-byte fast lane and never
// touches the compile tier at all. Either way the bodies are
// byte-identical.
func TestConcurrentIdenticalRunsCoalesce(t *testing.T) {
	experiments.ResetCaches()
	ts := newTestServer(t, Config{MaxInFlight: 8})

	var before Stats
	getJSON(t, ts.URL+"/v1/stats", &before)

	const body = `{"platform":"rdu","model":"llama2-7b","batch":8,"seq":4096,"precision":"BF16","mode":"O1","tensor_parallel":2}`
	var wg sync.WaitGroup
	bodies := make([][]byte, 2)
	errs := make([]error, 2)
	for i := range bodies {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("identical requests diverged:\n%s\n%s", bodies[0], bodies[1])
	}

	var after Stats
	getJSON(t, ts.URL+"/v1/stats", &after)
	compile := after.Caches["compile"]
	compileBefore := before.Caches["compile"]
	if miss := compile.Misses - compileBefore.Misses; miss != 1 {
		t.Errorf("compile misses = %d, want exactly 1 (coalescing)", miss)
	}
	if hits := compile.Hits - compileBefore.Hits; hits > 1 {
		t.Errorf("compile hits = %d, want at most 1", hits)
	}
	run := after.Caches["run"]
	runBefore := before.Caches["run"]
	if miss := run.Misses - runBefore.Misses; miss != 1 {
		t.Errorf("run misses = %d, want exactly 1", miss)
	}
	if after.Served-before.Served != 2 {
		t.Errorf("served delta = %d, want 2", after.Served-before.Served)
	}
}

// TestExperimentMatchesCLIRender is the second acceptance contract:
// the served /v1/experiments/{id} body must be byte-identical to the
// CLI's stdout for the same ID (both go through Result.Render).
func TestExperimentMatchesCLIRender(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, id := range []string{"table1", "figure7"} {
		ref, err := experiments.All()[id](context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var text, csv bytes.Buffer
		if err := ref.Render(&text, false); err != nil {
			t.Fatal(err)
		}
		if err := ref.Render(&csv, true); err != nil {
			t.Fatal(err)
		}

		resp, err := http.Get(ts.URL + "/v1/experiments/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d", id, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s: content type = %q", id, ct)
		}
		if !bytes.Equal(body, text.Bytes()) {
			t.Errorf("%s: served text diverges from CLI render", id)
		}

		resp, err = http.Get(ts.URL + "/v1/experiments/" + id + "?format=csv")
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(body, csv.Bytes()) {
			t.Errorf("%s: served CSV diverges from CLI render", id)
		}

		var recs []trace.Record
		if resp := getJSON(t, ts.URL+"/v1/experiments/"+id+"?format=trace", &recs); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s trace: status = %d", id, resp.StatusCode)
		}
		if !reflect.DeepEqual(recs, ref.Trace) {
			t.Errorf("%s: served trace records diverge", id)
		}
	}
}

func TestExperimentErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp := getJSON(t, ts.URL+"/v1/experiments/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status = %d", resp.StatusCode)
	}
	resp = getJSON(t, ts.URL+"/v1/experiments/table1?format=xml", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status = %d", resp.StatusCode)
	}
	var list map[string][]string
	getJSON(t, ts.URL+"/v1/experiments", &list)
	if !reflect.DeepEqual(list["experiments"], experiments.IDs()) {
		t.Errorf("experiment list = %v", list)
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{"platform":"wse","model":"gpt2-small","seq":1024,"precision":"FP16","batches":[256,512],"layer_counts":[6,12]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep status = %d: %s", resp.StatusCode, b)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Points != 4 || len(sr.Results) != 4 || sr.Failed != 0 {
		t.Fatalf("sweep response = %+v", sr)
	}
	wantLabels := []string{"L=6/B=256/FP16", "L=6/B=512/FP16", "L=12/B=256/FP16", "L=12/B=512/FP16"}
	for i, res := range sr.Results {
		if res.Label != wantLabels[i] {
			t.Errorf("result %d label = %q, want %q", i, res.Label, wantLabels[i])
		}
		if res.TokensPerSec <= 0 {
			t.Errorf("result %d has no throughput: %+v", i, res)
		}
	}
}

// TestSweepBudget pins the budget-rejection contract: an over-budget
// synchronous sweep is refused with a structured JSON error naming the
// limit and the requested point count, never an empty body.
func TestSweepBudget(t *testing.T) {
	ts := newTestServer(t, Config{MaxSweepPoints: 3})
	over := `{"platform":"wse","model":"gpt2-small","batches":[128,256,512,1024]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(over))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over server cap: status = %d, want 429", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("budget rejection is not JSON: %q (%v)", body, err)
	}
	if env.Error.Code != CodeSweepTooLarge || env.Error.Limit != 3 || env.Error.RequestedPoints != 4 {
		t.Errorf("budget rejection = %+v, want code=%s limit=3 requested=4", env.Error, CodeSweepTooLarge)
	}
	if !strings.Contains(env.Error.Message, "4") || !strings.Contains(env.Error.Message, "3") {
		t.Errorf("message does not name the counts: %q", env.Error.Message)
	}
	if env.Error.Hint == "" {
		t.Error("budget rejection lacks the /v1/jobs hint")
	}

	// A request may lower the budget below the server cap, not raise it.
	tight := `{"platform":"wse","model":"gpt2-small","batches":[128,256],"budget":1}`
	resp, err = http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(tight))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over request budget: status = %d, want 429", resp.StatusCode)
	}
	env = errorEnvelope{}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Limit != 1 || env.Error.RequestedPoints != 2 {
		t.Errorf("tight-budget rejection = %+v (%v)", env.Error, err)
	}
}

func TestSweepRecordsPlacementFailures(t *testing.T) {
	ts := newTestServer(t, Config{})
	// L=72 places on the WSE-2, L=78 does not (paper Table I).
	body := `{"platform":"wse","model":"gpt2-small","layer_counts":[72,78]}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || sr.Failed != 1 {
		t.Fatalf("status %d, response %+v", resp.StatusCode, sr)
	}
	if sr.Results[0].Failed || !sr.Results[1].Failed || sr.Results[1].FailReason == "" {
		t.Errorf("failure not in the right slot: %+v", sr.Results)
	}
}

func TestSaturationReturns429(t *testing.T) {
	s, err := New(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the only slot directly — the admission gate is the unit
	// under test, not a slow simulation.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	resp, body := postRun(t, ts, `{"platform":"wse","model":"gpt2-small"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	// Retry-After must be a parseable, positive integer derived from
	// the current load, not a hardcoded constant.
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1 (%v)", resp.Header.Get("Retry-After"), err)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeSaturated {
		t.Errorf("error code = %q", env.Error.Code)
	}
	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", st.Rejected)
	}
}

// TestRetryAfterDerivation pins the one shared backoff formula both
// 429 sites use: always an integer >= 1, scaling with queued depth,
// clamped to a minute.
func TestRetryAfterDerivation(t *testing.T) {
	cases := []struct{ depth, slots, want int }{
		{0, 8, 1},
		{-3, 8, 1},                             // defensive: negative depth never underflows
		{7, 8, 1},                              // under one pool's worth: retry quickly
		{8, 8, 2},                              // one full pool queued
		{40, 8, 6},                             // deep backlog pushes clients out further
		{1024, 8, 60} /* clamp */, {10, 0, 11}, // zero slots never divides by zero
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.depth, c.slots); got != c.want {
			t.Errorf("retryAfterSecs(%d, %d) = %d, want %d", c.depth, c.slots, got, c.want)
		}
	}
	// Monotone in depth: more backlog never shortens the advice.
	prev := 0
	for depth := 0; depth < 200; depth += 7 {
		got := retryAfterSecs(depth, 4)
		if got < prev {
			t.Fatalf("retryAfterSecs not monotone at depth %d: %d < %d", depth, got, prev)
		}
		prev = got
	}
}

// TestQueueFull429HasParsableRetryAfter exercises the job-queue 429
// writer directly: the envelope code and a load-derived, parseable
// Retry-After.
func TestQueueFull429HasParsableRetryAfter(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := httptest.NewRecorder()
	s.writeQueueFull(rec)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if secs, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1 (%v)", rec.Header().Get("Retry-After"), err)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != CodeQueueFull {
		t.Errorf("body = %s (%v)", rec.Body.Bytes(), err)
	}
}

func TestRequestTimeoutMapsTo504(t *testing.T) {
	ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	resp := getJSON(t, ts.URL+"/v1/experiments/table1", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp := getJSON(t, ts.URL+"/v1/run", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run status = %d, want 405", resp.StatusCode)
	}
}
