package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dabench/internal/experiments"
	"dabench/internal/faults"
	"dabench/internal/jobs"
	"dabench/internal/store"
)

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func serverInjector(t *testing.T, spec faults.Spec) *faults.Injector {
	t.Helper()
	in, err := faults.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestChunkRetryRecoversTransientFault(t *testing.T) {
	in := serverInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpChunkRun, Kind: faults.KindEIO, Count: 1},
	}})
	ts := newTestServer(t, Config{Injector: in, ChunkRetryBackoff: time.Millisecond})

	body := `{"platform":"wse","model":"gpt2-small","seq":1024,"layer_counts":[2,4],"batches":[256,512]}`
	resp, b := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, b)
	}
	var v jobs.View
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, ts, v.ID, jobs.StateDone)

	var jr SweepResponse
	if rr := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &jr); rr.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", rr.StatusCode)
	}
	if len(jr.Results) != 4 || len(jr.FailedChunks) != 0 {
		t.Fatalf("results/failed_chunks = %d/%d, want 4/0 (retry should have absorbed the fault)",
			len(jr.Results), len(jr.FailedChunks))
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.ChunkRetries != 1 || st.ChunksQuarantined != 0 {
		t.Errorf("chunk_retries/quarantined = %d/%d, want 1/0", st.ChunkRetries, st.ChunksQuarantined)
	}
	if st.Faults == nil || st.Faults.Fired != 1 {
		t.Errorf("faults stats = %+v, want fired 1", st.Faults)
	}
}

func TestPoisonChunkIsQuarantined(t *testing.T) {
	// The fault budget equals the chunk retry budget, so chunk 0 burns
	// every attempt and is quarantined while chunk 1 runs clean — the
	// acceptance shape: a job with one permanently failing chunk ends
	// done with a failed_chunks manifest, not failed.
	const retries = 3
	in := serverInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpChunkRun, Kind: faults.KindEIO, Count: retries},
	}})
	ts := newTestServer(t, Config{Injector: in, ChunkRetries: retries, ChunkRetryBackoff: time.Millisecond})

	// 300 points = 2 chunks (256 + 44) of cheap memoized WSE compiles.
	var batches []string
	for b := 1; b <= 300; b++ {
		batches = append(batches, fmt.Sprint(b))
	}
	body := `{"platform":"wse","model":"gpt2-small","seq":1024,"layer_counts":[2],"batches":[` +
		strings.Join(batches, ",") + `]}`
	resp, b := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, b)
	}
	var v jobs.View
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	done := waitJobState(t, ts, v.ID, jobs.StateDone)
	if done.Done != 300 {
		t.Errorf("progress done = %d, want 300 (quarantined points count as processed)", done.Done)
	}

	var jr SweepResponse
	if rr := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &jr); rr.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", rr.StatusCode)
	}
	if len(jr.FailedChunks) != 1 {
		t.Fatalf("failed_chunks = %+v, want exactly one entry", jr.FailedChunks)
	}
	fc := jr.FailedChunks[0]
	if fc.Chunk != 0 || fc.Start != 0 || fc.End != 256 || fc.Attempts != retries || fc.Error == "" {
		t.Errorf("manifest entry = %+v, want chunk 0 [0,256) after %d attempts", fc, retries)
	}
	if len(jr.Results) != 44 {
		t.Errorf("partial results = %d, want 44 (the surviving chunk)", len(jr.Results))
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.ChunksQuarantined != 1 || st.ChunkRetries != retries-1 {
		t.Errorf("quarantined/retries = %d/%d, want 1/%d", st.ChunksQuarantined, st.ChunkRetries, retries-1)
	}

	// Quarantine is a degraded-mode fact, visible in /healthz.
	var h healthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "degraded" || h.Components["jobs"].Status != "degraded" {
		t.Errorf("healthz = %+v, want degraded jobs component", h)
	}
}

// TestScenarioByteIdenticalUnderStoreWriteFaults is the acceptance
// invariance: with 30% of store writes failing, a built-in scenario's
// response must be byte-identical to the fault-free run — the store is
// an optimization tier, never a correctness dependency.
func TestScenarioByteIdenticalUnderStoreWriteFaults(t *testing.T) {
	const url = "/v1/scenarios/cross-platform-throughput"

	experiments.ResetCaches()
	clean := newTestServer(t, Config{})
	resp, err := http.Get(clean.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	baseline := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault-free scenario = %d", resp.StatusCode)
	}

	in := serverInjector(t, faults.Spec{Seed: 42, Rules: []faults.Rule{
		{Op: faults.OpStoreWrite, Kind: faults.KindEIO, Probability: 0.3},
	}})
	st, err := store.OpenOptions(t.TempDir(), store.Options{
		RetryAttempts: 1, RetryBackoff: time.Millisecond, Injector: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	experiments.ResetCaches()
	experiments.SetResultStore(st)
	defer func() {
		experiments.SetResultStore(nil)
		experiments.ResetCaches()
	}()

	faulted := newTestServer(t, Config{Store: st})
	resp, err = http.Get(faulted.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted scenario = %d (must never surface store faults)", resp.StatusCode)
	}
	if !bytes.Equal(baseline, got) {
		t.Errorf("store-write faults changed the response:\nclean:   %q\nfaulted: %q", baseline, got)
	}
}

// TestStoreBreakerRecoveryVisibleInStats drives the write breaker
// through its full trip → open → half-open probe → recovery cycle via
// HTTP traffic and asserts every transition is observable in /v1/stats
// and /healthz.
func TestStoreBreakerRecoveryVisibleInStats(t *testing.T) {
	const cooldown = 300 * time.Millisecond
	// p=1 with a budget of exactly the trip threshold: the first two
	// writes fail and trip the breaker, and any later probe lands on a
	// healed disk.
	in := serverInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpStoreWrite, Kind: faults.KindEIO, Count: 2},
	}})
	st, err := store.OpenOptions(t.TempDir(), store.Options{
		RetryAttempts: 1, RetryBackoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: cooldown,
		Injector: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	experiments.ResetCaches()
	experiments.SetResultStore(st)
	defer func() {
		experiments.SetResultStore(nil)
		experiments.ResetCaches()
	}()
	ts := newTestServer(t, Config{Store: st})

	// 16 store writes: 2 fail and trip, the rest are skipped (the
	// cooldown comfortably outlasts the writer's drain).
	resp, err := http.Get(ts.URL + "/v1/scenarios/cross-platform-throughput")
	if err != nil {
		t.Fatal(err)
	}
	if b := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario under write faults = %d: %s", resp.StatusCode, b)
	}
	st.Snapshot() // drain the write-behind queue before asserting

	var stats Stats
	getJSON(t, ts.URL+"/v1/stats", &stats)
	wb := stats.Store.WriteBreaker
	if wb == nil || wb.State != "open" || wb.Trips != 1 {
		t.Fatalf("write breaker = %+v, want open with 1 trip", wb)
	}
	if stats.Store.SkippedWrites == 0 {
		t.Error("no writes were skipped by the open breaker")
	}
	var h healthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "degraded" || h.Components["store"].Status != "degraded" {
		t.Fatalf("healthz during open breaker = %+v, want degraded store", h)
	}

	// Past the cooldown, the next write is the half-open probe; the
	// fault budget is spent, so it succeeds and closes the breaker.
	time.Sleep(cooldown + 50*time.Millisecond)
	resp, b := postJSON(t, ts.URL+"/v1/run",
		`{"platform":"wse","model":"gpt2-small","layers":3,"batch":128,"seq":1024,"precision":"FP16"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe-triggering run = %d: %s", resp.StatusCode, b)
	}
	st.Snapshot()

	getJSON(t, ts.URL+"/v1/stats", &stats)
	wb = stats.Store.WriteBreaker
	if wb == nil || wb.State != "closed" || wb.Probes < 1 || wb.Recoveries < 1 {
		t.Fatalf("write breaker after heal = %+v, want closed with a counted probe + recovery", wb)
	}
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Components["store"].Status != "ok" {
		t.Errorf("healthz store after recovery = %+v, want ok", h.Components["store"])
	}
}
