package server

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"

	"dabench/internal/platform"
	"dabench/internal/store"
)

// The warm serve path. The tiers answer a repeat request before any
// JSON or simulation work happens, checked in cost order:
//
//	L0 body    the verbatim request bytes as the cache key (/v1/run) —
//	           one allocation-free map lookup, no decode at all; the
//	           entry's ETag answers a conditional hit with 304.
//	ETag/304   If-None-Match matches the request's strong ETag — no
//	           body at all, answered before admission.
//	L0 bytes   the in-process response-byte LRU (s.resp) under the
//	           canonical (platform, spec) key — one map lookup, the
//	           cached bytes go straight to the socket.
//	L2 raw     the framed blob's response section (store.LoadRaw) —
//	           one read, zero JSON decode, refills L0 on the way out.
//
// Only then does a request acquire an admission slot and compute. The
// tiers are only reachable for deterministic endpoints: every ETag
// below is derived from the request's identity (pipeline version ⊕
// inputs), never from response bytes, which is what lets a 304 be
// answered without computing anything.

const ctJSON = "application/json"

// respEntry is one cached response: the exact body bytes plus its
// header values in the pre-canonicalized form http.Header wants, so
// serving assigns ready-made one-element slices into the header map
// instead of allocating per request via Header().Set.
type respEntry struct {
	body []byte
	etag string
	// etagH/ctH/lenH are the header value slices for direct map
	// assignment (ETag, Content-Type, Content-Length of body).
	etagH []string
	ctH   []string
	lenH  []string
}

// respEntryOverhead approximates a respEntry's fixed footprint (struct,
// slice headers, map slot) for the byte budget; the dominant cost is
// the body, this just keeps many tiny entries honest.
const respEntryOverhead = 192

func newRespEntry(etag, contentType string, body []byte) *respEntry {
	return &respEntry{
		body:  body,
		etag:  etag,
		etagH: []string{etag},
		ctH:   []string{contentType},
		lenH:  []string{strconv.Itoa(len(body))},
	}
}

func (e *respEntry) size() int64 {
	return int64(len(e.body)) + int64(len(e.etag)) + respEntryOverhead
}

// runETag is the strong ETag of one /v1/run outcome: exactly the
// store's content address for the (platform, spec) pair, which already
// binds the pipeline version. Quoted per RFC 9110.
func runETag(platformName, specKey string) string {
	return `"` + store.Address(platformName, specKey) + `"`
}

// runRespKey is the L0 cache key of one /v1/run response.
func runRespKey(platformName, specKey string) string {
	return "run\x00" + platformName + "\x00" + specKey
}

// sweepETag is the strong ETag of one synchronous sweep response: the
// pipeline version, platform and every point's spec key in order. The
// point labels derive from the specs, so the key set pins the whole
// body.
func sweepETag(platformName string, specs []platform.TrainSpec) string {
	h := sha256.New()
	h.Write([]byte("dabench/sweep/v" + strconv.Itoa(store.PipelineVersion)))
	h.Write([]byte{0})
	h.Write([]byte(platformName))
	for _, sp := range specs {
		h.Write([]byte{0})
		h.Write([]byte(sp.Key()))
	}
	return `"` + hex.EncodeToString(h.Sum(nil)) + `"`
}

// scenarioETag is the strong ETag of one built-in library scenario
// rendering. The library is immutable within a build and the engine
// deterministic, so (pipeline version, name, format) pins the bytes.
func scenarioETag(name, format string) string {
	h := sha256.New()
	h.Write([]byte("dabench/scenario/v" + strconv.Itoa(store.PipelineVersion)))
	h.Write([]byte{0})
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(format))
	return `"` + hex.EncodeToString(h.Sum(nil)) + `"`
}

// scenarioRespKey is the L0 cache key of one scenario GET rendering.
func scenarioRespKey(name, format string) string {
	return "scn\x00" + name + "\x00" + format
}

// jobResultETag is the strong ETag of one finished job's rendered
// result. Job results are immutable once finished, so (id, format)
// pins the bytes — but ephemeral job IDs restart from scratch each
// boot, so without a journal the server's start time joins the key to
// keep a stale client ETag from matching a different job's result.
func (s *Server) jobResultETag(id, format string) string {
	h := sha256.New()
	if s.jobs.Durable() {
		h.Write([]byte("dabench/job-result"))
	} else {
		h.Write([]byte("dabench/job-result/boot:" + strconv.FormatInt(s.start.UnixNano(), 10)))
	}
	h.Write([]byte{0})
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(format))
	return `"` + hex.EncodeToString(h.Sum(nil)) + `"`
}

// etagMatches reports whether an If-None-Match header value matches
// etag. The single-tag exact match is first — it is the whole fast
// path; the general form handles "*", tag lists, and weak prefixes
// (weak comparison suffices for If-None-Match per RFC 9110 §13.1.2).
func etagMatches(inm, etag string) bool {
	if inm == etag {
		return true
	}
	if inm == "*" {
		return true
	}
	for inm != "" {
		var tag string
		if i := strings.IndexByte(inm, ','); i >= 0 {
			tag, inm = inm[:i], inm[i+1:]
		} else {
			tag, inm = inm, ""
		}
		tag = strings.TrimSpace(tag)
		tag = strings.TrimPrefix(tag, "W/")
		if tag == etag {
			return true
		}
	}
	return false
}

// writeNotModified answers 304: the ETag echoes so caches revalidate,
// and per RFC 9110 a 304 carries no body.
func (s *Server) writeNotModified(w http.ResponseWriter, etag string) {
	w.Header()["Etag"] = []string{etag}
	w.WriteHeader(http.StatusNotModified)
	s.notModified.Add(1)
}

// writeNotModifiedEntry is writeNotModified for a cached entry, reusing
// its pre-built ETag slice — the conditional lane's only allocation.
func (s *Server) writeNotModifiedEntry(w http.ResponseWriter, e *respEntry) {
	w.Header()["Etag"] = e.etagH
	w.WriteHeader(http.StatusNotModified)
	s.notModified.Add(1)
}

// serveEntry writes a cached response: three direct header assigns
// (values pre-built at cache time), then the bytes. Content-Length is
// explicit, so the response is never chunked.
func serveEntry(w http.ResponseWriter, e *respEntry) {
	h := w.Header()
	h["Etag"] = e.etagH
	h["Content-Type"] = e.ctH
	h["Content-Length"] = e.lenH
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.body)
}

// cacheAndServe builds the respEntry for body (taking ownership of the
// slice), serves it, and installs it in L0 when the tier is enabled.
// The entry is returned so callers can install it under alias keys
// (/v1/run adds the verbatim request bytes).
func (s *Server) cacheAndServe(w http.ResponseWriter, cacheKey, etag, contentType string, body []byte) *respEntry {
	e := newRespEntry(etag, contentType, body)
	serveEntry(w, e)
	if s.resp != nil {
		s.resp.Put(cacheKey, e, e.size())
	}
	return e
}

// serveWithETag writes a JSON response with its ETag and an explicit
// Content-Length, without touching L0 — job results live on disk (or
// in the manager) already; a second in-memory copy buys nothing.
func serveWithETag(w http.ResponseWriter, etag, contentType string, body []byte) {
	h := w.Header()
	h["Etag"] = []string{etag}
	h.Set("Content-Type", contentType)
	h["Content-Length"] = []string{strconv.Itoa(len(body))}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}
