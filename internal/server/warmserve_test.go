package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"dabench/internal/experiments"
	"dabench/internal/faults"
	"dabench/internal/jobs"
	"dabench/internal/store"
)

const warmRunBody = `{"platform":"wse","model":"gpt2-small","batch":256,"seq":1024}`

func postRunWith(t *testing.T, url, body, inm string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, readAll(t, resp)
}

// TestRunFastLaneByteIdentity pins the tentpole's core invariant: the
// response-byte fast lane serves exactly the bytes the slow path
// marshals — across a warm repeat on one server and against a server
// with the cache disabled entirely.
func TestRunFastLaneByteIdentity(t *testing.T) {
	experiments.ResetCaches()
	ts := newTestServer(t, Config{})

	cold, coldBody := postRunWith(t, ts.URL, warmRunBody, "")
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold run = %d: %s", cold.StatusCode, coldBody)
	}
	warm, warmBody := postRunWith(t, ts.URL, warmRunBody, "")
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm run = %d: %s", warm.StatusCode, warmBody)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("fast lane diverged from slow path:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
	coldTag, warmTag := cold.Header.Get("Etag"), warm.Header.Get("Etag")
	if coldTag == "" || coldTag != warmTag {
		t.Errorf("ETags diverged: cold %q, warm %q", coldTag, warmTag)
	}
	// Both lanes must answer with an explicit Content-Length (never
	// chunked): the client sees the exact body size.
	for name, r := range map[string]*http.Response{"cold": cold, "warm": warm} {
		if r.ContentLength != int64(len(coldBody)) {
			t.Errorf("%s Content-Length = %d, want %d", name, r.ContentLength, len(coldBody))
		}
	}

	// A server with the byte cache disabled takes the slow path every
	// time and must still produce the same bytes.
	off := newTestServer(t, Config{RespCacheBudget: -1})
	slow, slowBody := postRunWith(t, off.URL, warmRunBody, "")
	if slow.StatusCode != http.StatusOK {
		t.Fatalf("cache-off run = %d: %s", slow.StatusCode, slowBody)
	}
	if !bytes.Equal(coldBody, slowBody) {
		t.Errorf("cache-off slow path diverged:\n%s\n%s", coldBody, slowBody)
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.RespCache == nil || st.RespCache.Hits < 1 {
		t.Errorf("resp_cache stats = %+v, want at least one hit", st.RespCache)
	}
}

// TestRunConditionalFastLane pins the ETag/304 contract: a repeat
// request presenting the previous ETag gets 304 with no body, the same
// ETag echoed, and a not_modified tick in /v1/stats.
func TestRunConditionalFastLane(t *testing.T) {
	ts := newTestServer(t, Config{})
	first, body := postRunWith(t, ts.URL, warmRunBody, "")
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first run = %d: %s", first.StatusCode, body)
	}
	etag := first.Header.Get("Etag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("missing or unquoted ETag: %q", etag)
	}

	notMod, nmBody := postRunWith(t, ts.URL, warmRunBody, etag)
	if notMod.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match repeat = %d, want 304", notMod.StatusCode)
	}
	if len(nmBody) != 0 {
		t.Errorf("304 carried a body: %q", nmBody)
	}
	if got := notMod.Header.Get("Etag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}
	// A stale tag revalidates to a full 200.
	full, fullBody := postRunWith(t, ts.URL, warmRunBody, `"deadbeef"`)
	if full.StatusCode != http.StatusOK || !bytes.Equal(fullBody, body) {
		t.Errorf("stale-tag repeat = %d (%d bytes), want a full 200 with the original body",
			full.StatusCode, len(fullBody))
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.NotModified < 1 {
		t.Errorf("not_modified = %d, want >= 1", st.NotModified)
	}
}

// TestSweepConditionalFastLane pins the same contract on /v1/sweep.
func TestSweepConditionalFastLane(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{"platform":"wse","model":"gpt2-small","layer_counts":[2,4],"batches":[256]}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b1 := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d: %s", resp.StatusCode, b1)
	}
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("sweep response missing ETag")
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if nm := readAll(t, resp); resp.StatusCode != http.StatusNotModified || len(nm) != 0 {
		t.Fatalf("conditional sweep = %d with %d body bytes, want bare 304", resp.StatusCode, len(nm))
	}

	// Warm unconditional repeat rides L0 and stays byte-identical.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if b2 := readAll(t, resp); !bytes.Equal(b1, b2) {
		t.Errorf("warm sweep diverged from cold:\n%s\n%s", b1, b2)
	}
}

// TestScenarioGetFastLaneByteIdentity pins byte identity and the 304
// lane on the deterministic scenario GET endpoint.
func TestScenarioGetFastLaneByteIdentity(t *testing.T) {
	const url = "/v1/scenarios/cross-platform-throughput"
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	cold := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold scenario = %d: %s", resp.StatusCode, cold)
	}
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("scenario response missing ETag")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("scenario Content-Type = %q", ct)
	}

	resp, err = http.Get(ts.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	if warm := readAll(t, resp); !bytes.Equal(cold, warm) {
		t.Errorf("warm scenario diverged from cold render")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+url, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if nm := readAll(t, resp); resp.StatusCode != http.StatusNotModified || len(nm) != 0 {
		t.Fatalf("conditional scenario = %d with %d body bytes, want bare 304", resp.StatusCode, len(nm))
	}

	// The cache-off server renders the same bytes through the slow path.
	off := newTestServer(t, Config{RespCacheBudget: -1})
	resp, err = http.Get(off.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	if slow := readAll(t, resp); !bytes.Equal(cold, slow) {
		t.Errorf("cache-off scenario render diverged")
	}
}

// TestRespCacheInvalidatedOnReset: ResetCaches must drop L0 in
// lockstep with the tiers below it, and the recomputed response stays
// byte-identical.
func TestRespCacheInvalidatedOnReset(t *testing.T) {
	experiments.ResetCaches()
	ts := newTestServer(t, Config{})
	_, cold := postRunWith(t, ts.URL, warmRunBody, "")
	postRunWith(t, ts.URL, warmRunBody, "") // warm L0

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.RespCache == nil || st.RespCache.Entries == 0 {
		t.Fatalf("resp_cache before reset = %+v, want entries > 0", st.RespCache)
	}

	experiments.ResetCaches()
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.RespCache.Entries != 0 || st.RespCache.Bytes != 0 {
		t.Errorf("resp_cache after reset = %+v, want empty", st.RespCache)
	}

	resp, again := postRunWith(t, ts.URL, warmRunBody, "")
	if resp.StatusCode != http.StatusOK || !bytes.Equal(cold, again) {
		t.Errorf("post-reset run = %d, byte-identical = %v", resp.StatusCode, bytes.Equal(cold, again))
	}
}

// TestWarmBytesSurviveRestartViaStore: a second server process (same
// store, cold L0 and cold memo tiers) serves the first process's
// response bytes through the store's raw path, byte-identically.
func TestWarmBytesSurviveRestartViaStore(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	experiments.ResetCaches()
	experiments.SetResultStore(st)
	defer func() {
		experiments.SetResultStore(nil)
		experiments.ResetCaches()
	}()

	ts1 := newTestServer(t, Config{Store: st})
	resp, cold := postRunWith(t, ts1.URL, warmRunBody, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run = %d: %s", resp.StatusCode, cold)
	}
	st.Snapshot() // drain the write-behind response bytes

	// "Restart": fresh server (empty L0), memo tiers dropped. Only the
	// store is warm, so the repeat must come from LoadRaw.
	experiments.ResetCaches()
	ts2 := newTestServer(t, Config{Store: st})
	rawHitsBefore := st.Stats().RawHits
	resp, warm := postRunWith(t, ts2.URL, warmRunBody, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted run = %d: %s", resp.StatusCode, warm)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("restarted response diverged:\n%s\n%s", cold, warm)
	}
	if hits := st.Stats().RawHits - rawHitsBefore; hits != 1 {
		t.Errorf("raw hits delta = %d, want 1 (response served from the frame's byte section)", hits)
	}
}

// TestRunStoreFaultFallsBackToSlowPath: with every store read failing,
// the raw fast lane must degrade to recompute — never a 500, and the
// body stays byte-identical to a fault-free serve.
func TestRunStoreFaultFallsBackToSlowPath(t *testing.T) {
	clean := newTestServer(t, Config{})
	resp, baseline := postRunWith(t, clean.URL, warmRunBody, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean run = %d", resp.StatusCode)
	}

	in := serverInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpStoreRead, Kind: faults.KindEIO, Probability: 1},
	}})
	st, err := store.OpenOptions(t.TempDir(), store.Options{
		RetryAttempts: 1, RetryBackoff: time.Millisecond, Injector: in,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	experiments.ResetCaches()
	experiments.SetResultStore(st)
	defer func() {
		experiments.SetResultStore(nil)
		experiments.ResetCaches()
	}()

	faulted := newTestServer(t, Config{Store: st})
	for i := 0; i < 3; i++ {
		resp, got := postRunWith(t, faulted.URL, warmRunBody, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d under read faults = %d (store faults must never surface)", i, resp.StatusCode)
		}
		if !bytes.Equal(baseline, got) {
			t.Errorf("run %d under read faults diverged from clean serve", i)
		}
	}
}

// TestJobResultConditional pins the ETag/304 lane on finished job
// results.
func TestJobResultConditional(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{"platform":"wse","model":"gpt2-small","layer_counts":[2,4],"batches":[256]}`
	resp, b := postJSON(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, b)
	}
	var v jobs.View
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, ts, v.ID, jobs.StateDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	full := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, full)
	}
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("job result missing ETag")
	}
	if resp.ContentLength != int64(len(full)) {
		t.Errorf("job result Content-Length = %d, want %d", resp.ContentLength, len(full))
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/result", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if nm := readAll(t, resp); resp.StatusCode != http.StatusNotModified || len(nm) != 0 {
		t.Fatalf("conditional job result = %d with %d body bytes, want bare 304", resp.StatusCode, len(nm))
	}
	// A different format is a different entity with its own ETag.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if csvTag := resp.Header.Get("Etag"); csvTag == "" || csvTag == etag {
		t.Errorf("csv ETag = %q, want distinct from json %q", csvTag, etag)
	}
}

func TestETagMatches(t *testing.T) {
	const tag = `"abc"`
	for _, inm := range []string{tag, "*", `"x", "abc"`, `W/"abc"`, ` "abc" `} {
		if !etagMatches(inm, tag) {
			t.Errorf("etagMatches(%q, %q) = false, want true", inm, tag)
		}
	}
	for _, inm := range []string{`"abcd"`, `"ab"`, `abc`, `""`} {
		if etagMatches(inm, tag) {
			t.Errorf("etagMatches(%q, %q) = true, want false", inm, tag)
		}
	}
}
