// Package workload generates the parameter sweeps the paper's
// experiments iterate over: layer-count sweeps at fixed hidden size,
// hidden-size sweeps of single decoder blocks, batch-size ladders, and
// the multi-chip parallelism configurations of Table III — the
// decoder-block methodology of Section IV-D.
package workload

import (
	"fmt"

	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
)

// Point is one sweep configuration with its display label.
type Point struct {
	Label string
	Spec  platform.TrainSpec
}

// LayerSweep varies depth at fixed width (Table I, Figures 6/8a/9).
func LayerSweep(base model.Config, layers []int, batch, seq int, f precision.Format) []Point {
	out := make([]Point, 0, len(layers))
	for _, l := range layers {
		out = append(out, Point{
			Label: fmt.Sprintf("L=%d", l),
			Spec: platform.TrainSpec{
				Model: base.WithLayers(l), Batch: batch, Seq: seq, Precision: f,
			},
		})
	}
	return out
}

// HiddenSweep varies decoder-block width (Figures 7b/8b/9c, Table II).
func HiddenSweep(fam model.Family, hidden []int, layers, batch, seq int, f precision.Format) []Point {
	out := make([]Point, 0, len(hidden))
	for _, h := range hidden {
		out = append(out, Point{
			Label: fmt.Sprintf("H=%d", h),
			Spec: platform.TrainSpec{
				Model: model.DecoderBlock(fam, h).WithLayers(layers),
				Batch: batch, Seq: seq, Precision: f,
			},
		})
	}
	return out
}

// BatchSweep varies batch size (Figure 12).
func BatchSweep(m model.Config, batches []int, seq int, f precision.Format) []Point {
	out := make([]Point, 0, len(batches))
	for _, b := range batches {
		out = append(out, Point{
			Label: fmt.Sprintf("B=%d", b),
			Spec:  platform.TrainSpec{Model: m, Batch: b, Seq: seq, Precision: f},
		})
	}
	return out
}

// PrecisionSweep varies numeric format (Table IV).
func PrecisionSweep(m model.Config, formats []precision.Format, batch, seq int) []Point {
	out := make([]Point, 0, len(formats))
	for _, f := range formats {
		out = append(out, Point{
			Label: f.String(),
			Spec:  platform.TrainSpec{Model: m, Batch: batch, Seq: seq, Precision: f},
		})
	}
	return out
}

// WithMode returns the points with the RDU compile mode set.
func WithMode(pts []Point, mode platform.CompileMode) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		p.Spec.Par.Mode = mode
		p.Label = fmt.Sprintf("%s/%s", mode, p.Label)
		out[i] = p
	}
	return out
}

// PaperLayerPoints is Table I's layer ladder.
func PaperLayerPoints() []int {
	return []int{1, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60, 66, 72, 78}
}

// PaperHiddenPointsSmall is the O0/O3 hidden-size ladder.
func PaperHiddenPointsSmall() []int { return []int{480, 768, 1024, 1280, 1600} }

// PaperHiddenPointsLarge is the O1 (LLaMA-2 block) hidden-size ladder.
func PaperHiddenPointsLarge() []int { return []int{3072, 4096, 5120, 6656, 8192} }
