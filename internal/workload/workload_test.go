package workload

import (
	"testing"

	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
)

func TestLayerSweep(t *testing.T) {
	pts := LayerSweep(model.GPT2Small(), []int{1, 12, 36}, 4, 1024, precision.FP16)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, want := range []int{1, 12, 36} {
		if pts[i].Spec.Model.NumLayers != want {
			t.Errorf("point %d layers = %d", i, pts[i].Spec.Model.NumLayers)
		}
		if err := pts[i].Spec.Validate(); err != nil {
			t.Errorf("point %d invalid: %v", i, err)
		}
	}
	if pts[1].Label != "L=12" {
		t.Errorf("label = %q", pts[1].Label)
	}
}

func TestHiddenSweep(t *testing.T) {
	pts := HiddenSweep(model.LLaMA2, PaperHiddenPointsLarge(), 8, 1, 1024, precision.BF16)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if err := p.Spec.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Label, err)
		}
		if p.Spec.Model.Family != model.LLaMA2 {
			t.Errorf("%s wrong family", p.Label)
		}
	}
}

func TestBatchAndPrecisionSweeps(t *testing.T) {
	b := BatchSweep(model.GPT2Small(), []int{4, 8}, 1024, precision.FP16)
	if len(b) != 2 || b[0].Spec.Batch != 4 || b[1].Spec.Batch != 8 {
		t.Errorf("batch sweep wrong: %+v", b)
	}
	p := PrecisionSweep(model.GPT2Small(), []precision.Format{precision.FP16, precision.CB16}, 4, 1024)
	if len(p) != 2 || p[1].Label != "CB16" {
		t.Errorf("precision sweep wrong: %+v", p)
	}
}

func TestWithMode(t *testing.T) {
	pts := WithMode(LayerSweep(model.GPT2Small(), []int{4}, 4, 1024, precision.BF16), platform.ModeO3)
	if pts[0].Spec.Par.Mode != platform.ModeO3 {
		t.Error("mode not applied")
	}
	if pts[0].Label != "O3/L=4" {
		t.Errorf("label = %q", pts[0].Label)
	}
}

func TestPaperPoints(t *testing.T) {
	if got := PaperLayerPoints(); got[0] != 1 || got[len(got)-1] != 78 {
		t.Errorf("layer points = %v", got)
	}
	if got := PaperHiddenPointsSmall(); len(got) != 5 || got[0] != 480 {
		t.Errorf("small HS points = %v", got)
	}
}
