package telemetry

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the Prometheus le contract: an
// upper bound is inclusive, so a sample exactly on a boundary lands in
// that boundary's bucket, and one epsilon above it lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", []float64{0.001, 0.01, 0.1})

	h.Observe(0.001)  // == first bound: first bucket
	h.Observe(0.0011) // just above: second bucket
	h.Observe(0.01)   // == second bound: second bucket
	h.Observe(0.1)    // == last bound: third bucket
	h.Observe(99)     // overflow: +Inf only

	wantCum := []struct {
		le   string
		want int64
	}{{"0.001", 1}, {"0.01", 3}, {"0.1", 4}, {"+Inf", 5}}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range wantCum {
		line := `t_seconds_bucket{le="` + w.le + `"} ` + itoa(w.want)
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	if !strings.Contains(out, "t_seconds_count 5\n") {
		t.Errorf("missing count:\n%s", out)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	// Sum of exact binary-representable checks is brittle; bound it.
	if s := h.Sum(); s < 99.1 || s > 99.2 {
		t.Errorf("Sum = %v, want ~99.112", s)
	}
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }

// TestExpositionFormat pins the family layout: HELP/TYPE headers,
// sorted family names, sorted series labels, label escaping, and
// integral float rendering.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b_total", "b help", Label{"x", "2"})
	c2 := r.Counter("b_total", "ignored on second registration", Label{"x", "1"})
	c.Add(7)
	c2.Inc()
	r.RegisterCollector(func(e *Exposition) {
		e.Gauge("a_gauge", "a help", 1.5, Label{"q", `va"l\ue` + "\n"})
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge a help
# TYPE a_gauge gauge
a_gauge{q="va\"l\\ue\n"} 1.5
# HELP b_total b help
# TYPE b_total counter
b_total{x="1"} 1
b_total{x="2"} 7
`
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestHistogramNoLabels pins the bare-histogram bucket rendering (a
// fresh label set must open with {le=...).
func TestHistogramNoLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{1})
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP h_seconds h\n# TYPE h_seconds histogram\n" +
		"h_seconds_bucket{le=\"1\"} 1\nh_seconds_bucket{le=\"+Inf\"} 1\n" +
		"h_seconds_sum 0.5\nh_seconds_count 1\n"
	if b.String() != want {
		t.Errorf("exposition:\n%q\nwant:\n%q", b.String(), want)
	}
}

// TestConcurrentObserveAndScrape drives observations from many
// goroutines while scraping; run under -race this pins the lock-free
// Observe path, and the final counts must not lose updates.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "c", nil, Label{"endpoint", "/v1/run"})
	c := r.Counter("c_total", "c")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%7) * 1e-5)
				c.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != workers*per || c.Value() != workers*per {
		t.Errorf("count = %d/%d, want %d", h.Count(), c.Value(), workers*per)
	}
}
