// Package telemetry is a zero-dependency metrics registry rendered in
// the Prometheus text exposition format (version 0.0.4) — the fleet-
// facing face of every counter the daemon already keeps. It exists
// because /v1/stats is a bespoke JSON document: fine for a human with
// curl, useless to a scrape-based monitoring fleet that wants latency
// distributions and uniform series names.
//
// Three instrument kinds cover the daemon's needs:
//
//   - Counter: a monotonically increasing int64 (requests served,
//     stage-log rows dropped). Owned by the registry.
//   - Histogram: fixed-bucket latency distribution with the Prometheus
//     cumulative-bucket contract (le is an inclusive upper bound).
//     Observation is lock-free — one atomic add per bucket walk plus a
//     CAS loop for the float sum — so the warm serve path can record
//     stage samples without giving back its zero-allocation budget.
//   - Collectors: scrape-time callbacks that fold in counters owned by
//     other subsystems (cache tiers, the store, the job manager)
//     without duplicating their state. A collector emits gauge and
//     counter samples into the exposition being built; the sources
//     stay the single source of truth and /v1/stats keeps working
//     unchanged.
//
// Exposition is deterministic: families sort by name, series sort by
// their rendered label string, floats render in Go's shortest 'g'
// form. Determinism is what lets a golden-file test pin the scrape
// shape for a fixed request sequence.
package telemetry

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair on a series. Label order is
// significant and preserved as given (conventionally most-significant
// first, e.g. endpoint before stage).
type Label struct {
	Name  string
	Value string
}

// DefBuckets is the default histogram bucket ladder: upper bounds in
// seconds spanning the warm serve path (sub-microsecond) through a
// multi-minute sweep. +Inf is implicit.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 1, 2.5, 10, 60}

// Counter is a monotonically increasing sample owned by the registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter contract).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is safe for
// concurrent use and allocation-free.
type Histogram struct {
	// bounds are the inclusive upper bounds; counts has len(bounds)+1
	// slots, the last being the +Inf overflow bucket. Counts are
	// per-bucket (not cumulative); exposition accumulates.
	bounds []float64
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-added
	count  atomic.Int64
}

// Observe records one sample value (seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// series is one registered instrument plus its rendered label string.
type series struct {
	labels string // pre-rendered {a="b",c="d"} or ""
	ctr    *Counter
	hist   *Histogram
}

// family groups the series of one metric name under a shared HELP/TYPE.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds registered instruments and scrape-time collectors.
// The zero value is not usable; create with NewRegistry.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string
	collectors []func(e *Exposition)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// renderLabels builds the {a="b",...} fragment with Prometheus label
// value escaping (backslash, quote, newline).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register appends a series under name, creating the family on first
// use. A family's type and help are fixed by its first registration.
func (r *Registry) register(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	f.series = append(f.series, s)
}

// Counter registers (or extends) a counter family and returns the
// instrument for the given label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", &series{labels: renderLabels(labels), ctr: c})
	return c
}

// Histogram registers a histogram series with the given upper bounds
// (nil means DefBuckets; +Inf is implicit) and returns the instrument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(name, help, "histogram", &series{labels: renderLabels(labels), hist: h})
	return h
}

// RegisterCollector adds a scrape-time callback: on every exposition
// it is invoked with the Exposition under construction and emits
// gauge/counter samples read from state it does not own (cache tiers,
// store stats, job gauges). Collectors run in registration order under
// the registry lock; they must not call back into the registry.
func (r *Registry) RegisterCollector(fn func(e *Exposition)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// sample is one collector-emitted line: rendered labels plus a value.
type sample struct {
	labels string
	value  string
}

// expFamily is one family being rendered: static series snapshots and
// collector samples merged.
type expFamily struct {
	help, typ string
	samples   []sample  // counter/gauge values
	hists     []*series // histogram series render specially
}

// Exposition accumulates one scrape. Collectors write into it via
// Counter/Gauge; WriteTo renders the final text.
type Exposition struct {
	families map[string]*expFamily
	order    []string
}

func (e *Exposition) family(name, help, typ string) *expFamily {
	f, ok := e.families[name]
	if !ok {
		f = &expFamily{help: help, typ: typ}
		e.families[name] = f
		e.order = append(e.order, name)
	}
	return f
}

// Gauge emits one gauge sample.
func (e *Exposition) Gauge(name, help string, v float64, labels ...Label) {
	f := e.family(name, help, "gauge")
	f.samples = append(f.samples, sample{renderLabels(labels), formatFloat(v)})
}

// Counter emits one counter sample.
func (e *Exposition) Counter(name, help string, v float64, labels ...Label) {
	f := e.family(name, help, "counter")
	f.samples = append(f.samples, sample{renderLabels(labels), formatFloat(v)})
}

// formatFloat renders a value in the shortest form that round-trips;
// integral values render without an exponent or decimal point.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the full exposition: registered instruments
// plus every collector's samples, families sorted by name, series
// sorted by label string. The output satisfies the Prometheus text
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	exp := &Exposition{families: map[string]*expFamily{}}
	for _, name := range r.order {
		f := r.families[name]
		ef := exp.family(name, f.help, f.typ)
		for _, s := range f.series {
			if s.hist != nil {
				ef.hists = append(ef.hists, s)
			} else {
				ef.samples = append(ef.samples, sample{s.labels, strconv.FormatInt(s.ctr.Value(), 10)})
			}
		}
	}
	for _, fn := range r.collectors {
		fn(exp)
	}
	r.mu.Unlock()

	sort.Strings(exp.order)
	var b strings.Builder
	for _, name := range exp.order {
		f := exp.families[name]
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(f.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		for _, s := range f.samples {
			b.WriteString(name)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(s.value)
			b.WriteByte('\n')
		}
		sort.Slice(f.hists, func(i, j int) bool { return f.hists[i].labels < f.hists[j].labels })
		for _, s := range f.hists {
			writeHistogram(&b, name, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket
// lines (le inclusive, +Inf last), then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.hist
	// Join the series labels with the le label: strip the closing
	// brace and append, or open a fresh set.
	prefix := name + "_bucket"
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(b, prefix, s.labels, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket(b, prefix, s.labels, "+Inf", cum)
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(s.labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(s.labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(h.Count(), 10))
	b.WriteByte('\n')
}

func writeBucket(b *strings.Builder, prefix, labels, le string, cum int64) {
	b.WriteString(prefix)
	if labels == "" {
		b.WriteString(`{le="`)
	} else {
		b.WriteString(labels[:len(labels)-1])
		b.WriteString(`,le="`)
	}
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')
}
