package memo

import (
	"strconv"
	"sync"
	"testing"
)

func TestByteLRUGetPut(t *testing.T) {
	c := NewByteLRU[string, string](100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", "alpha", 10)
	if v, ok := c.Get("a"); !ok || v != "alpha" {
		t.Fatalf("Get(a) = %q, %v; want alpha, true", v, ok)
	}
	// Replacement re-accounts the entry's size, not just its value.
	c.Put("a", "ALPHA", 60)
	if v, ok := c.Get("a"); !ok || v != "ALPHA" {
		t.Fatalf("Get(a) after replace = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Bytes != 60 || st.Entries != 1 {
		t.Errorf("stats after replace = %+v, want bytes 60, entries 1", st)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

func TestByteLRUEvictsColdEnd(t *testing.T) {
	c := NewByteLRU[string, int](100)
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	c.Get("a") // a is now warmer than b
	c.Put("c", 3, 40)
	if _, ok := c.Get("b"); ok {
		t.Error("b (coldest) survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestByteLRUOversizedEntryNotCached(t *testing.T) {
	c := NewByteLRU[string, int](50)
	c.Put("a", 1, 10)
	c.Put("huge", 2, 51)
	if _, ok := c.Get("huge"); ok {
		t.Error("over-budget entry was cached")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("existing entry evicted by a rejected oversized insert")
	}
}

func TestByteLRUPurgeKeepsCounters(t *testing.T) {
	c := NewByteLRU[string, int](100)
	c.Put("a", 1, 10)
	c.Get("a")
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	st := c.Stats()
	if st.Bytes != 0 || st.Entries != 0 {
		t.Errorf("gauges after Purge = %+v, want zero", st)
	}
	if st.Hits != 1 {
		t.Errorf("cumulative hits reset by Purge: %d", st.Hits)
	}
	// The list must be fully reset: inserts after Purge behave normally.
	c.Put("b", 2, 10)
	if _, ok := c.Get("b"); !ok {
		t.Error("insert after Purge not retrievable")
	}
}

func TestByteLRUConcurrent(t *testing.T) {
	c := NewByteLRU[string, int](1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := strconv.Itoa(i % 32)
				c.Put(k, i, 64)
				c.Get(k)
			}
		}()
	}
	wg.Wait()
	if n := c.Len(); n == 0 || n > 32 {
		t.Errorf("Len = %d after concurrent churn", n)
	}
}
