package memo

import (
	"sync"

	"dabench/internal/cachestats"
)

// byteNode is one ByteLRU entry on the intrusive recency list.
type byteNode[K comparable, V any] struct {
	key        K
	val        V
	size       int64
	prev, next *byteNode[K, V]
}

// ByteLRU is a byte-budgeted LRU cache: every entry carries an
// explicit size, and inserts evict from the cold end until the total
// is back under budget. It is the shape the server's response-byte
// tier needs, which the singleflight Cache is not: entries here are
// plain values (no in-flight coalescing — the caller's slow path
// already coalesces on the memo cells below), recency matters, and the
// bound is bytes, not entries.
//
// The zero value is not usable; create with NewByteLRU. Safe for
// concurrent use. Get is allocation-free — it is on the warm serve
// hot path.
type ByteLRU[K comparable, V any] struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[K]*byteNode[K, V]
	// head is the most recently used node, tail the eviction candidate.
	head, tail *byteNode[K, V]

	hits, misses, evictions int64
}

// NewByteLRU returns an empty cache bounded to budget bytes of
// caller-declared entry sizes. budget must be positive: a caller that
// wants the tier off holds no cache at all rather than a zero-budget
// one.
func NewByteLRU[K comparable, V any](budget int64) *ByteLRU[K, V] {
	if budget <= 0 {
		panic("memo: ByteLRU budget must be positive")
	}
	return &ByteLRU[K, V]{budget: budget, entries: map[K]*byteNode[K, V]{}}
}

// Get returns the cached value for key, marking it most recently used.
func (c *ByteLRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFrontLocked(n)
	return n.val, true
}

// Put inserts (or replaces) key with val accounted at size bytes,
// evicting least-recently-used entries as needed. An entry larger than
// the whole budget is not cached — inserting it would only evict
// everything else and then itself.
func (c *ByteLRU[K, V]) Put(key K, val V, size int64) {
	if size < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return
	}
	if n, ok := c.entries[key]; ok {
		c.bytes += size - n.size
		n.val, n.size = val, size
		c.moveToFrontLocked(n)
	} else {
		n = &byteNode[K, V]{key: key, val: val, size: size}
		c.entries[key] = n
		c.bytes += size
		c.pushFrontLocked(n)
	}
	for c.bytes > c.budget && c.tail != nil {
		c.evictions++
		c.bytes -= c.tail.size
		delete(c.entries, c.tail.key)
		c.unlinkLocked(c.tail)
	}
}

// LookupBytes is Get for a string-keyed cache whose caller holds the
// key as bytes: the map index uses Go's no-copy string(b) lookup, so
// the warm serve path pays zero allocations even for the key. The
// semantics are identical to Get — a hit marks the entry most recently
// used, and both outcomes count in the hit/miss totals.
func LookupBytes[V any](c *ByteLRU[string, V], key []byte) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[string(key)]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFrontLocked(n)
	return n.val, true
}

// Purge drops every entry, keeping the cumulative counters — it is the
// invalidation hook, not a stats reset.
func (c *ByteLRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[K]*byteNode[K, V]{}
	c.head, c.tail = nil, nil
	c.bytes = 0
}

// Len returns the entry count.
func (c *ByteLRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the current counters and size gauges.
func (c *ByteLRU[K, V]) Stats() cachestats.ByteStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cachestats.ByteStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: int64(len(c.entries)), Bytes: c.bytes, BudgetBytes: c.budget,
	}
}

func (c *ByteLRU[K, V]) pushFrontLocked(n *byteNode[K, V]) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *ByteLRU[K, V]) unlinkLocked(n *byteNode[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *ByteLRU[K, V]) moveToFrontLocked(n *byteNode[K, V]) {
	if c.head == n {
		return
	}
	c.unlinkLocked(n)
	c.pushFrontLocked(n)
}
