// Package memo provides the generic singleflight memoization cell
// behind every cache tier (graph build, compile, run-report): one
// lock/map/done-channel implementation with hit/miss counters, so
// pattern-level fixes land once instead of per tier.
package memo

import (
	"errors"
	"sync"
	"sync/atomic"

	"dabench/internal/cachestats"
)

// ErrPanicked is the cached outcome of a memoized call that panicked:
// the panic propagates to the caller that ran the function, while
// waiters (and all later callers of the key) receive this error
// instead of blocking forever on a done channel that never closes.
var ErrPanicked = errors.New("memo: memoized call panicked")

type entry[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// Cache is a concurrency-safe memoization table with singleflight
// semantics: the first caller of a key runs the function; concurrent
// callers of an in-flight key block until it finishes and then share
// the outcome. Both successes and errors are cached — callers must
// only memoize deterministic functions.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]
	hits    atomic.Int64
	misses  atomic.Int64
}

// New returns an empty cache.
func New[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{entries: map[K]*entry[V]{}}
}

// Do returns the memoized outcome for key, computing it with fn on
// first call. The entry's fields are written before its done channel
// closes and read only after receiving from it, so sharing the value
// across goroutines is race-free.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	// Pre-set the panic outcome: if fn panics the assignment below
	// never runs, the deferred close still releases waiters, and the
	// key stays poisoned with ErrPanicked rather than wedged.
	e := &entry[V]{done: make(chan struct{}), err: ErrPanicked}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	defer close(e.done)
	e.val, e.err = fn()
	return e.val, e.err
}

// Seed inserts a pre-resolved successful entry for key — a value
// recovered from a persistent tier rather than computed. It counts as
// neither hit nor miss (the persistent tier keeps its own counters) and
// is a no-op when the key is already present, computed or in flight:
// an outcome the cell already owns always wins over a recovered one.
func (c *Cache[K, V]) Seed(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &entry[V]{done: make(chan struct{}), val: val}
	close(e.done)
	c.entries[key] = e
}

// Len returns the number of resolved or in-flight entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the current hit/miss counters.
func (c *Cache[K, V]) Stats() cachestats.Stats {
	return cachestats.Stats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Reset drops every entry and zeroes the counters.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.entries = map[K]*entry[V]{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}
