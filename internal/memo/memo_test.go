package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dabench/internal/cachestats"
)

func TestDoMemoizes(t *testing.T) {
	c := New[string, int]()
	var calls atomic.Int64
	fn := func() (int, error) { calls.Add(1); return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", fn)
		if err != nil || v != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if s := c.Stats(); s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", s)
	}
}

func TestDoCachesErrors(t *testing.T) {
	c := New[string, int]()
	boom := errors.New("boom")
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := c.Do("k", func() (int, error) { calls.Add(1); return 0, boom }); err != boom {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("failing fn ran %d times, want 1 (errors are cached)", n)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[string, int]()
	var calls atomic.Int64
	const callers = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Do("k", func() (int, error) { calls.Add(1); return 7, nil })
			if err != nil || v != 7 {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("concurrent identical calls ran %d times, want 1", n)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != callers-1 {
		t.Errorf("stats = %+v, want %d hits / 1 miss", s, callers-1)
	}
}

func TestReset(t *testing.T) {
	c := New[string, int]()
	if _, err := c.Do("k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if s := c.Stats(); s != (cachestats.Stats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
	var calls atomic.Int64
	if _, err := c.Do("k", func() (int, error) { calls.Add(1); return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Error("reset cache still deduped")
	}
}

// TestDoPanicPoisonsKey guards the wedge the defer exists for: a
// panicking fn must release waiters with ErrPanicked instead of
// leaving them blocked on a never-closed done channel.
func TestDoPanicPoisonsKey(t *testing.T) {
	c := New[string, int]()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the running caller")
			}
		}()
		c.Do("k", func() (int, error) { panic("boom") })
	}()
	// Later callers must not block, and must see the poisoned outcome.
	done := make(chan error, 1)
	go func() {
		_, err := c.Do("k", func() (int, error) { return 1, nil })
		done <- err
	}()
	if err := <-done; !errors.Is(err, ErrPanicked) {
		t.Errorf("poisoned key returned %v, want ErrPanicked", err)
	}
}

func TestSeedServesWithoutComputing(t *testing.T) {
	c := New[string, int]()
	c.Seed("k", 7)
	v, err := c.Do("k", func() (int, error) {
		t.Fatal("fn ran despite seeded entry")
		return 0, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("Do on seeded key = %v, %v", v, err)
	}
	// The seed itself is neither hit nor miss; the Do above is a hit.
	if s := c.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v, want 1 hit / 0 misses", s)
	}
}

func TestSeedDoesNotOverwrite(t *testing.T) {
	c := New[string, int]()
	if v, _ := c.Do("k", func() (int, error) { return 1, nil }); v != 1 {
		t.Fatalf("Do = %d", v)
	}
	c.Seed("k", 2)
	if v, _ := c.Do("k", func() (int, error) { return 3, nil }); v != 1 {
		t.Errorf("seed overwrote a computed entry: got %d, want 1", v)
	}
}

func TestLen(t *testing.T) {
	c := New[string, int]()
	if c.Len() != 0 {
		t.Fatalf("empty Len = %d", c.Len())
	}
	c.Seed("a", 1)
	_, _ = c.Do("b", func() (int, error) { return 2, nil })
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len after Reset = %d", c.Len())
	}
}
