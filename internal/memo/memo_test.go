package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dabench/internal/cachestats"
)

func TestDoMemoizes(t *testing.T) {
	c := New[string, int]()
	var calls atomic.Int64
	fn := func() (int, error) { calls.Add(1); return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", fn)
		if err != nil || v != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if s := c.Stats(); s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", s)
	}
}

func TestDoCachesErrors(t *testing.T) {
	c := New[string, int]()
	boom := errors.New("boom")
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := c.Do("k", func() (int, error) { calls.Add(1); return 0, boom }); err != boom {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("failing fn ran %d times, want 1 (errors are cached)", n)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[string, int]()
	var calls atomic.Int64
	const callers = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Do("k", func() (int, error) { calls.Add(1); return 7, nil })
			if err != nil || v != 7 {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("concurrent identical calls ran %d times, want 1", n)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != callers-1 {
		t.Errorf("stats = %+v, want %d hits / 1 miss", s, callers-1)
	}
}

func TestReset(t *testing.T) {
	c := New[string, int]()
	if _, err := c.Do("k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if s := c.Stats(); s != (cachestats.Stats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
	var calls atomic.Int64
	if _, err := c.Do("k", func() (int, error) { calls.Add(1); return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Error("reset cache still deduped")
	}
}

// TestDoPanicPoisonsKey guards the wedge the defer exists for: a
// panicking fn must release waiters with ErrPanicked instead of
// leaving them blocked on a never-closed done channel.
func TestDoPanicPoisonsKey(t *testing.T) {
	c := New[string, int]()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the running caller")
			}
		}()
		c.Do("k", func() (int, error) { panic("boom") })
	}()
	// Later callers must not block, and must see the poisoned outcome.
	done := make(chan error, 1)
	go func() {
		_, err := c.Do("k", func() (int, error) { return 1, nil })
		done <- err
	}()
	if err := <-done; !errors.Is(err, ErrPanicked) {
		t.Errorf("poisoned key returned %v, want ErrPanicked", err)
	}
}
