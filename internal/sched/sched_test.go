package sched

import (
	"testing"
	"testing/quick"
)

func TestBalanceLayers(t *testing.T) {
	got, err := BalanceLayers(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 4 {
			t.Fatalf("BalanceLayers(12,3) = %v", got)
		}
	}
	got, _ = BalanceLayers(7, 3)
	want := []int{3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BalanceLayers(7,3) = %v, want %v", got, want)
		}
	}
	if _, err := BalanceLayers(-1, 3); err == nil {
		t.Error("negative layers accepted")
	}
	if _, err := BalanceLayers(3, 0); err == nil {
		t.Error("zero stages accepted")
	}
}

// Property: balanced assignment covers all layers and its max load is
// the theoretical minimum ceil(n/k).
func TestBalanceLayersOptimalProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		layers := int(n % 100)
		stages := int(k%8) + 1
		got, err := BalanceLayers(layers, stages)
		if err != nil {
			return false
		}
		sum := 0
		for _, v := range got {
			sum += v
		}
		ceil := (layers + stages - 1) / stages
		return sum == layers && MaxLoad(got) == ceil || (layers == 0 && MaxLoad(got) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProportionalAlloc(t *testing.T) {
	got, err := ProportionalAlloc([]float64{1, 2, 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 25 || got[1] != 50 || got[2] != 25 {
		t.Errorf("alloc = %v", got)
	}
	if _, err := ProportionalAlloc([]float64{-1}, 10); err == nil {
		t.Error("negative weight accepted")
	}
	zero, err := ProportionalAlloc([]float64{0, 0}, 10)
	if err != nil || zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero weights: %v %v", zero, err)
	}
}

// Property: the allocation always sums exactly to capacity and no
// entry is negative.
func TestProportionalAllocSumProperty(t *testing.T) {
	f := func(a, b, c uint16, capV uint16) bool {
		weights := []float64{float64(a%97) + 0.5, float64(b % 97), float64(c%97) + 0.25}
		capacity := int(capV % 10000)
		got, err := ProportionalAlloc(weights, capacity)
		if err != nil {
			return false
		}
		sum := 0
		for _, v := range got {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackSections(t *testing.T) {
	bins, err := PackSections([]float64{3, 3, 3, 5, 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Order-preserving: [3,3] [3] wait — 3+3=6 fits, then 3+5>6 splits.
	if len(bins) != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0][0] != 0 || bins[0][1] != 1 {
		t.Errorf("first bin = %v", bins[0])
	}
	// Oversized item still gets a bin.
	bins, _ = PackSections([]float64{10}, 6)
	if len(bins) != 1 || len(bins[0]) != 1 {
		t.Errorf("oversized handling = %v", bins)
	}
	if _, err := PackSections([]float64{1}, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := PackSections([]float64{-1}, 5); err == nil {
		t.Error("negative size accepted")
	}
}

// Property: packing preserves every index exactly once, in order.
func TestPackSectionsCoverageProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		sizes := make([]float64, len(raw))
		for i, v := range raw {
			sizes[i] = float64(v % 10)
		}
		bins, err := PackSections(sizes, 12)
		if err != nil {
			return false
		}
		next := 0
		for _, b := range bins {
			for _, idx := range b {
				if idx != next {
					return false
				}
				next++
			}
		}
		return next == len(sizes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitOversized(t *testing.T) {
	out, origin, err := SplitOversized([]float64{4, 50, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 50 splits into 6 shards of 8.33.
	if len(out) != 8 {
		t.Fatalf("out = %v", out)
	}
	for i := 1; i <= 6; i++ {
		if origin[i] != 1 {
			t.Errorf("origin[%d] = %d, want 1", i, origin[i])
		}
		if out[i] > 10 {
			t.Errorf("shard %v exceeds capacity", out[i])
		}
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum < 56.99 || sum > 57.01 {
		t.Errorf("mass not conserved: %v", sum)
	}
}

// Property: after SplitOversized, every size fits the capacity and the
// total mass is conserved.
func TestSplitOversizedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		sizes := make([]float64, len(raw))
		var want float64
		for i, v := range raw {
			sizes[i] = float64(v % 500)
			want += sizes[i]
		}
		out, origin, err := SplitOversized(sizes, 37)
		if err != nil || len(out) != len(origin) {
			return false
		}
		var got float64
		for _, v := range out {
			if v > 37+1e-9 {
				return false
			}
			got += v
		}
		return got > want-1e-6 && got < want+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
