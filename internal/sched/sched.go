// Package sched collects the partitioning and placement algorithms the
// dataflow compilers in this repository rely on: balanced layer
// assignment for pipeline parallelism (Graphcore), weighted largest-
// remainder allocation for kernel placement (Cerebras), and greedy
// capacity packing for section formation (SambaNova).
//
// The algorithms are deliberately deterministic — the paper's framework
// assumes compile-time decisions are stable across runs ("most metrics
// are determined at compiling time and remain unchanged during
// execution").
package sched

import (
	"fmt"
	"sort"
)

// BalanceLayers spreads n layers over k pipeline stages so that the
// maximum stage load is minimized (the paper's IPU deployment
// recommendation: minimize the most heavily loaded IPU). The first
// (n mod k) stages receive the extra layer.
func BalanceLayers(n, k int) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("sched: negative layer count %d", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("sched: stage count %d must be positive", k)
	}
	out := make([]int, k)
	base, extra := n/k, n%k
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out, nil
}

// MaxLoad returns the largest element of an assignment (the pipeline
// bottleneck under the paper's Figure 11c rule).
func MaxLoad(assign []int) int {
	m := 0
	for _, v := range assign {
		if v > m {
			m = v
		}
	}
	return m
}

// ProportionalAlloc splits capacity across weights using the largest-
// remainder method: allocations are proportional to the weights, sum
// exactly to capacity, and are deterministic. It models the WSE
// compiler's work-proportional PE assignment after shrink-to-fit.
func ProportionalAlloc(weights []float64, capacity int) ([]int, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("sched: negative capacity %d", capacity)
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sched: negative weight %v at %d", w, i)
		}
		total += w
	}
	out := make([]int, len(weights))
	if total == 0 || len(weights) == 0 {
		return out, nil
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := w / total * float64(capacity)
		out[i] = int(exact)
		assigned += out[i]
		rems[i] = rem{i, exact - float64(out[i])}
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; i < capacity-assigned; i++ {
		out[rems[i%len(rems)].idx]++
	}
	return out, nil
}

// PackSections greedily packs item sizes into bins of the given
// capacity, preserving order (sections must respect the computation
// graph's topological order, unlike classic bin packing). Oversized
// items get a bin of their own — the RDU compiler's "further
// partitioning" is modeled by the caller splitting such items first.
func PackSections(sizes []float64, capacity float64) ([][]int, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sched: capacity %v must be positive", capacity)
	}
	var bins [][]int
	var cur []int
	var used float64
	for i, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("sched: negative size %v at %d", s, i)
		}
		if len(cur) > 0 && used+s > capacity {
			bins = append(bins, cur)
			cur, used = nil, 0
		}
		cur = append(cur, i)
		used += s
	}
	if len(cur) > 0 {
		bins = append(bins, cur)
	}
	return bins, nil
}

// SplitOversized divides any size exceeding capacity into equal shards
// that fit, returning the new sizes and, for each output index, the
// input item it came from. This is the RDU's matrix-sharding step
// (Table IIb): the LM head splits into shards before section packing.
func SplitOversized(sizes []float64, capacity float64) (out []float64, origin []int, err error) {
	if capacity <= 0 {
		return nil, nil, fmt.Errorf("sched: capacity %v must be positive", capacity)
	}
	for i, s := range sizes {
		if s < 0 {
			return nil, nil, fmt.Errorf("sched: negative size %v at %d", s, i)
		}
		if s <= capacity {
			out = append(out, s)
			origin = append(origin, i)
			continue
		}
		shards := int(s/capacity) + 1
		for j := 0; j < shards; j++ {
			out = append(out, s/float64(shards))
			origin = append(origin, i)
		}
	}
	return out, origin, nil
}
