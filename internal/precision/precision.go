// Package precision models the numeric formats supported by the
// accelerators benchmarked in DABench-LLM and the effect a format choice
// has on memory footprint and achievable compute throughput.
//
// The paper's Table IV evaluates FP32 ("full"), FP16, BF16, Cerebras'
// CB16 and vendor mixed-precision modes; the relative gains differ
// sharply per platform (RDU +34.3%, IPU +22.0%, WSE +10.7%), which is
// why precision is a first-class deployment knob in Tier 2.
package precision

import "fmt"

// Format identifies a numeric format or a vendor mixed-precision mode.
type Format int

// The formats referenced by the paper.
const (
	FP32 Format = iota
	FP16
	BF16
	// CB16 is Cerebras' 16-bit format (a brain-float variant with a
	// hardware-assisted stochastic rounding path).
	CB16
	// Mixed denotes the vendor's mixed-precision training mode:
	// 16-bit compute with FP32 master weights and accumulations.
	Mixed
)

var names = map[Format]string{
	FP32:  "FP32",
	FP16:  "FP16",
	BF16:  "BF16",
	CB16:  "CB16",
	Mixed: "Mixed",
}

// String returns the conventional name of the format.
func (f Format) String() string {
	if s, ok := names[f]; ok {
		return s
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Parse converts a name such as "fp16" or "mixed" into a Format.
func Parse(s string) (Format, error) {
	for f, name := range names {
		if equalFold(name, s) {
			return f, nil
		}
	}
	return FP32, fmt.Errorf("precision: unknown format %q", s)
}

// equalFold is a tiny ASCII case-insensitive comparison; the format
// names are pure ASCII so strings.EqualFold would be equivalent.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// BytesPerElement returns the storage size of one tensor element.
// Mixed mode stores activations and weights in 16 bits (the FP32 master
// copy is accounted separately by the optimizer-state model).
func (f Format) BytesPerElement() float64 {
	switch f {
	case FP32:
		return 4
	case FP16, BF16, CB16, Mixed:
		return 2
	default:
		return 4
	}
}

// Is16Bit reports whether compute happens in a 16-bit datapath.
func (f Format) Is16Bit() bool { return f != FP32 }

// MasterWeightBytes returns the extra bytes per parameter kept for the
// FP32 master copy under mixed-precision training, 0 otherwise.
func (f Format) MasterWeightBytes() float64 {
	if f == Mixed {
		return 4
	}
	return 0
}

// ComputeFactor returns the achievable-throughput multiplier of the
// format relative to the platform's FP32 datapath, for the platform's
// native speedup ratio ratio16 (peak 16-bit over peak 32-bit).
//
// Mixed precision does not reach the full 16-bit peak because a fraction
// of the step (master-weight update, loss scaling) stays in FP32; the
// paper's Table IV deltas are reproduced by each simulator picking its
// ratio16 and mixedOverhead in calibration.
func (f Format) ComputeFactor(ratio16, mixedOverhead float64) float64 {
	if ratio16 < 1 {
		ratio16 = 1
	}
	switch f {
	case FP32:
		return 1
	case FP16, BF16, CB16:
		return ratio16
	case Mixed:
		oh := mixedOverhead
		if oh < 0 {
			oh = 0
		}
		if oh > 0.9 {
			oh = 0.9
		}
		// Amdahl-style blend: (1-oh) of the work runs at the 16-bit
		// rate, oh remains at the FP32 rate.
		return 1 / ((1-oh)/ratio16 + oh)
	default:
		return 1
	}
}

// All returns every defined format in declaration order.
func All() []Format { return []Format{FP32, FP16, BF16, CB16, Mixed} }
