package precision

import (
	"testing"
	"testing/quick"
)

func TestString(t *testing.T) {
	cases := map[Format]string{
		FP32: "FP32", FP16: "FP16", BF16: "BF16", CB16: "CB16", Mixed: "Mixed",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(f), got, want)
		}
	}
	if got := Format(99).String(); got != "Format(99)" {
		t.Errorf("unknown format String() = %q", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, f := range All() {
		got, err := Parse(f.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", f.String(), err)
		}
		if got != f {
			t.Errorf("Parse(%q) = %v, want %v", f.String(), got, f)
		}
	}
	if _, err := Parse("int8"); err == nil {
		t.Error("Parse(int8) should fail")
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	for _, s := range []string{"fp16", "Fp16", "FP16", "bF16", "mixed", "MIXED"} {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q): %v", s, err)
		}
	}
}

func TestBytesPerElement(t *testing.T) {
	if FP32.BytesPerElement() != 4 {
		t.Error("FP32 should be 4 bytes")
	}
	for _, f := range []Format{FP16, BF16, CB16, Mixed} {
		if f.BytesPerElement() != 2 {
			t.Errorf("%v should be 2 bytes", f)
		}
	}
}

func TestMasterWeightBytes(t *testing.T) {
	if Mixed.MasterWeightBytes() != 4 {
		t.Error("Mixed keeps a 4-byte master copy")
	}
	for _, f := range []Format{FP32, FP16, BF16, CB16} {
		if f.MasterWeightBytes() != 0 {
			t.Errorf("%v should have no master copy", f)
		}
	}
}

func TestComputeFactorOrdering(t *testing.T) {
	// Pure 16-bit beats mixed, which beats FP32, for any sane ratio.
	ratio16, oh := 2.0, 0.15
	full := FP32.ComputeFactor(ratio16, oh)
	mixed := Mixed.ComputeFactor(ratio16, oh)
	half := BF16.ComputeFactor(ratio16, oh)
	if !(full < mixed && mixed < half) {
		t.Errorf("ordering violated: full=%v mixed=%v half=%v", full, mixed, half)
	}
	if full != 1 {
		t.Errorf("FP32 factor = %v, want 1", full)
	}
	if half != ratio16 {
		t.Errorf("BF16 factor = %v, want %v", half, ratio16)
	}
}

func TestComputeFactorDegenerate(t *testing.T) {
	// ratio16 < 1 is clamped so 16-bit never loses to FP32.
	if got := FP16.ComputeFactor(0.5, 0); got != 1 {
		t.Errorf("clamped factor = %v, want 1", got)
	}
	// Zero overhead mixed reaches the 16-bit peak.
	if got := Mixed.ComputeFactor(3, 0); got != 3 {
		t.Errorf("zero-overhead mixed = %v, want 3", got)
	}
}

// Property: mixed precision factor is always within [1, ratio16].
func TestMixedFactorBounds(t *testing.T) {
	f := func(r, oh float64) bool {
		ratio := 1 + abs(r, 7)
		overhead := abs(oh, 0.9)
		got := Mixed.ComputeFactor(ratio, overhead)
		return got >= 1-1e-9 && got <= ratio+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// abs folds an arbitrary float into [0, cap].
func abs(v, cap float64) float64 {
	if v != v || v > 1e300 || v < -1e300 { // NaN or effectively infinite
		return cap
	}
	if v < 0 {
		v = -v
	}
	for v > cap {
		v /= 2
	}
	return v
}
