// Package jobs is the durable async job manager behind POST /v1/jobs:
// long-running sweep work that outlives a single HTTP request. Where
// /v1/sweep is synchronous and budget-capped, a job is accepted
// immediately, executed on a background pool, and observed through its
// id — with every state transition journaled to an append-only JSONL
// log that is replayed on boot, so a daemon restart resumes (not
// loses) the queue.
//
// The manager is deliberately ignorant of sweeps: it owns lifecycle
// (queued → running → done/failed/cancelled), the journal, progress
// counters and result blobs, while the caller supplies one RunFunc
// that interprets the submitted request. That split keeps the journal
// format stable while the request vocabulary grows.
//
// Durability rules:
//
//   - submitted/terminal events are fsynced; progress events are not
//     (losing one costs a stale progress counter, nothing else).
//   - Results are written to a blob file before the "done" event, so a
//     journaled done always has its result.
//   - Replay tolerates a torn tail (a record cut mid-write by a
//     crash): the bad line is skipped and the affected job simply
//     resumes from its last intact transition — a job that was
//     queued or running re-enters the queue.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dabench/internal/faults"
)

// State is a job's lifecycle position.
type State string

// The job lifecycle. Queued and Running are live (and revive as Queued
// across a restart); the other three are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// RunFunc executes one job's request. It must honor ctx (cancellation
// and daemon shutdown arrive through it), report cumulative progress
// via progress(done, failed) as it goes, and return the job's result
// as a self-contained JSON document.
type RunFunc func(ctx context.Context, req json.RawMessage, progress func(done, failed int)) (json.RawMessage, error)

// Config tunes one Manager.
type Config struct {
	// Dir is the journal/results directory. "" runs ephemeral: full
	// lifecycle, no durability.
	Dir string
	// Run executes a job's request (required).
	Run RunFunc
	// Workers is the number of concurrently executing jobs (default 1:
	// jobs are batch work sharing the machine with interactive sweeps).
	Workers int
	// QueueDepth bounds accepted-but-unstarted jobs (default 1024);
	// past it Submit returns ErrQueueFull.
	QueueDepth int
	// Injector is the optional fault-injection hook fired at the
	// journal's write/fsync sites. Nil injects nothing.
	Injector *faults.Injector
}

// Errors returned by the manager's accessors.
var (
	ErrUnknownJob  = errors.New("jobs: unknown job")
	ErrQueueFull   = errors.New("jobs: queue full")
	ErrNotFinished = errors.New("jobs: job not finished")
	ErrFinished    = errors.New("jobs: job already finished")
	ErrClosed      = errors.New("jobs: manager closed")
)

// View is the wire form of a job's observable state.
type View struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Points int    `json:"points"`
	// Done and FailedPoints are cumulative progress counters;
	// FailedPoints counts tolerated placement failures, not job errors.
	Done         int        `json:"done"`
	FailedPoints int        `json:"failed_points"`
	Created      time.Time  `json:"created"`
	Started      *time.Time `json:"started,omitempty"`
	Finished     *time.Time `json:"finished,omitempty"`
	Error        string     `json:"error,omitempty"`
}

type job struct {
	id      string
	state   State
	points  int
	done    int
	failed  int
	created time.Time
	started time.Time
	finish  time.Time
	err     string
	request json.RawMessage

	cancelRequested bool
	cancel          context.CancelFunc // non-nil while running
}

func (j *job) view() View {
	v := View{
		ID: j.id, State: j.state, Points: j.points,
		Done: j.done, FailedPoints: j.failed,
		Created: j.created, Error: j.err,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finish.IsZero() {
		t := j.finish
		v.Finished = &t
	}
	return v
}

// Gauges is the job-manager section of /v1/stats.
type Gauges struct {
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// Replayed counts jobs revived from the journal on boot; Torn
	// counts journal lines dropped as corrupt during that replay.
	Replayed int64 `json:"replayed,omitempty"`
	Torn     int64 `json:"torn_records,omitempty"`
	// Journal is the journal's durability health; nil for an ephemeral
	// (Dir == "") manager, which has no journal to degrade.
	Journal *JournalHealth `json:"journal,omitempty"`
}

// Manager owns the job table, the journal and the background workers.
// Create with Open.
type Manager struct {
	cfg     Config
	journal *journal // nil when ephemeral

	mu           sync.Mutex
	jobs         map[string]*job
	order        []string // submission order, for List
	nextID       int
	closed       bool
	ephemeral    map[string]json.RawMessage // results when Dir == "" (capped; see retainEphemeralLocked)
	ephemeralIDs []string                   // retention order for the cap

	replayed, torn int64

	// queuedGauge tracks jobs in StateQueued with one atomic, so hot
	// observers (the server's 429 Retry-After derivation fires on
	// every shed request during a saturation storm) never take mu or
	// scan the job table. Stats() remains the authoritative full scan.
	queuedGauge atomic.Int64

	queue    chan *job
	shutdown context.CancelFunc
	baseCtx  context.Context
	wg       sync.WaitGroup
}

// Open builds a Manager, replaying cfg.Dir's journal (if any): jobs
// that were queued or running when the previous process died re-enter
// the queue, terminal jobs come back with their final state and (for
// done jobs) their persisted results.
func Open(cfg Config) (*Manager, error) {
	if cfg.Run == nil {
		return nil, errors.New("jobs: Config.Run is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	m := &Manager{
		cfg:  cfg,
		jobs: map[string]*job{},
	}
	//dalint:ignore noctxbg -- the manager's lifecycle root: cancelled by Shutdown, and every job context derives from it
	m.baseCtx, m.shutdown = context.WithCancel(context.Background())

	var revived []*job
	if cfg.Dir != "" {
		if err := os.MkdirAll(m.resultsDir(), 0o755); err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		var err error
		if revived, err = m.replay(); err != nil {
			return nil, err
		}
		j, err := openJournal(filepath.Join(cfg.Dir, "journal.jsonl"), cfg.Injector)
		if err != nil {
			return nil, err
		}
		m.journal = j
	}

	// The queue must absorb the replayed backlog in one shot — Open
	// cannot block on its own boot.
	depth := cfg.QueueDepth
	if len(revived) > depth {
		depth = len(revived)
	}
	m.queue = make(chan *job, depth)
	m.queuedGauge.Store(int64(len(revived)))
	for _, j := range revived {
		m.queue <- j
	}

	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

func (m *Manager) resultsDir() string { return filepath.Join(m.cfg.Dir, "results") }

func (m *Manager) resultPath(id string) string {
	return filepath.Join(m.resultsDir(), id+".json")
}

// replay rebuilds the job table from the journal, returning the jobs
// to revive (queued or running at the previous death). Called before
// the journal reopens for append and before workers start.
func (m *Manager) replay() ([]*job, error) {
	recs, torn, err := readJournal(filepath.Join(m.cfg.Dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	m.torn = int64(torn)
	for _, r := range recs {
		switch r.Event {
		case eventSubmitted:
			m.jobs[r.Job] = &job{
				id: r.Job, state: StateQueued, points: r.Points,
				created: r.Time, request: r.Request,
			}
			m.order = append(m.order, r.Job)
			if n := idNumber(r.Job); n >= m.nextID {
				m.nextID = n + 1
			}
		case eventRunning:
			if j := m.jobs[r.Job]; j != nil {
				j.state = StateRunning
				j.started = r.Time
			}
		case eventProgress:
			if j := m.jobs[r.Job]; j != nil {
				j.done, j.failed = r.Done, r.Failed
			}
		case eventDone:
			if j := m.jobs[r.Job]; j != nil {
				j.state = StateDone
				j.done, j.failed = r.Done, r.Failed
				j.finish = r.Time
			}
		case eventFailed:
			if j := m.jobs[r.Job]; j != nil {
				j.state = StateFailed
				j.err = r.Error
				j.finish = r.Time
			}
		case eventCancelled:
			if j := m.jobs[r.Job]; j != nil {
				j.state = StateCancelled
				j.finish = r.Time
			}
		case eventCancelRequested:
			if j := m.jobs[r.Job]; j != nil {
				j.cancelRequested = true
				j.finish = r.Time // provisional; a terminal record overwrites it
			}
		}
	}
	// Revive interrupted work; a done job whose result blob vanished is
	// recomputed rather than served a 404 forever.
	var revived []*job
	for _, id := range m.order {
		j := m.jobs[id]
		if j.cancelRequested && !j.state.Terminal() {
			// The previous life acknowledged a cancel but died before
			// the executor's terminal record: honor it.
			j.state = StateCancelled
			continue
		}
		if j.state == StateDone {
			if _, err := os.Stat(m.resultPath(id)); err != nil {
				j.state = StateQueued
			}
		}
		if j.state == StateQueued || j.state == StateRunning {
			j.state = StateQueued
			j.started = time.Time{}
			j.done, j.failed = 0, 0
			m.replayed++
			revived = append(revived, j)
		}
	}
	return revived, nil
}

// idNumber extracts the numeric suffix of "job-000042"; -1 if malformed.
func idNumber(id string) int {
	s, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

// Submit accepts a request for asynchronous execution. points is the
// caller-computed sweep size (progress denominators); req must be
// self-contained — it is journaled verbatim and re-executed on replay.
func (m *Manager) Submit(req json.RawMessage, points int) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return View{}, ErrClosed
	}
	j := &job{
		id:      fmt.Sprintf("job-%06d", m.nextID),
		state:   StateQueued,
		points:  points,
		created: time.Now().UTC(),
		request: req,
	}
	// Enqueue before registering: workers never take mu to receive, so
	// the buffered send cannot block, and a full queue rejects the job
	// with no state to unwind.
	select {
	case m.queue <- j:
	default:
		return View{}, ErrQueueFull
	}
	m.nextID++
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.queuedGauge.Add(1)
	m.append(record{Job: j.id, Event: eventSubmitted, Time: j.created, Points: points, Request: req}, true)
	return j.view(), nil
}

// Queued reports the number of jobs currently waiting to run. Unlike
// Stats it is a single atomic load — safe on hot paths like the
// server's load-shedding 429s.
func (m *Manager) Queued() int64 { return m.queuedGauge.Load() }

// Durable reports whether the manager journals to disk. Ephemeral job
// IDs restart from scratch every boot, so anything derived from an ID's
// identity across processes (the server's job-result ETags) must check
// this first.
func (m *Manager) Durable() bool { return m.journal != nil }

// Get returns a job's current view.
func (m *Manager) Get(id string) (View, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, false
	}
	return j.view(), true
}

// List returns every job in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	views := make([]View, len(m.order))
	for i, id := range m.order {
		views[i] = m.jobs[id].view()
	}
	return views
}

// Result returns a done job's persisted result document.
func (m *Manager) Result(id string) (json.RawMessage, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrUnknownJob
	}
	state := j.state
	ephemeral, retained := m.ephemeral[id]
	m.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("%w (state %s)", ErrNotFinished, state)
	}
	if m.journal == nil {
		if !retained {
			return nil, fmt.Errorf("jobs: result for %s expired (ephemeral retention keeps the last %d)", id, maxEphemeralResults)
		}
		return ephemeral, nil
	}
	data, err := os.ReadFile(m.resultPath(id))
	if err != nil {
		return nil, fmt.Errorf("jobs: result blob for %s: %w", id, err)
	}
	return data, nil
}

// Cancel requests cancellation. A queued job is cancelled on the spot;
// a running one has its context cancelled and transitions once the
// executor observes it. Cancelling a terminal job is ErrFinished.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return View{}, ErrUnknownJob
	}
	switch {
	case j.state.Terminal():
		return j.view(), ErrFinished
	case j.state == StateQueued:
		j.state = StateCancelled
		j.finish = time.Now().UTC()
		m.queuedGauge.Add(-1)
		m.append(record{Job: j.id, Event: eventCancelled, Time: j.finish}, true)
	default: // running
		j.cancelRequested = true
		// Journal the intent before acknowledging: a crash between
		// this 200 and the executor's terminal record must replay as
		// cancelled, not resurrect the job.
		m.append(record{Job: j.id, Event: eventCancelRequested, Time: time.Now().UTC()}, true)
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.view(), nil
}

// Stats returns the live gauges.
func (m *Manager) Stats() Gauges {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := Gauges{Replayed: m.replayed, Torn: m.torn}
	if m.journal != nil {
		h := m.journal.health()
		g.Journal = &h
	}
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			g.Queued++
		case StateRunning:
			g.Running++
		case StateDone:
			g.Done++
		case StateFailed:
			g.Failed++
		case StateCancelled:
			g.Cancelled++
		}
	}
	return g
}

// append journals a record if the manager is durable; sync forces an
// fsync (submission and terminal transitions — the events replay
// correctness depends on).
func (m *Manager) append(r record, sync bool) {
	if m.journal != nil {
		m.journal.append(r, sync)
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case j, ok := <-m.queue:
			if !ok {
				return
			}
			m.execute(j)
		case <-m.baseCtx.Done():
			return
		}
	}
}

func (m *Manager) execute(j *job) {
	m.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.cancel = cancel
	m.queuedGauge.Add(-1)
	m.append(record{Job: j.id, Event: eventRunning, Time: j.started}, false)
	m.mu.Unlock()

	progress := func(done, failed int) {
		m.mu.Lock()
		j.done, j.failed = done, failed
		m.append(record{Job: j.id, Event: eventProgress, Time: time.Now().UTC(), Done: done, Failed: failed}, false)
		m.mu.Unlock()
	}
	result, err := m.cfg.Run(ctx, j.request, progress)

	// Persist the result blob before taking the lock: a large result
	// fsyncs for a while, and the whole job API (Get/List/Stats/Submit)
	// must not stall behind it. Blob first, then the journaled
	// transition: a crash between the two replays as "running" and
	// recomputes — a journaled done always has its result.
	var persistErr error
	if err == nil && m.journal != nil {
		persistErr = writeFileAtomic(m.resultPath(j.id), result)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancel = nil
	now := time.Now().UTC()
	switch {
	case err == nil && persistErr != nil:
		j.state = StateFailed
		j.err = fmt.Sprintf("persist result: %v", persistErr)
		j.finish = now
		m.append(record{Job: j.id, Event: eventFailed, Time: now, Error: j.err}, true)
	case err == nil:
		if m.journal == nil {
			m.retainEphemeralLocked(j.id, result)
		}
		j.state = StateDone
		j.finish = now
		m.append(record{Job: j.id, Event: eventDone, Time: now, Done: j.done, Failed: j.failed}, true)
	case m.baseCtx.Err() != nil && !j.cancelRequested:
		// Daemon shutdown, not a user cancel: leave the job's journal
		// trail at "running" so the next boot revives it. In-memory
		// state goes back to queued for accuracy until exit.
		j.state = StateQueued
		j.started = time.Time{}
		m.queuedGauge.Add(1)
	case j.cancelRequested && errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.finish = now
		m.append(record{Job: j.id, Event: eventCancelled, Time: now}, true)
	default:
		j.state = StateFailed
		j.err = err.Error()
		j.finish = now
		m.append(record{Job: j.id, Event: eventFailed, Time: now, Error: j.err}, true)
	}
}

// maxEphemeralResults bounds how many finished jobs' results an
// ephemeral (Dir == "") manager retains in memory. Durable managers
// keep every result on disk; RAM-only ones would otherwise grow
// without bound on a long-lived daemon.
const maxEphemeralResults = 64

// retainEphemeralLocked stores an in-memory result, expiring the
// oldest one past the retention cap. Caller holds mu.
func (m *Manager) retainEphemeralLocked(id string, result json.RawMessage) {
	if m.ephemeral == nil {
		m.ephemeral = map[string]json.RawMessage{}
	}
	m.ephemeral[id] = result
	m.ephemeralIDs = append(m.ephemeralIDs, id)
	for len(m.ephemeralIDs) > maxEphemeralResults {
		delete(m.ephemeral, m.ephemeralIDs[0])
		m.ephemeralIDs = m.ephemeralIDs[1:]
	}
}

// Close stops accepting work, cancels running jobs (they revive on the
// next boot when durable) and releases the journal.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()

	m.shutdown()
	m.wg.Wait()
	if m.journal != nil {
		m.journal.close()
	}
}
