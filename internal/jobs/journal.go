package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Journal events, one per job state transition (plus progress beats
// and the cancel-intent marker).
const (
	eventSubmitted = "submitted"
	eventRunning   = "running"
	eventProgress  = "progress"
	eventDone      = "done"
	eventFailed    = "failed"
	eventCancelled = "cancelled"
	// eventCancelRequested records an acknowledged DELETE on a running
	// job before the executor observes it: if the process dies in that
	// window, replay honors the cancellation instead of resurrecting
	// the job.
	eventCancelRequested = "cancel_requested"
)

// record is one journal line. The submitted record carries the
// verbatim request so replay can re-execute it; terminal records carry
// the final counters the views report.
type record struct {
	Job     string          `json:"job"`
	Event   string          `json:"event"`
	Time    time.Time       `json:"time"`
	Points  int             `json:"points,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	Done    int             `json:"done,omitempty"`
	Failed  int             `json:"failed,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// journal is the append-only JSONL log. One writer (the manager, under
// its own locking for ordering) appends whole lines; fsync is reserved
// for records replay correctness depends on.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: journal: %w", err)
	}
	return &journal{f: f}, nil
}

func (j *journal) append(r record, sync bool) {
	data, err := json.Marshal(r)
	if err != nil {
		return // a record that cannot marshal is a programming error; never wedge the pipeline on it
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	// A failed append degrades durability, not liveness: the in-memory
	// state machine stays authoritative for this process's lifetime.
	if _, err := j.f.Write(data); err != nil {
		return
	}
	if sync {
		_ = j.f.Sync()
	}
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		_ = j.f.Sync()
		_ = j.f.Close()
		j.f = nil
	}
}

// readJournal replays path into its records, tolerating torn writes: a
// line that does not parse as a record (a crash mid-append, a partial
// flush) is skipped and counted, never fatal. A missing journal is an
// empty one.
func readJournal(path string) (recs []record, torn int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20) // submitted records carry whole requests
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.Job == "" || r.Event == "" {
			torn++
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		// An unreadable tail (e.g. a line over the buffer cap) is torn,
		// not fatal — everything scanned before it still replays.
		if err == bufio.ErrTooLong || err == io.ErrUnexpectedEOF {
			torn++
			return recs, torn, nil
		}
		return nil, torn, fmt.Errorf("jobs: journal: %w", err)
	}
	return recs, torn, nil
}

// writeFileAtomic writes data to path via a temp file + rename so a
// crash never leaves a half-written result blob at the final name.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		if serr != nil {
			return serr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}
