package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dabench/internal/faults"
)

// Journal events, one per job state transition (plus progress beats
// and the cancel-intent marker).
const (
	eventSubmitted = "submitted"
	eventRunning   = "running"
	eventProgress  = "progress"
	eventDone      = "done"
	eventFailed    = "failed"
	eventCancelled = "cancelled"
	// eventCancelRequested records an acknowledged DELETE on a running
	// job before the executor observes it: if the process dies in that
	// window, replay honors the cancellation instead of resurrecting
	// the job.
	eventCancelRequested = "cancel_requested"
)

// record is one journal line. The submitted record carries the
// verbatim request so replay can re-execute it; terminal records carry
// the final counters the views report.
type record struct {
	Job     string          `json:"job"`
	Event   string          `json:"event"`
	Time    time.Time       `json:"time"`
	Points  int             `json:"points,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	Done    int             `json:"done,omitempty"`
	Failed  int             `json:"failed,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Journal degraded-mode tuning: journalDegradeThreshold consecutive
// write/fsync failures flip the journal to degraded (in-memory-only)
// mode; while degraded, every journalProbeInterval-th append is let
// through as a probe, and one success restores durable operation.
const (
	journalDegradeThreshold = 3
	journalProbeInterval    = 64
)

// JournalHealth is the journal's observable durability state — the
// "journal" component in /healthz and /v1/stats.
type JournalHealth struct {
	// Degraded means the journal has given up on the underlying file
	// after sustained failures: job state is in-memory only until a
	// probe append succeeds. The job pipeline keeps running — replay
	// after a crash loses what was skipped, nothing else.
	Degraded     bool  `json:"degraded"`
	AppendErrors int64 `json:"append_errors,omitempty"`
	SyncErrors   int64 `json:"sync_errors,omitempty"`
	// Skipped counts records dropped while degraded; Recoveries counts
	// degraded → healthy transitions won by a probe.
	Skipped    int64 `json:"skipped,omitempty"`
	Recoveries int64 `json:"recoveries,omitempty"`
}

// journal is the append-only JSONL log. One writer (the manager, under
// its own locking for ordering) appends whole lines; fsync is reserved
// for records replay correctness depends on.
//
// A failed append or fsync degrades durability, not liveness: the
// in-memory state machine stays authoritative for this process's
// lifetime. Failures are counted and, past a consecutive-failure
// threshold, flip the journal to a degraded in-memory mode that stops
// hammering the failing device; periodic probe appends restore it.
type journal struct {
	mu  sync.Mutex
	f   *os.File
	inj *faults.Injector // nil in production

	appendErrs, syncErrs, skipped, recoveries int64

	consecutive int
	degraded    bool
	sinceProbe  int
}

func openJournal(path string, inj *faults.Injector) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: journal: %w", err)
	}
	return &journal{f: f, inj: inj}, nil
}

func (j *journal) append(r record, sync bool) {
	data, err := json.Marshal(r)
	if err != nil {
		return // a record that cannot marshal is a programming error; never wedge the pipeline on it
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if j.degraded {
		j.sinceProbe++
		if j.sinceProbe < journalProbeInterval {
			j.skipped++
			return
		}
		j.sinceProbe = 0 // this append is the recovery probe
	}
	if err := j.writeLine(data); err != nil {
		j.appendErrs++
		j.noteFailure(err)
		return
	}
	if sync {
		if err := j.syncFile(); err != nil {
			j.syncErrs++
			j.noteFailure(err)
			return
		}
	}
	j.noteSuccess()
}

// writeLine is the injectable journal-write site.
func (j *journal) writeLine(data []byte) error {
	if err := j.inj.Fire(faults.OpJournalAppend); err != nil {
		return err
	}
	_, err := j.f.Write(data)
	return err
}

// syncFile is the injectable journal-fsync site.
func (j *journal) syncFile() error {
	if err := j.inj.Fire(faults.OpJournalSync); err != nil {
		return err
	}
	return j.f.Sync()
}

// noteFailure extends the consecutive-failure run and flips to
// degraded mode at the threshold, logging once per transition — a
// sustained journal failure must be visible in the daemon log, not
// silently swallowed. Caller holds mu.
func (j *journal) noteFailure(err error) {
	j.consecutive++
	if !j.degraded && j.consecutive >= journalDegradeThreshold {
		j.degraded = true
		j.sinceProbe = 0
		log.Printf("jobs: journal degraded after %d consecutive failures (last: %v); "+
			"job state is in-memory only until a probe append succeeds", j.consecutive, err)
	}
}

// noteSuccess resets the failure run; a success while degraded is a
// won probe and restores durable operation. Caller holds mu.
func (j *journal) noteSuccess() {
	j.consecutive = 0
	if j.degraded {
		j.degraded = false
		j.recoveries++
		log.Printf("jobs: journal recovered; durable appends resume")
	}
}

// health snapshots the journal's durability counters.
func (j *journal) health() JournalHealth {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalHealth{
		Degraded:     j.degraded,
		AppendErrors: j.appendErrs,
		SyncErrors:   j.syncErrs,
		Skipped:      j.skipped,
		Recoveries:   j.recoveries,
	}
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		if err := j.f.Sync(); err != nil {
			j.syncErrs++
		}
		_ = j.f.Close()
		j.f = nil
	}
}

// readJournal replays path into its records, tolerating torn writes: a
// line that does not parse as a record (a crash mid-append, a partial
// flush) is skipped and counted, never fatal. A missing journal is an
// empty one.
func readJournal(path string) (recs []record, torn int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20) // submitted records carry whole requests
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.Job == "" || r.Event == "" {
			torn++
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		// An unreadable tail (e.g. a line over the buffer cap) is torn,
		// not fatal — everything scanned before it still replays.
		if err == bufio.ErrTooLong || err == io.ErrUnexpectedEOF {
			torn++
			return recs, torn, nil
		}
		return nil, torn, fmt.Errorf("jobs: journal: %w", err)
	}
	return recs, torn, nil
}

// writeFileAtomic writes data to path via a temp file + rename so a
// crash never leaves a half-written result blob at the final name.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		if serr != nil {
			return serr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}
