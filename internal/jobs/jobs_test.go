package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// echoRun is a RunFunc that reports full progress and echoes the
// request back as the result.
func echoRun(_ context.Context, req json.RawMessage, progress func(done, failed int)) (json.RawMessage, error) {
	progress(2, 1)
	return json.RawMessage(`{"echo":` + string(req) + `}`), nil
}

func waitState(t *testing.T, m *Manager, id string, want State) View {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := m.Get(id); ok && v.State == want {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
	return View{}
}

func TestLifecycle(t *testing.T) {
	m, err := Open(Config{Dir: t.TempDir(), Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	v, err := m.Submit(json.RawMessage(`{"n":1}`), 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued || v.Points != 3 || v.ID == "" {
		t.Fatalf("submitted view = %+v", v)
	}
	done := waitState(t, m, v.ID, StateDone)
	if done.Done != 2 || done.FailedPoints != 1 {
		t.Errorf("progress = %d/%d, want 2/1", done.Done, done.FailedPoints)
	}
	if done.Started == nil || done.Finished == nil {
		t.Errorf("timestamps missing: %+v", done)
	}
	res, err := m.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != `{"echo":{"n":1}}` {
		t.Errorf("result = %s", res)
	}
	g := m.Stats()
	if g.Done != 1 || g.Queued != 0 || g.Running != 0 {
		t.Errorf("gauges = %+v", g)
	}
}

func TestEphemeralManagerWorks(t *testing.T) {
	m, err := Open(Config{Run: echoRun}) // no Dir: no journal, no blobs
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, err := m.Submit(json.RawMessage(`{}`), 1)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateDone)
	res, err := m.Result(v.ID)
	if err != nil || string(res) != `{"echo":{}}` {
		t.Errorf("ephemeral result = %s, %v", res, err)
	}
}

func TestResultBeforeDoneIsAnError(t *testing.T) {
	release := make(chan struct{})
	m, err := Open(Config{Run: func(ctx context.Context, _ json.RawMessage, _ func(int, int)) (json.RawMessage, error) {
		select {
		case <-release:
			return json.RawMessage(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, _ := m.Submit(json.RawMessage(`{}`), 1)
	if _, err := m.Result(v.ID); !errors.Is(err, ErrNotFinished) {
		t.Errorf("early Result err = %v", err)
	}
	close(release)
	waitState(t, m, v.ID, StateDone)
	if _, err := m.Result("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown Result err = %v", err)
	}
}

func TestFailedJob(t *testing.T) {
	m, err := Open(Config{Dir: t.TempDir(), Run: func(context.Context, json.RawMessage, func(int, int)) (json.RawMessage, error) {
		return nil, errors.New("axis exploded")
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, _ := m.Submit(json.RawMessage(`{}`), 1)
	failed := waitState(t, m, v.ID, StateFailed)
	if failed.Error != "axis exploded" {
		t.Errorf("error = %q", failed.Error)
	}
	if _, err := m.Result(v.ID); !errors.Is(err, ErrNotFinished) {
		t.Errorf("Result on failed job err = %v", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	m, err := Open(Config{Dir: t.TempDir(), Run: func(ctx context.Context, _ json.RawMessage, _ func(int, int)) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, _ := m.Submit(json.RawMessage(`{}`), 1)
	<-started
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, StateCancelled)
	if got.Error != "" {
		t.Errorf("cancelled job carries error %q", got.Error)
	}
	if _, err := m.Cancel(v.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("double cancel err = %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	m, err := Open(Config{Dir: t.TempDir(), Workers: 1,
		Run: func(ctx context.Context, _ json.RawMessage, _ func(int, int)) (json.RawMessage, error) {
			<-gate
			return json.RawMessage(`{}`), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(gate)
	blocker, _ := m.Submit(json.RawMessage(`{}`), 1)
	_ = blocker
	queued, _ := m.Submit(json.RawMessage(`{}`), 1)
	// Give the single worker a moment to pick up the blocker, then
	// cancel the job still in the queue.
	time.Sleep(10 * time.Millisecond)
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	v := waitState(t, m, queued.ID, StateCancelled)
	if v.Started != nil {
		t.Error("cancelled-while-queued job claims to have started")
	}
}

// TestRestartResumesInterruptedJobs is the durability tentpole: jobs
// queued or running when the process dies must re-enter the queue on
// the next boot and complete.
func TestRestartResumesInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	m1, err := Open(Config{Dir: dir, Run: func(ctx context.Context, _ json.RawMessage, _ func(int, int)) (json.RawMessage, error) {
		select {
		case <-block:
			return json.RawMessage(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	running, _ := m1.Submit(json.RawMessage(`{"k":"running"}`), 4)
	waitState(t, m1, running.ID, StateRunning)
	m1.Close() // daemon shutdown mid-job: journal trail ends at "running"

	// Reboot with a RunFunc that completes immediately.
	m2, err := Open(Config{Dir: dir, Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	v := waitState(t, m2, running.ID, StateDone)
	if v.Points != 4 {
		t.Errorf("revived job lost its points: %+v", v)
	}
	res, err := m2.Result(running.ID)
	if err != nil || !strings.Contains(string(res), `"k":"running"`) {
		t.Errorf("revived result = %s, %v", res, err)
	}
	if g := m2.Stats(); g.Replayed != 1 {
		t.Errorf("replayed gauge = %d, want 1", g.Replayed)
	}
}

// TestRestartKeepsTerminalStates: done/failed/cancelled jobs come back
// exactly as they ended, results intact, and are not re-run.
func TestRestartKeepsTerminalStates(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir, Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := m1.Submit(json.RawMessage(`{"k":1}`), 1)
	waitState(t, m1, done.ID, StateDone)
	m1.Close()

	ran := 0
	m2, err := Open(Config{Dir: dir, Run: func(context.Context, json.RawMessage, func(int, int)) (json.RawMessage, error) {
		ran++
		return json.RawMessage(`{}`), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	v, ok := m2.Get(done.ID)
	if !ok || v.State != StateDone {
		t.Fatalf("done job came back as %+v", v)
	}
	res, err := m2.Result(done.ID)
	if err != nil || string(res) != `{"echo":{"k":1}}` {
		t.Errorf("restored result = %s, %v", res, err)
	}
	time.Sleep(20 * time.Millisecond)
	if ran != 0 {
		t.Errorf("terminal job re-ran %d times", ran)
	}
}

// TestTornJournalRecordIsSkipped is the crash-recovery satellite: a
// journal whose last record was cut mid-write must replay cleanly —
// the torn line is dropped and the affected job resumes from its last
// intact transition.
func TestTornJournalRecordIsSkipped(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir, Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m1.Submit(json.RawMessage(`{"k":"a"}`), 2)
	waitState(t, m1, a.ID, StateDone)
	m1.Close()

	// Simulate the crash: append a valid submitted record for job b,
	// then tear b's "done" record mid-write.
	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	bSubmitted, _ := json.Marshal(record{
		Job: "job-000001", Event: eventSubmitted, Time: time.Now().UTC(),
		Points: 5, Request: json.RawMessage(`{"k":"b"}`),
	})
	fmt.Fprintf(f, "%s\n", bSubmitted)
	torn, _ := json.Marshal(record{Job: "job-000001", Event: eventDone, Time: time.Now().UTC(), Done: 5})
	f.Write(torn[:len(torn)/2]) // the crash: no newline, half a record
	f.Close()

	m2, err := Open(Config{Dir: dir, Run: echoRun})
	if err != nil {
		t.Fatalf("replay of torn journal failed: %v", err)
	}
	defer m2.Close()

	if g := m2.Stats(); g.Torn != 1 {
		t.Errorf("torn counter = %d, want 1", g.Torn)
	}
	// Job a's history is intact and untouched.
	if v, ok := m2.Get(a.ID); !ok || v.State != StateDone {
		t.Errorf("job a after torn replay = %+v", v)
	}
	// Job b lost its (torn) done record, so it resumes and completes.
	v := waitState(t, m2, "job-000001", StateDone)
	if v.Points != 5 {
		t.Errorf("resumed job points = %d, want 5", v.Points)
	}
	res, err := m2.Result("job-000001")
	if err != nil || !strings.Contains(string(res), `"k":"b"`) {
		t.Errorf("resumed result = %s, %v", res, err)
	}
	// New submissions must not collide with replayed IDs.
	c, err := m2.Submit(json.RawMessage(`{}`), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID || c.ID == "job-000001" {
		t.Errorf("ID collision after replay: %s", c.ID)
	}
}

// TestQueuedGaugeTracksLifecycle: the O(1) queued gauge (the server's
// Retry-After signal) must agree with the authoritative Stats scan as
// jobs queue, start and cancel.
func TestQueuedGaugeTracksLifecycle(t *testing.T) {
	gate := make(chan struct{})
	m, err := Open(Config{QueueDepth: 8, Workers: 1,
		Run: func(ctx context.Context, _ json.RawMessage, _ func(int, int)) (json.RawMessage, error) {
			<-gate
			return json.RawMessage(`{}`), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(gate)

	if got := m.Queued(); got != 0 {
		t.Fatalf("fresh manager Queued() = %d", got)
	}
	// One job occupies the worker; the rest wait in the queue.
	var views []View
	for i := 0; i < 4; i++ {
		v, err := m.Submit(json.RawMessage(`{}`), 1)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
	}
	// Wait until the worker has taken exactly one job off the queue.
	deadline := time.Now().Add(2 * time.Second)
	for m.Stats().Running != 1 {
		if time.Now().After(deadline) {
			t.Fatal("no job started running")
		}
		time.Sleep(time.Millisecond)
	}
	if got, want := m.Queued(), m.Stats().Queued; got != want || got != 3 {
		t.Fatalf("Queued() = %d, Stats().Queued = %d, want 3", got, want)
	}
	// Cancelling a queued job drops the gauge with it.
	if _, err := m.Cancel(views[3].ID); err != nil {
		t.Fatal(err)
	}
	if got, want := m.Queued(), m.Stats().Queued; got != want || got != 2 {
		t.Fatalf("after cancel: Queued() = %d, Stats().Queued = %d, want 2", got, want)
	}
}

func TestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	m, err := Open(Config{QueueDepth: 1, Workers: 1,
		Run: func(ctx context.Context, _ json.RawMessage, _ func(int, int)) (json.RawMessage, error) {
			<-gate
			return json.RawMessage(`{}`), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(gate)
	// First job occupies the worker, second the queue slot; the third
	// must be rejected, not block the caller.
	if _, err := m.Submit(json.RawMessage(`{}`), 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := m.Submit(json.RawMessage(`{}`), 1)
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m, err := Open(Config{Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Submit(json.RawMessage(`{}`), 1); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close err = %v", err)
	}
}

func TestList(t *testing.T) {
	m, err := Open(Config{Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	a, _ := m.Submit(json.RawMessage(`{}`), 1)
	b, _ := m.Submit(json.RawMessage(`{}`), 1)
	views := m.List()
	if len(views) != 2 || views[0].ID != a.ID || views[1].ID != b.ID {
		t.Errorf("list = %+v", views)
	}
}

// TestCancelIntentSurvivesCrash: a DELETE acknowledged on a running
// job must replay as cancelled even when the process dies before the
// executor writes the terminal record.
func TestCancelIntentSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{})
	block := make(chan struct{})
	m1, err := Open(Config{Dir: dir, Run: func(ctx context.Context, _ json.RawMessage, _ func(int, int)) (json.RawMessage, error) {
		close(started)
		<-block // never observes the cancel: simulates the crash window
		return json.RawMessage(`{}`), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m1.Submit(json.RawMessage(`{}`), 1)
	<-started
	if _, err := m1.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	// "Crash": reopen the journal without closing m1 cleanly. The
	// journal trail ends at cancel_requested.
	m2, err := Open(Config{Dir: dir, Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m2.Get(v.ID)
	if !ok || got.State != StateCancelled {
		t.Errorf("replayed cancelled-in-flight job = %+v, want cancelled", got)
	}
	m2.Close()
	// Unblock m1's executor only after the assertions: Close waits for
	// the worker, which is parked on the block channel.
	close(block)
	m1.Close()
}

func TestEphemeralResultRetentionCap(t *testing.T) {
	m, err := Open(Config{Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var first View
	for i := 0; i < maxEphemeralResults+1; i++ {
		v, err := m.Submit(json.RawMessage(`{}`), 1)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = v
		}
		waitState(t, m, v.ID, StateDone)
	}
	if _, err := m.Result(first.ID); err == nil || !strings.Contains(err.Error(), "expired") {
		t.Errorf("oldest ephemeral result not expired: %v", err)
	}
	// The newest is still retained.
	views := m.List()
	if _, err := m.Result(views[len(views)-1].ID); err != nil {
		t.Errorf("newest ephemeral result lost: %v", err)
	}
}
