package jobs

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"dabench/internal/faults"
)

func testInjector(t *testing.T, spec faults.Spec) *faults.Injector {
	t.Helper()
	in, err := faults.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func testRecord(i int) record {
	return record{Job: "job-000000", Event: eventProgress, Time: time.Unix(int64(i), 0), Done: i}
}

func TestJournalCountsSyncErrors(t *testing.T) {
	in := testInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpJournalSync, Kind: faults.KindEIO, Count: 2},
	}})
	j, err := openJournal(filepath.Join(t.TempDir(), "journal.jsonl"), in)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()

	j.append(testRecord(0), true) // sync fails (injected)
	j.append(testRecord(1), true) // sync fails (injected)
	j.append(testRecord(2), true) // budget spent: healthy again

	h := j.health()
	if h.SyncErrors != 2 {
		t.Errorf("SyncErrors = %d, want 2", h.SyncErrors)
	}
	if h.AppendErrors != 0 {
		t.Errorf("AppendErrors = %d, want 0", h.AppendErrors)
	}
	// Two failures are under the threshold, and the healthy append
	// reset the run — never degraded.
	if h.Degraded {
		t.Error("journal degraded below the failure threshold")
	}
}

func TestJournalDegradesAndSkips(t *testing.T) {
	in := testInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpJournalAppend, Kind: faults.KindEIO},
	}})
	j, err := openJournal(filepath.Join(t.TempDir(), "journal.jsonl"), in)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()

	for i := 0; i < journalDegradeThreshold; i++ {
		j.append(testRecord(i), false)
	}
	h := j.health()
	if !h.Degraded {
		t.Fatalf("journal not degraded after %d consecutive failures: %+v", journalDegradeThreshold, h)
	}
	if h.AppendErrors != journalDegradeThreshold {
		t.Errorf("AppendErrors = %d, want %d", h.AppendErrors, journalDegradeThreshold)
	}

	// While degraded, appends are skipped without touching the file (the
	// injector's fire counter would grow if writeLine ran).
	firedBefore := in.Stats().Fired
	j.append(testRecord(99), true)
	if got := in.Stats().Fired; got != firedBefore {
		t.Errorf("degraded journal still wrote (fired %d -> %d)", firedBefore, got)
	}
	if h := j.health(); h.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", h.Skipped)
	}
}

func TestJournalProbeRecovers(t *testing.T) {
	in := testInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpJournalAppend, Kind: faults.KindEIO, Count: journalDegradeThreshold},
	}})
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := openJournal(path, in)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()

	for i := 0; i < journalDegradeThreshold; i++ {
		j.append(testRecord(i), false)
	}
	if !j.health().Degraded {
		t.Fatal("journal not degraded")
	}

	// Arm the probe window (in-package shortcut: the production interval
	// only matters as a rate limit) — the next append probes the healed
	// file and restores durable mode.
	j.mu.Lock()
	j.sinceProbe = journalProbeInterval - 1
	j.mu.Unlock()
	j.append(testRecord(100), true)

	h := j.health()
	if h.Degraded {
		t.Errorf("journal still degraded after successful probe: %+v", h)
	}
	if h.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", h.Recoveries)
	}

	// The probe's record must actually be on disk.
	recs, torn, err := readJournal(path)
	if err != nil || torn != 0 {
		t.Fatalf("readJournal: recs=%d torn=%d err=%v", len(recs), torn, err)
	}
	if len(recs) != 1 || recs[0].Done != 100 {
		t.Errorf("journal contents = %+v, want the single probe record", recs)
	}
}

func TestManagerSurvivesJournalFaults(t *testing.T) {
	// Every journal write fails; jobs must still run to completion and
	// the degradation must be visible in the gauges.
	in := testInjector(t, faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpJournalAppend, Kind: faults.KindEIO},
	}})
	m, err := Open(Config{Dir: t.TempDir(), Run: echoRun, Injector: in})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var last View
	for i := 0; i < 4; i++ {
		v, err := m.Submit(json.RawMessage(`{"n":1}`), 1)
		if err != nil {
			t.Fatal(err)
		}
		last = v
	}
	waitState(t, m, last.ID, StateDone)

	g := m.Stats()
	if g.Journal == nil || !g.Journal.Degraded {
		t.Fatalf("gauges journal = %+v, want degraded", g.Journal)
	}
	if g.Journal.AppendErrors < journalDegradeThreshold {
		t.Errorf("AppendErrors = %d, want >= %d", g.Journal.AppendErrors, journalDegradeThreshold)
	}
	if g.Done != 4 {
		t.Errorf("done = %d, want 4 (liveness through journal faults)", g.Done)
	}
}
