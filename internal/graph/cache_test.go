package graph

import (
	"reflect"
	"sync"
	"testing"

	"dabench/internal/model"
	"dabench/internal/precision"
)

func testOpts() BuildOptions {
	return BuildOptions{Batch: 8, Seq: 1024, Precision: precision.FP16, Backward: true}
}

func TestCachedDedupsIdenticalInputs(t *testing.T) {
	ResetCache()
	g1, err := Cached(model.GPT2Small(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Cached(model.GPT2Small(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("identical (cfg, opts) must share one cached graph")
	}
	if s := Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}

	// Any observable knob must miss.
	opts := testOpts()
	opts.Batch = 16
	g3, err := Cached(model.GPT2Small(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 {
		t.Error("different batch shared a cached graph")
	}
	g4, err := Cached(model.GPT2Small().WithLayers(7), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if g4 == g1 {
		t.Error("different layer count shared a cached graph")
	}
	if s := Stats(); s.Misses != 3 {
		t.Errorf("stats = %+v, want 3 misses", s)
	}
}

func TestCachedMatchesBuild(t *testing.T) {
	ResetCache()
	cached, err := Cached(model.LLaMA2_7B(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(model.LLaMA2_7B(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snapshot(cached), snapshot(fresh)) {
		t.Error("cached graph diverges from a fresh Build of the same inputs")
	}
}

func TestCachedCachesErrors(t *testing.T) {
	ResetCache()
	bad := BuildOptions{Batch: 0, Seq: 1024, Precision: precision.FP16}
	for i := 0; i < 3; i++ {
		if _, err := Cached(model.GPT2Small(), bad); err == nil {
			t.Fatal("invalid batch shape must fail")
		}
	}
	if s := Stats(); s.Misses != 1 || s.Hits != 2 {
		t.Errorf("stats = %+v, want the deterministic error built once", s)
	}
}

func TestCachedSingleflight(t *testing.T) {
	ResetCache()
	const callers = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	graphs := make([]*Graph, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			g, err := Cached(model.GPT2Small(), testOpts())
			if err != nil {
				t.Error(err)
			}
			graphs[i] = g
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < callers; i++ {
		if graphs[i] != graphs[0] {
			t.Fatal("concurrent identical builds produced distinct graphs")
		}
	}
	if s := Stats(); s.Misses != 1 || s.Hits != callers-1 {
		t.Errorf("stats = %+v, want %d hits / 1 miss", s, callers-1)
	}
}

func TestCacheReset(t *testing.T) {
	ResetCache()
	g1, err := Cached(model.GPT2Small(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	if s := Stats(); s != (CacheStats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
	g2, err := Cached(model.GPT2Small(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 {
		t.Error("reset cache still returned the old graph")
	}
}

func TestCacheStatsSub(t *testing.T) {
	a := CacheStats{Hits: 5, Misses: 3}
	if d := a.Sub(CacheStats{Hits: 2, Misses: 1}); d.Hits != 3 || d.Misses != 2 {
		t.Errorf("Sub = %+v", d)
	}
}

// snapshot deep-copies everything a consumer can observe about a graph:
// node values in ID order plus the successor/predecessor lists.
func snapshot(g *Graph) []Node {
	out := make([]Node, 0, g.Len())
	for _, n := range g.Nodes() {
		out = append(out, *n)
	}
	return out
}

// adjacency captures the edge structure via the public accessors.
func adjacency(g *Graph) [][2][]int {
	out := make([][2][]int, g.Len())
	for i, n := range g.Nodes() {
		for _, s := range g.Successors(n) {
			out[i][0] = append(out[i][0], s.ID)
		}
		for _, p := range g.Predecessors(n) {
			out[i][1] = append(out[i][1], p.ID)
		}
	}
	return out
}

// TestCachedGraphImmutability guards the contract the cache tier is
// built on: a graph is frozen once Build returns, and exercising every
// read-only accessor must not perturb node values or edges.
func TestCachedGraphImmutability(t *testing.T) {
	ResetCache()
	g, err := Cached(model.GPT2Small().WithLayers(4), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	nodes := snapshot(g)
	edges := adjacency(g)

	// Drive every exported read path a consumer uses.
	if _, err := g.TopoSort(); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.TotalFLOPs()
	g.TotalParamBytes()
	g.TotalTraffic()
	g.MaxLayer()
	for l := -1; l <= g.MaxLayer(); l++ {
		g.NodesInLayer(l)
	}
	g.Filter(func(n *Node) bool { return n.Kind == OpMatMul })
	for _, n := range g.Nodes() {
		n.Traffic()
		g.Node(n.ID)
	}

	if !reflect.DeepEqual(nodes, snapshot(g)) {
		t.Error("read-only accessors mutated node state")
	}
	if !reflect.DeepEqual(edges, adjacency(g)) {
		t.Error("read-only accessors mutated edge state")
	}

	// A second Cached call must observe the identical frozen graph.
	g2, err := Cached(model.GPT2Small().WithLayers(4), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g || !reflect.DeepEqual(nodes, snapshot(g2)) {
		t.Error("cached graph drifted between retrievals")
	}
}

func TestLayerPrefix(t *testing.T) {
	for _, tc := range []struct {
		l    int
		want string
	}{{0, "L0/"}, {12, "L12/"}, {127, "L127/"}, {128, "L128/"}, {4096, "L4096/"}} {
		if got := LayerPrefix(tc.l); got != tc.want {
			t.Errorf("LayerPrefix(%d) = %q, want %q", tc.l, got, tc.want)
		}
	}
}
