package graph

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dabench/internal/model"
	"dabench/internal/precision"
	"dabench/internal/units"
)

func buildSmall(t *testing.T, layers int, backward bool) *Graph {
	t.Helper()
	g, err := Build(model.GPT2Small().WithLayers(layers), BuildOptions{
		Batch: 2, Seq: 128, Precision: precision.FP16, Backward: backward,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildForwardShape(t *testing.T) {
	g := buildSmall(t, 3, false)
	// 12 ops per GPT-2 decoder block + embedding + final norm + head + loss.
	want := 3*12 + 4
	if g.Len() != want {
		t.Errorf("node count = %d, want %d", g.Len(), want)
	}
	if g.MaxLayer() != 2 {
		t.Errorf("MaxLayer = %d, want 2", g.MaxLayer())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuildSwiGLUHasNoSeparateGate(t *testing.T) {
	g, err := Build(model.LLaMA2_7B().WithLayers(1), BuildOptions{
		Batch: 1, Seq: 64, Precision: precision.BF16,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// SwiGLU fuses gate+up, so the block still has 12 ops; the up
	// projection carries 2·h·f parameters.
	var up *Node
	for _, n := range g.Nodes() {
		if strings.HasSuffix(n.Name, "mlp-up") {
			up = n
		}
	}
	if up == nil {
		t.Fatal("no mlp-up node")
	}
	cfg := model.LLaMA2_7B()
	wantParams := 2 * float64(cfg.HiddenSize) * float64(cfg.FFNHidden) * 2 // ×2 bytes
	if math.Abs(float64(up.ParamBytes)-wantParams) > 1 {
		t.Errorf("SwiGLU up params = %v bytes, want %v", up.ParamBytes, wantParams)
	}
}

func TestTopoSortRespectsEdges(t *testing.T) {
	g := buildSmall(t, 2, true)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make(map[int]int, len(order))
	for i, n := range order {
		pos[n.ID] = i
	}
	for _, n := range g.Nodes() {
		for _, s := range g.Successors(n) {
			if pos[n.ID] >= pos[s.ID] {
				t.Fatalf("edge %s -> %s violated in topo order", n.Name, s.Name)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	a := g.AddNode(Node{Name: "a"})
	b := g.AddNode(Node{Name: "b"})
	g.MustEdge(a, b)
	g.MustEdge(b, a)
	if err := g.Validate(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	a := g.AddNode(Node{Name: "a"})
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddEdge(nil, a); err == nil {
		t.Error("nil edge accepted")
	}
	other := New()
	x := other.AddNode(Node{Name: "x"})
	if err := g.AddEdge(a, x); err == nil {
		t.Error("foreign node accepted")
	}
}

func TestBackwardRoughlyDoublesTwice(t *testing.T) {
	fwd := buildSmall(t, 4, false)
	full := buildSmall(t, 4, true)
	ffw := float64(fwd.TotalFLOPs())
	ftr := float64(full.TotalFLOPs())
	// Training ≈ 3× forward (fwd + 2× bwd) plus a small optimizer term.
	if ftr < 2.9*ffw || ftr > 3.3*ffw {
		t.Errorf("training/forward FLOPs ratio = %.2f, want ≈3", ftr/ffw)
	}
}

func TestGraphFLOPsMatchModelEstimate(t *testing.T) {
	cfg := model.GPT2Small()
	g, err := Build(cfg, BuildOptions{Batch: 4, Seq: 1024, Precision: precision.FP16, Backward: true})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(g.TotalFLOPs())
	want := float64(cfg.TrainFLOPs(4, 1024))
	ratio := got / want
	if ratio < 0.85 || ratio > 1.25 {
		t.Errorf("graph FLOPs %.3g vs model estimate %.3g (ratio %.2f)", got, want, ratio)
	}
}

func TestNodesInLayer(t *testing.T) {
	g := buildSmall(t, 3, false)
	for l := 0; l < 3; l++ {
		if got := len(g.NodesInLayer(l)); got != 12 {
			t.Errorf("layer %d has %d nodes, want 13", l, got)
		}
	}
	shared := g.NodesInLayer(-1)
	if len(shared) != 4 {
		t.Errorf("shared nodes = %d, want 4", len(shared))
	}
}

func TestFilter(t *testing.T) {
	g := buildSmall(t, 2, false)
	matmuls := g.Filter(func(n *Node) bool { return n.Kind == OpMatMul })
	// 4 matmuls per block (qkv, proj, up, down) + LM head.
	if len(matmuls) != 2*4+1 {
		t.Errorf("matmul count = %d, want 9", len(matmuls))
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(model.GPT2Small(), BuildOptions{Batch: 0, Seq: 128}); err == nil {
		t.Error("zero batch accepted")
	}
	bad := model.GPT2Small()
	bad.HiddenSize = 0
	if _, err := Build(bad, BuildOptions{Batch: 1, Seq: 1}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestTrafficPositive(t *testing.T) {
	g := buildSmall(t, 2, true)
	for _, n := range g.Nodes() {
		if n.Traffic() <= 0 {
			t.Errorf("node %s has non-positive traffic", n.Name)
		}
	}
	if g.TotalTraffic() <= g.TotalParamBytes() {
		t.Error("total traffic should exceed weight bytes")
	}
}

func TestOpKindAndPhaseStrings(t *testing.T) {
	if OpMatMul.String() != "matmul" || OpKind(99).String() == "" {
		t.Error("OpKind.String misbehaves")
	}
	if Forward.String() != "fwd" || Backward.String() != "bwd" || Update.String() != "upd" {
		t.Error("Phase.String misbehaves")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase formatting")
	}
}

// Property: graphs built at any small layer count are valid DAGs whose
// FLOPs grow monotonically with depth.
func TestBuildMonotoneProperty(t *testing.T) {
	cfg := model.GPT2Config("prop", 256, 1, 4)
	prev := units.FLOPs(0)
	f := func(n uint8) bool {
		l := int(n%8) + 1
		g, err := Build(cfg.WithLayers(l), BuildOptions{Batch: 1, Seq: 32, Precision: precision.FP16, Backward: true})
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		_ = prev
		return g.TotalFLOPs() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Deterministic monotonicity sweep.
	for l := 1; l <= 6; l++ {
		g, err := Build(cfg.WithLayers(l), BuildOptions{Batch: 1, Seq: 32, Precision: precision.FP16, Backward: true})
		if err != nil {
			t.Fatal(err)
		}
		if g.TotalFLOPs() <= prev {
			t.Fatalf("FLOPs not monotone at %d layers", l)
		}
		prev = g.TotalFLOPs()
	}
}
