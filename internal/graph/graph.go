// Package graph provides the computation-graph intermediate
// representation that dataflow accelerators compile: nodes are operators
// annotated with FLOP counts, parameter bytes and activation traffic;
// edges are data dependencies.
//
// All three vendors' toolchains in the paper lower an LLM to such a
// graph before mapping it: Cerebras places the whole graph at layer
// granularity, SambaNova partitions it into sections, and Graphcore
// groups layers into pipeline stages. The partitioners in
// internal/sched operate on this IR.
//
// # Immutability contract
//
// A Graph is mutable only while it is being constructed. Once Build (or
// Cached) returns, the graph — its node list, every Node's fields, and
// the adjacency maps — is frozen: all exported Graph methods are
// read-only, and consumers must never call AddNode, AddEdge or MustEdge
// on a graph they did not construct themselves. The Cached build tier
// shares one *Graph across platforms, compile modes and concurrent
// sweep workers on the strength of this contract.
package graph

import (
	"fmt"

	"dabench/internal/units"
)

// OpKind classifies an operator node.
type OpKind int

// Operator kinds appearing in decoder-only transformer training.
const (
	OpEmbedding OpKind = iota
	OpNorm
	OpMatMul    // dense projections: QKV, attention output, MLP, LM head
	OpAttnScore // Q·Kᵀ
	OpSoftmax
	OpAttnContext // scores·V
	OpActivation  // GELU / SwiGLU pointwise
	OpResidual
	OpLoss
	OpOptimizer
	OpTransfer // explicit data movement (used by multi-chip lowering)
)

var opNames = map[OpKind]string{
	OpEmbedding:   "embedding",
	OpNorm:        "norm",
	OpMatMul:      "matmul",
	OpAttnScore:   "attn-score",
	OpSoftmax:     "softmax",
	OpAttnContext: "attn-context",
	OpActivation:  "activation",
	OpResidual:    "residual",
	OpLoss:        "loss",
	OpOptimizer:   "optimizer",
	OpTransfer:    "transfer",
}

// String returns the operator kind name.
func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Phase distinguishes forward, backward and weight-update work.
type Phase int

// Graph phases.
const (
	Forward Phase = iota
	Backward
	Update
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Forward:
		return "fwd"
	case Backward:
		return "bwd"
	case Update:
		return "upd"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Node is one operator instance in the graph.
type Node struct {
	ID    int
	Name  string
	Kind  OpKind
	Phase Phase
	// Layer is the decoder-block index, or -1 for layer-independent
	// operators (embedding, final norm, LM head, loss).
	Layer int

	FLOPs       units.FLOPs // per training step at the built batch shape
	ParamBytes  units.Bytes // weight storage touched by this operator
	InputBytes  units.Bytes // activation bytes read
	OutputBytes units.Bytes // activation bytes written
}

// Traffic is the total memory traffic the node generates.
func (n *Node) Traffic() units.Bytes {
	return n.ParamBytes + n.InputBytes + n.OutputBytes
}

// Graph is a DAG of operator nodes.
type Graph struct {
	nodes []*Node
	succ  map[int][]int
	pred  map[int][]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{succ: map[int][]int{}, pred: map[int][]int{}}
}

// NewSized returns an empty graph preallocated for about n nodes.
func NewSized(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		nodes: make([]*Node, 0, n),
		succ:  make(map[int][]int, n),
		pred:  make(map[int][]int, n),
	}
}

// AddNode appends a node, assigning its ID, and returns it.
func (g *Graph) AddNode(n Node) *Node {
	n.ID = len(g.nodes)
	p := &n
	g.nodes = append(g.nodes, p)
	return p
}

// AddEdge records a data dependency from producer to consumer.
// Self-edges and references to unknown nodes are rejected.
func (g *Graph) AddEdge(from, to *Node) error {
	if from == nil || to == nil {
		return fmt.Errorf("graph: nil node in edge")
	}
	if from.ID == to.ID {
		return fmt.Errorf("graph: self edge on %q", from.Name)
	}
	if from.ID >= len(g.nodes) || g.nodes[from.ID] != from ||
		to.ID >= len(g.nodes) || g.nodes[to.ID] != to {
		return fmt.Errorf("graph: edge references foreign node")
	}
	g.succ[from.ID] = append(g.succ[from.ID], to.ID)
	g.pred[to.ID] = append(g.pred[to.ID], from.ID)
	return nil
}

// MustEdge is AddEdge for construction code where both endpoints are
// freshly created; it panics on programmer error.
func (g *Graph) MustEdge(from, to *Node) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// Nodes returns the node list in insertion order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id int) *Node {
	if id < 0 || id >= len(g.nodes) {
		return nil
	}
	return g.nodes[id]
}

// Successors returns the consumers of n.
func (g *Graph) Successors(n *Node) []*Node { return g.resolve(g.succ[n.ID]) }

// Predecessors returns the producers feeding n.
func (g *Graph) Predecessors(n *Node) []*Node { return g.resolve(g.pred[n.ID]) }

func (g *Graph) resolve(ids []int) []*Node {
	out := make([]*Node, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id]
	}
	return out
}

// TopoSort returns the nodes in a valid execution order, or an error if
// the graph has a cycle.
func (g *Graph) TopoSort() ([]*Node, error) {
	indeg := make([]int, len(g.nodes))
	for _, outs := range g.succ {
		for _, to := range outs {
			indeg[to]++
		}
	}
	var queue []int
	for id := range g.nodes {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]*Node, 0, len(g.nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, g.nodes[id])
		for _, to := range g.succ[id] {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(order), len(g.nodes))
	}
	return order, nil
}

// Validate checks the graph is a DAG.
func (g *Graph) Validate() error {
	_, err := g.TopoSort()
	return err
}

// TotalFLOPs sums FLOPs over all nodes.
func (g *Graph) TotalFLOPs() units.FLOPs {
	var t units.FLOPs
	for _, n := range g.nodes {
		t += n.FLOPs
	}
	return t
}

// TotalParamBytes sums weight bytes over all nodes (each operator's
// weights counted where they are used).
func (g *Graph) TotalParamBytes() units.Bytes {
	var t units.Bytes
	for _, n := range g.nodes {
		t += n.ParamBytes
	}
	return t
}

// TotalTraffic sums memory traffic over all nodes.
func (g *Graph) TotalTraffic() units.Bytes {
	var t units.Bytes
	for _, n := range g.nodes {
		t += n.Traffic()
	}
	return t
}

// NodesInLayer returns the nodes belonging to decoder block l.
func (g *Graph) NodesInLayer(l int) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.Layer == l {
			out = append(out, n)
		}
	}
	return out
}

// MaxLayer returns the highest decoder-block index present, or -1.
func (g *Graph) MaxLayer() int {
	maxL := -1
	for _, n := range g.nodes {
		if n.Layer > maxL {
			maxL = n.Layer
		}
	}
	return maxL
}

// Filter returns the nodes for which keep returns true.
func (g *Graph) Filter(keep func(*Node) bool) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if keep(n) {
			out = append(out, n)
		}
	}
	return out
}
