package graph

import (
	"fmt"
	"strconv"

	"dabench/internal/model"
	"dabench/internal/precision"
	"dabench/internal/units"
)

// BuildOptions control graph construction.
type BuildOptions struct {
	Batch     int
	Seq       int
	Precision precision.Format
	// Backward adds the backward pass (2× forward FLOPs per operator,
	// mirrored dependencies) and per-layer optimizer updates, matching
	// the training graphs the paper benchmarks.
	Backward bool
}

// LayerPrefix returns the canonical "L<l>/" operator-name prefix for
// decoder block l. The first prefixes are served from a precomputed
// table so per-layer loops don't re-format the same small integers.
func LayerPrefix(l int) string {
	if l >= 0 && l < len(layerPrefixes) {
		return layerPrefixes[l]
	}
	return "L" + strconv.Itoa(l) + "/"
}

// layerPrefixes covers every layer count the paper sweeps (≤ 128).
var layerPrefixes = func() [128]string {
	var t [128]string
	for i := range t {
		t[i] = "L" + strconv.Itoa(i) + "/"
	}
	return t
}()

// nodeCountHint estimates the built graph's node count for slice/map
// preallocation: the forward pass has 12 operators per decoder block
// plus 4 shared ones; backward roughly mirrors it and adds an optimizer
// node per parameterized operator (6 per block + 3 shared).
func nodeCountHint(layers int, backward bool) int {
	fwd := 12*layers + 4
	if !backward {
		return fwd
	}
	return 2*fwd + 6*layers + 3
}

// Build lowers a model configuration to its training (or inference)
// computation graph at the given batch shape. The returned graph is
// immutable (see the package comment's immutability contract).
func Build(cfg model.Config, opts BuildOptions) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Batch <= 0 || opts.Seq <= 0 {
		return nil, fmt.Errorf("graph: batch shape (%d,%d) must be positive", opts.Batch, opts.Seq)
	}
	b := builder{
		g:      NewSized(nodeCountHint(cfg.NumLayers, opts.Backward)),
		cfg:    cfg,
		tokens: float64(opts.Batch) * float64(opts.Seq),
		seq:    float64(opts.Seq),
		elem:   opts.Precision.BytesPerElement(),
		fwd:    make([]*Node, 0, nodeCountHint(cfg.NumLayers, false)),
	}
	b.buildForward()
	if opts.Backward {
		b.buildBackward()
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

type builder struct {
	g      *Graph
	cfg    model.Config
	tokens float64 // B·S
	seq    float64
	elem   float64 // bytes per element

	fwd []*Node // forward nodes in construction (topological) order
}

// actBytes converts a per-token element count to activation bytes.
func (b *builder) actBytes(elemsPerToken float64) units.Bytes {
	return units.Bytes(b.tokens * elemsPerToken * b.elem)
}

// add appends a forward node wired after the given predecessors.
func (b *builder) add(n Node, preds ...*Node) *Node {
	p := b.g.AddNode(n)
	for _, pr := range preds {
		b.g.MustEdge(pr, p)
	}
	b.fwd = append(b.fwd, p)
	return p
}

func (b *builder) buildForward() {
	cfg := b.cfg
	h := float64(cfg.HiddenSize)
	f := float64(cfg.FFNHidden)
	v := float64(cfg.VocabSize)
	kvFrac := float64(cfg.KVHeads) / float64(cfg.NumHeads)
	heads := float64(cfg.NumHeads)

	embed := b.add(Node{
		Name: "embedding", Kind: OpEmbedding, Phase: Forward, Layer: -1,
		FLOPs:       units.FLOPs(2 * b.tokens * h), // gather + position add
		ParamBytes:  units.Bytes(float64(cfg.EmbeddingParams()) * b.elem),
		InputBytes:  units.Bytes(b.tokens * 4), // token ids
		OutputBytes: b.actBytes(h),
	})

	prev := embed
	for l := 0; l < cfg.NumLayers; l++ {
		prev = b.buildDecoder(l, prev, h, f, v, kvFrac, heads)
	}

	finalNorm := b.add(Node{
		Name: "final-norm", Kind: OpNorm, Phase: Forward, Layer: -1,
		FLOPs:       units.FLOPs(5 * b.tokens * h),
		ParamBytes:  units.Bytes(float64(cfg.NormParams()) * b.elem),
		InputBytes:  b.actBytes(h),
		OutputBytes: b.actBytes(h),
	}, prev)

	head := b.add(Node{
		Name: "lm-head", Kind: OpMatMul, Phase: Forward, Layer: -1,
		FLOPs:       units.FLOPs(2 * b.tokens * h * v),
		ParamBytes:  units.Bytes(float64(cfg.EmbeddingHeadMatmulParams()) * b.elem),
		InputBytes:  b.actBytes(h),
		OutputBytes: b.actBytes(v),
	}, finalNorm)

	b.add(Node{
		Name: "loss", Kind: OpLoss, Phase: Forward, Layer: -1,
		FLOPs:       units.FLOPs(5 * b.tokens * v),
		InputBytes:  b.actBytes(v),
		OutputBytes: units.Bytes(8),
	}, head)
}

// buildDecoder appends one decoder block's forward operators and
// returns the block output node.
func (b *builder) buildDecoder(l int, in *Node, h, f, v, kvFrac, heads float64) *Node {
	cfg := b.cfg
	prefix := LayerPrefix(l)
	name := func(op string) string { return prefix + op }
	elems := b.elem
	normBytes := units.Bytes(float64(cfg.NormParams()) * elems)

	norm1 := b.add(Node{
		Name: name("norm1"), Kind: OpNorm, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(5 * b.tokens * h),
		ParamBytes: normBytes, InputBytes: b.actBytes(h), OutputBytes: b.actBytes(h),
	}, in)

	qkvParams := h*h + 2*h*h*kvFrac
	qkv := b.add(Node{
		Name: name("qkv"), Kind: OpMatMul, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(2 * b.tokens * qkvParams),
		ParamBytes: units.Bytes(qkvParams * elems),
		InputBytes: b.actBytes(h), OutputBytes: b.actBytes(h * (1 + 2*kvFrac)),
	}, norm1)

	score := b.add(Node{
		Name: name("attn-score"), Kind: OpAttnScore, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(2 * b.tokens * b.seq * h),
		InputBytes: b.actBytes(h * (1 + kvFrac)), OutputBytes: b.actBytes(b.seq * heads),
	}, qkv)

	softmax := b.add(Node{
		Name: name("softmax"), Kind: OpSoftmax, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(5 * b.tokens * b.seq * heads),
		InputBytes: b.actBytes(b.seq * heads), OutputBytes: b.actBytes(b.seq * heads),
	}, score)

	context := b.add(Node{
		Name: name("attn-context"), Kind: OpAttnContext, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(2 * b.tokens * b.seq * h),
		InputBytes: b.actBytes(b.seq*heads + h*kvFrac), OutputBytes: b.actBytes(h),
	}, softmax, qkv)

	proj := b.add(Node{
		Name: name("attn-proj"), Kind: OpMatMul, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(2 * b.tokens * h * h),
		ParamBytes: units.Bytes(h * h * elems),
		InputBytes: b.actBytes(h), OutputBytes: b.actBytes(h),
	}, context)

	res1 := b.add(Node{
		Name: name("residual1"), Kind: OpResidual, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(b.tokens * h),
		InputBytes: b.actBytes(2 * h), OutputBytes: b.actBytes(h),
	}, proj, in)

	norm2 := b.add(Node{
		Name: name("norm2"), Kind: OpNorm, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(5 * b.tokens * h),
		ParamBytes: normBytes, InputBytes: b.actBytes(h), OutputBytes: b.actBytes(h),
	}, res1)

	// Feed-forward: GELU MLP has fc1/act/fc2; SwiGLU has a fused
	// gate+up projection (2·h·f params) before the down projection.
	upParams := h * f
	if cfg.Activation == model.SwiGLU {
		upParams = 2 * h * f
	}
	fc1 := b.add(Node{
		Name: name("mlp-up"), Kind: OpMatMul, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(2 * b.tokens * upParams),
		ParamBytes: units.Bytes(upParams * elems),
		InputBytes: b.actBytes(h), OutputBytes: b.actBytes(upParams / h),
	}, norm2)

	act := b.add(Node{
		Name: name("mlp-act"), Kind: OpActivation, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(8 * b.tokens * f),
		InputBytes: b.actBytes(upParams / h), OutputBytes: b.actBytes(f),
	}, fc1)

	fc2 := b.add(Node{
		Name: name("mlp-down"), Kind: OpMatMul, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(2 * b.tokens * f * h),
		ParamBytes: units.Bytes(f * h * elems),
		InputBytes: b.actBytes(f), OutputBytes: b.actBytes(h),
	}, act)

	res2 := b.add(Node{
		Name: name("residual2"), Kind: OpResidual, Phase: Forward, Layer: l,
		FLOPs:      units.FLOPs(b.tokens * h),
		InputBytes: b.actBytes(2 * h), OutputBytes: b.actBytes(h),
	}, fc2, res1)

	return res2
}

// buildBackward mirrors the forward graph: one backward node per
// forward node (except the loss, which seeds the chain) with twice the
// FLOPs, edges reversed, plus an optimizer node per parameterized
// operator.
func (b *builder) buildBackward() {
	fwd := b.fwd
	bwd := make(map[int]*Node, len(fwd))

	// Walk forward nodes in reverse construction order so every
	// backward node's consumers already exist.
	for i := len(fwd) - 1; i >= 0; i-- {
		fn := fwd[i]
		if fn.Kind == OpLoss {
			bwd[fn.ID] = fn // gradient chain starts at the loss itself
			continue
		}
		bn := b.g.AddNode(Node{
			Name: fn.Name + ".bwd", Kind: fn.Kind, Phase: Backward, Layer: fn.Layer,
			FLOPs:      2 * fn.FLOPs,
			ParamBytes: fn.ParamBytes,
			// Backward reads the upstream gradient and the saved
			// forward activations, writes the downstream gradient
			// (and the weight gradient, folded into output traffic).
			InputBytes:  fn.OutputBytes + fn.InputBytes,
			OutputBytes: fn.InputBytes + fn.ParamBytes,
		})
		bwd[fn.ID] = bn
		// Activation dependency on the forward node.
		b.g.MustEdge(fn, bn)
		// Reversed data dependencies: grad flows consumer → producer.
		for _, succ := range b.g.succ[fn.ID] {
			if sb, ok := bwd[succ]; ok && sb != bn {
				b.g.MustEdge(sb, bn)
			}
		}
		if fn.ParamBytes > 0 {
			opt := b.g.AddNode(Node{
				Name: fn.Name + ".opt", Kind: OpOptimizer, Phase: Update, Layer: fn.Layer,
				// Adam: ~10 FLOPs per parameter.
				FLOPs:       units.FLOPs(10 * float64(fn.ParamBytes) / b.elem),
				InputBytes:  2 * fn.ParamBytes,
				OutputBytes: fn.ParamBytes,
			})
			b.g.MustEdge(bn, opt)
		}
	}
}
