package graph

import (
	"dabench/internal/cachestats"
	"dabench/internal/memo"
	"dabench/internal/model"
)

// CacheStats is a snapshot of the build cache's hit/miss counters (the
// shared cachestats.Stats — one type across the graph/compile/run
// tiers).
type CacheStats = cachestats.Stats

// cacheKey is the canonical fingerprint of everything Build observes:
// the full model configuration and the build options. Both are flat
// comparable structs (no slices, maps or pointers), so Go map equality
// on the pair is exactly field-by-field equality — two keys collide if
// and only if Build would construct byte-identical graphs. Parallelism
// and compile mode are deliberately absent: they shape how a platform
// partitions a graph, never the graph itself, which is what lets the
// RDU's O0/O1/O3 mode grids and the TP ladders share one build.
type cacheKey struct {
	cfg  model.Config
	opts BuildOptions
}

var buildCache = memo.New[cacheKey, *Graph]()

// Cached is a process-wide memoized Build with singleflight semantics:
// identical (cfg, opts) pairs lower once, concurrent callers of an
// in-flight key block until the single underlying build finishes, and
// both successful graphs and build errors are cached (Build is a
// deterministic pure function of its inputs).
//
// Cached graphs are shared, not copied. This is sound because of the
// package's immutability contract: a *Graph is frozen the moment Build
// returns — every exported Graph method is read-only, and callers must
// never invoke AddNode/AddEdge/MustEdge on a graph they did not build
// themselves. TestCachedGraphImmutability guards the contract.
func Cached(cfg model.Config, opts BuildOptions) (*Graph, error) {
	return buildCache.Do(cacheKey{cfg: cfg, opts: opts}, func() (*Graph, error) {
		return Build(cfg, opts)
	})
}

// Stats returns the build cache's current hit/miss counters.
func Stats() CacheStats { return buildCache.Stats() }

// ResetCache drops every memoized graph and zeroes the counters — used
// by benchmarks that need cold-cache iterations.
func ResetCache() { buildCache.Reset() }
