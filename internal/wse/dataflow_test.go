package wse

import (
	"math"
	"testing"

	"dabench/internal/dataflow"
	"dabench/internal/units"
)

// TestRunMatchesDataflowEngine cross-validates the WSE simulator's
// closed-form bottleneck throughput against the event-driven pipeline
// engine: building the compiled kernel chain as a dataflow.Pipeline and
// streaming samples through it must yield the same steady-state rate
// the simulator reports (before the batch/memory utilization factors).
func TestRunMatchesDataflowEngine(t *testing.T) {
	sim := New()
	for _, l := range []int{6, 12, 24, 48} {
		cr, err := sim.Compile(spec(l))
		if err != nil {
			t.Fatalf("L=%d: %v", l, err)
		}

		// Build the kernel pipeline: decoder kernels in graph order.
		p := dataflow.NewPipeline()
		prev := -1
		var want float64 = math.Inf(1)
		for _, task := range cr.Tasks {
			if task.Kind != "kernel" || task.Name[0] != 'L' {
				continue
			}
			id := p.AddStage(dataflow.Stage{
				Name:    task.Name,
				Service: units.Seconds(1 / task.Throughput),
			})
			if prev >= 0 {
				if err := p.Connect(prev, id); err != nil {
					t.Fatal(err)
				}
			}
			prev = id
			if task.Throughput < want {
				want = task.Throughput
			}
		}

		// Long streams amortize pipeline fill/drain (makespan = fill +
		// (n-1)/rate), so scale the stream with the chain length.
		res, err := p.Run(25 * p.Len())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.SteadyThroughput-want)/want > 1e-9 {
			t.Errorf("L=%d: engine steady rate %v != bottleneck %v", l, res.SteadyThroughput, want)
		}
		// The simulator's step rate equals the bottleneck rate times
		// its utilization factors, so it can never exceed the engine's
		// steady state.
		rr, err := sim.Run(cr)
		if err != nil {
			t.Fatal(err)
		}
		stepRate := 1 / float64(rr.StepTime)
		if stepRate > res.SteadyThroughput*(1+1e-9) {
			t.Errorf("L=%d: simulator step rate %v exceeds engine bound %v", l, stepRate, res.SteadyThroughput)
		}
		// And the engine's measured throughput converges to steady
		// state for a long stream.
		if res.Throughput < 0.95*res.SteadyThroughput {
			t.Errorf("L=%d: engine throughput %v did not converge to %v", l, res.Throughput, res.SteadyThroughput)
		}
	}
}

// TestBottleneckIdentification confirms the engine and the simulator
// agree on which kernel gates the pipeline.
func TestBottleneckIdentification(t *testing.T) {
	sim := New()
	cr, err := sim.Compile(spec(12))
	if err != nil {
		t.Fatal(err)
	}
	p := dataflow.NewPipeline()
	names := []string{}
	prev := -1
	for _, task := range cr.Tasks {
		if task.Kind != "kernel" || task.Name[0] != 'L' {
			continue
		}
		id := p.AddStage(dataflow.Stage{Name: task.Name, Service: units.Seconds(1 / task.Throughput)})
		names = append(names, task.Name)
		if prev >= 0 {
			if err := p.Connect(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	res, err := p.Run(50 * p.Len())
	if err != nil {
		t.Fatal(err)
	}
	slowest, min := "", math.Inf(1)
	for _, task := range cr.Tasks {
		if task.Kind == "kernel" && task.Name[0] == 'L' && task.Throughput < min {
			min = task.Throughput
			slowest = task.Name
		}
	}
	if names[res.Bottleneck] != slowest {
		t.Errorf("engine bottleneck %q != simulator slowest kernel %q", names[res.Bottleneck], slowest)
	}
	// The bottleneck stage must be near fully utilized.
	if res.Stages[res.Bottleneck].Utilization < 0.95 {
		t.Errorf("bottleneck utilization = %v", res.Stages[res.Bottleneck].Utilization)
	}
}
