package wse

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dabench/internal/metrics"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
)

func spec(layers int) platform.TrainSpec {
	return platform.TrainSpec{
		Model:     model.GPT2Small().WithLayers(layers),
		Batch:     512,
		Seq:       1024,
		Precision: precision.FP16,
	}
}

func compile(t *testing.T, s platform.TrainSpec) *platform.CompileReport {
	t.Helper()
	cr, err := New().Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return cr
}

func run(t *testing.T, s platform.TrainSpec) *platform.RunReport {
	t.Helper()
	sim := New()
	cr := compile(t, s)
	rr, err := sim.Run(cr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rr
}

// Table I: allocation rises with depth, saturates at 92–93%, and the
// 78-layer configuration fails to compile.
func TestTableIAllocationCurve(t *testing.T) {
	anchors := []struct {
		layers  int
		lo, hi  float64
		failure bool
	}{
		{1, 0.28, 0.38, false},
		{6, 0.55, 0.67, false},
		{12, 0.80, 0.88, false},
		{24, 0.85, 0.93, false},
		{36, 0.88, 0.93, false},
		{72, 0.90, 0.93, false},
		{78, 0, 0, true},
	}
	for _, a := range anchors {
		cr, err := New().Compile(spec(a.layers))
		if a.failure {
			if err == nil {
				t.Errorf("L=%d: expected compile failure", a.layers)
			} else if !platform.IsCompileFailure(err) {
				t.Errorf("L=%d: want CompileError, got %v", a.layers, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("L=%d: %v", a.layers, err)
		}
		got := cr.AllocationRatio(platform.ResPE)
		if got < a.lo || got > a.hi {
			t.Errorf("L=%d: allocation %.3f outside [%v,%v]", a.layers, got, a.lo, a.hi)
		}
	}
}

func TestAllocationMonotoneUntilSaturation(t *testing.T) {
	prev := 0.0
	for _, l := range []int{1, 3, 6, 9, 12} {
		cr := compile(t, spec(l))
		got := cr.AllocationRatio(platform.ResPE)
		if got < prev {
			t.Errorf("allocation not monotone at L=%d: %.3f < %.3f", l, got, prev)
		}
		prev = got
	}
}

// Figure 6: per-attention-kernel PEs are stable below 12 layers and
// shrink elastically beyond; computation and transmission totals rise.
func TestFigure6ElasticAllocation(t *testing.T) {
	attnPE := func(cr *platform.CompileReport) float64 {
		for _, task := range cr.Tasks {
			if task.Name == "L0/attention" {
				return task.Units[platform.ResPE]
			}
		}
		t.Fatal("no attention kernel")
		return 0
	}
	txPE := func(cr *platform.CompileReport) float64 {
		for _, task := range cr.Tasks {
			if task.Kind == "transmission" {
				return task.Units[platform.ResPE]
			}
		}
		t.Fatal("no transmission task")
		return 0
	}

	at1 := attnPE(compile(t, spec(1)))
	at6 := attnPE(compile(t, spec(6)))
	if math.Abs(at1-at6)/at1 > 0.05 {
		t.Errorf("attention PEs should be stable below 12 layers: %v vs %v", at1, at6)
	}
	if at1 < 18_000 || at1 > 28_000 {
		t.Errorf("attention kernel PEs = %v, want ≈2.2×10⁴", at1)
	}
	at24 := attnPE(compile(t, spec(24)))
	at72 := attnPE(compile(t, spec(72)))
	if !(at72 < at24 && at24 < at6) {
		t.Errorf("attention PEs should shrink with depth: %v, %v, %v", at6, at24, at72)
	}
	if tx6, tx36 := txPE(compile(t, spec(6))), txPE(compile(t, spec(36))); tx36 <= tx6 {
		t.Errorf("transmission PEs should grow with depth: %v vs %v", tx6, tx36)
	}
}

// Figure 8a: kernel-level load imbalance over decoder kernels stays in
// the 0.96–1.0 band.
func TestFigure8KernelLI(t *testing.T) {
	for _, l := range []int{6, 12, 24, 36, 48} {
		cr := compile(t, spec(l))
		var tasks []metrics.TaskSample
		for _, task := range cr.Tasks {
			if task.Kind == "kernel" && strings.HasPrefix(task.Name, "L") {
				tasks = append(tasks, metrics.TaskSample{
					Name:       task.Name,
					Resources:  task.Units[platform.ResPE],
					Throughput: task.Throughput,
				})
			}
		}
		li, err := metrics.LoadImbalance(tasks)
		if err != nil {
			t.Fatalf("L=%d: %v", l, err)
		}
		if li < 0.9 || li > 1.0 {
			t.Errorf("L=%d: kernel LI = %.3f, want 0.9–1.0", l, li)
		}
	}
}

// Figure 9a: TFLOPs rise into the high-200s/low-300s around 18–36
// layers (≈20% efficiency) and collapse near the memory wall.
func TestFigure9aComputeCurve(t *testing.T) {
	tf := map[int]float64{}
	for _, l := range []int{6, 12, 18, 24, 36, 60, 72} {
		tf[l] = run(t, spec(l)).Achieved.TFLOPS()
	}
	if !(tf[6] < tf[12] && tf[12] < tf[18]) {
		t.Errorf("TFLOPs should rise up to 18 layers: %v", tf)
	}
	if tf[18] < 270 || tf[18] > 360 {
		t.Errorf("peak TFLOPs = %v, want ≈300-340", tf[18])
	}
	if math.Abs(tf[36]-tf[18])/tf[18] > 0.12 {
		t.Errorf("TFLOPs should be stable 18–36 layers: %v vs %v", tf[18], tf[36])
	}
	if !(tf[60] < 0.8*tf[36] && tf[72] < 0.5*tf[36]) {
		t.Errorf("TFLOPs should collapse past the memory wall: %v", tf)
	}
	eff := run(t, spec(24)).Efficiency
	if eff < 0.15 || eff > 0.25 {
		t.Errorf("peak efficiency = %v, want ≈0.20", eff)
	}
}

// Figure 10a: arithmetic intensity spans ≈9–28 FLOPs/byte over 1–42
// layers, all deep in the compute-bound region of the 20 PB/s roofline.
func TestFigure10aAIBand(t *testing.T) {
	ai1 := run(t, spec(1)).AI
	ai42 := run(t, spec(42)).AI
	if ai1 < 7 || ai1 > 12 {
		t.Errorf("AI(1) = %v, want ≈9", ai1)
	}
	if ai42 < 24 || ai42 > 32 {
		t.Errorf("AI(42) = %v, want ≈28", ai42)
	}
	ridge := Peak16 / OnChipBW
	if ai1 < ridge*10 {
		t.Errorf("workloads must be far above the ridge %v", ridge)
	}
}

// Table III / Figure 11a: intra-chip data parallelism scales small
// models; the communication gap grows with replica count.
func TestDataParallelScaling(t *testing.T) {
	mini := platform.TrainSpec{
		Model: model.GPTMini(), Batch: 512, Seq: 1024, Precision: precision.FP16,
	}
	base := run(t, mini).TokensPerSec
	dp2 := mini
	dp2.Par.DataParallel = 2
	t2 := run(t, dp2).TokensPerSec
	dp4 := mini
	dp4.Par.DataParallel = 4
	t4 := run(t, dp4).TokensPerSec
	if !(base < t2 && t2 < t4) {
		t.Errorf("DP should scale: %v, %v, %v", base, t2, t4)
	}
	if t2 > 2.05*base {
		t.Errorf("DP2 superlinear: %v vs %v", t2, base)
	}
	// Per-replica efficiency declines beyond 2 replicas (placement
	// distance): speedup(4)/4 < speedup(2)/2.
	if t4/4 >= t2/2 {
		t.Errorf("replica efficiency should decline: t4/4=%v t2/2=%v", t4/4, t2/2)
	}
}

// Table III: weight streaming costs ≈20%.
func TestWeightStreamingPenalty(t *testing.T) {
	s := spec(12)
	base := run(t, s).TokensPerSec
	s.Par.WeightStreaming = true
	streamed := run(t, s).TokensPerSec
	ratio := streamed / base
	if ratio < 0.75 || ratio > 0.85 {
		t.Errorf("streaming ratio = %v, want ≈0.8", ratio)
	}
}

// Weight streaming rescues models that otherwise fail to compile.
func TestWeightStreamingRescuesLargeModels(t *testing.T) {
	s := spec(78)
	if _, err := New().Compile(s); err == nil {
		t.Fatal("78 layers should fail without streaming")
	}
	s.Par.WeightStreaming = true
	if _, err := New().Compile(s); err != nil {
		t.Fatalf("78 layers with streaming: %v", err)
	}
}

// Figure 12a: throughput gains are steep below batch 200 and flatten
// beyond.
func TestFigure12aBatchCurve(t *testing.T) {
	at := func(b int) float64 {
		s := spec(12)
		s.Batch = b
		return run(t, s).TokensPerSec
	}
	t50, t200, t400, t800 := at(50), at(200), at(400), at(800)
	if !(t50 < t200 && t200 < t400 && t400 < t800) {
		t.Fatalf("throughput must rise with batch: %v %v %v %v", t50, t200, t400, t800)
	}
	gainLow := t200 / t50   // 4× batch below the knee
	gainHigh := t800 / t200 // 4× batch above the knee
	if gainLow < 1.5 || gainHigh > 1.25 {
		t.Errorf("knee missing: low gain %v (want >1.5), high gain %v (want <1.25)", gainLow, gainHigh)
	}
}

// Table IV: CB16 beats FP16 by ≈10.7%.
func TestTableIVPrecision(t *testing.T) {
	s := spec(12)
	fp16 := run(t, s).TokensPerSec
	s.Precision = precision.CB16
	cb16 := run(t, s).TokensPerSec
	gain := cb16/fp16 - 1
	if math.Abs(gain-0.107) > 0.02 {
		t.Errorf("CB16 gain = %v, want ≈0.107", gain)
	}
}

func TestUnsupportedParallelism(t *testing.T) {
	s := spec(12)
	s.Par.TensorParallel = 2
	if _, err := New().Compile(s); err == nil {
		t.Error("TP accepted")
	}
	s = spec(12)
	s.Par.PipelineParallel = 4
	if _, err := New().Compile(s); err == nil {
		t.Error("PP accepted")
	}
}

func TestRunRejectsForeignReport(t *testing.T) {
	if _, err := New().Run(nil); err == nil {
		t.Error("nil report accepted")
	}
	if _, err := New().Run(&platform.CompileReport{Platform: "IPU"}); err == nil {
		t.Error("foreign report accepted")
	}
}

func TestHardwareSpec(t *testing.T) {
	hs := New().HardwareSpec()
	if hs.Resources[platform.ResPE] != TotalPEs {
		t.Errorf("PE capacity = %v", hs.Resources[platform.ResPE])
	}
	if hs.OnChipMemory != MemBytes || hs.GlobalBW != OnChipBW {
		t.Error("spec fields wrong")
	}
}

// Property: allocation ratio is always within (0, usableMax] and memory
// use never exceeds capacity for any compiling depth.
func TestCompileInvariants(t *testing.T) {
	f := func(n uint8) bool {
		l := int(n%72) + 1
		cr, err := New().Compile(spec(l))
		if err != nil {
			return platform.IsCompileFailure(err)
		}
		ratio := cr.AllocationRatio(platform.ResPE)
		return ratio > 0 && ratio <= usableMax+1e-9 && cr.Memory.Fits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: throughput is monotone non-decreasing in batch size.
func TestBatchMonotoneProperty(t *testing.T) {
	f := func(n uint8) bool {
		b := int(n) + 1
		s1 := spec(12)
		s1.Batch = b
		s2 := spec(12)
		s2.Batch = b + 16
		sim := New()
		c1, err1 := sim.Compile(s1)
		c2, err2 := sim.Compile(s2)
		if err1 != nil || err2 != nil {
			return false
		}
		r1, err1 := sim.Run(c1)
		r2, err2 := sim.Run(c2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.TokensPerSec >= r1.TokensPerSec-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
