// Package wse simulates the Cerebras CS-2 / WSE-2 wafer-scale engine:
// whole-graph placement at layer granularity, elastic PE allocation,
// a unified 40 GB on-chip memory serving both the shared and global
// roles, intra-chip data parallelism, and the weight-streaming mode for
// models that exceed on-chip capacity.
//
// The simulator is a calibrated performance model: its mechanisms
// (work-proportional kernel sizing with diminishing-returns caps,
// placement fragmentation, configuration-memory growth) reproduce the
// paper's measured behaviour; the constants below pin each mechanism to
// a paper anchor.
package wse

import "dabench/internal/precision"

// Hardware constants from the CS-2 data sheet (paper Section II-B1).
const (
	// TotalPEs is the WSE-2 processing-element count.
	TotalPEs = 850_000
	// MemBytes is the on-chip SRAM capacity (40 GB across all PEs).
	MemBytes = 40e9
	// OnChipBW is the aggregate memory bandwidth (20 PB/s).
	OnChipBW = 20e15
	// FabricBW is the Swarm fabric bandwidth (220 PB/s).
	FabricBW = 220e15
	// Peak16 is the peak 16-bit compute rate used for efficiency
	// accounting; 850k PEs × 2 GFLOP/s. The paper's ≈20% efficiency at
	// 327–338 TFLOPs implies a peak near 1.7 PFLOPs.
	Peak16 = 1.7e15
	// ratePerPE is Peak16 / TotalPEs.
	ratePerPE = Peak16 / TotalPEs
)

// Calibration constants. Each is annotated with the paper anchor it
// reproduces.
const (
	// refKernelPEs is the optimal PE allocation of the reference
	// attention kernel (GPT-2 HS 768, S 1024). Anchor: Figure 6, where
	// per-attention-kernel usage starts near 2.5–3.0×10⁴ PEs for
	// shallow models.
	refKernelPEs = 22_000

	// ioDemandPEsPerByte sizes kernels whose placement is driven by
	// vocabulary-table access rather than FLOPs (embedding gather, LM
	// head scatter): demand = ioDemandPEsPerByte × table bytes touched
	// per token. Anchor: Table I's 33% allocation at a single layer,
	// which is dominated by the embedding and head kernels.
	ioDemandPEsPerByte = 29.0

	// kernelScaleExp is the exponent of the diminishing-returns
	// allocation curve U_opt ∝ work^kernelScaleExp. Sub-linear scaling
	// models the inter-PE communication overhead that caps useful
	// kernel size. Anchor: Table I's 33% allocation at 1 layer together
	// with Figure 6's stable per-kernel usage below 12 layers.
	kernelScaleExp = 2.0 / 3.0

	// maxKernelPEs caps any single kernel (router fan-out limit).
	maxKernelPEs = 160_000
	// minKernelPEs floors any placed kernel.
	minKernelPEs = 200

	// txFraction is the share of PEs dedicated to data transmission on
	// top of compute PEs. Anchor: Figure 6's transmission series
	// tracking the computation series at roughly 10⁴-PE scale.
	txFraction = 0.08

	// usableMax is the peak fraction of the wafer the compiler ever
	// allocates — I/O rows and spare columns are reserved. Anchor:
	// Table I saturating at 92–93%.
	usableMax = 0.93
	// fragPerLayer models placement fragmentation: with few, large
	// kernels the rectangular placement wastes more of the wafer.
	// usable(L) = usableMax − fragPerLayer/L. Anchor: Table I's 85% at
	// 12 layers rising to 93% at 72.
	fragPerLayer = 0.96
	// usableMin bounds the fragmentation correction for very shallow
	// graphs.
	usableMin = 0.35

	// kernelEff is the asymptotic fraction of a compute PE's peak a
	// placed kernel sustains (fabric stalls, SLAC pipeline bubbles);
	// shallow graphs see an additional inter-PE communication ramp
	// eff = kernelEff · L/(L+kernelEffRampLayers). Anchor: peak chip
	// efficiency ≈20% (327–338 TFLOPs) at 18–30 layers, rising
	// steadily below 18 layers (Figure 9a).
	kernelEff           = 0.36
	kernelEffRampLayers = 4.0

	// Config-memory polynomial, in GB, for the HS-768 reference
	// family, scaled by (H/768): cfg = c0 + c1·L + c2·L².
	// Anchor: Figure 9a's configuration share crossing training memory
	// past 36 layers, and Table I's compile failure at 78 layers.
	cfgBaseGB  = 9.84
	cfgLinGB   = 0.157
	cfgQuadGB  = 0.00194
	cfgRefHS   = 768.0
	cfgScaleLo = 0.1 // floor on the (H/768) scale factor

	// trainStateBytesPerParam covers weights, gradients and optimizer
	// moments resident on chip (16-bit weights/grads + FP32 moments +
	// scratch ≈ 14 B/param).
	trainStateBytesPerParam = 14.0

	// headDemandBoost multiplies the LM-head kernel's work-based PE
	// demand: scattering logits across a 50k-wide vocabulary needs a
	// larger fan-out region than its FLOP count alone implies. Anchor:
	// Table I's 33% allocation for a single decoder layer.
	headDemandBoost = 1.6

	// batchHalfSat is the batch size at which throughput reaches half
	// its asymptote. Anchor: Figure 12a — strong gains below batch 200,
	// flattening beyond.
	batchHalfSat = 60.0
	// memBatchHalfSat shapes the slowdown when configuration memory
	// crowds out activation memory (effective batch shrinks). Anchor:
	// Figure 9a's steep TFLOPs decline past 36 layers.
	memBatchHalfSat = 0.75

	// minActTokens is the minimum number of tokens whose activations
	// must fit on chip for a placement to be viable; the wafer streams
	// finer than sample granularity. Anchor: Table I's compile failure
	// at 78 layers (not earlier).
	minActTokens = 64.0

	// streamingFactor is the weight-streaming throughput multiplier.
	// Anchor: Table III, GPT-2 dropping from 0.66M to 0.53M tokens/s
	// (≈20% reduction).
	streamingFactor = 0.80

	// dpCommSlope grows the replica-to-replica communication penalty
	// once more than two replicas prevent adjacent placement. Anchor:
	// Section VI-A3a — two replicas can be placed with zero-distance
	// paths; beyond that the gap between computation and transmission
	// throughput widens (Figure 11a).
	dpCommSlope = 0.05

	// Global-tier traffic model (for the Figure 10 roofline):
	// bytes/token = aiEmbedFrac·(embedding+head weight bytes)
	//             + aiLayerFrac·(per-layer weight bytes)·L.
	// Anchor: the paper's reported AI range of 8.9–28.0 FLOPs/byte
	// across the 1–42 layer sweep.
	aiEmbedFrac = 0.186
	aiLayerFrac = 0.072

	// allocJitter is the deterministic placement-quantization noise
	// applied per kernel, which keeps kernel-level LI in the paper's
	// 0.96–1.0 band rather than exactly 1.0.
	allocJitter = 0.02
)

// precFactor returns the throughput multiplier of a numeric format
// relative to the platform's FP16 default. Anchor: Table IV — CB16
// outperforms FP16 by 10.7% on WSE; FP32 halves the datapath.
func precFactor(f precision.Format) float64 {
	switch f {
	case precision.FP32:
		return 0.5
	case precision.CB16:
		return 1.107
	case precision.Mixed:
		return 1.05
	case precision.BF16, precision.FP16:
		return 1.0
	default:
		return 1.0
	}
}
