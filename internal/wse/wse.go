package wse

import (
	"fmt"
	"math"
	"sync"

	"dabench/internal/graph"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/units"
)

// Sim is the WSE-2 simulator. The zero value is ready to use.
type Sim struct{}

// New returns a WSE-2 simulator.
func New() *Sim { return &Sim{} }

// Name implements platform.Platform.
func (*Sim) Name() string { return "WSE-2" }

// HardwareSpec implements platform.Platform.
func (*Sim) HardwareSpec() platform.Spec {
	return platform.Spec{
		Name:         "Cerebras WSE-2",
		Resources:    map[platform.Resource]float64{platform.ResPE: TotalPEs},
		Peak16:       Peak16,
		OnChipMemory: MemBytes,
		OnChipBW:     OnChipBW,
		// The WSE uses its unified on-chip memory as both the shared
		// and global tiers (paper Section V-C2).
		GlobalMemory: MemBytes,
		GlobalBW:     OnChipBW,
	}
}

// kernel is one placed layer-granularity kernel.
type kernel struct {
	name string
	// attention marks per-layer attention kernels (Figure 6 tracks
	// their individual allocation).
	attention bool
	decoder   bool // belongs to a decoder layer (variable region)
	// workPerToken is the kernel's training FLOPs per token.
	workPerToken float64
	// ioBytesPerToken is vocabulary-table traffic per token for
	// gather kernels (embedding); zero elsewhere.
	ioBytesPerToken float64
	// demandBoost multiplies the work-based demand (vocabulary
	// scatter fan-out of the LM head kernel).
	demandBoost float64
	pes         float64
}

// buildKernels lowers the model to the WSE kernel set: one attention
// kernel and one feed-forward kernel per decoder layer, plus embedding
// and a head kernel (final norm + LM head + loss).
func buildKernels(cfg model.Config, seq int) []kernel {
	h := float64(cfg.HiddenSize)
	f := float64(cfg.FFNHidden)
	v := float64(cfg.VocabSize)
	s := float64(seq)
	heads := float64(cfg.NumHeads)
	kvFrac := float64(cfg.KVHeads) / float64(cfg.NumHeads)

	qkvParams := h*h + 2*h*h*kvFrac
	upParams := h * f
	if cfg.Activation == model.SwiGLU {
		upParams = 2 * h * f
	}

	// Training FLOPs per token = 3 × forward (paper's 6P convention).
	attnWork := 3 * (2*(qkvParams+h*h) + 4*s*h + 5*s*heads + 10*h + 2*h)
	ffnWork := 3 * (2*(upParams+f*h) + 8*f + 5*h + h)
	embedWork := 3 * (2*h + 2*h)
	headWork := 3 * (2*h*v + 5*v + 5*h)

	ks := make([]kernel, 0, 2*cfg.NumLayers+2)
	embedIO := (2*h + 4) * math.Pow(h/768.0, 0.8)
	ks = append(ks, kernel{name: "embedding", workPerToken: embedWork, ioBytesPerToken: embedIO})
	for l := 0; l < cfg.NumLayers; l++ {
		prefix := graph.LayerPrefix(l)
		ks = append(ks,
			kernel{name: prefix + "attention", attention: true, decoder: true, workPerToken: attnWork},
			kernel{name: prefix + "ffn", decoder: true, workPerToken: ffnWork},
		)
	}
	// The head's scatter fan-out shrinks rapidly for narrower models
	// (its vocabulary projection tiles on fewer PE columns), which is
	// what lets the paper run 8 replicas of the tiny model (Table III).
	headBoost := headDemandBoost * math.Pow(h/768.0, 3.0)
	ks = append(ks, kernel{name: "head", workPerToken: headWork, demandBoost: headBoost})
	return ks
}

// refWork is the reference attention kernel's work (GPT-2 HS 768,
// S 1024), the unit of the allocation curve. The reference kernel set
// is a constant of the model, so it is lowered once per process
// (Compile used to rebuild the full GPT-2 set on every call).
var refWork = sync.OnceValue(func() float64 {
	ref := buildKernels(model.GPT2Small(), 1024)
	for _, k := range ref {
		if k.attention {
			return k.workPerToken
		}
	}
	panic("wse: reference kernel set has no attention kernel")
})

// demand returns the optimal (unconstrained) PE allocation for a
// kernel: work-proportional with diminishing returns, overridden by
// table-access demand for gather/scatter kernels, under hard caps.
func demand(k kernel, ref float64) float64 {
	u := refKernelPEs * math.Pow(k.workPerToken/ref, kernelScaleExp)
	if k.demandBoost > 0 {
		u *= k.demandBoost
	}
	if io := ioDemandPEsPerByte * k.ioBytesPerToken; io > u {
		u = io
	}
	return units.Clamp(u, minKernelPEs, maxKernelPEs)
}

// usableFrac returns the placeable fraction of the wafer for an
// L-layer graph (placement fragmentation shrinks with kernel count).
func usableFrac(layers int) float64 {
	if layers < 1 {
		layers = 1
	}
	return units.Clamp(usableMax-fragPerLayer/float64(layers), usableMin, usableMax)
}

// jitter returns the deterministic placement-quantization factor for
// kernel index i, in [1-allocJitter, 1+allocJitter].
func jitter(i int) float64 {
	// Small multiplicative hash → uniform-ish in [0,1).
	x := math.Mod(float64(i)*0.6180339887498949+0.137, 1.0)
	return 1 + allocJitter*(2*x-1)
}

// configBytes models compiler configuration memory (kernel code,
// routing tables) for an L-layer, hidden-size-H graph.
func configBytes(layers, hidden int) units.Bytes {
	l := float64(layers)
	scale := math.Max(float64(hidden)/cfgRefHS, cfgScaleLo)
	gb := (cfgBaseGB + cfgLinGB*l + cfgQuadGB*l*l) * scale
	return units.Bytes(gb * 1e9)
}

// Compile implements platform.Platform.
func (s *Sim) Compile(spec platform.TrainSpec) (*platform.CompileReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Par.TensorParallel > 1 {
		return nil, fmt.Errorf("wse: tensor parallelism is not supported on WSE-2")
	}
	if spec.Par.PipelineParallel > 1 {
		return nil, fmt.Errorf("wse: pipeline parallelism requires CS-3 root access (paper Section VI-A1)")
	}
	replicas := spec.Par.DataParallel
	if replicas < 1 {
		replicas = 1
	}

	cfg := spec.Model
	kernels := buildKernels(cfg, spec.Seq)
	ref := refWork()

	// Per-replica PE budget (compute + transmission).
	usable := usableFrac(cfg.NumLayers) * TotalPEs
	budget := usable / float64(replicas)

	// Optimal demands.
	var fixedDemand, varDemand float64
	for i := range kernels {
		kernels[i].pes = demand(kernels[i], ref) * jitter(i)
		if kernels[i].decoder {
			varDemand += kernels[i].pes
		} else {
			fixedDemand += kernels[i].pes
		}
	}

	notes := []string{fmt.Sprintf("kernels=%d replicas=%d", len(kernels), replicas)}

	// Elastic shrink-to-fit: decoder kernels scale down first; if the
	// fixed kernels alone exceed the budget, everything scales.
	computeBudget := budget / (1 + txFraction)
	if fixedDemand+varDemand > computeBudget {
		if varDemand > 0 && fixedDemand < computeBudget {
			scale := (computeBudget - fixedDemand) / varDemand
			for i := range kernels {
				if kernels[i].decoder {
					kernels[i].pes = math.Max(kernels[i].pes*scale, minKernelPEs)
				}
			}
			notes = append(notes, fmt.Sprintf("elastic shrink: decoder kernels scaled to %.2f of optimum", scale))
		} else {
			scale := computeBudget / (fixedDemand + varDemand)
			for i := range kernels {
				kernels[i].pes = math.Max(kernels[i].pes*scale, minKernelPEs)
			}
			notes = append(notes, fmt.Sprintf("global shrink: all kernels scaled to %.2f of optimum", scale))
		}
	}

	var computePEs float64
	for _, k := range kernels {
		computePEs += k.pes
	}
	if computePEs*(1+txFraction) > budget*1.02 {
		return nil, &platform.CompileError{
			Platform: s.Name(),
			Reason: fmt.Sprintf("kernel floor demand %.0f PEs exceeds per-replica budget %.0f",
				computePEs*(1+txFraction), budget),
		}
	}
	txPEs := computePEs * txFraction

	// Memory map. Weights, optimizer state and configuration must be
	// resident; activations adapt to whatever remains (the data-driven
	// pipeline keeps only in-flight samples on chip, so a shrinking
	// activation region degrades throughput rather than failing —
	// until even a single sample no longer fits).
	p := float64(cfg.Params())
	state := units.Bytes(p * trainStateBytesPerParam)
	cfgMem := configBytes(cfg.NumLayers, cfg.HiddenSize)
	if spec.Par.WeightStreaming {
		// Streaming keeps one layer group's weights resident;
		// configuration shrinks accordingly.
		group := math.Max(1, float64(cfg.NumLayers)/8)
		state = units.Bytes(p * trainStateBytesPerParam * group / math.Max(1, float64(cfg.NumLayers)))
		cfgMem = configBytes(int(group), cfg.HiddenSize)
		notes = append(notes, "weight streaming enabled")
	}
	// Replicas share kernel code images; only per-replica routing and
	// placement tables duplicate (enables the paper's DP8 runs).
	cfgTotal := cfgMem * units.Bytes(1+0.15*float64(replicas-1))
	resident := cfgTotal + state*units.Bytes(replicas)
	actPerToken := cfg.ActivationBytesPerToken(spec.Seq, spec.Precision)
	actPerSample := actPerToken * units.Bytes(spec.Seq)
	free := units.Bytes(MemBytes) - resident
	if free < actPerToken*minActTokens {
		if !spec.Par.WeightStreaming {
			return nil, &platform.CompileError{
				Platform: s.Name(),
				Reason: fmt.Sprintf("on-chip memory exhausted: resident %s of %s (config %s, training state %s) leaves no room for activations — enable weight streaming",
					resident, units.Bytes(MemBytes), cfgMem, state),
			}
		}
		return nil, &platform.CompileError{
			Platform: s.Name(),
			Reason:   fmt.Sprintf("streaming working set %s exceeds on-chip memory %s", resident+actPerSample, units.Bytes(MemBytes)),
		}
	}
	desiredAct := actPerSample * units.Bytes(spec.Batch)
	act := desiredAct
	if act > free {
		act = free
		notes = append(notes, fmt.Sprintf("activation region limited to %s of desired %s", act, desiredAct))
	}
	mem := platform.MemoryUse{
		Capacity:    MemBytes,
		Config:      cfgTotal,
		Weights:     state * units.Bytes(replicas),
		Activations: act,
	}

	// Task rows: per-kernel throughput at the compiled allocation. The
	// efficiency ramp models inter-PE communication overhead dominating
	// shallow graphs (paper Section V-C1).
	pf := precFactor(spec.Precision)
	eff := kernelEff * float64(cfg.NumLayers) / (float64(cfg.NumLayers) + kernelEffRampLayers)
	tokens := spec.Tokens() / float64(replicas)
	tasks := make([]platform.Task, 0, len(kernels)+1)
	for _, k := range kernels {
		rate := k.pes * ratePerPE * eff * pf
		flops := k.workPerToken * tokens
		thr := math.Inf(1)
		var rt units.Seconds
		if flops > 0 && rate > 0 {
			thr = rate / flops // samples (steps) per second in isolation
			rt = units.Seconds(flops / rate)
		}
		tasks = append(tasks, platform.Task{
			Name: k.name, Kind: "kernel",
			Units:      map[platform.Resource]float64{platform.ResPE: k.pes},
			Throughput: thr, Runtime: rt, Invocations: 1,
			FLOPs: units.FLOPs(flops),
		})
	}
	tasks = append(tasks, platform.Task{
		Name: "fabric-transmission", Kind: "transmission",
		Units:       map[platform.Resource]float64{platform.ResPE: txPEs},
		Invocations: 1,
	})

	total := (computePEs + txPEs) * float64(replicas)
	return &platform.CompileReport{
		Platform:  s.Name(),
		Spec:      spec,
		Tasks:     tasks,
		Allocated: map[platform.Resource]float64{platform.ResPE: total},
		Capacity:  map[platform.Resource]float64{platform.ResPE: TotalPEs},
		Memory:    mem,
		Notes:     notes,
	}, nil
}

// Run implements platform.Platform.
func (s *Sim) Run(cr *platform.CompileReport) (*platform.RunReport, error) {
	if cr == nil || cr.Platform != s.Name() {
		return nil, fmt.Errorf("wse: run requires a WSE-2 compile report")
	}
	spec := cr.Spec
	replicas := spec.Par.DataParallel
	if replicas < 1 {
		replicas = 1
	}

	// Bottleneck decoder kernel sets the pipeline rate (data-driven
	// execution). Embedding and head kernels are IO stages that stream
	// concurrently with the decoder pipeline and do not gate it.
	bottleneck := math.Inf(1)
	for _, t := range cr.Tasks {
		if t.Kind == "kernel" && len(t.Name) > 0 && t.Name[0] == 'L' &&
			t.Throughput < bottleneck {
			bottleneck = t.Throughput
		}
	}
	if math.IsInf(bottleneck, 1) || bottleneck <= 0 {
		return nil, fmt.Errorf("wse: degenerate kernel set")
	}

	// Batch utilisation: the wafer needs deep batches to fill the
	// pipeline (Figure 12a).
	perReplicaBatch := float64(spec.Batch) / float64(replicas)
	// Memory-limited effective batch: configuration growth shrinks the
	// activation region (Figure 9a).
	free := float64(cr.Memory.Capacity - cr.Memory.Config - cr.Memory.Weights)
	actPerSample := float64(spec.Model.ActivationBytesPerToken(spec.Seq, spec.Precision)) * float64(spec.Seq)
	effBatch := perReplicaBatch
	if actPerSample > 0 {
		effBatch = math.Min(perReplicaBatch, math.Max(free, 0)/actPerSample)
	}
	if effBatch <= 0 {
		return nil, fmt.Errorf("wse: no activation memory available at batch %d", spec.Batch)
	}
	batchUtil := perReplicaBatch / (perReplicaBatch + batchHalfSat)
	memUtil := effBatch / (effBatch + memBatchHalfSat)

	// Replica communication penalty (Figure 11a): two replicas place
	// adjacently; beyond that inter-replica distance grows.
	commPenalty := 1.0
	if replicas > 2 {
		commPenalty = 1 / (1 + dpCommSlope*float64(replicas-2))
	}
	if spec.Par.WeightStreaming {
		commPenalty *= streamingFactor
	}

	// Replicas process the global batch concurrently, so the global
	// step rate equals the per-replica step rate.
	stepsPerSec := bottleneck * batchUtil * memUtil * commPenalty
	tokensPerSec := stepsPerSec * spec.Tokens()

	flopsPerStep := float64(spec.Model.TrainFLOPs(spec.Batch, spec.Seq))
	achieved := units.FLOPSRate(flopsPerStep * stepsPerSec)

	ai := globalAI(spec)
	return &platform.RunReport{
		Compile:       cr,
		StepTime:      units.Seconds(1 / stepsPerSec),
		TokensPerSec:  tokensPerSec,
		SamplesPerSec: tokensPerSec / float64(spec.Seq),
		Achieved:      achieved,
		Efficiency:    float64(achieved) / Peak16,
		AI:            ai,
	}, nil
}

// globalAI is the platform-level arithmetic intensity at the WSE's
// global tier: training FLOPs per byte of fabric-level weight traffic.
func globalAI(spec platform.TrainSpec) float64 {
	cfg := spec.Model
	p := float64(cfg.Params())
	embedHeadBytes := 2 * float64(cfg.EmbeddingParams()+cfg.EmbeddingHeadMatmulParams())
	layerBytes := 2 * float64(cfg.LayerParams())
	perTokenTraffic := aiEmbedFrac*embedHeadBytes + aiLayerFrac*layerBytes*float64(cfg.NumLayers)
	if perTokenTraffic <= 0 {
		return 0
	}
	return 6 * p / perTokenTraffic
}
