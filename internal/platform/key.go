package platform

import "strconv"

// Key returns a canonical fingerprint of the spec: two specs have equal
// keys if and only if every field a simulator can observe is equal —
// the full model configuration, batch shape, precision, and the
// complete Parallelism including the LayerAssignment pinning and
// compile mode. The simulators are deterministic pure functions of the
// spec, so Key is a sound memoization key for Compile.
//
// Key is on the compile hot path (computed on every lookup, hit or
// miss), so it is assembled with strconv appends into one buffer
// rather than fmt formatting.
func (s TrainSpec) Key() string {
	m := s.Model
	b := make([]byte, 0, 192)
	// Name is the only free-form string in the spec; quote-escape it so
	// a crafted name cannot forge another spec's delimiter sequence.
	b = append(b, "m="...)
	b = strconv.AppendQuote(b, m.Name)
	b = append(b, ";fam="...)
	b = strconv.AppendInt(b, int64(m.Family), 10)
	b = append(b, ";h="...)
	b = strconv.AppendInt(b, int64(m.HiddenSize), 10)
	b = append(b, ";l="...)
	b = strconv.AppendInt(b, int64(m.NumLayers), 10)
	b = append(b, ";nh="...)
	b = strconv.AppendInt(b, int64(m.NumHeads), 10)
	b = append(b, ";kv="...)
	b = strconv.AppendInt(b, int64(m.KVHeads), 10)
	b = append(b, ";ffn="...)
	b = strconv.AppendInt(b, int64(m.FFNHidden), 10)
	b = append(b, ";v="...)
	b = strconv.AppendInt(b, int64(m.VocabSize), 10)
	b = append(b, ";ms="...)
	b = strconv.AppendInt(b, int64(m.MaxSeqLen), 10)
	b = append(b, ";tied="...)
	b = strconv.AppendBool(b, m.TiedEmbeddings)
	b = append(b, ";pos="...)
	b = strconv.AppendBool(b, m.LearnedPos)
	b = append(b, ";norm="...)
	b = strconv.AppendInt(b, int64(m.Norm), 10)
	b = append(b, ";act="...)
	b = strconv.AppendInt(b, int64(m.Activation), 10)
	b = append(b, "|b="...)
	b = strconv.AppendInt(b, int64(s.Batch), 10)
	b = append(b, ";s="...)
	b = strconv.AppendInt(b, int64(s.Seq), 10)
	b = append(b, ";f="...)
	b = strconv.AppendInt(b, int64(s.Precision), 10)
	p := s.Par
	b = append(b, "|dp="...)
	b = strconv.AppendInt(b, int64(p.DataParallel), 10)
	b = append(b, ";tp="...)
	b = strconv.AppendInt(b, int64(p.TensorParallel), 10)
	b = append(b, ";pp="...)
	b = strconv.AppendInt(b, int64(p.PipelineParallel), 10)
	b = append(b, ";ws="...)
	b = strconv.AppendBool(b, p.WeightStreaming)
	b = append(b, ";mode="...)
	b = strconv.AppendInt(b, int64(p.Mode), 10)
	b = append(b, ";la="...)
	for i, l := range p.LayerAssignment {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(l), 10)
	}
	return string(b)
}
