package platform

import (
	"fmt"
	"strings"
)

// Key returns a canonical fingerprint of the spec: two specs have equal
// keys if and only if every field a simulator can observe is equal —
// the full model configuration, batch shape, precision, and the
// complete Parallelism including the LayerAssignment pinning and
// compile mode. The simulators are deterministic pure functions of the
// spec, so Key is a sound memoization key for Compile.
func (s TrainSpec) Key() string {
	var b strings.Builder
	m := s.Model
	// Name is the only free-form string in the spec; %q-escape it so a
	// crafted name cannot forge another spec's delimiter sequence.
	fmt.Fprintf(&b, "m=%q;fam=%d;h=%d;l=%d;nh=%d;kv=%d;ffn=%d;v=%d;ms=%d;tied=%t;pos=%t;norm=%d;act=%d",
		m.Name, m.Family, m.HiddenSize, m.NumLayers, m.NumHeads, m.KVHeads,
		m.FFNHidden, m.VocabSize, m.MaxSeqLen, m.TiedEmbeddings, m.LearnedPos,
		m.Norm, m.Activation)
	fmt.Fprintf(&b, "|b=%d;s=%d;f=%d", s.Batch, s.Seq, s.Precision)
	p := s.Par
	fmt.Fprintf(&b, "|dp=%d;tp=%d;pp=%d;ws=%t;mode=%d;la=",
		p.DataParallel, p.TensorParallel, p.PipelineParallel, p.WeightStreaming, p.Mode)
	for i, l := range p.LayerAssignment {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", l)
	}
	return b.String()
}
