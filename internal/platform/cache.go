package platform

import (
	"sync"
	"sync/atomic"
)

// Imbalancer is implemented by platforms with a native operator-level
// load-imbalance computation (the RDU's section/operator hierarchy).
// Cached wrappers preserve it so the core's LI dispatch is unchanged.
type Imbalancer interface {
	LoadImbalance(*CompileReport) (float64, error)
}

// CacheStats is a snapshot of a compile cache's hit/miss counters.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Sub returns the counter deltas since an earlier snapshot.
func (s CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - earlier.Hits, Misses: s.Misses - earlier.Misses}
}

// Add merges two snapshots.
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses}
}

// HitRate returns hits over total lookups (0 when no lookups).
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// CachedPlatform is a Platform whose Compile is memoized.
type CachedPlatform interface {
	Platform
	// CacheStats returns the current hit/miss counters.
	CacheStats() CacheStats
	// ResetCache drops all cached reports and zeroes the counters.
	ResetCache()
	// Unwrap returns the underlying platform.
	Unwrap() Platform
}

// Cached wraps p with a concurrency-safe memoizing Compile: identical
// TrainSpecs (by TrainSpec.Key) compile once; concurrent callers of an
// in-flight key block until the single underlying compile finishes and
// then share its report (singleflight). Both successful reports and
// compile errors are cached — the simulators are deterministic,
// stateless pure functions of the spec, so a cached outcome is
// indistinguishable from a fresh one. Cached reports are shared, not
// copied: callers must treat a CompileReport as immutable (Run already
// does).
//
// If p natively computes load imbalance (Imbalancer), the wrapper
// forwards it so core.Profile keeps using the operator-level path.
func Cached(p Platform) CachedPlatform {
	c := &cached{p: p, entries: map[string]*cacheEntry{}}
	if li, ok := p.(Imbalancer); ok {
		return &cachedImbalancer{cached: c, li: li}
	}
	return c
}

type cacheEntry struct {
	done chan struct{} // closed when cr/err are set
	cr   *CompileReport
	err  error
}

type cached struct {
	p            Platform
	mu           sync.Mutex
	entries      map[string]*cacheEntry
	hits, misses atomic.Int64
}

func (c *cached) Name() string       { return c.p.Name() }
func (c *cached) HardwareSpec() Spec { return c.p.HardwareSpec() }
func (c *cached) Unwrap() Platform   { return c.p }

func (c *cached) Compile(spec TrainSpec) (*CompileReport, error) {
	key := spec.Key()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.cr, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	e.cr, e.err = c.p.Compile(spec)
	close(e.done)
	return e.cr, e.err
}

func (c *cached) Run(cr *CompileReport) (*RunReport, error) { return c.p.Run(cr) }

func (c *cached) CacheStats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

func (c *cached) ResetCache() {
	c.mu.Lock()
	c.entries = map[string]*cacheEntry{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// cachedImbalancer adds the native-LI forwarding for platforms that
// implement it; a separate type so a cached WSE does not spuriously
// satisfy Imbalancer.
type cachedImbalancer struct {
	*cached
	li Imbalancer
}

func (c *cachedImbalancer) LoadImbalance(cr *CompileReport) (float64, error) {
	return c.li.LoadImbalance(cr)
}
