package platform

import (
	"dabench/internal/cachestats"
	"dabench/internal/memo"
)

// Imbalancer is implemented by platforms with a native operator-level
// load-imbalance computation (the RDU's section/operator hierarchy).
// Cached wrappers preserve it so the core's LI dispatch is unchanged.
type Imbalancer interface {
	LoadImbalance(*CompileReport) (float64, error)
}

// CacheStats is a snapshot of a cache's hit/miss counters (the shared
// cachestats.Stats — one type across the graph/compile/run tiers).
type CacheStats = cachestats.Stats

// CachedPlatform is a Platform whose Compile and Run are memoized.
type CachedPlatform interface {
	Platform
	// CacheStats returns the compile cache's hit/miss counters.
	CacheStats() CacheStats
	// RunCacheStats returns the run-report cache's hit/miss counters.
	RunCacheStats() CacheStats
	// ResetCache drops all cached reports (compile and run) and zeroes
	// the counters.
	ResetCache()
	// Unwrap returns the underlying platform.
	Unwrap() Platform
}

// Cached wraps p with two concurrency-safe memoization tiers (both
// memo.Cache singleflight cells).
//
// Compile: identical TrainSpecs (by TrainSpec.Key) compile once;
// concurrent callers of an in-flight key block until the single
// underlying compile finishes and then share its report. Both
// successful reports and compile errors are cached — the simulators
// are deterministic, stateless pure functions of the spec, so a cached
// outcome is indistinguishable from a fresh one. Cached reports are
// shared, not copied: callers must treat a CompileReport as immutable
// (Run already does).
//
// Run: Run is a deterministic pure function of the compile report, and
// the compile cache hands every caller of an identical spec the same
// *CompileReport — so the run cache keys on pointer identity, which is
// both allocation-free and exactly as discriminating as a value key for
// reports that came out of this wrapper. Reports compiled elsewhere
// simply occupy their own cache slot; correctness only needs the shared
// immutability contract. Run errors are cached alongside successes for
// the same determinism reason.
//
// If p natively computes load imbalance (Imbalancer), the wrapper
// forwards it so core.Profile keeps using the operator-level path.
func Cached(p Platform) CachedPlatform { return CachedWithStore(p, nil) }

type cached struct {
	p       Platform
	rs      ResultStore // optional persistent L2; nil = RAM only
	compile *memo.Cache[string, *CompileReport]
	run     *memo.Cache[*CompileReport, *RunReport]
}

func (c *cached) Name() string       { return c.p.Name() }
func (c *cached) HardwareSpec() Spec { return c.p.HardwareSpec() }
func (c *cached) Unwrap() Platform   { return c.p }

func (c *cached) Compile(spec TrainSpec) (*CompileReport, error) {
	// The fault hook fires BEFORE the memo cell: the cell caches errors
	// (deterministic simulators make that sound), but an injected fault
	// is transient by definition — letting it into the cell would pin
	// the failure onto that spec for the process lifetime.
	if err := fireCompileFault(); err != nil {
		return nil, err
	}
	key := spec.Key()
	return c.compile.Do(key, func() (*CompileReport, error) {
		if c.rs != nil {
			if st, ok := c.rs.Load(c.p.Name(), key); ok {
				if st.Failed {
					return nil, &CompileError{Platform: c.p.Name(), Reason: st.FailReason}
				}
				if st.Run != nil {
					// The run report rides along; seed the run cell so
					// Run on this report is a pure lookup too.
					c.run.Seed(st.Compile, st.Run)
				}
				return st.Compile, nil
			}
		}
		cr, err := observeStage(c.p.Name(), StageCompile, func() (*CompileReport, error) {
			return c.p.Compile(spec)
		})
		if c.rs != nil {
			switch {
			case err == nil:
				c.rs.Store(c.p.Name(), key, Stored{Compile: cr})
			case IsCompileFailure(err):
				// Placement failures are deterministic findings, worth
				// persisting; validation errors are cheap to rediscover.
				c.rs.Store(c.p.Name(), key, Stored{Failed: true, FailReason: err.(*CompileError).Reason})
			}
		}
		return cr, err
	})
}

func (c *cached) Run(cr *CompileReport) (*RunReport, error) {
	return c.run.Do(cr, func() (*RunReport, error) {
		rr, err := observeStage(c.p.Name(), StageRun, func() (*RunReport, error) {
			return c.p.Run(cr)
		})
		if err == nil && c.rs != nil {
			c.rs.Store(c.p.Name(), cr.Spec.Key(), Stored{Compile: cr, Run: rr})
		}
		return rr, err
	})
}

func (c *cached) CacheStats() CacheStats    { return c.compile.Stats() }
func (c *cached) RunCacheStats() CacheStats { return c.run.Stats() }

func (c *cached) ResetCache() {
	c.compile.Reset()
	c.run.Reset()
}

// cachedImbalancer adds the native-LI forwarding for platforms that
// implement it; a separate type so a cached WSE does not spuriously
// satisfy Imbalancer.
type cachedImbalancer struct {
	*cached
	li Imbalancer
}

func (c *cachedImbalancer) LoadImbalance(cr *CompileReport) (float64, error) {
	return c.li.LoadImbalance(cr)
}
