package platform

import (
	"testing"

	"dabench/internal/faults"
)

// TestInjectedCompileFaultIsNotCached pins the hook placement: the
// fault fires outside the memo cell, so a transient injected failure
// never poisons the cached outcome for its spec.
func TestInjectedCompileFaultIsNotCached(t *testing.T) {
	in, err := faults.New(faults.Spec{Rules: []faults.Rule{
		{Op: faults.OpCompile, Kind: faults.KindEIO, Count: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	SetFaultInjector(in)
	defer SetFaultInjector(nil)

	p := &countingPlatform{}
	c := Cached(p)
	spec := TrainSpec{Batch: 1, Seq: 1}

	if _, err := c.Compile(spec); !faults.IsInjected(err) {
		t.Fatalf("first compile err = %v, want injected fault", err)
	}
	if p.compiles.Load() != 0 {
		t.Fatalf("underlying compile ran %d times through a fired fault", p.compiles.Load())
	}

	// Budget spent: the same spec must now compile normally — the
	// injected error was not captured by the error-caching memo cell.
	cr, err := c.Compile(spec)
	if err != nil || cr == nil {
		t.Fatalf("second compile = (%v, %v), want success", cr, err)
	}
	if p.compiles.Load() != 1 {
		t.Errorf("underlying compiles = %d, want 1", p.compiles.Load())
	}
}

func TestNilFaultInjectorIsFastPath(t *testing.T) {
	SetFaultInjector(nil)
	if err := fireCompileFault(); err != nil {
		t.Fatalf("unmounted hook fired: %v", err)
	}
}
