package platform

import (
	"sync"
	"testing"
)

// mapStore is an in-memory ResultStore: the wrapper-mechanics tests
// don't need a disk (internal/store has its own durability suite).
type mapStore struct {
	mu      sync.Mutex
	entries map[string]Stored
	loads   int
}

func newMapStore() *mapStore { return &mapStore{entries: map[string]Stored{}} }

func (m *mapStore) key(p, k string) string { return p + "\x00" + k }

func (m *mapStore) Load(p, k string) (Stored, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loads++
	s, ok := m.entries[m.key(p, k)]
	return s, ok
}

func (m *mapStore) Store(p, k string, s Stored) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[m.key(p, k)] = s
}

// TestStoreBackedRestartSkipsCompile is the warm-restart contract at
// the wrapper level: a second "process" (fresh memo cells over a fresh
// simulator) sharing the first one's ResultStore must answer the same
// spec with zero Compile and zero Run calls.
func TestStoreBackedRestartSkipsCompile(t *testing.T) {
	rs := newMapStore()
	spec := testSpec(8)

	first := &countingPlatform{}
	c1 := CachedWithStore(first, rs)
	cr1, err := c1.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rr1, err := c1.Run(cr1)
	if err != nil {
		t.Fatal(err)
	}

	second := &countingPlatform{}
	c2 := CachedWithStore(second, rs)
	cr2, err := c2.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rr2, err := c2.Run(cr2)
	if err != nil {
		t.Fatal(err)
	}
	if second.compiles.Load() != 0 || second.runs.Load() != 0 {
		t.Errorf("restart recomputed: %d compiles, %d runs, want 0/0",
			second.compiles.Load(), second.runs.Load())
	}
	if cr2.Spec.Key() != cr1.Spec.Key() || rr2.TokensPerSec != rr1.TokensPerSec {
		t.Errorf("restored reports diverge: %+v vs %+v", rr2, rr1)
	}
	if rr2.Compile != cr2 {
		t.Error("restored run report not linked to restored compile report")
	}
}

// TestStoreBackedPersistsPlacementFailure: the paper's "Fail" entries
// are deterministic findings, so a restart must reproduce the
// CompileError from the store without consulting the simulator.
func TestStoreBackedPersistsPlacementFailure(t *testing.T) {
	rs := newMapStore()
	spec := testSpec(8)

	first := &countingPlatform{fail: true}
	if _, err := CachedWithStore(first, rs).Compile(spec); !IsCompileFailure(err) {
		t.Fatalf("want compile failure, got %v", err)
	}

	second := &countingPlatform{fail: true}
	_, err := CachedWithStore(second, rs).Compile(spec)
	if !IsCompileFailure(err) {
		t.Fatalf("restart lost the failure: %v", err)
	}
	if second.compiles.Load() != 0 {
		t.Errorf("restart re-ran a persisted failing compile %d times", second.compiles.Load())
	}
}

// TestStoreBackedWritesBehind: a cold compile+run lands in the store
// (compile-only first, then with the run report).
func TestStoreBackedWritesBehind(t *testing.T) {
	rs := newMapStore()
	under := &countingPlatform{}
	c := CachedWithStore(under, rs)
	spec := testSpec(8)

	cr, err := c.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := rs.entries[rs.key("fake", spec.Key())]
	if !ok || st.Compile == nil || st.Run != nil {
		t.Fatalf("after compile: stored = %+v, %v (want compile-only)", st, ok)
	}
	if _, err := c.Run(cr); err != nil {
		t.Fatal(err)
	}
	st = rs.entries[rs.key("fake", spec.Key())]
	if st.Run == nil {
		t.Fatalf("after run: stored entry lacks the run report: %+v", st)
	}
}

// TestCachedWithNilStoreIsPlainCached guards the default path: Cached
// must behave exactly as before the L2 existed.
func TestCachedWithNilStoreIsPlainCached(t *testing.T) {
	under := &countingPlatform{}
	c := CachedWithStore(under, nil)
	cr, err := c.Compile(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(cr); err != nil {
		t.Fatal(err)
	}
	if under.compiles.Load() != 1 || under.runs.Load() != 1 {
		t.Errorf("nil-store wrapper: %d compiles / %d runs, want 1/1",
			under.compiles.Load(), under.runs.Load())
	}
}
