package platform

import (
	"errors"
	"testing"

	"dabench/internal/model"
)

func TestTrainSpecValidate(t *testing.T) {
	good := TrainSpec{Model: model.GPT2Small(), Batch: 4, Seq: 1024}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []TrainSpec{
		{Model: model.GPT2Small(), Batch: 0, Seq: 1},
		{Model: model.GPT2Small(), Batch: 1, Seq: 0},
		{Model: model.GPT2Small(), Batch: 1, Seq: 4096}, // beyond GPT-2 max
		{Model: model.GPT2Small(), Batch: 1, Seq: 1, Par: Parallelism{DataParallel: -1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if got := good.Tokens(); got != 4096 {
		t.Errorf("Tokens = %v", got)
	}
}

func TestCompileModeString(t *testing.T) {
	cases := map[CompileMode]string{
		ModeDefault: "default", ModeO0: "O0", ModeO1: "O1", ModeO3: "O3",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q", int(m), got)
		}
	}
}

func TestMemoryUse(t *testing.T) {
	m := MemoryUse{Capacity: 100, Config: 30, Weights: 40, Activations: 20, Other: 5}
	if m.Used() != 95 {
		t.Errorf("Used = %v", m.Used())
	}
	if !m.Fits() {
		t.Error("95 of 100 should fit")
	}
	m.Other = 15
	if m.Fits() {
		t.Error("105 of 100 should not fit")
	}
}

func TestAllocationRatio(t *testing.T) {
	cr := &CompileReport{
		Allocated: map[Resource]float64{ResPE: 722_000},
		Capacity:  map[Resource]float64{ResPE: 850_000},
	}
	if got := cr.AllocationRatio(ResPE); got < 0.849 || got > 0.851 {
		t.Errorf("ratio = %v", got)
	}
	if got := cr.AllocationRatio(ResPCU); got != 0 {
		t.Errorf("missing resource ratio = %v", got)
	}
}

func TestCompileError(t *testing.T) {
	var err error = &CompileError{Platform: "WSE-2", Reason: "OOM"}
	if !IsCompileFailure(err) {
		t.Error("CompileError not detected")
	}
	if IsCompileFailure(errors.New("other")) {
		t.Error("plain error misclassified")
	}
	if err.Error() != "WSE-2: compile failed: OOM" {
		t.Errorf("message = %q", err.Error())
	}
}
