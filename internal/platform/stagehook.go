package platform

import (
	"sync/atomic"
	"time"
)

// Pipeline stage names reported through the stage hook. They name the
// two real units of simulator work — everything else a request does
// (decode, render, store I/O) is timed by the layer that does it.
const (
	StageCompile = "compile"
	StageRun     = "run"
)

// StageHook observes one real simulator invocation: the platform, the
// stage (StageCompile or StageRun) and its wall-clock duration. Cache
// hits never fire — the hook measures where simulation time actually
// goes, which is what makes warm/cold latency distributions
// attributable: a warm request's stage histogram entry is the serving
// layer's, not a phantom zero-cost compile here.
type StageHook func(platformName, stage string, d time.Duration)

// stageHook is package-wide for the same reason the fault hook is: the
// cached platforms are rebuilt whenever the result-store seam changes,
// and the observer must survive those rebuilds. One atomic load + nil
// compare on the miss path; the hit path never consults it.
var stageHook atomic.Pointer[StageHook]

// SetStageHook installs (or, with nil, removes) the pipeline stage
// observer. Serving layers mount it to feed their stage histograms;
// production CLIs may leave it unset at zero cost.
func SetStageHook(fn StageHook) {
	if fn == nil {
		stageHook.Store(nil)
		return
	}
	stageHook.Store(&fn)
}

// observeStage times fn under the mounted hook (or plainly without
// one) and returns its results.
func observeStage[T any](platformName, stage string, fn func() (T, error)) (T, error) {
	hook := stageHook.Load()
	if hook == nil {
		return fn()
	}
	start := time.Now()
	v, err := fn()
	(*hook)(platformName, stage, time.Since(start))
	return v, err
}
