package platform

import (
	"sync"
	"sync/atomic"
	"testing"

	"dabench/internal/model"
	"dabench/internal/precision"
)

// countingPlatform is a deterministic fake that counts Compile and Run
// calls.
type countingPlatform struct {
	compiles atomic.Int64
	runs     atomic.Int64
	fail     bool
}

func (p *countingPlatform) Name() string       { return "fake" }
func (p *countingPlatform) HardwareSpec() Spec { return Spec{Name: "fake"} }

func (p *countingPlatform) Compile(spec TrainSpec) (*CompileReport, error) {
	p.compiles.Add(1)
	if p.fail {
		return nil, &CompileError{Platform: "fake", Reason: "does not fit"}
	}
	return &CompileReport{Platform: "fake", Spec: spec}, nil
}

func (p *countingPlatform) Run(cr *CompileReport) (*RunReport, error) {
	p.runs.Add(1)
	return &RunReport{Compile: cr, TokensPerSec: 1}, nil
}

// countingImbalancer adds a native LI path.
type countingImbalancer struct{ countingPlatform }

func (p *countingImbalancer) LoadImbalance(*CompileReport) (float64, error) { return 0.5, nil }

func testSpec(batch int) TrainSpec {
	return TrainSpec{Model: model.GPT2Small(), Batch: batch, Seq: 1024, Precision: precision.FP16}
}

func TestCachedDedupsIdenticalSpecs(t *testing.T) {
	under := &countingPlatform{}
	c := Cached(under)

	cr1, err := c.Compile(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	cr2, err := c.Compile(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if cr1 != cr2 {
		t.Error("cache should return the shared report")
	}
	if _, err := c.Compile(testSpec(16)); err != nil {
		t.Fatal(err)
	}
	if n := under.compiles.Load(); n != 2 {
		t.Errorf("underlying compiled %d times, want 2", n)
	}
	if s := c.CacheStats(); s.Hits != 1 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", s)
	}
	if r := c.CacheStats().HitRate(); r < 0.33 || r > 0.34 {
		t.Errorf("hit rate = %v", r)
	}
}

func TestCachedCachesCompileFailures(t *testing.T) {
	under := &countingPlatform{fail: true}
	c := Cached(under)
	for i := 0; i < 3; i++ {
		if _, err := c.Compile(testSpec(8)); !IsCompileFailure(err) {
			t.Fatalf("want compile failure, got %v", err)
		}
	}
	if n := under.compiles.Load(); n != 1 {
		t.Errorf("failure compiled %d times, want 1 (failures are deterministic findings)", n)
	}
}

func TestCachedSingleflight(t *testing.T) {
	under := &countingPlatform{}
	c := Cached(under)
	const callers = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := c.Compile(testSpec(8)); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := under.compiles.Load(); n != 1 {
		t.Errorf("concurrent identical compiles ran %d times, want 1", n)
	}
	s := c.CacheStats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Errorf("stats = %+v, want %d hits / 1 miss", s, callers-1)
	}
}

func TestCachedReset(t *testing.T) {
	under := &countingPlatform{}
	c := Cached(under)
	cr, err := c.Compile(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(cr); err != nil {
		t.Fatal(err)
	}
	c.ResetCache()
	if s := c.CacheStats(); s != (CacheStats{}) {
		t.Errorf("stats after reset = %+v", s)
	}
	if s := c.RunCacheStats(); s != (CacheStats{}) {
		t.Errorf("run stats after reset = %+v", s)
	}
	if _, err := c.Compile(testSpec(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(cr); err != nil {
		t.Fatal(err)
	}
	if n := under.compiles.Load(); n != 2 {
		t.Errorf("reset cache still deduped: %d compiles", n)
	}
	if n := under.runs.Load(); n != 2 {
		t.Errorf("reset run cache still deduped: %d runs", n)
	}
}

// TestCachedRunMemoization covers the run-report tier: Run is a
// deterministic pure function of its compile report, and the compile
// cache shares report pointers, so pointer identity is a sound key.
func TestCachedRunMemoization(t *testing.T) {
	under := &countingPlatform{}
	c := Cached(under)
	cr1, err := c.Compile(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	// A compile-cache hit hands back the same pointer, so its runs hit.
	cr2, err := c.Compile(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	rr1, err := c.Run(cr1)
	if err != nil {
		t.Fatal(err)
	}
	rr2, err := c.Run(cr2)
	if err != nil {
		t.Fatal(err)
	}
	if rr1 != rr2 {
		t.Error("identical compile reports must share the memoized run report")
	}
	if n := under.runs.Load(); n != 1 {
		t.Errorf("underlying ran %d times, want 1", n)
	}
	if s := c.RunCacheStats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("run stats = %+v, want 1 hit / 1 miss", s)
	}

	// A distinct report occupies its own slot.
	cr3, err := c.Compile(testSpec(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(cr3); err != nil {
		t.Fatal(err)
	}
	if n := under.runs.Load(); n != 2 {
		t.Errorf("distinct report reused a cached run: %d runs", n)
	}
	// Compile stats are untouched by Run traffic.
	if s := c.CacheStats(); s.Hits != 1 || s.Misses != 2 {
		t.Errorf("compile stats polluted by runs: %+v", s)
	}
}

func TestCachedRunSingleflight(t *testing.T) {
	under := &countingPlatform{}
	c := Cached(under)
	cr, err := c.Compile(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	const callers = 64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := c.Run(cr); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := under.runs.Load(); n != 1 {
		t.Errorf("concurrent identical runs executed %d times, want 1", n)
	}
	if s := c.RunCacheStats(); s.Misses != 1 || s.Hits != callers-1 {
		t.Errorf("run stats = %+v, want %d hits / 1 miss", s, callers-1)
	}
}

func TestCachedForwardsImbalancer(t *testing.T) {
	c := Cached(&countingImbalancer{})
	im, ok := c.(Imbalancer)
	if !ok {
		t.Fatal("cached imbalancer platform lost the Imbalancer interface")
	}
	li, err := im.LoadImbalance(nil)
	if err != nil || li != 0.5 {
		t.Errorf("LoadImbalance = %v, %v", li, err)
	}
	// A platform without the native path must NOT gain it.
	if _, ok := Cached(&countingPlatform{}).(Imbalancer); ok {
		t.Error("plain cached platform spuriously implements Imbalancer")
	}
	if Cached(&countingPlatform{}).Unwrap().Name() != "fake" {
		t.Error("Unwrap lost the underlying platform")
	}
}

func TestCacheStatsArithmetic(t *testing.T) {
	a := CacheStats{Hits: 5, Misses: 3}
	b := CacheStats{Hits: 2, Misses: 1}
	if d := a.Sub(b); d.Hits != 3 || d.Misses != 2 {
		t.Errorf("Sub = %+v", d)
	}
	if s := a.Add(b); s.Hits != 7 || s.Misses != 4 {
		t.Errorf("Add = %+v", s)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

func TestTrainSpecKey(t *testing.T) {
	base := testSpec(8)
	if base.Key() != testSpec(8).Key() {
		t.Error("identical specs must share a key")
	}

	// Every observable knob must change the key.
	variants := map[string]TrainSpec{}
	v := base
	v.Batch = 16
	variants["batch"] = v
	v = base
	v.Seq = 2048
	variants["seq"] = v
	v = base
	v.Precision = precision.BF16
	variants["precision"] = v
	v = base
	v.Model = v.Model.WithLayers(7)
	variants["layers"] = v
	v = base
	v.Model = v.Model.WithHidden(1024)
	variants["hidden"] = v
	v = base
	v.Par.DataParallel = 4
	variants["dp"] = v
	v = base
	v.Par.TensorParallel = 2
	variants["tp"] = v
	v = base
	v.Par.PipelineParallel = 4
	variants["pp"] = v
	v = base
	v.Par.WeightStreaming = true
	variants["streaming"] = v
	v = base
	v.Par.Mode = ModeO3
	variants["mode"] = v
	v = base
	v.Par.LayerAssignment = []int{2, 2, 1}
	variants["assignment"] = v

	seen := map[string]string{base.Key(): "base"}
	for name, spec := range variants {
		k := spec.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, k)
		}
		seen[k] = name
	}

	// LayerAssignment order matters (Figure 11c sweeps permutations).
	a, b := base, base
	a.Par.LayerAssignment = []int{2, 1, 1}
	b.Par.LayerAssignment = []int{1, 1, 2}
	if a.Key() == b.Key() {
		t.Error("layer-assignment permutations must not collide")
	}
}

// TestTrainSpecKeyEscapesName guards against delimiter forgery: a
// crafted Model.Name must not alias another spec's fingerprint.
func TestTrainSpecKeyEscapesName(t *testing.T) {
	honest := testSpec(8)
	honest.Model.HiddenSize = 1024
	forged := testSpec(8)
	forged.Model.Name = honest.Model.Name + `";fam=0;h=1024`
	if honest.Key() == forged.Key() {
		t.Error("crafted model name forged another spec's key")
	}
}
