package platform

import (
	"sync/atomic"

	"dabench/internal/faults"
)

// faultInjector is the package-wide compile fault hook. It lives at
// package scope (not per cached wrapper) because the cached platforms
// are rebuilt whenever the result-store seam changes, and the injector
// must survive those rebuilds; an atomic pointer keeps the production
// fast path at one load + nil compare.
var faultInjector atomic.Pointer[faults.Injector]

// SetFaultInjector installs (or, with nil, removes) the fault injector
// consulted by every cached platform's Compile. Test and -allow-faults
// wiring only; production never calls it.
func SetFaultInjector(in *faults.Injector) {
	faultInjector.Store(in)
}

// fireCompileFault evaluates the compile-op fault rules, if an
// injector is mounted.
func fireCompileFault() error {
	return faultInjector.Load().Fire(faults.OpCompile)
}
