// Package platform defines the cross-vendor abstraction at the heart of
// DABench-LLM: every accelerator backend exposes the same two-step
// Compile/Run contract, producing reports with enough per-task detail
// for the Tier-1 metrics (allocation ratio, load imbalance, utilization
// efficiency) and enough end-to-end detail for the Tier-2 scalability
// and deployment analyses.
//
// The paper stresses that its framework needs only three inputs —
// hardware specifications, runtime information, and the training
// configuration — and that most metrics come from compile-time data
// with a few (throughput, TFLOPs) from runtime. CompileReport and
// RunReport mirror that split.
package platform

import (
	"fmt"
	"strings"

	"dabench/internal/model"
	"dabench/internal/precision"
	"dabench/internal/units"
)

// Resource names a class of allocatable on-chip units.
type Resource string

// Resource classes of the paper's platforms.
const (
	ResPE   Resource = "PE"   // Cerebras processing elements
	ResPCU  Resource = "PCU"  // SambaNova pattern compute units
	ResPMU  Resource = "PMU"  // SambaNova pattern memory units
	ResTile Resource = "Tile" // Graphcore tiles
	ResSM   Resource = "SM"   // GPU streaming multiprocessors
)

// CompileMode selects the RDU graph-partitioning strategy. Platforms
// without compile modes ignore it.
type CompileMode int

// RDU compilation modes (Section III-B of the paper).
const (
	ModeDefault CompileMode = iota
	ModeO0                  // operator mode: one operator per section
	ModeO1                  // module mode: operator fusion into modules
	ModeO3                  // full-graph mode: decoder-by-decoder sections
)

// String returns the mode name.
func (m CompileMode) String() string {
	switch m {
	case ModeO0:
		return "O0"
	case ModeO1:
		return "O1"
	case ModeO3:
		return "O3"
	default:
		return "default"
	}
}

// ParseMode converts a mode name ("O0", "O1", "O3", case-insensitive;
// "" means ModeDefault) into a CompileMode. Every mode-accepting wire
// surface (CLI flags, server requests, scenario documents) parses
// through this one function so the vocabulary cannot drift.
func ParseMode(s string) (CompileMode, error) {
	switch strings.ToUpper(s) {
	case "":
		return ModeDefault, nil
	case "O0":
		return ModeO0, nil
	case "O1":
		return ModeO1, nil
	case "O3":
		return ModeO3, nil
	default:
		return ModeDefault, fmt.Errorf("platform: unknown mode %q (valid: O0, O1, O3)", s)
	}
}

// Parallelism captures the multi-chip (Tier-2) deployment choices.
type Parallelism struct {
	// DataParallel is the replica count (WSE-2 intra-chip DP). 0 or 1
	// means no replication.
	DataParallel int
	// TensorParallel is the RDU TP degree across chips.
	TensorParallel int
	// PipelineParallel is the number of pipeline devices (IPUs).
	PipelineParallel int
	// LayerAssignment optionally pins decoder layers to pipeline
	// devices (Figure 11c); when empty, layers are balanced.
	LayerAssignment []int
	// WeightStreaming enables the WSE-2 mode that streams weights for
	// models too large for on-chip residence.
	WeightStreaming bool
	// Mode is the RDU compile mode.
	Mode CompileMode
}

// TrainSpec is one training workload: the framework's "training
// configuration" input category.
type TrainSpec struct {
	Model     model.Config
	Batch     int
	Seq       int
	Precision precision.Format
	Par       Parallelism
}

// Validate rejects inconsistent specs.
func (s TrainSpec) Validate() error {
	if err := s.Model.Validate(); err != nil {
		return err
	}
	if s.Batch <= 0 {
		return fmt.Errorf("platform: batch %d must be positive", s.Batch)
	}
	if s.Seq <= 0 {
		return fmt.Errorf("platform: sequence length %d must be positive", s.Seq)
	}
	if s.Seq > s.Model.MaxSeqLen {
		return fmt.Errorf("platform: sequence length %d exceeds model max %d", s.Seq, s.Model.MaxSeqLen)
	}
	p := s.Par
	if p.DataParallel < 0 || p.TensorParallel < 0 || p.PipelineParallel < 0 {
		return fmt.Errorf("platform: negative parallelism degree")
	}
	return nil
}

// Tokens returns tokens per step.
func (s TrainSpec) Tokens() float64 { return float64(s.Batch) * float64(s.Seq) }

// Task is one schedulable unit the compiler produced: a kernel on the
// WSE, a section on the RDU, a pipeline stage on the IPU.
type Task struct {
	Name string
	// Kind labels the task granularity ("kernel", "section", "stage",
	// "operator").
	Kind string
	// Units is the allocation per resource class.
	Units map[Resource]float64
	// Throughput is the task's isolated processing rate in samples/s.
	Throughput float64
	// Runtime is the wall time per invocation, the Lᵢ weight of the
	// paper's Eq. 2 and Eq. 4.
	Runtime units.Seconds
	// Invocations per training step (RDU sections run once per layer
	// in O0/O1).
	Invocations int
	FLOPs       units.FLOPs
	Traffic     units.Bytes
	// Subtasks optionally carries finer-grain rows (operator-level LI
	// inside an RDU section).
	Subtasks []Task
}

// MemoryUse breaks down on-chip memory at compile time (Figure 9a).
type MemoryUse struct {
	Capacity units.Bytes
	// Config is compiler metadata: kernel configuration, routing
	// tables (the component that crowds out training memory on WSE-2).
	Config  units.Bytes
	Weights units.Bytes
	// Activations at the compiled batch shape.
	Activations units.Bytes
	// Other covers optimizer state and scratch.
	Other units.Bytes
}

// Used sums the non-capacity fields.
func (m MemoryUse) Used() units.Bytes {
	return m.Config + m.Weights + m.Activations + m.Other
}

// Fits reports whether the usage is within capacity.
func (m MemoryUse) Fits() bool { return m.Used() <= m.Capacity }

// CompileReport is the compile-time output: allocations, task list,
// memory map.
type CompileReport struct {
	Platform string
	Spec     TrainSpec
	Tasks    []Task
	// Allocated and Capacity are per resource class, per chip.
	Allocated map[Resource]float64
	Capacity  map[Resource]float64
	Memory    MemoryUse
	// Notes carries compiler commentary (partitioning decisions,
	// shard counts) surfaced in reports.
	Notes []string
}

// AllocationRatio returns Allocated/Capacity for resource r.
func (c *CompileReport) AllocationRatio(r Resource) float64 {
	cap, ok := c.Capacity[r]
	if !ok || cap <= 0 {
		return 0
	}
	return units.Clamp(c.Allocated[r]/cap, 0, 1)
}

// RunReport is the runtime output of executing a compiled workload.
type RunReport struct {
	Compile *CompileReport
	// StepTime is the wall time of one optimizer step.
	StepTime units.Seconds
	// TokensPerSec and SamplesPerSec are the training throughput.
	TokensPerSec  float64
	SamplesPerSec float64
	// Achieved is the sustained compute rate.
	Achieved units.FLOPSRate
	// Efficiency is Achieved over the platform peak.
	Efficiency float64
	// AI is the platform-level arithmetic intensity at the global
	// memory tier (the x-coordinate on Figure 10).
	AI float64
}

// Spec is the framework's "hardware specifications" input category.
type Spec struct {
	Name string
	// Resources lists per-chip unit capacities.
	Resources map[Resource]float64
	// Peak16 is the peak 16-bit compute rate per chip.
	Peak16 units.FLOPSRate
	// OnChipMemory and OnChipBW describe the shared-memory tier.
	OnChipMemory units.Bytes
	OnChipBW     units.Bandwidth
	// GlobalMemory and GlobalBW describe the global tier (DDR for RDU
	// and IPU; the WSE's unified SRAM serves both roles).
	GlobalMemory units.Bytes
	GlobalBW     units.Bandwidth
}

// Platform is one accelerator backend.
type Platform interface {
	// Name identifies the platform ("WSE-2", "RDU", "IPU", "GPU").
	Name() string
	// HardwareSpec returns the static chip description.
	HardwareSpec() Spec
	// Compile maps the workload onto the chip. A *CompileError return
	// indicates the workload cannot be placed (the "Fail" entries of
	// Table I and Figure 9d).
	Compile(TrainSpec) (*CompileReport, error)
	// Run executes a compiled workload and reports throughput.
	Run(*CompileReport) (*RunReport, error)
}

// CompileError reports a workload that cannot be mapped onto the chip.
type CompileError struct {
	Platform string
	Reason   string
}

// Error implements the error interface.
func (e *CompileError) Error() string {
	return fmt.Sprintf("%s: compile failed: %s", e.Platform, e.Reason)
}

// IsCompileFailure reports whether err is a placement failure (as
// opposed to an invalid-input error).
func IsCompileFailure(err error) bool {
	_, ok := err.(*CompileError)
	return ok
}
