package platform

import "dabench/internal/memo"

// Stored is the durable form of one spec's pipeline outcome: the
// compile report, the run report once the workload has executed, or a
// placement failure. It is what a ResultStore persists per
// (platform, spec-key) pair — internal/store serializes it as a
// versioned JSON blob.
type Stored struct {
	Compile *CompileReport `json:"compile,omitempty"`
	Run     *RunReport     `json:"run,omitempty"`
	// Failed marks a persisted placement failure (the paper's "Fail"
	// entries): re-loading it reproduces the CompileError without
	// re-running the simulator.
	Failed     bool   `json:"failed,omitempty"`
	FailReason string `json:"fail_reason,omitempty"`
}

// ResultStore is the persistent L2 tier under the in-memory memo
// cells: a durable, content-addressed map from (platform name,
// TrainSpec.Key) to the spec's Stored outcome. Implementations must be
// safe for concurrent use and are expected to treat corruption as a
// miss, never an error — the pipeline can always recompute.
//
// Store is fire-and-forget (write-behind): implementations may
// persist asynchronously, and callers never learn about write
// failures — a lost write costs a future recompute, nothing more.
type ResultStore interface {
	Load(platformName, specKey string) (Stored, bool)
	Store(platformName, specKey string, s Stored)
}

// RawResponseStore is the optional byte-oriented extension of
// ResultStore behind the warm serve path: implementations keep the
// pre-marshaled response bytes for an outcome next to its canonical
// payload, so a warm request is answered from bytes with zero JSON
// work. LoadRaw returns servable bytes (and false on any miss or
// failure — like Load, this tier must degrade to recompute, never
// error); StoreResponse attaches bytes write-behind and may drop them
// freely. internal/store implements it with v2 framed blobs.
type RawResponseStore interface {
	ResultStore
	LoadRaw(platformName, specKey string) ([]byte, bool)
	StoreResponse(platformName, specKey string, resp []byte)
}

// CachedWithStore is Cached with a persistent read-through /
// write-behind tier underneath the in-memory cells: a compile miss in
// the memo consults rs before running the simulator, and computed
// outcomes are written behind to rs so the next process starts warm.
// When a loaded entry already carries its run report, the run cell is
// seeded too — a fully warm spec costs two map lookups and zero
// simulation. rs may be nil, which is plain Cached.
func CachedWithStore(p Platform, rs ResultStore) CachedPlatform {
	c := &cached{
		p:       p,
		rs:      rs,
		compile: memo.New[string, *CompileReport](),
		run:     memo.New[*CompileReport, *RunReport](),
	}
	if li, ok := p.(Imbalancer); ok {
		return &cachedImbalancer{cached: c, li: li}
	}
	return c
}
