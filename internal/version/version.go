// Package version holds the build identity both binaries report: the
// -version flag, the /v1/stats version field, and the
// dabench_build_info metric all read this one string, so a fleet can
// correlate behavior with the exact build serving it.
package version

// Version identifies the dabench build. The default tracks the repo's
// release line; real deployments pin the precise build at link time:
//
//	go build -ldflags "-X dabench/internal/version.Version=1.2.3+abc"
var Version = "0.8.0"
