// Package dabench is the public facade of the DABench-LLM
// reproduction: a standardized, in-depth benchmarking framework for
// dataflow AI accelerators running LLM training workloads, validated on
// calibrated simulators of the Cerebras WSE-2, SambaNova SN30 RDU and
// Graphcore Bow-2000 IPU (plus a GPU reference baseline).
//
// The framework operates on two tiers:
//
//   - Tier 1 (intra-chip): Profile compiles and runs one workload on
//     one chip, reporting resource allocation ratio (paper Eq. 1/2),
//     load imbalance (Eq. 3/4), utilization efficiency and the roofline
//     regime.
//   - Tier 2 (inter-chip): Scalability sweeps DP/TP/PP configurations;
//     Deployment sweeps batch size and precision and extracts
//     recommendations.
//
// Quick start:
//
//	prof, err := dabench.Profile(dabench.NewWSE(), dabench.TrainSpec{
//	    Model: dabench.GPT2Small(), Batch: 512, Seq: 1024,
//	    Precision: dabench.FP16,
//	})
//	fmt.Println(prof.Summary())
//
// Every table and figure of the paper's evaluation can be regenerated
// via Experiments / RunExperiment (see also bench_test.go and
// EXPERIMENTS.md).
package dabench

import (
	"context"

	"dabench/internal/core"
	"dabench/internal/experiments"
	"dabench/internal/gpu"
	"dabench/internal/ipu"
	"dabench/internal/model"
	"dabench/internal/platform"
	"dabench/internal/precision"
	"dabench/internal/rdu"
	"dabench/internal/scenario"
	"dabench/internal/store"
	"dabench/internal/sweep"
	"dabench/internal/wse"
)

// Re-exported core types.
type (
	// Platform is one accelerator backend (Compile + Run).
	Platform = platform.Platform
	// TrainSpec describes one training workload.
	TrainSpec = platform.TrainSpec
	// Parallelism selects the multi-chip deployment.
	Parallelism = platform.Parallelism
	// CompileReport is the compile-time allocation/memory report.
	CompileReport = platform.CompileReport
	// RunReport is the runtime throughput report.
	RunReport = platform.RunReport
	// ModelConfig describes a decoder-only transformer.
	ModelConfig = model.Config
	// Format is a numeric precision format.
	Format = precision.Format
	// Tier1Result is the intra-chip profile.
	Tier1Result = core.Tier1Result
	// ScalePoint is one Tier-2 scalability outcome.
	ScalePoint = core.ScalePoint
	// DeploymentReport is the Tier-2 deployment-optimization result.
	DeploymentReport = core.DeploymentReport
	// ExperimentResult is one reproduced table/figure.
	ExperimentResult = experiments.Result
	// CachedPlatform is a Platform with a memoized Compile (see Cached).
	CachedPlatform = platform.CachedPlatform
	// CacheStats is a compile-cache hit/miss snapshot.
	CacheStats = platform.CacheStats
	// ResultStore is the persistent L2 under the in-memory cache tiers
	// (see OpenResultStore and CachedWithStore).
	ResultStore = platform.ResultStore
	// PersistentStore is the on-disk content-addressed ResultStore.
	PersistentStore = store.Store
	// StoreStats is a persistent store's counter/gauge snapshot.
	StoreStats = store.Stats
)

// Precision formats (paper Table IV).
const (
	FP32  = precision.FP32
	FP16  = precision.FP16
	BF16  = precision.BF16
	CB16  = precision.CB16
	Mixed = precision.Mixed
)

// RDU compile modes (paper Figure 4).
const (
	ModeO0 = platform.ModeO0
	ModeO1 = platform.ModeO1
	ModeO3 = platform.ModeO3
)

// NewWSE returns the Cerebras WSE-2 simulator.
func NewWSE() Platform { return wse.New() }

// NewRDU returns the SambaNova SN30 RDU simulator.
func NewRDU() Platform { return rdu.New() }

// NewIPU returns the Graphcore Bow-2000 IPU simulator.
func NewIPU() Platform { return ipu.New() }

// NewGPU returns the A100-node reference baseline.
func NewGPU() Platform { return gpu.New() }

// Platforms returns the three dataflow platforms plus the GPU baseline.
func Platforms() []Platform {
	return []Platform{NewWSE(), NewRDU(), NewIPU(), NewGPU()}
}

// Model presets used in the paper's experiments.
var (
	GPTMini    = model.GPTMini
	GPTTiny    = model.GPTTiny
	GPT2Small  = model.GPT2Small
	GPT2Medium = model.GPT2Medium
	GPT2Large  = model.GPT2Large
	GPT2XL     = model.GPT2XL
	LLaMA2_7B  = model.LLaMA2_7B
	LLaMA2_13B = model.LLaMA2_13B
	LLaMA2_70B = model.LLaMA2_70B
)

// Profile runs the Tier-1 intra-chip analysis.
func Profile(p Platform, spec TrainSpec) (*Tier1Result, error) {
	return core.Profile(p, spec)
}

// Scalability runs the Tier-2 multi-chip analysis.
func Scalability(p Platform, base TrainSpec, configs []Parallelism, labels []string) ([]ScalePoint, error) {
	return core.Scalability(context.Background(), p, base, configs, labels)
}

// ScalabilityContext is Scalability with a cancellation/deadline
// context threaded into the sweep pool (the serving path uses it).
func ScalabilityContext(ctx context.Context, p Platform, base TrainSpec, configs []Parallelism, labels []string) ([]ScalePoint, error) {
	return core.Scalability(ctx, p, base, configs, labels)
}

// Deployment runs the Tier-2 deployment optimizer.
func Deployment(p Platform, base TrainSpec, batches []int, formats []Format) (*DeploymentReport, error) {
	return core.Deployment(context.Background(), p, base, batches, formats)
}

// DeploymentContext is Deployment with a cancellation/deadline context
// threaded into the sweep pool.
func DeploymentContext(ctx context.Context, p Platform, base TrainSpec, batches []int, formats []Format) (*DeploymentReport, error) {
	return core.Deployment(ctx, p, base, batches, formats)
}

// ExperimentIDs lists the reproducible paper artifacts in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table/figure by ID (e.g.
// "table1", "figure9").
func RunExperiment(id string) (*ExperimentResult, error) {
	return RunExperimentContext(context.Background(), id)
}

// RunExperimentContext is RunExperiment with a cancellation/deadline
// context threaded into every sweep the runner fans out — the dabenchd
// server's per-request timeouts ride on this.
func RunExperimentContext(ctx context.Context, id string) (*ExperimentResult, error) {
	r, ok := experiments.All()[id]
	if !ok {
		return nil, &platform.CompileError{Platform: "dabench", Reason: "unknown experiment " + id}
	}
	return r(ctx)
}

// Scenario engine re-exports: declarative multi-platform studies over
// the same cached pipeline (see internal/scenario).
type (
	// Scenario is one declarative multi-platform study (versioned
	// JSON document).
	Scenario = scenario.Scenario
	// ScenarioOutcome is one executed scenario: its comparison tables
	// plus failure counts, renderable via Render.
	ScenarioOutcome = scenario.Outcome
)

// ScenarioLibrary returns the built-in scenarios reproducing the
// paper's cross-platform comparisons, in stable order.
func ScenarioLibrary() []*Scenario { return scenario.Library() }

// ParseScenario strictly decodes and validates a scenario document.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// RunScenario executes a scenario on the shared cached platforms; the
// context bounds every sweep it fans out.
func RunScenario(ctx context.Context, sc *Scenario) (*ScenarioOutcome, error) {
	return scenario.Run(ctx, sc, scenario.RunOptions{})
}

// IsCompileFailure reports whether err is a placement failure (the
// paper's "Fail" table entries) rather than invalid input.
func IsCompileFailure(err error) bool { return platform.IsCompileFailure(err) }

// Cached wraps a platform with the concurrency-safe compile memoizer:
// identical TrainSpecs (by TrainSpec.Key) compile once, concurrent
// duplicate compiles are deduplicated in flight, and hit/miss counters
// are exposed via CacheStats. The simulators are deterministic and
// stateless, so cached reports are indistinguishable from fresh ones.
func Cached(p Platform) CachedPlatform { return platform.Cached(p) }

// CachedWithStore is Cached with a persistent read-through /
// write-behind ResultStore under the in-memory cells: compile misses
// consult the store before simulating, and computed outcomes are
// written behind so the next process starts warm.
func CachedWithStore(p Platform, rs ResultStore) CachedPlatform {
	return platform.CachedWithStore(p, rs)
}

// OpenResultStore opens (creating if needed) the on-disk
// content-addressed result store rooted at dir — the same layout the
// dabenchd daemon and the CLI mount under <data-dir>/store. budget
// bounds the on-disk footprint in bytes (<= 0: unbounded); the
// least-recently-used blobs are evicted past it. Close the store to
// flush its write-behind queue.
func OpenResultStore(dir string, budget int64) (*PersistentStore, error) {
	return store.Open(dir, budget)
}

// SetResultStore installs rs as the persistent tier under the shared
// experiment platforms (nil uninstalls it); see
// experiments.SetResultStore for the semantics.
func SetResultStore(rs ResultStore) { experiments.SetResultStore(rs) }

// SetSweepWorkers sets the process-wide sweep pool size used by the
// Tier-2 analyses and experiment runners (the CLI's -parallel flag).
// n = 1 forces the serial path; n <= 0 restores the automatic default
// of runtime.GOMAXPROCS(0); n > sweep.MaxWorkers (4096) is clamped —
// the pool is CPU-bound, so huge values buy goroutines, not speed.
func SetSweepWorkers(n int) { sweep.SetDefaultWorkers(n) }

// SweepWorkers returns the effective sweep pool size.
func SweepWorkers() int { return sweep.DefaultWorkers() }

// ResetExperimentCaches drops every memoization tier the experiment
// runners share — the graph build cache, the per-platform compile
// caches, and the run-report caches — so benchmarks can measure
// cold-cache runs.
func ResetExperimentCaches() { experiments.ResetCaches() }

// ExperimentCacheStats aggregates the experiment runners' shared
// compile-cache counters.
func ExperimentCacheStats() CacheStats { return experiments.CacheStats() }

// ExperimentRunCacheStats aggregates the experiment runners' shared
// run-report cache counters.
func ExperimentRunCacheStats() CacheStats { return experiments.RunCacheStats() }

// ExperimentGraphCacheStats reports the shared graph build cache's
// counters (the memoization tier below every compile cache).
func ExperimentGraphCacheStats() CacheStats { return experiments.GraphCacheStats() }
