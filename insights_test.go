package dabench_test

// Integration tests asserting the paper's cross-platform *insights*
// hold end-to-end through the public API — the qualitative claims each
// section's "Insight:" box makes, independent of any single table's
// numbers.

import (
	"strings"
	"testing"

	dabench "dabench"
)

// Section V-A insight: WSE-2 achieves a high allocation ratio through
// flexible kernel allocation but hits a scalability wall; RDU trains
// arbitrarily large models through partitioning but stays under 60%.
func TestInsightAllocationTradeoffs(t *testing.T) {
	wseProf, err := dabench.Profile(dabench.NewWSE(), dabench.TrainSpec{
		Model: dabench.GPT2Small().WithLayers(36), Batch: 512, Seq: 1024, Precision: dabench.FP16,
	})
	if err != nil {
		t.Fatal(err)
	}
	rduProf, err := dabench.Profile(dabench.NewRDU(), dabench.TrainSpec{
		Model: dabench.GPT2Small().WithLayers(36), Batch: 4, Seq: 1024, Precision: dabench.BF16,
		Par: dabench.Parallelism{Mode: dabench.ModeO3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wseProf.Allocation["PE"] < 0.85 {
		t.Errorf("WSE allocation %v should be high", wseProf.Allocation["PE"])
	}
	if rduProf.Allocation["PCU"] > 0.60 {
		t.Errorf("RDU allocation %v should stay under 60%%", rduProf.Allocation["PCU"])
	}
	// WSE hits its wall at 78 layers; the RDU compiles the same config.
	deep := dabench.TrainSpec{
		Model: dabench.GPT2Small().WithLayers(78), Batch: 4, Seq: 1024, Precision: dabench.BF16,
		Par: dabench.Parallelism{Mode: dabench.ModeO3},
	}
	if _, err := dabench.Profile(dabench.NewRDU(), deep); err != nil {
		t.Errorf("RDU should scale past the WSE wall: %v", err)
	}
	deep.Precision = dabench.FP16
	deep.Par = dabench.Parallelism{}
	if _, err := dabench.Profile(dabench.NewWSE(), deep); !dabench.IsCompileFailure(err) {
		t.Errorf("WSE at 78 layers should fail: %v", err)
	}
}

// Section V-C insight: only the WSE stays compute-bound; RDU and IPU
// are memory-bound — "memory bandwidth as the primary bottleneck for
// most AI accelerators".
func TestInsightRooflineRegimes(t *testing.T) {
	profs := map[string]dabench.TrainSpec{
		"WSE-2": {Model: dabench.GPT2Small(), Batch: 512, Seq: 1024, Precision: dabench.FP16},
		"RDU": {Model: dabench.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: dabench.BF16,
			Par: dabench.Parallelism{Mode: dabench.ModeO1, TensorParallel: 2}},
		"IPU": {Model: dabench.GPT2Small().WithLayers(4), Batch: 2048, Seq: 1024, Precision: dabench.FP16},
	}
	for _, p := range dabench.Platforms() {
		spec, ok := profs[p.Name()]
		if !ok {
			continue
		}
		prof, err := dabench.Profile(p, spec)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		wantCompute := p.Name() == "WSE-2"
		gotCompute := prof.Regime.String() == "compute-bound"
		if wantCompute != gotCompute {
			t.Errorf("%s regime = %v", p.Name(), prof.Regime)
		}
	}
}

// Section VI insight: deployment recommendations differ per platform —
// batch ≥ ~200 on WSE, maximize batch elsewhere; precision matters most
// on RDU, least on WSE.
func TestInsightDeploymentRecommendations(t *testing.T) {
	wseRep, err := dabench.Deployment(dabench.NewWSE(),
		dabench.TrainSpec{Model: dabench.GPT2Small(), Batch: 1, Seq: 1024, Precision: dabench.FP16},
		[]int{25, 50, 100, 200, 400, 800},
		[]dabench.Format{dabench.FP16, dabench.CB16})
	if err != nil {
		t.Fatal(err)
	}
	if wseRep.KneeBatch < 100 || wseRep.KneeBatch > 800 {
		t.Errorf("WSE knee batch = %d, want the 200-region", wseRep.KneeBatch)
	}
	rduRep, err := dabench.Deployment(dabench.NewRDU(),
		dabench.TrainSpec{Model: dabench.LLaMA2_7B(), Batch: 1, Seq: 4096, Precision: dabench.BF16,
			Par: dabench.Parallelism{Mode: dabench.ModeO1, TensorParallel: 2}},
		[]int{4, 8, 16},
		[]dabench.Format{dabench.BF16, dabench.Mixed})
	if err != nil {
		t.Fatal(err)
	}
	// Precision sensitivity ordering: RDU ≫ WSE.
	if rduRep.PrecisionGain <= wseRep.PrecisionGain {
		t.Errorf("RDU precision gain %v should exceed WSE's %v",
			rduRep.PrecisionGain, wseRep.PrecisionGain)
	}
	for _, rec := range rduRep.Recommendations {
		if strings.Contains(rec, "Mixed") {
			return
		}
	}
	t.Error("RDU recommendations should prefer Mixed precision")
}

// The framework's generality claim: the same Profile call works on all
// four backends with zero platform-specific code.
func TestInsightFrameworkGenerality(t *testing.T) {
	custom := dabench.GPT2Small().WithHidden(1024).WithLayers(4)
	for _, p := range dabench.Platforms() {
		spec := dabench.TrainSpec{Model: custom, Batch: 64, Seq: 1024, Precision: dabench.BF16}
		if p.Name() == "RDU" {
			spec.Batch = 4
		}
		prof, err := dabench.Profile(p, spec)
		if err != nil {
			t.Errorf("%s: %v", p.Name(), err)
			continue
		}
		if prof.Run.TokensPerSec <= 0 {
			t.Errorf("%s: no throughput", p.Name())
		}
	}
}
