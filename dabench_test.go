package dabench_test

import (
	"context"
	"errors"
	"testing"

	dabench "dabench"
)

// TestFacadeContextVariants pins the cancellation contract the serving
// layer depends on: an already-cancelled context aborts the sweeps
// with ctx's error instead of returning a partial result.
func TestFacadeContextVariants(t *testing.T) {
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if _, err := dabench.RunExperimentContext(ctx, "table1"); !errors.Is(err, context.Canceled) {
		t.Errorf("RunExperimentContext error = %v, want context.Canceled", err)
	}
	spec := dabench.TrainSpec{Model: dabench.GPT2Small(), Batch: 1, Seq: 1024, Precision: dabench.FP16}
	if _, err := dabench.DeploymentContext(ctx, dabench.NewWSE(), spec,
		[]int{50, 200}, []dabench.Format{dabench.FP16}); !errors.Is(err, context.Canceled) {
		t.Errorf("DeploymentContext error = %v, want context.Canceled", err)
	}
	if _, err := dabench.ScalabilityContext(ctx, dabench.NewWSE(), spec,
		[]dabench.Parallelism{{}}, []string{"base"}); !errors.Is(err, context.Canceled) {
		t.Errorf("ScalabilityContext error = %v, want context.Canceled", err)
	}

	// The live-context paths must match the context-free facade calls.
	res, err := dabench.RunExperimentContext(t.Context(), "table4")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Error("no tables from RunExperimentContext")
	}
}

func TestFacadeProfileAllPlatforms(t *testing.T) {
	specs := map[string]dabench.TrainSpec{
		"WSE-2": {Model: dabench.GPT2Small(), Batch: 512, Seq: 1024, Precision: dabench.FP16},
		"RDU": {Model: dabench.GPT2Small(), Batch: 4, Seq: 1024, Precision: dabench.BF16,
			Par: dabench.Parallelism{Mode: dabench.ModeO1}},
		"IPU": {Model: dabench.GPT2Small().WithLayers(4), Batch: 1024, Seq: 1024, Precision: dabench.FP16},
		"GPU": {Model: dabench.GPT2XL(), Batch: 64, Seq: 1024, Precision: dabench.BF16,
			Par: dabench.Parallelism{TensorParallel: 8}},
	}
	for _, p := range dabench.Platforms() {
		spec, ok := specs[p.Name()]
		if !ok {
			t.Fatalf("no spec for %s", p.Name())
		}
		prof, err := dabench.Profile(p, spec)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if prof.Run.TokensPerSec <= 0 || prof.LI <= 0 || prof.LI > 1 {
			t.Errorf("%s: degenerate profile %s", p.Name(), prof.Summary())
		}
		if len(prof.Insights) == 0 {
			t.Errorf("%s: no insights produced", p.Name())
		}
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := dabench.ExperimentIDs()
	if len(ids) != 11 {
		t.Fatalf("expected 11 paper artifacts, got %d", len(ids))
	}
	if _, err := dabench.RunExperiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Spot-check one cheap experiment end to end.
	res, err := dabench.RunExperiment("table4")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || len(res.Trace) == 0 {
		t.Error("table4 produced no output")
	}
}

func TestFacadeDeployment(t *testing.T) {
	rep, err := dabench.Deployment(dabench.NewWSE(),
		dabench.TrainSpec{Model: dabench.GPT2Small(), Batch: 1, Seq: 1024, Precision: dabench.FP16},
		[]int{50, 200, 800},
		[]dabench.Format{dabench.FP16, dabench.CB16},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestPrecision != dabench.CB16 {
		t.Errorf("best WSE precision = %v, want CB16", rep.BestPrecision)
	}
	if rep.BestBatch != 800 {
		t.Errorf("best batch = %v, want 800", rep.BestBatch)
	}
	if len(rep.Recommendations) == 0 {
		t.Error("no recommendations")
	}
}

func TestFacadeScalability(t *testing.T) {
	pts, err := dabench.Scalability(dabench.NewRDU(),
		dabench.TrainSpec{Model: dabench.LLaMA2_7B(), Batch: 8, Seq: 4096, Precision: dabench.BF16},
		[]dabench.Parallelism{
			{Mode: dabench.ModeO1, TensorParallel: 2},
			{Mode: dabench.ModeO1, TensorParallel: 4},
		},
		[]string{"TP2", "TP4"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].TokensPerSec <= pts[1].TokensPerSec {
		t.Errorf("TP2 should beat TP4 cross-machine: %+v", pts)
	}
	// A 70B model at TP1 is a recorded failure, not an error.
	fail, err := dabench.Scalability(dabench.NewRDU(),
		dabench.TrainSpec{Model: dabench.LLaMA2_70B(), Batch: 1, Seq: 4096, Precision: dabench.BF16},
		[]dabench.Parallelism{{Mode: dabench.ModeO1, TensorParallel: 1}},
		[]string{"TP1"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !fail[0].Failed {
		t.Error("70B at TP1 should be a placement failure")
	}
}
