module dabench

go 1.24
