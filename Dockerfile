# Build dabenchd (daemon) and dabench (CLI) into a small runtime image.
#
#   docker build -t dabench .
#   docker run -p 8080:8080 -v dabench-data:/data dabench
#
# The compose file in this repo wires three of these into a cluster
# fabric; see docker-compose.yml.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
ENV CGO_ENABLED=0
RUN go build -trimpath -ldflags=-s -o /out/dabenchd ./cmd/dabenchd \
 && go build -trimpath -ldflags=-s -o /out/dabench ./cmd/dabench

# Alpine (not scratch) so healthchecks can use busybox wget and an
# operator can shell in to run the bundled dabench CLI against /data.
FROM alpine:3.20
RUN adduser -D -u 10001 dabench && mkdir -p /data && chown dabench:dabench /data
COPY --from=build /out/dabenchd /out/dabench /usr/local/bin/
USER dabench
VOLUME /data
EXPOSE 8080
HEALTHCHECK --interval=5s --timeout=2s --retries=12 \
  CMD wget -q -O /dev/null http://127.0.0.1:8080/healthz || exit 1
ENTRYPOINT ["dabenchd"]
CMD ["-addr", ":8080", "-data-dir", "/data"]
