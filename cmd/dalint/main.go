// Command dalint is dabench's project-invariant checker: six custom
// analyzers (internal/analysis) that mechanize rules earlier PRs
// established by convention — append-only /v1/stats field order,
// fault hooks outside memo cells, ValidAddr ahead of path handling,
// no fresh root contexts on request paths, no mixed atomic/direct
// access, no I/O under hot locks.
//
// Two driving modes share one suite:
//
//	go vet -vettool=$(pwd)/dalint ./...   # CI: cmd/go plans the build
//	dalint ./...                          # standalone, via go list
//
// Standalone flags:
//
//	-list        print the analyzers and their contracts
//	-only a,b    run only the named analyzers
//	-dumporder   print the current wire field order of every type in
//	             statsorder_manifest.json (JSON, ready to paste) —
//	             run after a legitimate append to refresh the manifest
//
// A finding is suppressed only by an inline justification comment on
// the offending line (or the line above):
//
//	//dalint:ignore <analyzer> -- <why this is sound>
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dabench/internal/analysis"
	"dabench/internal/version"
)

func main() {
	args := os.Args[1:]
	// cmd/go's toolID handshake: `dalint -V=full` must answer
	// "<name> version <id>" where the id changes whenever the binary
	// does — the go command keys its vet result cache on it. Hashing
	// our own executable makes a rebuilt dalint invalidate stale vet
	// verdicts instead of replaying them.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("%s version %s-%s\n", filepath.Base(os.Args[0]), version.Version, selfHash())
			return
		}
	}
	// cmd/go's flag discovery: `dalint -flags` answers a JSON array of
	// analyzer flags. dalint exposes none — the suite is all-on, and
	// suppression happens in source where it can carry a justification.
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return
	}
	if cfg, ok := analysis.IsVetInvocation(args); ok {
		os.Exit(analysis.RunVet(cfg, analysis.All(), os.Stderr))
	}

	fs := flag.NewFlagSet("dalint", flag.ExitOnError)
	list := fs.Bool("list", false, "print the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	dump := fs.Bool("dumporder", false, "print the current wire field order for every manifest type and exit")
	showVersion := fs.Bool("version", false, "print version and exit")
	_ = fs.Parse(args)

	if *showVersion {
		fmt.Printf("dalint %s\n", version.Version)
		return
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *dump {
		orders, err := analysis.DumpOrder(patterns, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out, _ := json.MarshalIndent(map[string]any{"types": orders}, "", "  ")
		fmt.Println(string(out))
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "dalint: unknown analyzer %q (see -list)\n", name)
				os.Exit(1)
			}
			analyzers = append(analyzers, a)
		}
	}
	diags, err := analysis.RunPatterns(patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// selfHash fingerprints the running binary for the vet cache key.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:8])
}
